// Registry-driven backend selection for the google-benchmark binaries.
// state.range(0) carries the backend's registry index (== obs_index), so
// ->Apply(AllBackends) gives one run per registered backend and a newly
// registered family joins every micro matrix with no per-bench edits.
#pragma once

#include <benchmark/benchmark.h>

#include <cstddef>

#include "stm/api.hpp"
#include "stm/backend.hpp"

namespace adtm::bench {

inline const stm::Backend* backend_of(const benchmark::State& state) {
  return stm::backend_registry().at(
      static_cast<std::size_t>(state.range(0)));
}

inline void init_backend(const benchmark::State& state) {
  stm::Config cfg;
  cfg.backend = backend_of(state)->id;
  stm::init(cfg);
}

inline void set_backend_label(benchmark::State& state) {
  state.SetLabel(backend_of(state)->name);
}

// BENCHMARK(...)->Apply(adtm::bench::AllBackends)
inline void AllBackends(benchmark::internal::Benchmark* b) {
  b->DenseRange(
      0, static_cast<std::int64_t>(stm::backend_registry().size()) - 1);
}

}  // namespace adtm::bench
