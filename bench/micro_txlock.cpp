// Component bench: TxLock vs std::mutex, and subscription cost — the price
// of making locks transaction-friendly (paper §4.2).
#include <benchmark/benchmark.h>

#include <mutex>

#include "defer/txlock.hpp"
#include "stm/api.hpp"

namespace {

using namespace adtm;  // NOLINT

void init_tl2() {
  stm::Config cfg;
  cfg.backend = "tl2";
  stm::init(cfg);
}

void BM_StdMutexLockUnlock(benchmark::State& state) {
  std::mutex m;
  for (auto _ : state) {
    m.lock();
    m.unlock();
  }
}
BENCHMARK(BM_StdMutexLockUnlock);

void BM_TxLockAcquireRelease(benchmark::State& state) {
  init_tl2();
  TxLock lock;
  for (auto _ : state) {
    lock.acquire();
    lock.release();
  }
}
BENCHMARK(BM_TxLockAcquireRelease);

void BM_TxLockAcquireReleaseInsideTx(benchmark::State& state) {
  init_tl2();
  TxLock lock;
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) {
      lock.acquire(tx);
      lock.release(tx);
    });
  }
}
BENCHMARK(BM_TxLockAcquireReleaseInsideTx);

void BM_TxLockReentrantAcquire(benchmark::State& state) {
  init_tl2();
  TxLock lock;
  lock.acquire();
  for (auto _ : state) {
    lock.acquire();
    lock.release();
  }
  lock.release();
}
BENCHMARK(BM_TxLockReentrantAcquire);

void BM_SubscribeUnheldLock(benchmark::State& state) {
  // Subscription is the per-method overhead injected into every accessor
  // of a deferrable class: one transactional read of the owner field.
  init_tl2();
  TxLock lock;
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) { lock.subscribe(tx); });
  }
}
BENCHMARK(BM_SubscribeUnheldLock);

void BM_SubscribeInsideLargerTx(benchmark::State& state) {
  init_tl2();
  TxLock lock;
  stm::tvar<long> x{0};
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) {
      lock.subscribe(tx);
      x.set(tx, x.get(tx) + 1);
    });
  }
}
BENCHMARK(BM_SubscribeInsideLargerTx);

}  // namespace

BENCHMARK_MAIN();
