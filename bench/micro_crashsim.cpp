// Component bench: crash-recovery time vs log size.
//
// Recovery is the one code path whose latency the crash matrix never
// measures (its logs are tiny). This driver builds wire-format WAL files
// of increasing record counts and times three recovery flavors:
//
//   recover_clean  scan + checksum a boundary-exact log
//   recover_torn   scan + truncate + durability barrier on a torn tail
//   replay_fold    fold the recovered records into final KV state
//
// Percentiles (p50/p90/p99 over repeated runs) go to the adtm-bench/v1
// run file — BENCH_crashsim.json unless ADTM_BENCH_OUT says otherwise.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/timing.hpp"
#include "io/temp_dir.hpp"
#include "kvcache/recoverable.hpp"
#include "wal/crc32.hpp"
#include "wal/wal.hpp"

namespace {

using namespace adtm;  // NOLINT

constexpr int kRuns = 15;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// Build a boundary-exact log of `records` RecoverableCache ops in the
// exact wire format the group commit writes.
std::string build_log(std::size_t records) {
  std::string data;
  data.reserve(records * 64);
  for (std::size_t i = 0; i < records; ++i) {
    kvcache::RecoverableCache::Op op;
    op.id = "op" + std::to_string(i);
    op.kind = 'S';
    op.key = "k" + std::to_string(i % 512);
    op.value = "v" + std::to_string(i) + std::string(24, 'x');
    const std::string payload = kvcache::RecoverableCache::encode(op);
    put_u32(data, static_cast<std::uint32_t>(payload.size()));
    put_u32(data, wal::crc32(payload));
    data += payload;
  }
  return data;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

double percentile(std::vector<double> ns, double p) {
  std::sort(ns.begin(), ns.end());
  const auto idx = static_cast<std::size_t>(p * (ns.size() - 1) + 0.5);
  return ns[idx];
}

void report_percentiles(bench::BenchReport& report, const std::string& name,
                        std::size_t records, const std::vector<double>& ns) {
  report.add(name, percentile(ns, 0.50), records, "p50");
  report.add(name, percentile(ns, 0.90), records, "p90");
  report.add(name, percentile(ns, 0.99), records, "p99");
  std::printf("%-24s %8zu records  p50 %10.0f ns  p90 %10.0f ns  p99 %10.0f "
              "ns\n",
              name.c_str(), records, percentile(ns, 0.50),
              percentile(ns, 0.90), percentile(ns, 0.99));
}

}  // namespace

int main() {
  // This binary's measurements go to their own run file by default; an
  // explicit ADTM_BENCH_OUT still wins.
  ::setenv("ADTM_BENCH_OUT", "BENCH_crashsim.json", /*overwrite=*/0);
  io::TempDir dir("adtm-bench-crashsim");
  bench::BenchReport report("micro_crashsim");

  for (const std::size_t records : {1024u, 8192u, 65536u}) {
    const std::string clean = build_log(records);
    const std::string path = dir.file("wal-" + std::to_string(records));

    std::vector<double> recover_ns;
    write_file(path, clean);
    for (int run = 0; run < kRuns; ++run) {
      Timer t;
      const auto r = wal::WriteAheadLog::recover(path);
      recover_ns.push_back(t.elapsed_s() * 1e9);
      if (r.records.size() != records || !r.clean) {
        std::fprintf(stderr, "micro_crashsim: clean recovery wrong\n");
        return 1;
      }
    }
    report_percentiles(report, "recover_clean", records, recover_ns);

    std::vector<double> torn_ns;
    for (int run = 0; run < kRuns; ++run) {
      // Re-tear before every run: recover_and_truncate repairs the file
      // (that durable repair is exactly what we are timing).
      write_file(path, clean + "\x28\x00\x00\x00torn");
      Timer t;
      const auto r = wal::WriteAheadLog::recover_and_truncate(path);
      torn_ns.push_back(t.elapsed_s() * 1e9);
      if (r.records.size() != records || r.clean) {
        std::fprintf(stderr, "micro_crashsim: torn recovery wrong\n");
        return 1;
      }
    }
    report_percentiles(report, "recover_torn", records, torn_ns);

    std::vector<double> replay_ns;
    const auto recovered = wal::WriteAheadLog::recover(path);
    for (int run = 0; run < kRuns; ++run) {
      Timer t;
      const auto state = kvcache::RecoverableCache::replay(recovered.records);
      replay_ns.push_back(t.elapsed_s() * 1e9);
      if (state.empty()) {
        std::fprintf(stderr, "micro_crashsim: replay fold wrong\n");
        return 1;
      }
    }
    report_percentiles(report, "replay_fold", records, replay_ns);
  }

  if (!report.write()) {
    std::fprintf(stderr, "micro_crashsim: bench report write failed\n");
    return 1;
  }
  return 0;
}
