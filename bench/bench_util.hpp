// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/timing.hpp"

namespace adtm::bench {

// Run `body(thread_index)` on `threads` threads; returns wall seconds for
// all of them to finish.
inline double timed_threads(unsigned threads,
                            const std::function<void(unsigned)>& body) {
  Timer timer;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&body, t] { body(t); });
  }
  for (auto& t : pool) t.join();
  return timer.elapsed_s();
}

// Paper-style series table: one row per thread count, one column per
// configuration, cells in seconds.
class SeriesTable {
 public:
  explicit SeriesTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(unsigned threads, const std::vector<double>& seconds) {
    rows_.push_back({threads, seconds});
  }

  void print(const std::string& title) const {
    std::printf("\n%s\n", title.c_str());
    std::printf("%8s", "threads");
    for (const auto& c : columns_) std::printf("  %12s", c.c_str());
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("%8u", row.threads);
      for (const double s : row.seconds) std::printf("  %12.4f", s);
      std::printf("\n");
    }
  }

 private:
  struct Row {
    unsigned threads;
    std::vector<double> seconds;
  };
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

// Machine-readable bench output: each binary records its measurements and
// append-merges them into one JSON run file (default BENCH_stm.json in the
// working directory; override with ADTM_BENCH_OUT). Shape:
//
//   {"schema":"adtm-bench/v1","runs":[
//   {"binary":"micro_stm_ops","entries":[{"name":...,"label":...,
//    "real_ns":...,"iterations":...}, ...]},
//   ...
//   ]}
//
// real_ns is per-iteration time for google-benchmark binaries and total
// wall time for the figure drivers (iterations = total ops in that case).
class BenchReport {
 public:
  explicit BenchReport(std::string binary) : binary_(std::move(binary)) {}

  void add(const std::string& name, double real_ns, std::uint64_t iterations,
           const std::string& label = "") {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"label\":\"%s\",\"real_ns\":%.3f,"
                  "\"iterations\":%llu}",
                  json_escape(name).c_str(), json_escape(label).c_str(),
                  real_ns, static_cast<unsigned long long>(iterations));
    entries_.emplace_back(buf);
  }

  // Append-merge this run into the output file. Existing well-formed run
  // files gain one more element of "runs"; anything else (missing file,
  // foreign content) is replaced by a fresh single-run file.
  bool write() const {
    const char* env = std::getenv("ADTM_BENCH_OUT");
    const std::string path = (env != nullptr && *env != '\0')
                                 ? std::string(env)
                                 : std::string("BENCH_stm.json");
    static const std::string kHeader = "{\"schema\":\"adtm-bench/v1\",\"runs\":[\n";
    static const std::string kTail = "\n]}\n";

    std::string run = "{\"binary\":\"" + json_escape(binary_) +
                      "\",\"entries\":[\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      run += entries_[i];
      if (i + 1 < entries_.size()) run += ",";
      run += "\n";
    }
    run += "]}";

    std::string out;
    const std::string existing = slurp(path);
    if (existing.size() > kHeader.size() + kTail.size() &&
        existing.compare(0, kHeader.size(), kHeader) == 0 &&
        existing.compare(existing.size() - kTail.size(), kTail.size(),
                         kTail) == 0) {
      out = existing.substr(0, existing.size() - kTail.size()) + ",\n" + run +
            kTail;
    } else {
      out = kHeader + run + kTail;
    }

    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  static std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
      out += c;
    }
    return out;
  }

  static std::string slurp(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return "";
    std::string data;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
    std::fclose(f);
    return data;
  }

  std::string binary_;
  std::vector<std::string> entries_;
};

}  // namespace adtm::bench
