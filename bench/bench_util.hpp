// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/timing.hpp"

namespace adtm::bench {

// Run `body(thread_index)` on `threads` threads; returns wall seconds for
// all of them to finish.
inline double timed_threads(unsigned threads,
                            const std::function<void(unsigned)>& body) {
  Timer timer;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&body, t] { body(t); });
  }
  for (auto& t : pool) t.join();
  return timer.elapsed_s();
}

// Paper-style series table: one row per thread count, one column per
// configuration, cells in seconds.
class SeriesTable {
 public:
  explicit SeriesTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(unsigned threads, const std::vector<double>& seconds) {
    rows_.push_back({threads, seconds});
  }

  void print(const std::string& title) const {
    std::printf("\n%s\n", title.c_str());
    std::printf("%8s", "threads");
    for (const auto& c : columns_) std::printf("  %12s", c.c_str());
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("%8u", row.threads);
      for (const double s : row.seconds) std::printf("  %12.4f", s);
      std::printf("\n");
    }
  }

 private:
  struct Row {
    unsigned threads;
    std::vector<double> seconds;
  };
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace adtm::bench
