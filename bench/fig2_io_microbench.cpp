// Figure 2 (a)-(d): transactional I/O microbenchmark (paper §6.1,
// Listing 6).
//
// Threads cooperate to complete a fixed number of operations; each
// operation picks a file and performs "open, read length, append record,
// close" (sections a-c) or appends to a file kept open (section d).
// Configurations:
//   CGL     — one global mutex, direct I/O (no TM)
//   irrevoc — transaction that becomes irrevocable for the I/O
//   defer   — transaction that defers the I/O with atomic_defer
//   FGL     — one mutex per file (sections b-d)
//
// The paper runs 1M ops on a 4c/8t i7; defaults here are scaled by
// ADTM_FIG2_OPS (default 8000) to suit the host. Expected shape, from the
// paper: (a) irrevoc ~ CGL, defer pays constant overhead; (b)/(c) defer
// scales with available file concurrency, matching FGL by 2-4 threads;
// (d) with small critical sections irrevoc degrades below CGL while defer
// approaches FGL.
#include <cstdio>
#include <memory>
#include <mutex>

#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "defer/atomic_defer.hpp"
#include "io/defer_file.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"
#include "stm/backend.hpp"

namespace {

using namespace adtm;       // NOLINT
using namespace adtm::bench;  // NOLINT

enum class Variant { Cgl, Irrevoc, Defer, Fgl };

struct Section {
  const char* name;
  const char* key;  // short id for the machine-readable report
  unsigned files;
  bool keep_open;
  std::vector<Variant> variants;
};

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::Cgl: return "CGL";
    case Variant::Irrevoc: return "irrevoc";
    case Variant::Defer: return "defer";
    case Variant::Fgl: return "FGL";
  }
  return "?";
}

struct Workload {
  explicit Workload(unsigned files, const std::string& dir) {
    for (unsigned i = 0; i < files; ++i) {
      file_objects.push_back(std::make_unique<io::DeferFile>(
          dir + "/f" + std::to_string(i)));
      mutexes.push_back(std::make_unique<std::mutex>());
    }
  }
  std::vector<std::unique_ptr<io::DeferFile>> file_objects;
  std::vector<std::unique_ptr<std::mutex>> mutexes;
  std::mutex global_mutex;
};

void run_op(Workload& w, Variant v, unsigned file, bool keep_open,
            const std::string& content) {
  io::DeferFile& f = *w.file_objects[file];
  const auto do_io = [&f, keep_open, &content] {
    if (keep_open) {
      f.append_keep_open(content);
    } else {
      f.append_with_length(content);
    }
  };
  switch (v) {
    case Variant::Cgl: {
      std::lock_guard<std::mutex> lk(w.global_mutex);
      do_io();
      return;
    }
    case Variant::Fgl: {
      std::lock_guard<std::mutex> lk(*w.mutexes[file]);
      do_io();
      return;
    }
    case Variant::Irrevoc: {
      stm::atomic([&](stm::Tx& tx) {
        stm::become_irrevocable(tx);
        do_io();
      });
      return;
    }
    case Variant::Defer: {
      stm::atomic([&](stm::Tx& tx) { atomic_defer(tx, do_io, f); });
      return;
    }
  }
}

double run_config(const Section& section, Variant v, unsigned threads,
                  std::uint64_t total_ops) {
  io::TempDir dir("adtm-fig2");
  Workload w(section.files, dir.path());
  const std::uint64_t per_thread = total_ops / threads;
  return timed_threads(threads, [&](unsigned t) {
    const std::string content = "content-from-thread-" + std::to_string(t);
    Xoshiro256 rng{t + 1};
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      const auto file =
          static_cast<unsigned>(rng.next_below(section.files));
      run_op(w, v, file, section.keep_open, content);
    }
  });
}

}  // namespace

int main() {
  const std::uint64_t total_ops = env_u64("ADTM_FIG2_OPS", 20000);
  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};

  stm::Config cfg;
  cfg.backend = "tl2";
  stm::init(cfg);

  const std::vector<Section> sections = {
      {"Figure 2(a): 1 file, open/close per op", "fig2a", 1, false,
       {Variant::Cgl, Variant::Irrevoc, Variant::Defer}},
      {"Figure 2(b): 2 files, open/close per op", "fig2b", 2, false,
       {Variant::Cgl, Variant::Irrevoc, Variant::Defer, Variant::Fgl}},
      {"Figure 2(c): 4 files, open/close per op", "fig2c", 4, false,
       {Variant::Cgl, Variant::Irrevoc, Variant::Defer, Variant::Fgl}},
      {"Figure 2(d): 4 files, kept open", "fig2d", 4, true,
       {Variant::Cgl, Variant::Irrevoc, Variant::Defer, Variant::Fgl}},
  };

  std::printf("fig2_io_microbench: %llu total ops per cell (ADTM_FIG2_OPS)\n",
              static_cast<unsigned long long>(total_ops));
  std::printf("STM algorithm: %s (the paper reports STM; HTM trends match)\n",
              stm::current_backend()->name);

  BenchReport report("fig2_io_microbench");
  for (const Section& section : sections) {
    std::vector<std::string> columns;
    columns.reserve(section.variants.size());
    for (const Variant v : section.variants) {
      columns.emplace_back(variant_name(v));
    }
    SeriesTable table(columns);
    for (const unsigned threads : thread_counts) {
      std::vector<double> row;
      row.reserve(section.variants.size());
      for (const Variant v : section.variants) {
        const double seconds = run_config(section, v, threads, total_ops);
        row.push_back(seconds);
        report.add(std::string(section.key) + "/" + variant_name(v) + "/t" +
                       std::to_string(threads),
                   seconds * 1e9, total_ops);
      }
      table.add_row(threads, row);
    }
    table.print(section.name);
  }
  if (!report.write()) {
    std::fprintf(stderr, "fig2_io_microbench: failed to write bench report\n");
    return 1;
  }
  return 0;
}
