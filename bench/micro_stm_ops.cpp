// Component bench: raw STM operation costs per algorithm — the
// per-transaction instrumentation overhead the paper cites to explain
// defer's single-thread latency in Figure 2(a).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/backend_bench.hpp"
#include "bench/bench_util.hpp"
#include "obs/trace.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace {

using namespace adtm;  // NOLINT

using adtm::bench::AllBackends;

void init_algo(const benchmark::State& state) {
  adtm::bench::init_backend(state);
}

void set_label(benchmark::State& state) {
  adtm::bench::set_backend_label(state);
}

void BM_EmptyTransaction(benchmark::State& state) {
  init_algo(state);
  for (auto _ : state) {
    stm::atomic([](stm::Tx&) {});
  }
  set_label(state);
}
BENCHMARK(BM_EmptyTransaction)->Apply(AllBackends);

void BM_ReadOnlyTx(benchmark::State& state) {
  init_algo(state);
  constexpr int kVars = 16;
  std::vector<std::unique_ptr<stm::tvar<long>>> vars;
  for (int i = 0; i < kVars; ++i) {
    vars.push_back(std::make_unique<stm::tvar<long>>(i));
  }
  for (auto _ : state) {
    const long sum = stm::atomic([&](stm::Tx& tx) {
      long s = 0;
      for (auto& v : vars) s += v->get(tx);
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  set_label(state);
}
BENCHMARK(BM_ReadOnlyTx)->Apply(AllBackends);

void BM_WriterTx(benchmark::State& state) {
  init_algo(state);
  constexpr int kVars = 8;
  std::vector<std::unique_ptr<stm::tvar<long>>> vars;
  for (int i = 0; i < kVars; ++i) {
    vars.push_back(std::make_unique<stm::tvar<long>>(0));
  }
  long n = 0;
  for (auto _ : state) {
    ++n;
    stm::atomic([&](stm::Tx& tx) {
      for (auto& v : vars) v->set(tx, n);
    });
  }
  set_label(state);
}
BENCHMARK(BM_WriterTx)->Apply(AllBackends);

void BM_CounterIncrement(benchmark::State& state) {
  init_algo(state);
  stm::tvar<long> counter{0};
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) { counter.set(tx, counter.get(tx) + 1); });
  }
  set_label(state);
}
BENCHMARK(BM_CounterIncrement)->Apply(AllBackends);

void BM_UninstrumentedBaseline(benchmark::State& state) {
  // The cost floor: the same counter increment with no TM at all.
  long counter = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++counter);
  }
}
BENCHMARK(BM_UninstrumentedBaseline);

void BM_LargeReadFootprint(benchmark::State& state) {
  // Read-set scaling: cost of a transaction reading state.range(1) vars.
  init_algo(state);
  const auto count = static_cast<std::size_t>(state.range(1));
  std::vector<std::unique_ptr<stm::tvar<long>>> vars;
  for (std::size_t i = 0; i < count; ++i) {
    vars.push_back(std::make_unique<stm::tvar<long>>(1));
  }
  for (auto _ : state) {
    const long sum = stm::atomic([&](stm::Tx& tx) {
      long s = 0;
      for (auto& v : vars) s += v->get(tx);
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetLabel(std::string(adtm::bench::backend_of(state)->name) + "/" +
                 std::to_string(count) + "vars");
}

// Read-set scaling only makes sense for backends with per-read tracking
// or validation cost: the redo/undo families plus the value-validating
// and pessimistic ones — named here, resolved to registry indices.
void ReadFootprintArgs(benchmark::internal::Benchmark* b) {
  for (const char* id : {"tl2", "eager", "norec", "2pl"}) {
    const adtm::stm::Backend* be = adtm::stm::find_backend(id);
    if (be == nullptr) continue;
    for (const std::int64_t vars : {64, 512, 4096}) {
      b->Args({be->obs_index, vars});
    }
  }
}
BENCHMARK(BM_LargeReadFootprint)->Apply(ReadFootprintArgs);

void BM_CounterIncrementTraced(benchmark::State& state) {
  // The tracing-overhead pair: BM_CounterIncrement runs with the gate
  // closed (the production default — one relaxed load per event site);
  // this variant runs the same transaction with the full event pipeline
  // live. Their ratio is the cost of enabling; BM_CounterIncrement vs the
  // pre-obs build is the disabled-overhead acceptance bound.
  init_algo(state);
  obs::enable();
  stm::tvar<long> counter{0};
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) { counter.set(tx, counter.get(tx) + 1); });
  }
  obs::disable();
  obs::clear();
  set_label(state);
}
BENCHMARK(BM_CounterIncrementTraced)->Apply(AllBackends);

// Forwards console output unchanged while capturing every run for the
// machine-readable BENCH_stm.json record.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(adtm::bench::BenchReport& report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_.add(run.benchmark_name(), run.GetAdjustedRealTime(),
                  static_cast<std::uint64_t>(run.iterations),
                  run.report_label);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  adtm::bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  adtm::bench::BenchReport report("micro_stm_ops");
  CaptureReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!report.write()) {
    std::fprintf(stderr, "micro_stm_ops: failed to write bench report\n");
    return 1;
  }
  return 0;
}
