// Ablation: the serialize-after-N contention-management threshold.
//
// §2 of the paper notes GCC serializes software transactions after 100
// attempts (hardware after 2) and that tuning this parameter has a large
// impact (Diegues et al.). This bench sweeps the threshold on a contended
// counter workload and reports both time and how many transactions ended
// up serialized.
#include <cstdio>
#include <thread>

#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "common/stats.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace {

using namespace adtm;         // NOLINT
using namespace adtm::bench;  // NOLINT

struct Result {
  double seconds;
  std::uint64_t serializations;
  std::uint64_t aborts;
};

Result run_one(std::uint32_t threshold, unsigned threads,
               std::uint64_t ops_per_thread) {
  stm::Config cfg;
  cfg.backend = "tl2";
  cfg.serialize_after = threshold;
  cfg.lock_spin_limit = 16;  // aggressive aborts to create CM pressure
  stm::init(cfg);
  stats().reset();

  stm::tvar<long> hot{0};
  const double secs = timed_threads(threads, [&](unsigned) {
    for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
      stm::atomic([&](stm::Tx& tx) {
        const long v = hot.get(tx);
        // Widen the read->write window so concurrent threads actually
        // conflict even on machines with few cores (where preemption
        // inside short transactions is rare).
        std::this_thread::yield();
        hot.set(tx, v + 1);
      });
    }
  });
  return {secs, stats().total(Counter::TxIrrevocable),
          stats().total(Counter::TxAbortConflict)};
}

}  // namespace

int main() {
  const std::uint64_t ops = env_u64("ADTM_ABLATION_OPS", 3000);
  const unsigned threads = 4;

  std::printf(
      "ablation_serialize_threshold: contended counter, %u threads, "
      "%llu ops/thread\n",
      threads, static_cast<unsigned long long>(ops));
  std::printf("%12s  %10s  %14s  %12s\n", "threshold", "time(s)",
              "serialized", "aborts");
  for (const std::uint32_t threshold : {2u, 10u, 100u, 1000u}) {
    const Result r = run_one(threshold, threads, ops);
    std::printf("%12u  %10.4f  %14llu  %12llu\n", threshold, r.seconds,
                static_cast<unsigned long long>(r.serializations),
                static_cast<unsigned long long>(r.aborts));
  }
  return 0;
}
