// Component bench: the memcached-style TxCache (paper §5.1) — per-op
// costs per algorithm, and the cost of deferred eviction logging.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/backend_bench.hpp"
#include "common/rng.hpp"
#include "io/temp_dir.hpp"
#include "kvcache/tx_cache.hpp"
#include "stm/api.hpp"
#include "txlog/txlog.hpp"

namespace {

using namespace adtm;  // NOLINT

using adtm::bench::AllBackends;

void init_algo(const benchmark::State& state) {
  adtm::bench::init_backend(state);
}

void set_label(benchmark::State& state) {
  adtm::bench::set_backend_label(state);
}

std::vector<std::string> make_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back("key" + std::to_string(i));
  return keys;
}

void BM_CacheGetHit(benchmark::State& state) {
  init_algo(state);
  kvcache::TxCache cache(512);
  const auto keys = make_keys(256);
  for (const auto& k : keys) cache.set(k, k);
  Xoshiro256 rng{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(keys[rng.next_below(keys.size())]));
  }
  set_label(state);
}
BENCHMARK(BM_CacheGetHit)->Apply(AllBackends);

void BM_CacheSetFresh(benchmark::State& state) {
  // Bounded key space so chain lengths (and thus per-op cost) stay stable
  // regardless of how many iterations the harness chooses.
  init_algo(state);
  kvcache::TxCache cache(1u << 20, /*buckets=*/1u << 15);
  long n = 0;
  for (auto _ : state) {
    cache.set("key" + std::to_string(n++ % 20000), "value");
  }
  set_label(state);
}
BENCHMARK(BM_CacheSetFresh)->Apply(AllBackends);

void BM_CacheSetWithEviction(benchmark::State& state) {
  init_algo(state);
  kvcache::TxCache cache(128);  // every set past warm-up evicts
  long n = 0;
  for (auto _ : state) {
    cache.set("key" + std::to_string(n++), "value");
  }
  set_label(state);
}
BENCHMARK(BM_CacheSetWithEviction)->Apply(AllBackends);

void BM_CacheSetWithEvictionAndDeferredLog(benchmark::State& state) {
  // The §5.1 configuration: each eviction logs a diagnostic record via
  // atomic_defer instead of forcing irrevocability or dropping the line.
  init_algo(state);
  io::TempDir dir("adtm-kvbench");
  txlog::TxLogger logger(dir.file("evict.log"));
  kvcache::TxCache cache(128, 1024, &logger);
  long n = 0;
  for (auto _ : state) {
    cache.set("key" + std::to_string(n++), "value");
  }
  set_label(state);
}
BENCHMARK(BM_CacheSetWithEvictionAndDeferredLog)->Apply(AllBackends);

void BM_CacheIncr(benchmark::State& state) {
  init_algo(state);
  kvcache::TxCache cache(64);
  cache.set("n", "0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.incr("n", 1));
  }
  set_label(state);
}
BENCHMARK(BM_CacheIncr)->Apply(AllBackends);

}  // namespace

BENCHMARK_MAIN();
