// Component bench: transactional containers vs lock-based baselines — the
// red-black tree is the paper's own motivating example for TM. Results
// also land in the adtm-bench/v1 run file (BENCH_stm.json /
// ADTM_BENCH_OUT) like the other micro benches.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <mutex>

#include "bench/backend_bench.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "containers/btree.hpp"
#include "containers/hashmap.hpp"
#include "containers/queue.hpp"
#include "containers/rbtree.hpp"
#include "containers/skiplist.hpp"
#include "stm/api.hpp"

namespace {

using namespace adtm;  // NOLINT

using adtm::bench::AllBackends;

void init_algo(const benchmark::State& state) {
  adtm::bench::init_backend(state);
}

void set_label(benchmark::State& state) {
  adtm::bench::set_backend_label(state);
}

void BM_RbTreeInsertErase(benchmark::State& state) {
  init_algo(state);
  containers::TxRbTree<long, long> tree;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 512; k += 2) tree.insert(tx, k, k);
  });
  Xoshiro256 rng{5};
  for (auto _ : state) {
    const long key = static_cast<long>(rng.next_below(512));
    stm::atomic([&](stm::Tx& tx) {
      if (!tree.erase(tx, key)) tree.insert(tx, key, key);
    });
  }
  set_label(state);
}
BENCHMARK(BM_RbTreeInsertErase)->Apply(AllBackends);

void BM_RbTreeLookup(benchmark::State& state) {
  init_algo(state);
  containers::TxRbTree<long, long> tree;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 1024; ++k) tree.insert(tx, k, k);
  });
  Xoshiro256 rng{6};
  for (auto _ : state) {
    const long key = static_cast<long>(rng.next_below(1024));
    const auto v =
        stm::atomic([&](stm::Tx& tx) { return tree.find(tx, key); });
    benchmark::DoNotOptimize(v);
  }
  set_label(state);
}
BENCHMARK(BM_RbTreeLookup)->Apply(AllBackends);

void BM_StdMapMutexBaseline(benchmark::State& state) {
  std::map<long, long> tree;
  std::mutex m;
  for (long k = 0; k < 512; k += 2) tree[k] = k;
  Xoshiro256 rng{5};
  for (auto _ : state) {
    const long key = static_cast<long>(rng.next_below(512));
    std::lock_guard<std::mutex> lk(m);
    if (tree.erase(key) == 0) tree[key] = key;
  }
}
BENCHMARK(BM_StdMapMutexBaseline);

void BM_HashMapPutGet(benchmark::State& state) {
  init_algo(state);
  containers::TxHashMap<long, long> map(1024);
  Xoshiro256 rng{7};
  for (auto _ : state) {
    const long key = static_cast<long>(rng.next_below(2048));
    stm::atomic([&](stm::Tx& tx) {
      map.put(tx, key, key);
      benchmark::DoNotOptimize(map.get(tx, key ^ 1));
    });
  }
  set_label(state);
}
BENCHMARK(BM_HashMapPutGet)->Apply(AllBackends);

void BM_QueuePushPop(benchmark::State& state) {
  init_algo(state);
  containers::TxQueue<long> q;
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) { q.push(tx, 1); });
    const auto v = stm::atomic([&](stm::Tx& tx) { return q.pop(tx); });
    benchmark::DoNotOptimize(v);
  }
  set_label(state);
}
BENCHMARK(BM_QueuePushPop)->Apply(AllBackends);

void BM_BTreeInsertErase(benchmark::State& state) {
  init_algo(state);
  containers::TxBTree<long, long> tree;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 512; k += 2) tree.put(tx, k, k);
  });
  Xoshiro256 rng{8};
  for (auto _ : state) {
    const long key = static_cast<long>(rng.next_below(512));
    stm::atomic([&](stm::Tx& tx) {
      if (!tree.remove(tx, key)) tree.put(tx, key, key);
    });
  }
  set_label(state);
}
BENCHMARK(BM_BTreeInsertErase)->Apply(AllBackends);

void BM_BTreeLookup(benchmark::State& state) {
  init_algo(state);
  containers::TxBTree<long, long> tree;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 1024; ++k) tree.put(tx, k, k);
  });
  Xoshiro256 rng{9};
  for (auto _ : state) {
    const long key = static_cast<long>(rng.next_below(1024));
    const auto v = stm::atomic([&](stm::Tx& tx) { return tree.get(tx, key); });
    benchmark::DoNotOptimize(v);
  }
  set_label(state);
}
BENCHMARK(BM_BTreeLookup)->Apply(AllBackends);

void BM_BTreeRangeScan(benchmark::State& state) {
  init_algo(state);
  containers::TxBTree<long, long> tree;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 1024; ++k) tree.put(tx, k, k);
  });
  Xoshiro256 rng{10};
  for (auto _ : state) {
    const long lo = static_cast<long>(rng.next_below(1024 - 64));
    long sum = 0;
    stm::atomic([&](stm::Tx& tx) {
      tree.range_scan(tx, lo, lo + 63, 64,
                      [&sum](const long&, const long& v) {
                        sum += v;
                        return true;
                      });
    });
    benchmark::DoNotOptimize(sum);
  }
  set_label(state);
}
BENCHMARK(BM_BTreeRangeScan)->Apply(AllBackends);

void BM_SkipListInsertErase(benchmark::State& state) {
  init_algo(state);
  containers::TxSkipList<long, long> list;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 512; k += 2) list.put(tx, k, k);
  });
  Xoshiro256 rng{11};
  for (auto _ : state) {
    const long key = static_cast<long>(rng.next_below(512));
    stm::atomic([&](stm::Tx& tx) {
      if (!list.remove(tx, key)) list.put(tx, key, key);
    });
  }
  set_label(state);
}
BENCHMARK(BM_SkipListInsertErase)->Apply(AllBackends);

void BM_SkipListLookup(benchmark::State& state) {
  init_algo(state);
  containers::TxSkipList<long, long> list;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 1024; ++k) list.put(tx, k, k);
  });
  Xoshiro256 rng{12};
  for (auto _ : state) {
    const long key = static_cast<long>(rng.next_below(1024));
    const auto v = stm::atomic([&](stm::Tx& tx) { return list.get(tx, key); });
    benchmark::DoNotOptimize(v);
  }
  set_label(state);
}
BENCHMARK(BM_SkipListLookup)->Apply(AllBackends);

// Forwards console output unchanged while capturing every run for the
// machine-readable bench record (same shape as micro_stm_ops).
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(adtm::bench::BenchReport& report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_.add(run.benchmark_name(), run.GetAdjustedRealTime(),
                  static_cast<std::uint64_t>(run.iterations),
                  run.report_label);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  adtm::bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  adtm::bench::BenchReport report("micro_containers");
  CaptureReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!report.write()) {
    std::fprintf(stderr, "micro_containers: failed to write bench report\n");
    return 1;
  }
  return 0;
}
