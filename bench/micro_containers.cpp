// Component bench: transactional containers vs lock-based baselines — the
// red-black tree is the paper's own motivating example for TM.
#include <benchmark/benchmark.h>

#include <map>
#include <mutex>

#include "common/rng.hpp"
#include "containers/hashmap.hpp"
#include "containers/queue.hpp"
#include "containers/rbtree.hpp"
#include "stm/api.hpp"

namespace {

using namespace adtm;  // NOLINT

void init_algo(const benchmark::State& state) {
  stm::Config cfg;
  cfg.algo = static_cast<stm::Algo>(state.range(0));
  stm::init(cfg);
}

void set_label(benchmark::State& state) {
  state.SetLabel(stm::algo_name(static_cast<stm::Algo>(state.range(0))));
}

void BM_RbTreeInsertErase(benchmark::State& state) {
  init_algo(state);
  containers::TxRbTree<long, long> tree;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 512; k += 2) tree.insert(tx, k, k);
  });
  Xoshiro256 rng{5};
  for (auto _ : state) {
    const long key = static_cast<long>(rng.next_below(512));
    stm::atomic([&](stm::Tx& tx) {
      if (!tree.erase(tx, key)) tree.insert(tx, key, key);
    });
  }
  set_label(state);
}
BENCHMARK(BM_RbTreeInsertErase)->DenseRange(0, 4);

void BM_RbTreeLookup(benchmark::State& state) {
  init_algo(state);
  containers::TxRbTree<long, long> tree;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 1024; ++k) tree.insert(tx, k, k);
  });
  Xoshiro256 rng{6};
  for (auto _ : state) {
    const long key = static_cast<long>(rng.next_below(1024));
    const auto v =
        stm::atomic([&](stm::Tx& tx) { return tree.find(tx, key); });
    benchmark::DoNotOptimize(v);
  }
  set_label(state);
}
BENCHMARK(BM_RbTreeLookup)->DenseRange(0, 4);

void BM_StdMapMutexBaseline(benchmark::State& state) {
  std::map<long, long> tree;
  std::mutex m;
  for (long k = 0; k < 512; k += 2) tree[k] = k;
  Xoshiro256 rng{5};
  for (auto _ : state) {
    const long key = static_cast<long>(rng.next_below(512));
    std::lock_guard<std::mutex> lk(m);
    if (tree.erase(key) == 0) tree[key] = key;
  }
}
BENCHMARK(BM_StdMapMutexBaseline);

void BM_HashMapPutGet(benchmark::State& state) {
  init_algo(state);
  containers::TxHashMap<long, long> map(1024);
  Xoshiro256 rng{7};
  for (auto _ : state) {
    const long key = static_cast<long>(rng.next_below(2048));
    stm::atomic([&](stm::Tx& tx) {
      map.put(tx, key, key);
      benchmark::DoNotOptimize(map.get(tx, key ^ 1));
    });
  }
  set_label(state);
}
BENCHMARK(BM_HashMapPutGet)->DenseRange(0, 4);

void BM_QueuePushPop(benchmark::State& state) {
  init_algo(state);
  containers::TxQueue<long> q;
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) { q.push(tx, 1); });
    const auto v = stm::atomic([&](stm::Tx& tx) { return q.pop(tx); });
    benchmark::DoNotOptimize(v);
  }
  set_label(state);
}
BENCHMARK(BM_QueuePushPop)->DenseRange(0, 4);

}  // namespace

BENCHMARK_MAIN();
