// YCSB-style OLTP benchmark over the transactional containers.
//
// Matrix: every registered backend (plus "auto") x {uniform, zipfian}
// x the thread list,
// over one container (ADTM_OLTP_CONTAINER=btree|skiplist|both). Each
// scenario reuses the same preloaded container — the oracle tracks size
// deltas, so carry-over between scenarios is fine and saves the (large)
// preload cost.
//
// Output: console rows plus adtm-bench/v1 entries appended to
// $ADTM_BENCH_OUT (tools/bench_all.sh-style aggregation; the committed
// snapshot is BENCH_oltp.json, refreshed via tools/perf_gate.sh --update).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/oltp_driver.hpp"
#include "stm/backend.hpp"

namespace {

using adtm::oltp::Dist;
using adtm::oltp::MatrixConfig;
using adtm::oltp::ScenarioConfig;

// Every registered backend plus the adaptive controller ("auto") — new
// backends join the matrix by registering, no edit here.
std::vector<std::string> matrix_backends() {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < adtm::stm::backend_registry().size(); ++i) {
    out.emplace_back(adtm::stm::backend_registry().at(i)->name);
  }
  out.emplace_back("auto");
  return out;
}

template <typename Container>
int run_container(const char* tag, const MatrixConfig& m,
                  adtm::bench::BenchReport& report) {
  adtm::oltp::YcsbRunner<Container> runner(m.keys, /*seed=*/42);
  int failures = 0;
  for (const std::string& backend : matrix_backends()) {
    for (const Dist dist : {Dist::Uniform, Dist::Zipf}) {
      for (const unsigned threads : m.threads) {
        ScenarioConfig cfg;
        cfg.backend = backend;
        cfg.dist = dist;
        cfg.theta = m.theta;
        cfg.threads = threads;
        cfg.duration_ms = m.duration_ms;
        cfg.key_space = m.keys;
        cfg.read_pct = m.read_pct;
        cfg.scan_pct = m.scan_pct;
        cfg.rate = m.rate;
        cfg.spin_ns = m.spin_ns;
        const auto res = runner.run(cfg);
        const std::string scenario = std::string("ycsb/") + tag + "/" +
                                     adtm::oltp::dist_tag(dist, m.theta) +
                                     "/t" + std::to_string(threads);
        adtm::oltp::print_scenario(scenario, backend, res);
        adtm::oltp::append_scenario(report, scenario, backend, res);
        if (!res.oracle_ok) ++failures;
      }
    }
  }
  return failures;
}

}  // namespace

int main() {
  adtm::oltp::setup_observability();
  const MatrixConfig m = adtm::oltp::matrix_from_env();
  adtm::bench::BenchReport report("oltp_ycsb");

  int failures = 0;
  if (m.container == "btree" || m.container == "both") {
    failures += run_container<
        adtm::containers::TxBTree<std::uint64_t, std::uint64_t>>("bt", m,
                                                                 report);
  }
  if (m.container == "skiplist" || m.container == "both") {
    failures += run_container<
        adtm::containers::TxSkipList<std::uint64_t, std::uint64_t>>("sl", m,
                                                                    report);
  }

  if (!report.write()) {
    std::fprintf(stderr, "oltp_ycsb: failed to write bench report\n");
    return 1;
  }
  if (failures != 0) {
    std::fprintf(stderr, "oltp_ycsb: %d scenario oracle mismatch(es)\n",
                 failures);
    return 1;
  }
  return 0;
}
