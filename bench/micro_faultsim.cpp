// Component bench: cost of the fault-injection hook on the hot write path.
// The hook must be free when disarmed (one relaxed atomic load) and cheap
// when armed for a different op/fd (mutex + plan scan); injected-fault
// numbers show the price of a retried syscall for scale.
#include <benchmark/benchmark.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <string>

#include "faultsim/faultsim.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"

namespace {

using namespace adtm;  // NOLINT

constexpr std::size_t kPayload = 256;

void BM_WriteHookDisarmed(benchmark::State& state) {
  io::TempDir dir("adtm-bench-faultsim");
  io::PosixFile f = io::PosixFile::create(dir.file("w"));
  const std::string payload(kPayload, 'x');
  faultsim::engine().disarm();
  for (auto _ : state) {
    f.write_fully(payload.data(), payload.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPayload));
}
BENCHMARK(BM_WriteHookDisarmed);

void BM_WriteHookArmedPassthrough(benchmark::State& state) {
  // Armed for Fsync only: every write consults the engine, matches no
  // plan, and proceeds — the worst case for fault-free production I/O
  // with an armed engine.
  io::TempDir dir("adtm-bench-faultsim");
  io::PosixFile f = io::PosixFile::create(dir.file("w"));
  const std::string payload(kPayload, 'x');
  faultsim::engine().disarm();
  faultsim::engine().arm({.op = faultsim::Op::Fsync,
                          .fault = faultsim::Fault::error(EIO),
                          .skip = ~0ull >> 1});
  for (auto _ : state) {
    f.write_fully(payload.data(), payload.size());
  }
  faultsim::engine().disarm();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPayload));
}
BENCHMARK(BM_WriteHookArmedPassthrough);

void BM_WriteEveryCallEintrOnce(benchmark::State& state) {
  // Every write fails once with EINTR and is retried internally: the cost
  // of a transiently failing disk, for scale against the two above.
  io::TempDir dir("adtm-bench-faultsim");
  io::PosixFile f = io::PosixFile::create(dir.file("w"));
  const std::string payload(kPayload, 'x');
  faultsim::engine().disarm();
  faultsim::engine().arm_random(faultsim::Op::Write, 0.5,
                                faultsim::Fault::error(EINTR), 42);
  for (auto _ : state) {
    f.write_fully(payload.data(), payload.size());
  }
  faultsim::engine().disarm();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPayload));
}
BENCHMARK(BM_WriteEveryCallEintrOnce);

}  // namespace

BENCHMARK_MAIN();
