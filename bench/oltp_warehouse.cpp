// Warehouse-style OLTP benchmark: multi-table transactions with an
// ordered log line through atomic deferral.
//
// Each transaction picks kItemsPerOrder stock items (zipfian — hot items
// exist in any real inventory), logs the order through the ordered
// TxLogger (the deferral path doing real I/O-adjacent work inside the hot
// loop), decrements stock rows in the B+ tree and inserts the order into
// the skip list. Matrix: every registered backend (plus "auto") x the
// thread list.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/oltp_driver.hpp"
#include "stm/backend.hpp"

int main() {
  using adtm::oltp::Dist;
  using adtm::oltp::ScenarioConfig;

  adtm::oltp::setup_observability();
  const adtm::oltp::MatrixConfig m = adtm::oltp::matrix_from_env();
  adtm::bench::BenchReport report("oltp_warehouse");

  // Stock table is smaller than the YCSB key space — warehouses are.
  const std::uint64_t items = std::min<std::uint64_t>(m.keys, 1u << 16);
  adtm::oltp::WarehouseRunner runner(items, /*seed=*/42);

  // Every registered backend plus the adaptive controller.
  std::vector<std::string> backends;
  for (std::size_t i = 0; i < adtm::stm::backend_registry().size(); ++i) {
    backends.emplace_back(adtm::stm::backend_registry().at(i)->name);
  }
  backends.emplace_back("auto");

  int failures = 0;
  for (const std::string& backend : backends) {
    for (const unsigned threads : m.threads) {
      ScenarioConfig cfg;
      cfg.backend = backend;
      cfg.dist = Dist::Zipf;
      cfg.theta = m.theta;
      cfg.threads = threads;
      cfg.duration_ms = m.duration_ms;
      cfg.key_space = items;
      cfg.rate = m.rate;
      cfg.spin_ns = m.spin_ns;
      const auto res = runner.run(cfg);
      const std::string scenario = "wh/t" + std::to_string(threads);
      adtm::oltp::print_scenario(scenario, backend, res);
      adtm::oltp::append_scenario(report, scenario, backend, res);
      if (!res.oracle_ok) ++failures;
    }
  }

  if (!report.write()) {
    std::fprintf(stderr, "oltp_warehouse: failed to write bench report\n");
    return 1;
  }
  if (failures != 0) {
    std::fprintf(stderr, "oltp_warehouse: %d scenario oracle mismatch(es)\n",
                 failures);
    return 1;
  }
  return 0;
}
