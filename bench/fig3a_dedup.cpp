// Figure 3(a): PARSEC dedup with atomic_defer, 2-8 threads (paper §6.2).
//
// Series, as in the paper:
//   STM / HTM                 — transactionalized dedup (Wang et al.):
//                               output in irrevocable transactions,
//                               Compress inside transactions
//   STM+DeferIO / HTM+DeferIO — output moved to atomic_defer (Listing 7)
//   STM+DeferAll/ HTM+DeferAll — pure Compress also deferred
//   Pthread                   — the original lock-based pipeline
//
// STM = TL2; HTM = the simulated best-effort HTM (capacity-limited, retry
// budget 2, serial fallback). Input is synthetic (see DESIGN.md); size via
// ADTM_DEDUP_MB (default 2 MiB). Expected shape from the paper: the TM
// baselines degrade (serialization in HTM, quiescence drag in STM); DeferIO
// removes the irrevocability collapse; DeferAll is competitive with
// pthread locks (~1.7x over STM baseline, ~2.7x over HTM baseline there).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "dedup/dedup.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"

namespace {

using namespace adtm;         // NOLINT
using namespace adtm::bench;  // NOLINT

struct Series {
  const char* name;
  dedup::SyncMode mode;
  const char* backend;  // registry id; ignored for Pthread
};

double run_one(const std::string& input, const Series& series,
               unsigned workers) {
  stm::Config cfg;
  cfg.backend = series.backend;
  // TSX-like: small capacity so compress-in-tx overflows, 2 retries.
  cfg.htm_capacity = 64;
  cfg.htm_retries = 2;
  stm::init(cfg);

  io::TempDir dir("adtm-fig3a");
  dedup::Options opts;
  opts.mode = series.mode;
  opts.workers = workers;
  opts.fsync_every = 16;
  const dedup::PipelineStats stats =
      dedup::dedup_stream(input, dir.file("out.dd"), opts);
  return stats.seconds;
}

}  // namespace

int main() {
  const std::uint64_t mb = env_u64("ADTM_DEDUP_MB", 4);
  const std::string input = dedup::make_synthetic_input(
      {.total_bytes = static_cast<std::size_t>(mb) << 20,
       .dup_fraction = 0.4,
       .seed = 42});

  const std::vector<Series> series = {
      {"STM", dedup::SyncMode::TmIrrevoc, "tl2"},
      {"HTM", dedup::SyncMode::TmIrrevoc, "htmsim"},
      {"STM+DeferIO", dedup::SyncMode::TmDeferIO, "tl2"},
      {"HTM+DeferIO", dedup::SyncMode::TmDeferIO, "htmsim"},
      {"STM+DeferAll", dedup::SyncMode::TmDeferAll, "tl2"},
      {"HTM+DeferAll", dedup::SyncMode::TmDeferAll, "htmsim"},
      {"Pthread", dedup::SyncMode::Pthread, "tl2"},
  };

  std::printf("fig3a_dedup: input %llu MiB synthetic (ADTM_DEDUP_MB)\n",
              static_cast<unsigned long long>(mb));

  std::vector<std::string> columns;
  for (const auto& s : series) columns.emplace_back(s.name);
  SeriesTable table(columns);
  for (const unsigned threads : {2u, 4u, 8u}) {
    std::vector<double> row;
    for (const auto& s : series) {
      row.push_back(run_one(input, s, threads));
    }
    table.add_row(threads, row);
  }
  table.print(
      "Figure 3(a): dedup execution time (s) vs pipeline worker threads");
  return 0;
}
