// OLTP workload driver: the DBx1000-style harness over the transactional
// B+ tree and skip list.
//
// Two workloads share one engine:
//  * YCSB-style key/value mix (oltp_ycsb): point reads, short range
//    scans, puts and removes over a preloaded ordered map, keys drawn
//    uniform or scrambled-zipfian (common/keygen).
//  * Warehouse-style multi-table transactions (oltp_warehouse): each
//    transaction reserves an order id, writes an *ordered* log line
//    through atomic deferral (txlog::TxLogger — the paper's Listing 3
//    doing real work inside the hot path), updates several stock rows in
//    the B+ tree, and inserts the order into the skip list.
//
// The engine runs every scenario over one algorithm with per-operation
// latency recorded in a LatencyHistogram (p50/p99/p999), optionally with
// open-loop arrival (a target rate; latency is measured from the
// scheduled arrival, so queueing delay counts — no coordinated
// omission). Results carry the obs abort taxonomy for the window plus an
// oracle check: the container's final size must equal the preloaded size
// plus the net of successful inserts and removes, and (warehouse) the
// ordered log must hold exactly one record per committed transaction.
//
// Env knobs (ADTM_OLTP_*): see matrix_from_env() and the README table.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/keygen.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timing.hpp"
#include "containers/btree.hpp"
#include "containers/skiplist.hpp"
#include "io/temp_dir.hpp"
#include "obs/trace.hpp"
#include "stm/api.hpp"
#include "txlog/txlog.hpp"

namespace adtm::oltp {

enum class Dist { Uniform, Zipf };

struct ScenarioConfig {
  // Backend registry id or display name ("tl2", "2PL", ...); "auto" runs
  // the adaptive controller, so one scenario may commit under several
  // backends (finish_scenario sums the taxonomy across all of them).
  std::string backend = "tl2";
  Dist dist = Dist::Uniform;
  double theta = 0.99;          // zipfian skew
  unsigned threads = 1;
  std::uint64_t duration_ms = 400;
  std::uint64_t key_space = std::uint64_t{1} << 20;
  unsigned read_pct = 50;       // point reads
  unsigned scan_pct = 5;        // short range scans; the rest of the mix
                                // splits evenly between put and remove
  std::size_t scan_len = 50;
  std::uint64_t rate = 0;       // open-loop target ops/s over all threads;
                                // 0 = closed loop
  std::uint64_t spin_ns = 0;    // planted per-op slowdown (perf-gate
                                // self-test; see tools/perf_gate.sh)
  std::uint64_t seed = 42;
};

struct ScenarioResult {
  std::uint64_t commits = 0;    // operations completed (one tx each)
  double wall_s = 0.0;
  std::uint64_t p50_ns = 0, p99_ns = 0, p999_ns = 0;
  std::uint64_t obs_commits = 0;
  std::uint64_t obs_aborts = 0;
  // Nonzero abort causes for this window, from the obs taxonomy.
  std::vector<std::pair<std::string, std::uint64_t>> abort_causes;
  bool oracle_ok = false;
};

// The scenario matrix one bench binary runs, resolved from ADTM_OLTP_*.
struct MatrixConfig {
  std::vector<unsigned> threads{1, 2, 4};
  std::uint64_t duration_ms = 400;
  std::uint64_t keys = std::uint64_t{1} << 20;
  double theta = 0.99;
  unsigned read_pct = 50;
  unsigned scan_pct = 5;
  std::uint64_t rate = 0;
  std::uint64_t spin_ns = 0;
  std::string container = "btree";  // ycsb: btree | skiplist
};

MatrixConfig matrix_from_env();

// Enable tracing with the process-exit Chrome writer disabled (bench
// binaries only want the taxonomy aggregates). Idempotent.
void setup_observability();

// "u" / "z99"-style tag for scenario names.
std::string dist_tag(Dist dist, double theta);

// Append one scenario's rows (tput, p50/p99/p999, abort taxonomy) to the
// adtm-bench/v1 report. `scenario` is e.g. "ycsb/bt/z99/t4"; the entry
// label is the algorithm name.
void append_scenario(bench::BenchReport& report, const std::string& scenario,
                     const std::string& algo, const ScenarioResult& res);

// One console row, same data as append_scenario.
void print_scenario(const std::string& scenario, const std::string& algo,
                    const ScenarioResult& res);

namespace detail {

inline void spin_for(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const std::uint64_t until = now_ns() + ns;
  while (now_ns() < until) {
  }
}

struct EngineOut {
  std::uint64_t ops = 0;
  std::int64_t net = 0;
  double wall_s = 0.0;
  std::uint64_t p50 = 0, p99 = 0, p999 = 0;
};

// Run cfg.threads workers for cfg.duration_ms. make_worker(tid) returns a
// callable that performs ONE operation (one transaction) and returns its
// net container-size delta. Latency is per operation; under open-loop
// arrival it is measured from the scheduled arrival instant.
template <typename MakeWorker>
EngineOut run_engine(const ScenarioConfig& cfg, MakeWorker&& make_worker) {
  LatencyHistogram hist;
  std::vector<std::uint64_t> ops(cfg.threads, 0);
  std::vector<std::int64_t> net(cfg.threads, 0);
  std::atomic<bool> go{false};

  // Per-thread open-loop period: each of T threads serves every T-th
  // arrival of the aggregate rate.
  const std::uint64_t period_ns =
      cfg.rate == 0 ? 0
                    : (std::uint64_t{1'000'000'000} * cfg.threads) / cfg.rate;

  std::vector<std::thread> pool;
  pool.reserve(cfg.threads);
  std::atomic<std::uint64_t> start_ns{0};
  for (unsigned t = 0; t < cfg.threads; ++t) {
    pool.emplace_back([&, t] {
      auto work = make_worker(t);
      while (!go.load(std::memory_order_acquire)) {
      }
      const std::uint64_t start = start_ns.load(std::memory_order_relaxed);
      const std::uint64_t end = start + cfg.duration_ms * 1'000'000;
      // Stagger open-loop arrivals across threads.
      std::uint64_t scheduled =
          start + (period_ns / (cfg.threads == 0 ? 1 : cfg.threads)) * t;
      for (;;) {
        std::uint64_t t0 = now_ns();
        if (t0 >= end) break;
        if (period_ns != 0) {
          while (now_ns() < scheduled) {
          }
          t0 = scheduled;
          scheduled += period_ns;
        }
        net[t] += work();
        spin_for(cfg.spin_ns);
        hist.record(now_ns() - t0);
        ++ops[t];
      }
    });
  }
  Timer timer;
  start_ns.store(now_ns(), std::memory_order_relaxed);
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  EngineOut out;
  out.wall_s = timer.elapsed_s();
  for (unsigned t = 0; t < cfg.threads; ++t) {
    out.ops += ops[t];
    out.net += net[t];
  }
  out.p50 = hist.percentile(50);
  out.p99 = hist.percentile(99);
  out.p999 = hist.percentile(99.9);
  return out;
}

// Fold the engine output and the obs window into a ScenarioResult.
ScenarioResult finish_scenario(const ScenarioConfig& cfg,
                               const EngineOut& engine, bool oracle_ok);

// Install cfg.backend and reset the obs window. Call before run_engine.
void begin_scenario(const ScenarioConfig& cfg);

}  // namespace detail

// ---------------------------------------------------------------------------
// YCSB-style runner
// ---------------------------------------------------------------------------

// Container: TxBTree<std::uint64_t, std::uint64_t> or
// TxSkipList<std::uint64_t, std::uint64_t>.
template <typename Container>
class YcsbRunner {
 public:
  // Preloads every even key (50% occupancy) under CGL — direct-mode
  // writes make the million-key preload cheap — in batched transactions.
  YcsbRunner(std::uint64_t key_space, std::uint64_t seed)
      : key_space_(key_space), seed_(seed) {
    stm::Config cgl;
    cgl.backend = "cgl";
    stm::init(cgl);
    constexpr std::uint64_t kBatch = 1024;
    for (std::uint64_t base = 0; base < key_space_; base += 2 * kBatch) {
      stm::atomic([&](stm::Tx& tx) {
        for (std::uint64_t k = base;
             k < base + 2 * kBatch && k < key_space_; k += 2) {
          map_.put(tx, k, k * 3 + 1);
        }
      });
    }
  }

  ScenarioResult run(const ScenarioConfig& cfg) {
    if (cfg.dist == Dist::Zipf &&
        (spec_ == nullptr || spec_->items() != cfg.key_space ||
         spec_->theta() != cfg.theta)) {
      spec_ = std::make_unique<ZipfianSpec>(cfg.key_space, cfg.theta);
    }
    detail::begin_scenario(cfg);
    const std::size_t size_before = map_.size_direct();
    const auto engine = detail::run_engine(cfg, [&](unsigned tid) {
      const std::uint64_t tseed = cfg.seed * 0x9e3779b9ULL + tid * 7919 + 1;
      auto picker = cfg.dist == Dist::Zipf
                        ? KeyPicker(*spec_, tseed)
                        : KeyPicker(cfg.key_space, tseed);
      Xoshiro256 rng(tseed ^ 0xadc0ffee);
      return [this, &cfg, picker, rng]() mutable -> std::int64_t {
        const std::uint64_t key = picker.next();
        const unsigned roll =
            static_cast<unsigned>(rng.next_below(100));
        if (roll < cfg.read_pct) {
          const auto v =
              stm::atomic([&](stm::Tx& tx) { return map_.get(tx, key); });
          sink_ = sink_ + (v.has_value() ? 1 : 0);
          return 0;
        }
        if (roll < cfg.read_pct + cfg.scan_pct) {
          // ~50% occupancy: a window of 2*scan_len keys yields ~scan_len
          // hits.
          const std::uint64_t hi = key + 2 * cfg.scan_len;
          const std::size_t n = stm::atomic([&](stm::Tx& tx) {
            std::uint64_t acc = 0;
            const std::size_t seen = map_.range_scan(
                tx, key, hi, cfg.scan_len,
                [&acc](const std::uint64_t&, const std::uint64_t& v) {
                  acc += v;
                  return true;
                });
            sink_ = sink_ + acc;
            return seen;
          });
          sink_ = sink_ + n;
          return 0;
        }
        const bool is_put = ((roll - cfg.read_pct - cfg.scan_pct) & 1) == 0;
        if (is_put) {
          const bool inserted = stm::atomic(
              [&](stm::Tx& tx) { return map_.put(tx, key, key + roll); });
          return inserted ? 1 : 0;
        }
        const bool removed =
            stm::atomic([&](stm::Tx& tx) { return map_.remove(tx, key); });
        return removed ? -1 : 0;
      };
    });
    const bool oracle_ok =
        static_cast<std::int64_t>(map_.size_direct()) ==
        static_cast<std::int64_t>(size_before) + engine.net;
    return detail::finish_scenario(cfg, engine, oracle_ok);
  }

  std::size_t size_direct() const { return map_.size_direct(); }

 private:
  Container map_;
  std::uint64_t key_space_;
  std::uint64_t seed_;
  std::unique_ptr<ZipfianSpec> spec_;
  // Keeps reads observable without std::atomic traffic per op.
  volatile std::uint64_t sink_ = 0;
};

// ---------------------------------------------------------------------------
// Warehouse-style runner
// ---------------------------------------------------------------------------

// Multi-table transaction: ordered txlog line (atomic deferral), stock
// updates in the B+ tree, order insert into the skip list.
class WarehouseRunner {
 public:
  static constexpr unsigned kItemsPerOrder = 4;

  WarehouseRunner(std::uint64_t items, std::uint64_t seed)
      : items_(items), seed_(seed), dir_("adtm-oltp-wh"),
        logger_(dir_.file("orders.log")) {
    stm::Config cgl;
    cgl.backend = "cgl";
    stm::init(cgl);
    constexpr std::uint64_t kBatch = 1024;
    for (std::uint64_t base = 0; base < items_; base += kBatch) {
      stm::atomic([&](stm::Tx& tx) {
        for (std::uint64_t i = base; i < base + kBatch && i < items_; ++i) {
          stock_.put(tx, i, 100);
        }
      });
    }
  }

  ScenarioResult run(const ScenarioConfig& cfg) {
    if (cfg.dist == Dist::Zipf &&
        (spec_ == nullptr || spec_->items() != items_ ||
         spec_->theta() != cfg.theta)) {
      spec_ = std::make_unique<ZipfianSpec>(items_, cfg.theta);
    }
    detail::begin_scenario(cfg);
    const std::size_t orders_before = orders_.size_direct();
    const std::uint64_t log_before = logger_.records_written();
    const auto engine = detail::run_engine(cfg, [&](unsigned tid) {
      const std::uint64_t tseed = cfg.seed * 0x51ed2701ULL + tid * 131 + 3;
      auto picker = cfg.dist == Dist::Zipf ? KeyPicker(*spec_, tseed)
                                           : KeyPicker(items_, tseed);
      return [this, picker]() mutable -> std::int64_t {
        std::uint64_t items[kItemsPerOrder];
        for (unsigned i = 0; i < kItemsPerOrder; ++i) {
          items[i] = picker.next();
        }
        stm::atomic([&](stm::Tx& tx) {
          // The ordered logger acquires its TxLock at registration, and a
          // contended acquire blocks via stm::retry — so the log line
          // must precede the transaction's first write (under CGL writes
          // are direct and a retry after one is illegal).
          const std::uint64_t oid = next_order_.get(tx);
          logger_.log(tx, "order " + std::to_string(oid) + " item " +
                              std::to_string(items[0]));
          next_order_.set(tx, oid + 1);
          for (unsigned i = 0; i < kItemsPerOrder; ++i) {
            const auto q = stock_.get(tx, items[i]);
            const std::uint64_t have = q.has_value() ? *q : 0;
            // Sell one unit; restock when exhausted.
            stock_.put(tx, items[i], have == 0 ? 100 : have - 1);
          }
          orders_.put(tx, oid, items[0]);
        });
        return 1;  // order ids are unique: every commit inserts one row
      };
    });
    // Both-or-neither at workload level: one ordered log record and one
    // order row per committed transaction, no more, no fewer. Deferred
    // ops run in the committing thread, so after join they are all done.
    const bool oracle_ok =
        orders_.size_direct() ==
            orders_before + static_cast<std::size_t>(engine.net) &&
        logger_.records_written() ==
            log_before + static_cast<std::uint64_t>(engine.ops);
    return detail::finish_scenario(cfg, engine, oracle_ok);
  }

 private:
  std::uint64_t items_;
  std::uint64_t seed_;
  io::TempDir dir_;
  txlog::TxLogger logger_;
  containers::TxBTree<std::uint64_t, std::uint64_t> stock_;
  containers::TxSkipList<std::uint64_t, std::uint64_t> orders_;
  stm::tvar<std::uint64_t> next_order_{0};
  std::unique_ptr<ZipfianSpec> spec_;
};

}  // namespace adtm::oltp
