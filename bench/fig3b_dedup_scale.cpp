// Figure 3(b): dedup at higher thread counts (paper §6.2, 36-core Xeon).
//
// Series, as in the paper: STM (baseline), STM-Best and HTM-Best (output
// and pure functions moved out with atomic_defer), and Pthread. The
// paper's baseline HTM never scales and is omitted there too. Expected
// shape: baselines collapse (the paper reports ~10x), Best variants track
// pthread locks.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "dedup/dedup.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"

namespace {

using namespace adtm;         // NOLINT
using namespace adtm::bench;  // NOLINT

struct Series {
  const char* name;
  dedup::SyncMode mode;
  const char* backend;  // registry id
};

double run_one(const std::string& input, const Series& series,
               unsigned workers) {
  stm::Config cfg;
  cfg.backend = series.backend;
  cfg.htm_capacity = 64;
  cfg.htm_retries = 2;
  stm::init(cfg);

  io::TempDir dir("adtm-fig3b");
  dedup::Options opts;
  opts.mode = series.mode;
  opts.workers = workers;
  opts.fsync_every = 16;
  const dedup::PipelineStats stats =
      dedup::dedup_stream(input, dir.file("out.dd"), opts);
  return stats.seconds;
}

}  // namespace

int main() {
  const std::uint64_t mb = env_u64("ADTM_DEDUP_MB", 4);
  const std::string input = dedup::make_synthetic_input(
      {.total_bytes = static_cast<std::size_t>(mb) << 20,
       .dup_fraction = 0.4,
       .seed = 1234});

  const std::vector<Series> series = {
      {"HTM-Best", dedup::SyncMode::TmDeferAll, "htmsim"},
      {"STM-Best", dedup::SyncMode::TmDeferAll, "tl2"},
      {"Pthread", dedup::SyncMode::Pthread, "tl2"},
      {"STM", dedup::SyncMode::TmIrrevoc, "tl2"},
  };

  std::printf("fig3b_dedup_scale: input %llu MiB synthetic (ADTM_DEDUP_MB)\n",
              static_cast<unsigned long long>(mb));

  std::vector<std::string> columns;
  for (const auto& s : series) columns.emplace_back(s.name);
  SeriesTable table(columns);
  for (const unsigned threads : {4u, 8u, 16u, 32u}) {
    std::vector<double> row;
    for (const auto& s : series) {
      row.push_back(run_one(input, s, threads));
    }
    table.add_row(threads, row);
  }
  table.print(
      "Figure 3(b): dedup execution time (s) at higher thread counts");
  return 0;
}
