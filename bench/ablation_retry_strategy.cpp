// Ablation: retry() strategy — wait-for-change vs the paper's
// abort-and-immediately-re-execute.
//
// §6.1 attributes part of defer's overhead at high thread counts to the
// retry workaround: "aborting and immediately retrying, instead of
// de-scheduling the transaction until it can make progress. Until the C++
// TMTS includes efficient retry, this cost is unavoidable." Our runtime
// has both strategies; this bench quantifies the difference on the
// workload where retry dominates: many threads funneling through one
// TxLock-protected deferred operation.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "common/stats.hpp"
#include "defer/atomic_defer.hpp"
#include "io/defer_file.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"

namespace {

using namespace adtm;         // NOLINT
using namespace adtm::bench;  // NOLINT

struct Result {
  double seconds;
  std::uint64_t retries;
};

Result run_one(bool retry_wait, unsigned threads, std::uint64_t total_ops) {
  stm::Config cfg;
  cfg.backend = "tl2";
  cfg.retry_wait = retry_wait;
  stm::init(cfg);
  stats().reset();

  io::TempDir dir("adtm-retry");
  io::DeferFile file(dir.file("f"));  // a single contended deferrable
  const std::uint64_t per_thread = total_ops / threads;
  const double secs = timed_threads(threads, [&](unsigned t) {
    // A fat record keeps the lock held long enough that other threads'
    // acquires actually hit it (the paper's long-running deferred op).
    const std::string content(8192, static_cast<char>('a' + t));
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      stm::atomic([&](stm::Tx& tx) {
        atomic_defer(tx, [&file, &content] {
          file.append_with_length(content);
        }, file);
      });
    }
  });
  return {secs, stats().total(Counter::TxRetry)};
}

}  // namespace

int main() {
  const std::uint64_t ops = env_u64("ADTM_RETRY_OPS", 4000);
  std::printf(
      "ablation_retry_strategy: %llu deferred appends to ONE file "
      "(retry-heavy)\n",
      static_cast<unsigned long long>(ops));
  std::printf("%8s  %18s  %12s  %18s  %12s\n", "threads", "wait: time(s)",
              "retries", "immediate: time(s)", "retries");
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const Result wait = run_one(true, threads, ops);
    const Result imm = run_one(false, threads, ops);
    std::printf("%8u  %18.4f  %12llu  %18.4f  %12llu\n", threads,
                wait.seconds, static_cast<unsigned long long>(wait.retries),
                imm.seconds, static_cast<unsigned long long>(imm.retries));
  }
  return 0;
}
