// Component bench: throughput of the dedup substrate kernels (SHA-1,
// Rabin chunking, LZSS) — sanity numbers for interpreting Figure 3.
#include <benchmark/benchmark.h>

#include <string>

#include "dedup/dedup.hpp"
#include "stm/api.hpp"
#include "stm/tbytes.hpp"

namespace {

using namespace adtm;  // NOLINT

const std::string& sample_input() {
  static const std::string input = dedup::make_synthetic_input(
      {.total_bytes = 1 << 20, .dup_fraction = 0.3, .seed = 77});
  return input;
}

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

void BM_Sha1(benchmark::State& state) {
  const std::string& input = sample_input();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedup::sha1(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_Sha1);

void BM_RabinChunking(benchmark::State& state) {
  const std::string& input = sample_input();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedup::chunk_lengths(as_bytes(input)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_RabinChunking);

void BM_LzssCompress(benchmark::State& state) {
  const std::string& input = sample_input();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedup::lzss_compress(as_bytes(input)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_LzssCompress);

void BM_LzssDecompress(benchmark::State& state) {
  const std::string& input = sample_input();
  const auto compressed = dedup::lzss_compress(as_bytes(input));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedup::lzss_decompress(compressed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_LzssDecompress);

void BM_TbytesInstrumentedRead(benchmark::State& state) {
  // The instrumented-read cost model: reading a chunk through the
  // transactional path vs directly (the STM overhead on Compress).
  stm::init({.backend = "tl2"});
  const std::string chunk = sample_input().substr(0, 8192);
  stm::tbytes data{as_bytes(chunk)};
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) {
      benchmark::DoNotOptimize(data.read(tx));
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_TbytesInstrumentedRead);

void BM_TbytesDirectRead(benchmark::State& state) {
  const std::string chunk = sample_input().substr(0, 8192);
  stm::tbytes data{as_bytes(chunk)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(data.read_direct());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_TbytesDirectRead);

}  // namespace

BENCHMARK_MAIN();
