// Ablation: the cost of quiescence (privatization safety).
//
// The paper's Figure 1 story: a writer's commit must wait for every
// concurrently active transaction, so one long-running reader drags every
// writer. This bench measures writer throughput with and without
// quiescence while long read-only transactions run — the mechanism that
// makes deferring dedup's Compress profitable for STM.
//
// Disabling quiescence is unsafe for programs that privatize (see
// DESIGN.md); the runtime exposes the switch precisely for this ablation.
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "common/stats.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace {

using namespace adtm;  // NOLINT

double writer_ops_per_sec(bool quiescence, std::uint64_t writer_ops,
                          std::size_t reader_footprint) {
  stm::Config cfg;
  cfg.backend = "tl2";
  cfg.quiescence = quiescence;
  stm::init(cfg);
  stats().reset();

  // Long read-only transactions: scan a large array of tvars.
  std::vector<std::unique_ptr<stm::tvar<long>>> big;
  for (std::size_t i = 0; i < reader_footprint; ++i) {
    big.push_back(std::make_unique<stm::tvar<long>>(1));
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const long sum = stm::atomic([&](stm::Tx& tx) {
        long s = 0;
        for (auto& v : big) s += v->get(tx);
        return s;
      });
      if (sum < 0) std::abort();  // keep the value alive
    }
  });

  stm::tvar<long> counter{0};
  Timer timer;
  for (std::uint64_t i = 0; i < writer_ops; ++i) {
    stm::atomic([&](stm::Tx& tx) { counter.set(tx, counter.get(tx) + 1); });
  }
  const double secs = timer.elapsed_s();
  stop.store(true);
  reader.join();
  return static_cast<double>(writer_ops) / secs;
}

}  // namespace

double median3(bool quiescence, std::uint64_t ops, std::size_t footprint) {
  std::array<double, 3> runs{};
  for (auto& r : runs) r = writer_ops_per_sec(quiescence, ops, footprint);
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

int main() {
  const std::uint64_t ops = env_u64("ADTM_ABLATION_OPS", 20000);
  std::printf(
      "ablation_quiesce: writer throughput vs one long-running reader "
      "(median of 3)\n");
  std::printf("%18s  %16s  %16s  %10s\n", "reader_footprint",
              "quiesce on(op/s)", "quiesce off(op/s)", "ratio");
  for (const std::size_t footprint : {256u, 2048u, 16384u}) {
    const double on = median3(true, ops, footprint);
    const double off = median3(false, ops, footprint);
    std::printf("%18zu  %16.0f  %16.0f  %9.2fx\n", footprint, on, off,
                off / on);
  }
  return 0;
}
