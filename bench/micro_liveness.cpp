// Component bench: cost of the liveness layer on the fast paths — timed
// lock/subscribe variants vs their untimed forms, contention-manager
// bookkeeping, watchdog scans over a quiet table, and jittered backoff.
// Liveness machinery must be (near) free when nothing is stuck.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/backoff.hpp"
#include "common/stats.hpp"
#include "common/timing.hpp"
#include "defer/txlock.hpp"
#include "liveness/contention.hpp"
#include "liveness/watchdog.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace {

using namespace adtm;  // NOLINT
using namespace std::chrono_literals;

void init_tl2() {
  stm::Config cfg;
  cfg.backend = "tl2";
  stm::init(cfg);
}

void BM_AcquireReleaseUntimed(benchmark::State& state) {
  // Baseline: the pre-liveness acquire path, for comparison below.
  init_tl2();
  TxLock lock;
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) {
      lock.acquire(tx);
      lock.release(tx);
    });
  }
}
BENCHMARK(BM_AcquireReleaseUntimed);

void BM_AcquireReleaseTimed(benchmark::State& state) {
  // Timed variant on an uncontended lock: the deadline is carried but never
  // consulted, so this should track the untimed baseline.
  init_tl2();
  TxLock lock;
  for (auto _ : state) {
    const Deadline deadline = Deadline::at(now_ns() + 1'000'000'000ull);
    stm::atomic([&](stm::Tx& tx) {
      lock.acquire(tx, deadline);
      lock.release(tx);
    });
  }
}
BENCHMARK(BM_AcquireReleaseTimed);

void BM_SubscribeTimedUnheld(benchmark::State& state) {
  init_tl2();
  TxLock lock;
  for (auto _ : state) {
    const Deadline deadline = Deadline::at(now_ns() + 1'000'000'000ull);
    stm::atomic([&](stm::Tx& tx) { lock.subscribe(tx, deadline); });
  }
}
BENCHMARK(BM_SubscribeTimedUnheld);

void BM_AcquireForTimeoutOnContended(benchmark::State& state) {
  // The slow path: a short timed wait on a lock held by another thread —
  // measures one park/timeout round trip including wait-edge publication.
  init_tl2();
  TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> done{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true);
    while (!done.load()) std::this_thread::yield();
    lock.release();
  });
  while (!held.load()) std::this_thread::yield();
  for (auto _ : state) {
    bool ok = lock.acquire(Deadline(50us));
    benchmark::DoNotOptimize(ok);
  }
  done.store(true);
  holder.join();
}
BENCHMARK(BM_AcquireForTimeoutOnContended);

void BM_ContentionManagerBookkeeping(benchmark::State& state) {
  // Per-transaction CM cost: one abort + escalate check + commit.
  liveness::ContentionManager cm;
  for (auto _ : state) {
    cm.on_conflict_abort();
    benchmark::DoNotOptimize(cm.should_escalate(64));
    cm.on_commit();
  }
}
BENCHMARK(BM_ContentionManagerBookkeeping);

void BM_WatchdogScanQuietTable(benchmark::State& state) {
  // A scan over a table with no stalled threads: the steady-state cost the
  // background sampler pays every interval.
  init_tl2();
  liveness::Watchdog wd;
  liveness::WatchdogOptions opts;
  opts.sink = nullptr;
  wd.configure(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wd.scan_once());
  }
}
BENCHMARK(BM_WatchdogScanQuietTable);

void BM_BackoffNextSpinsAndReset(benchmark::State& state) {
  // Jittered backoff bookkeeping: a full escalation ladder plus a reset.
  Backoff bo(4, 4096);
  for (auto _ : state) {
    for (int i = 0; i < 12; ++i) benchmark::DoNotOptimize(bo.next_spins());
    bo.reset();
  }
}
BENCHMARK(BM_BackoffNextSpinsAndReset);

void BM_TxCommitUnprivileged(benchmark::State& state) {
  // Baseline for the arbitration benches: a plain uncontended write
  // transaction with the starvation ladder armed but never crossed.
  init_tl2();
  stm::tvar<int> x{0};
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
  }
}
BENCHMARK(BM_TxCommitUnprivileged);

void BM_TxCommitPrivileged(benchmark::State& state) {
  // The same transaction run while holding the priority token: measures
  // what rung 1 of the ladder costs when there is no conflict to win —
  // begin() raises the attempt shield, commit spends the karma.
  init_tl2();
  stm::tvar<int> x{0};
  auto& cm = liveness::contention();
  for (auto _ : state) {
    state.PauseTiming();
    cm.reset();
    for (int i = 0; i < 4; ++i) cm.on_conflict_abort();
    cm.try_acquire_priority(4);
    state.ResumeTiming();
    stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
  }
  cm.reset();
}
BENCHMARK(BM_TxCommitPrivileged);

void BM_PriorityTokenTakeAndRelease(benchmark::State& state) {
  // The rung-1 handoff itself: streak prime, CAS take, release.
  auto& cm = liveness::contention();
  cm.reset();
  for (auto _ : state) {
    for (int i = 0; i < 4; ++i) cm.on_conflict_abort();
    benchmark::DoNotOptimize(cm.try_acquire_priority(4));
    cm.release_priority();
    cm.on_commit();
  }
  cm.reset();
}
BENCHMARK(BM_PriorityTokenTakeAndRelease);

void BM_LatencyHistogramRecord(benchmark::State& state) {
  // One wait-free histogram insert: the per-sample cost of lock stats.
  LatencyHistogram h;
  std::uint64_t ns = 1;
  for (auto _ : state) {
    h.record(ns);
    ns = (ns * 2) | 1;  // walk the buckets
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_LatencyHistogramRecord);

void BM_LockStatsDisabledRecord(benchmark::State& state) {
  // The price every contended acquire pays when ADTM_LOCK_STATS is off:
  // must be one relaxed load and out.
  LockStatsRegistry reg;
  int key;
  for (auto _ : state) {
    reg.record_wait(&key, 1'000);
  }
  benchmark::DoNotOptimize(reg.wait_count(&key));
}
BENCHMARK(BM_LockStatsDisabledRecord);

void BM_LockStatsEnabledRecord(benchmark::State& state) {
  // Enabled path: hash, claim-once probe, histogram insert.
  LockStatsRegistry reg;
  reg.set_enabled(true);
  int key;
  for (auto _ : state) {
    reg.record_wait(&key, 1'000);
  }
  benchmark::DoNotOptimize(reg.wait_count(&key));
}
BENCHMARK(BM_LockStatsEnabledRecord);

void BM_LockStatsInstrumentedAcquire(benchmark::State& state) {
  // End-to-end: uncontended TxLock acquire/release with lock stats on —
  // the hold-span on_commit hooks ride the transaction.
  init_tl2();
  lock_stats().reset();
  lock_stats().set_enabled(true);
  TxLock lock;
  for (auto _ : state) {
    lock.acquire();
    lock.release();
  }
  lock_stats().set_enabled(false);
  lock_stats().reset();
}
BENCHMARK(BM_LockStatsInstrumentedAcquire);

}  // namespace

BENCHMARK_MAIN();
