// Component bench: the per-transaction cost of atomic_defer — the
// "constant overhead per transaction to support rollback" plus lambda and
// lock management that the paper measures in Figure 2(a).
#include <benchmark/benchmark.h>

#include "bench/backend_bench.hpp"
#include "defer/atomic_defer.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace {

using namespace adtm;  // NOLINT

using adtm::bench::AllBackends;

void init_algo(const benchmark::State& state) {
  adtm::bench::init_backend(state);
}

void set_label(benchmark::State& state) {
  adtm::bench::set_backend_label(state);
}

void BM_PlainTx(benchmark::State& state) {
  init_algo(state);
  stm::tvar<long> x{0};
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
  }
  set_label(state);
}
BENCHMARK(BM_PlainTx)->Apply(AllBackends);

void BM_TxPlusNoopDefer(benchmark::State& state) {
  // The paper's "pass nil" variant: deferral machinery, no locks.
  init_algo(state);
  stm::tvar<long> x{0};
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) {
      x.set(tx, x.get(tx) + 1);
      atomic_defer(tx, [] { benchmark::ClobberMemory(); });
    });
  }
  set_label(state);
}
BENCHMARK(BM_TxPlusNoopDefer)->Apply(AllBackends);

void BM_TxPlusDeferOneObject(benchmark::State& state) {
  init_algo(state);
  stm::tvar<long> x{0};
  Deferrable obj;
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) {
      // Register (acquire obj's TxLock) before the tvar write: a contended
      // acquire retries, which is only legal before writes.
      atomic_defer(tx, [] { benchmark::ClobberMemory(); }, obj);
      x.set(tx, x.get(tx) + 1);
    });
  }
  set_label(state);
}
BENCHMARK(BM_TxPlusDeferOneObject)->Apply(AllBackends);

void BM_TxPlusDeferThreeObjects(benchmark::State& state) {
  init_algo(state);
  stm::tvar<long> x{0};
  Deferrable a, b, c;
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) {
      // Same ordering rule as above: acquire all three locks, then write.
      atomic_defer(tx, [] { benchmark::ClobberMemory(); }, a, b, c);
      x.set(tx, x.get(tx) + 1);
    });
  }
  set_label(state);
}
BENCHMARK(BM_TxPlusDeferThreeObjects)->Apply(AllBackends);

void BM_SubscribeGuardedAccess(benchmark::State& state) {
  // Cost of the per-accessor subscribe guard on a deferrable object.
  init_algo(state);
  struct Cell : Deferrable {
    stm::tvar<long> v{0};
  } cell;
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) {
      cell.subscribe(tx);
      cell.v.set(tx, cell.v.get(tx) + 1);
    });
  }
  set_label(state);
}
BENCHMARK(BM_SubscribeGuardedAccess)->Apply(AllBackends);

}  // namespace

BENCHMARK_MAIN();
