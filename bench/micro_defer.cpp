// Component bench: the per-transaction cost of atomic_defer — the
// "constant overhead per transaction to support rollback" plus lambda and
// lock management that the paper measures in Figure 2(a).
#include <benchmark/benchmark.h>

#include "defer/atomic_defer.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace {

using namespace adtm;  // NOLINT

void init_algo(const benchmark::State& state) {
  stm::Config cfg;
  cfg.algo = static_cast<stm::Algo>(state.range(0));
  stm::init(cfg);
}

void set_label(benchmark::State& state) {
  state.SetLabel(stm::algo_name(static_cast<stm::Algo>(state.range(0))));
}

void BM_PlainTx(benchmark::State& state) {
  init_algo(state);
  stm::tvar<long> x{0};
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
  }
  set_label(state);
}
BENCHMARK(BM_PlainTx)->DenseRange(0, 4);

void BM_TxPlusNoopDefer(benchmark::State& state) {
  // The paper's "pass nil" variant: deferral machinery, no locks.
  init_algo(state);
  stm::tvar<long> x{0};
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) {
      x.set(tx, x.get(tx) + 1);
      atomic_defer(tx, [] { benchmark::ClobberMemory(); });
    });
  }
  set_label(state);
}
BENCHMARK(BM_TxPlusNoopDefer)->DenseRange(0, 4);

void BM_TxPlusDeferOneObject(benchmark::State& state) {
  init_algo(state);
  stm::tvar<long> x{0};
  Deferrable obj;
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) {
      x.set(tx, x.get(tx) + 1);
      atomic_defer(tx, [] { benchmark::ClobberMemory(); }, obj);
    });
  }
  set_label(state);
}
BENCHMARK(BM_TxPlusDeferOneObject)->DenseRange(0, 4);

void BM_TxPlusDeferThreeObjects(benchmark::State& state) {
  init_algo(state);
  stm::tvar<long> x{0};
  Deferrable a, b, c;
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) {
      x.set(tx, x.get(tx) + 1);
      atomic_defer(tx, [] { benchmark::ClobberMemory(); }, a, b, c);
    });
  }
  set_label(state);
}
BENCHMARK(BM_TxPlusDeferThreeObjects)->DenseRange(0, 4);

void BM_SubscribeGuardedAccess(benchmark::State& state) {
  // Cost of the per-accessor subscribe guard on a deferrable object.
  init_algo(state);
  struct Cell : Deferrable {
    stm::tvar<long> v{0};
  } cell;
  for (auto _ : state) {
    stm::atomic([&](stm::Tx& tx) {
      cell.subscribe(tx);
      cell.v.set(tx, cell.v.get(tx) + 1);
    });
  }
  set_label(state);
}
BENCHMARK(BM_SubscribeGuardedAccess)->DenseRange(0, 4);

}  // namespace

BENCHMARK_MAIN();
