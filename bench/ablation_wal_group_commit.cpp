// Ablation: group commit via atomic deferral (the §5.2 generalization).
//
// Concurrent appenders stage records post-commit and one deferred
// operation drains the staged prefix with a single write+fsync. Reports
// how many fsyncs N appends actually cost as threads grow — the combining
// factor is the win.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"
#include "wal/wal.hpp"

namespace {

using namespace adtm;         // NOLINT
using namespace adtm::bench;  // NOLINT

struct Result {
  double seconds;
  std::uint64_t fsyncs;
};

Result run_one(unsigned threads, std::uint64_t per_thread) {
  io::TempDir dir("adtm-walbench");
  wal::WriteAheadLog log(dir.file("wal.log"));
  const double secs = timed_threads(threads, [&](unsigned t) {
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      log.append("record from thread " + std::to_string(t));
    }
  });
  log.flush();
  return {secs, log.fsync_count()};
}

}  // namespace

int main() {
  stm::Config cfg;
  cfg.backend = "tl2";
  stm::init(cfg);

  const std::uint64_t per_thread = env_u64("ADTM_WAL_OPS", 1000);
  std::printf(
      "ablation_wal_group_commit: %llu durable appends per thread\n",
      static_cast<unsigned long long>(per_thread));
  std::printf("%8s  %10s  %10s  %14s  %16s\n", "threads", "time(s)",
              "fsyncs", "records/fsync", "appends/sec");
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const Result r = run_one(threads, per_thread);
    const double total = static_cast<double>(threads) * per_thread;
    std::printf("%8u  %10.4f  %10llu  %14.2f  %16.0f\n", threads, r.seconds,
                static_cast<unsigned long long>(r.fsyncs),
                total / static_cast<double>(r.fsyncs), total / r.seconds);
  }
  return 0;
}
