// Component bench: overload-control hot and cold paths.
//
// The overload layer's contract is "invisible until something degrades":
// a closed breaker on the I/O path and a healthy admission gate at the
// front door must cost nothing measurable, and the shed path must be
// cheap precisely when the process can least afford work. Four probes:
//
//   baseline_loop    the measurement loop with no health calls at all
//   breaker_closed   allow() + record_success() on a closed breaker
//   gate_healthy     AdmissionGate::enter on a Healthy process
//   shed_path        AdmissionGate::enter under Critical (throw + catch)
//   healthz_snapshot monitor().healthz() with registered breakers
//
// Per-op nanoseconds go to the adtm-bench/v1 run file —
// BENCH_health.json unless ADTM_BENCH_OUT says otherwise.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.hpp"
#include "common/timing.hpp"
#include "health/breaker.hpp"
#include "health/gate.hpp"
#include "health/health.hpp"

namespace {

using namespace adtm;  // NOLINT

constexpr std::uint64_t kIters = 2'000'000;
constexpr std::uint64_t kSlowIters = 200'000;

// Keep the measured calls observable so the loop cannot fold away.
volatile std::uint64_t g_sink = 0;

double per_op_ns(double seconds, std::uint64_t iters) {
  return seconds * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main() {
  ::setenv("ADTM_BENCH_OUT", "BENCH_health.json", /*overwrite=*/0);
  bench::BenchReport report("micro_health");
  health::monitor().reset();

  // --- baseline: the empty loop --------------------------------------
  double baseline;
  {
    Timer t;
    for (std::uint64_t i = 0; i < kIters; ++i) g_sink = g_sink + i;
    baseline = per_op_ns(t.elapsed_s(), kIters);
    report.add("baseline_loop", baseline, kIters);
  }

  // --- closed-breaker hot path ----------------------------------------
  // An *enabled* breaker (threshold > 0) that never trips: the per-op
  // cost over baseline is the number the DESIGN doc claims is <= noise.
  double closed;
  {
    health::BreakerOptions opts;
    opts.failure_threshold = 4;
    opts.cooldown_ms = 100;
    opts.max_cooldown_ms = 1000;
    opts.name = "bench.closed";
    opts.report_to_monitor = false;
    health::CircuitBreaker breaker(std::move(opts));
    Timer t;
    for (std::uint64_t i = 0; i < kIters; ++i) {
      if (breaker.allow()) {
        breaker.record_success();
        g_sink = g_sink + i;
      }
    }
    closed = per_op_ns(t.elapsed_s(), kIters);
    report.add("breaker_closed", closed, kIters);
  }

  // --- healthy admission gate ------------------------------------------
  double healthy;
  {
    health::AdmissionGate gate(health::monitor());
    Timer t;
    for (std::uint64_t i = 0; i < kIters; ++i) {
      const auto guard = gate.enter("bench.front-door");
      g_sink = g_sink + static_cast<std::uint64_t>(guard.admission());
    }
    healthy = per_op_ns(t.elapsed_s(), kIters);
    report.add("gate_healthy", healthy, kIters);
  }

  // --- shed path under Critical ----------------------------------------
  // Two signals force Critical; every enter throws Overloaded. This is
  // the full shed latency a front-door caller pays: decide + construct +
  // throw + catch — no TM work, no tvar reads, no deferred ops.
  double shed;
  {
    int queue_a = 0;
    health::monitor().set_queue_pressure(&queue_a, true);
    health::monitor().set_watchdog_stall(true);
    health::AdmissionGate gate(health::monitor());
    std::uint64_t caught = 0;
    Timer t;
    for (std::uint64_t i = 0; i < kSlowIters; ++i) {
      try {
        const auto guard = gate.enter("bench.front-door");
        g_sink = g_sink + static_cast<std::uint64_t>(guard.admission());
      } catch (const health::Overloaded&) {
        ++caught;
      }
    }
    shed = per_op_ns(t.elapsed_s(), kSlowIters);
    report.add("shed_path", shed, kSlowIters);
    if (caught != kSlowIters) {
      std::fprintf(stderr, "micro_health: shed path admitted work\n");
      return 1;
    }
    health::monitor().reset();
  }

  // --- healthz snapshot -------------------------------------------------
  double snapshot;
  {
    health::BreakerOptions opts;
    opts.failure_threshold = 4;
    opts.name = "bench.snap";
    health::CircuitBreaker b1(opts), b2(opts), b3(opts);
    Timer t;
    for (std::uint64_t i = 0; i < kSlowIters; ++i) {
      g_sink = g_sink + health::monitor().healthz().breakers.size();
    }
    snapshot = per_op_ns(t.elapsed_s(), kSlowIters);
    report.add("healthz_snapshot", snapshot, kSlowIters);
  }
  health::monitor().reset();

  std::printf("%-18s %10.2f ns/op\n", "baseline_loop", baseline);
  std::printf("%-18s %10.2f ns/op  (closed-breaker overhead %.2f ns)\n",
              "breaker_closed", closed, closed - baseline);
  std::printf("%-18s %10.2f ns/op\n", "gate_healthy", healthy);
  std::printf("%-18s %10.2f ns/op\n", "shed_path", shed);
  std::printf("%-18s %10.2f ns/op\n", "healthz_snapshot", snapshot);
  std::printf("(sink %llu)\n", static_cast<unsigned long long>(g_sink));

  if (!report.write()) {
    std::fprintf(stderr, "micro_health: bench report write failed\n");
    return 1;
  }
  return 0;
}
