// Ablation: two ways to order deferred output on one descriptor.
//
//   lock-ordered   — TxLogger: the descriptor's TxLock is held through
//                    each deferred write (paper §5.1); writers to the
//                    same descriptor serialize on the lock.
//   ticket-ordered — OrderedWriter (Mimir-style, Zhou & Spear 2016):
//                    transactions only conflict on a ticket counter; the
//                    waiting happens post-commit, outside transactions.
//
// Measures total time for T threads to emit a fixed number of records
// each; both produce a totally ordered file.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "defer/ordered_writer.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"
#include "txlog/txlog.hpp"

namespace {

using namespace adtm;         // NOLINT
using namespace adtm::bench;  // NOLINT

double run_lock_ordered(unsigned threads, std::uint64_t per_thread) {
  io::TempDir dir("adtm-ord");
  txlog::TxLogger logger(dir.file("log"));
  return timed_threads(threads, [&](unsigned t) {
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      stm::atomic([&](stm::Tx& tx) {
        logger.log(tx, "t" + std::to_string(t) + " i" + std::to_string(i));
      });
    }
  });
}

double run_ticket_ordered(unsigned threads, std::uint64_t per_thread) {
  io::TempDir dir("adtm-ord");
  OrderedWriter writer(dir.file("log"));
  const double secs = timed_threads(threads, [&](unsigned t) {
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      stm::atomic([&](stm::Tx& tx) {
        writer.write(tx, "t" + std::to_string(t) + " i" + std::to_string(i));
      });
    }
  });
  writer.drain();
  return secs;
}

}  // namespace

int main() {
  stm::Config cfg;
  cfg.backend = "tl2";
  stm::init(cfg);

  const std::uint64_t per_thread = env_u64("ADTM_ORDERING_OPS", 2000);
  std::printf(
      "ablation_output_ordering: %llu records/thread, totally ordered "
      "output\n",
      static_cast<unsigned long long>(per_thread));

  SeriesTable table({"lock-ordered", "ticket-ordered"});
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    table.add_row(threads, {run_lock_ordered(threads, per_thread),
                            run_ticket_ordered(threads, per_thread)});
  }
  table.print("deferred-output ordering strategies: time (s)");
  return 0;
}
