#include "bench/oltp_driver.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/env.hpp"
#include "common/runtime_config.hpp"
#include "stm/backend.hpp"
#include "stm/config.hpp"

namespace adtm::oltp {

MatrixConfig matrix_from_env() {
  MatrixConfig m;
  // "1,2,4"-style list; bad tokens are skipped.
  const std::string threads = env_str("ADTM_OLTP_THREADS", "1,2,4");
  std::vector<unsigned> parsed;
  std::stringstream ss(threads);
  for (std::string tok; std::getline(ss, tok, ',');) {
    const unsigned long v = std::strtoul(tok.c_str(), nullptr, 10);
    if (v >= 1 && v <= 256) parsed.push_back(static_cast<unsigned>(v));
  }
  if (!parsed.empty()) m.threads = std::move(parsed);
  m.duration_ms = env_u64("ADTM_OLTP_DURATION_MS", m.duration_ms);
  m.keys = env_u64("ADTM_OLTP_KEYS", m.keys);
  const std::string theta = env_str("ADTM_OLTP_THETA", "");
  if (!theta.empty()) {
    const double v = std::strtod(theta.c_str(), nullptr);
    if (v > 0.0 && v < 1.0) m.theta = v;
  }
  m.read_pct =
      static_cast<unsigned>(env_u64("ADTM_OLTP_READ_PCT", m.read_pct));
  m.scan_pct =
      static_cast<unsigned>(env_u64("ADTM_OLTP_SCAN_PCT", m.scan_pct));
  if (m.read_pct > 100) m.read_pct = 100;
  if (m.scan_pct > 100 - m.read_pct) m.scan_pct = 100 - m.read_pct;
  m.rate = env_u64("ADTM_OLTP_RATE", m.rate);
  m.spin_ns = env_u64("ADTM_OLTP_SPIN_NS", m.spin_ns);
  m.container = env_str("ADTM_OLTP_CONTAINER", m.container);
  return m;
}

void setup_observability() {
  // Tracing on for the taxonomy aggregates, but no Chrome trace dumped at
  // process exit — the bench output is the adtm-bench/v1 report.
  RuntimeConfig cfg = runtime_config();
  cfg.trace = true;
  cfg.trace_out = "";
  configure(cfg);
  obs::enable();
}

std::string dist_tag(Dist dist, double theta) {
  if (dist == Dist::Uniform) return "u";
  // 0.99 -> "z99", 0.8 -> "z80".
  const int hundredths = static_cast<int>(theta * 100.0 + 0.5);
  return "z" + std::to_string(hundredths);
}

namespace detail {

void begin_scenario(const ScenarioConfig& cfg) {
  stm::Config sc;
  sc.backend = cfg.backend;
  stm::init(sc);
  obs::clear();
}

ScenarioResult finish_scenario(const ScenarioConfig& cfg,
                               const EngineOut& engine, bool oracle_ok) {
  ScenarioResult res;
  res.commits = engine.ops;
  res.wall_s = engine.wall_s;
  res.p50_ns = engine.p50;
  res.p99_ns = engine.p99;
  res.p999_ns = engine.p999;
  res.oracle_ok = oracle_ok;

  // "auto" commits under whichever backends the controller picked, so the
  // taxonomy for that scenario is the sum over every per-backend row.
  const stm::Backend* b = stm::find_backend(cfg.backend);
  const bool adaptive = b == nullptr;
  std::uint64_t causes[static_cast<std::size_t>(obs::AbortCause::kCount)] = {};
  const obs::RunSummary sum = obs::summary();
  for (const auto& a : sum.algos) {
    if (!adaptive && a.algo != b->name) continue;
    res.obs_commits += a.commits;
    res.obs_aborts += a.total_aborts;
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(obs::AbortCause::kCount); ++c) {
      causes[c] += a.aborts[c];
    }
  }
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(obs::AbortCause::kCount); ++c) {
    if (causes[c] == 0) continue;
    res.abort_causes.emplace_back(
        obs::abort_cause_name(static_cast<obs::AbortCause>(c)), causes[c]);
  }
  return res;
}

}  // namespace detail

void append_scenario(bench::BenchReport& report, const std::string& scenario,
                     const std::string& algo, const ScenarioResult& res) {
  const double wall_ns = res.wall_s * 1e9;
  // Throughput row: iterations / real_ns is ops per ns; the gate compares
  // that ratio, so both fields matter.
  report.add(scenario + "/tput", wall_ns, res.commits, algo);
  // Latency rows: the percentile is the time field, one "iteration".
  report.add(scenario + "/p50", static_cast<double>(res.p50_ns), 1, algo);
  report.add(scenario + "/p99", static_cast<double>(res.p99_ns), 1, algo);
  report.add(scenario + "/p999", static_cast<double>(res.p999_ns), 1, algo);
  // Abort taxonomy: counts in the iterations field (real_ns carries the
  // wall time so rates are reconstructible).
  report.add(scenario + "/aborts", wall_ns, res.obs_aborts, algo);
  for (const auto& [cause, count] : res.abort_causes) {
    report.add(scenario + "/abort/" + cause, wall_ns, count, algo);
  }
}

void print_scenario(const std::string& scenario, const std::string& algo,
                    const ScenarioResult& res) {
  const double tput =
      res.wall_s > 0.0 ? static_cast<double>(res.commits) / res.wall_s : 0.0;
  std::printf(
      "%-18s %-7s %9.0f ops/s  p50 %7llu ns  p99 %8llu ns  p999 %8llu ns  "
      "aborts %llu%s%s\n",
      scenario.c_str(), algo.c_str(), tput,
      static_cast<unsigned long long>(res.p50_ns),
      static_cast<unsigned long long>(res.p99_ns),
      static_cast<unsigned long long>(res.p999_ns),
      static_cast<unsigned long long>(res.obs_aborts),
      res.oracle_ok ? "" : "  ORACLE-MISMATCH",
      // Epilogues may run bookkeeping transactions (TxLock release), so
      // obs may legitimately exceed the driver count — never undershoot.
      res.obs_commits >= res.commits ? "" : "  (obs-commit-drift)");
}

}  // namespace adtm::oltp
