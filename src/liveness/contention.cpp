#include "liveness/contention.hpp"

namespace adtm::liveness {

ContentionManager& contention() noexcept {
  static ContentionManager manager;
  return manager;
}

}  // namespace adtm::liveness
