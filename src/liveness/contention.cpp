#include "liveness/contention.hpp"

namespace adtm::liveness {

ContentionManager& contention() noexcept {
  static ContentionManager manager;
  // A thread that dies while holding the priority token would deny every
  // other starved thread the fast arbitration rung forever (they would
  // still make progress through serial escalation, but the token must not
  // leak). Reclaim it from the exit hook, keyed by the dead slot.
  static const bool hook = [] {
    register_thread_exit_hook(
        [](std::uint32_t tid) { contention().release_priority_of(tid); });
    return true;
  }();
  (void)hook;
  return manager;
}

}  // namespace adtm::liveness
