#include "liveness/activity.hpp"

namespace adtm::liveness {

namespace detail {
CacheAligned<ActivitySlot> g_activity[kMaxThreads];
}

const char* state_name(ThreadState s) noexcept {
  switch (s) {
    case ThreadState::Idle: return "idle";
    case ThreadState::InTx: return "in-tx";
    case ThreadState::RetryWait: return "retry-wait";
    case ThreadState::SerialWait: return "serial-wait";
    case ThreadState::DeferredOp: return "deferred-op";
  }
  return "?";
}

void set_state(ThreadState s, std::uint64_t stamp) noexcept {
  ActivitySlot& slot = *detail::g_activity[thread_id()];
  if (stamp != 0) slot.since_ns.store(stamp, std::memory_order_relaxed);
  slot.state.store(static_cast<std::uint32_t>(s), std::memory_order_release);
}

ThreadState state_of(std::uint32_t tid) noexcept {
  return static_cast<ThreadState>(
      detail::g_activity[tid]->state.load(std::memory_order_acquire));
}

std::uint64_t state_since_ns(std::uint32_t tid) noexcept {
  return detail::g_activity[tid]->since_ns.load(std::memory_order_relaxed);
}

void request_reap(std::uint32_t tid) noexcept {
  if (tid >= kMaxThreads) return;
  detail::g_activity[tid]->reap.store(1, std::memory_order_release);
}

bool reap_requested() noexcept {
  return detail::g_activity[thread_id()]->reap.load(
             std::memory_order_acquire) != 0;
}

void clear_reap() noexcept {
  detail::g_activity[thread_id()]->reap.store(0, std::memory_order_release);
}

}  // namespace adtm::liveness
