#include "liveness/watchdog.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/env.hpp"
#include "common/stats.hpp"
#include "common/thread_id.hpp"
#include "common/timing.hpp"
#include "liveness/activity.hpp"
#include "liveness/contention.hpp"
#include "liveness/wait_graph.hpp"

namespace adtm::liveness {

WatchdogOptions::WatchdogOptions()
    : stall_budget_ns(env_u64("ADTM_STALL_BUDGET_MS", 2000) * 1000000ull),
      interval_ns(env_u64("ADTM_WATCHDOG_INTERVAL_MS", 200) * 1000000ull),
      sink([](const std::string& report) {
        std::fputs(report.c_str(), stderr);
      }) {}

struct Watchdog::Impl {
  WatchdogOptions opts;

  mutable std::mutex mutex;
  std::condition_variable cv;
  std::thread thread;
  bool stop_requested = false;
  bool thread_running = false;
  std::string last_report;
  std::atomic<std::uint64_t> stall_reports{0};

  // Builds the report for one sample pass; "" when nothing is stalled.
  std::string scan(std::uint64_t budget_ns) {
    const std::uint64_t now = now_ns();
    std::ostringstream out;
    bool stalled = false;
    for (std::uint32_t tid = 0; tid < thread_high_water(); ++tid) {
      const ThreadState state = state_of(tid);
      if (state == ThreadState::Idle || state == ThreadState::InTx) continue;
      const std::uint64_t since = state_since_ns(tid);
      if (since == 0 || now < since + budget_ns) continue;
      if (!thread_slot_live(tid)) continue;  // exited mid-park; stale slot
      if (!stalled) {
        stalled = true;
        out << "adtm watchdog: stalled threads (budget "
            << budget_ns / 1000000 << " ms):\n";
      }
      out << "  thread " << tid << ": " << state_name(state) << " for "
          << (now - since) / 1000000 << " ms";
      const ContentionManager& cm = contention();
      out << " (consecutive aborts " << cm.consecutive_aborts(tid)
          << ", total aborts " << cm.total_aborts(tid) << ", escalations "
          << cm.escalations(tid) << ")\n";
    }
    if (!stalled) return "";
    const std::string graph = dump_wait_graph();
    if (!graph.empty()) out << "wait graph:\n" << graph;
    return out.str();
  }

  void run() {
    std::unique_lock<std::mutex> lk(mutex);
    while (!stop_requested) {
      cv.wait_for(lk, std::chrono::nanoseconds(opts.interval_ns),
                  [this] { return stop_requested; });
      if (stop_requested) break;
      // Sample without the mutex: the scan reads only lock-free tables.
      lk.unlock();
      std::string report = scan(opts.stall_budget_ns);
      lk.lock();
      if (!report.empty()) {
        stall_reports.fetch_add(1, std::memory_order_relaxed);
        stats().add(Counter::WatchdogStalls);
        last_report = report;
        if (opts.sink) {
          auto sink = opts.sink;
          lk.unlock();
          sink(report);
          lk.lock();
        }
      }
    }
  }
};

Watchdog::Impl& Watchdog::impl() {
  if (impl_ == nullptr) impl_ = new Impl();
  return *impl_;
}

Watchdog::~Watchdog() {
  stop();
  delete impl_;
}

void Watchdog::start(WatchdogOptions opts) {
  stop();
  Impl& im = impl();
  {
    std::lock_guard<std::mutex> lk(im.mutex);
    im.opts = std::move(opts);
    im.stop_requested = false;
    im.thread_running = true;
  }
  im.thread = std::thread([&im] { im.run(); });
}

void Watchdog::configure(WatchdogOptions opts) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  im.opts = std::move(opts);
}

void Watchdog::stop() {
  if (impl_ == nullptr) return;
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lk(im.mutex);
    if (!im.thread_running) return;
    im.stop_requested = true;
  }
  im.cv.notify_all();
  im.thread.join();
  std::lock_guard<std::mutex> lk(im.mutex);
  im.thread_running = false;
}

bool Watchdog::running() const noexcept {
  if (impl_ == nullptr) return false;
  std::lock_guard<std::mutex> lk(impl_->mutex);
  return impl_->thread_running && !impl_->stop_requested;
}

std::string Watchdog::scan_once() {
  Impl& im = impl();
  std::uint64_t budget;
  {
    std::lock_guard<std::mutex> lk(im.mutex);
    budget = im.opts.stall_budget_ns;
  }
  return im.scan(budget);
}

std::string Watchdog::last_report() const {
  if (impl_ == nullptr) return "";
  std::lock_guard<std::mutex> lk(impl_->mutex);
  return impl_->last_report;
}

std::uint64_t Watchdog::stall_reports() const noexcept {
  if (impl_ == nullptr) return 0;
  return impl_->stall_reports.load(std::memory_order_relaxed);
}

Watchdog& watchdog() noexcept {
  static Watchdog instance;
  return instance;
}

}  // namespace adtm::liveness
