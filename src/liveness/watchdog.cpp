#include "liveness/watchdog.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/runtime_config.hpp"
#include "common/stats.hpp"
#include "common/thread_id.hpp"
#include "common/timing.hpp"
#include "health/health.hpp"
#include "liveness/activity.hpp"
#include "liveness/contention.hpp"
#include "liveness/wait_graph.hpp"
#include "obs/trace.hpp"

namespace adtm::liveness {

const char* watchdog_action_name(WatchdogAction a) noexcept {
  switch (a) {
    case WatchdogAction::Report: return "report";
    case WatchdogAction::PoisonOrphans: return "poison-orphans";
    case WatchdogAction::ReapDeferred: return "reap-deferred";
    case WatchdogAction::Enforce: return "enforce";
    case WatchdogAction::Degrade: return "degrade";
  }
  return "?";
}

WatchdogAction parse_watchdog_action(const std::string& s) noexcept {
  if (s == "poison-orphans") return WatchdogAction::PoisonOrphans;
  if (s == "reap-deferred") return WatchdogAction::ReapDeferred;
  if (s == "enforce") return WatchdogAction::Enforce;
  if (s == "degrade") return WatchdogAction::Degrade;
  return WatchdogAction::Report;
}

WatchdogOptions::WatchdogOptions()
    : stall_budget_ns(runtime_config().stall_budget_ms * 1000000ull),
      interval_ns(runtime_config().watchdog_interval_ms * 1000000ull),
      action(parse_watchdog_action(runtime_config().watchdog_action)),
      reap_after_budgets(runtime_config().reap_budgets),
      sink([](const std::string& report) {
        std::fputs(report.c_str(), stderr);
      }) {}

struct Watchdog::Impl {
  WatchdogOptions opts;

  mutable std::mutex mutex;
  std::condition_variable cv;
  std::thread thread;
  bool stop_requested = false;
  bool thread_running = false;
  std::string last_report;
  std::atomic<std::uint64_t> stall_reports{0};

  // Exactly-once bookkeeping for enforcement actions, guarded by
  // scan_mutex (background scans and scan_once may interleave):
  // an entity leaves the poisoned set when it is observed repaired, so a
  // fresh stall episode may fire again; a reap is keyed by the deferred
  // op's start stamp, so each op is reaped at most once.
  std::mutex scan_mutex;
  std::unordered_set<const void*> poisoned_entities;
  std::unordered_map<std::uint32_t, std::uint64_t> reaped_ops;
  bool degrade_signal = false;  // monitor's watchdog-stall signal raised

  void fire(const WatchdogOptions& o, const WatchdogEvent& ev,
            std::ostringstream& out) {
    stats().add(Counter::WatchdogActions);
    if (ev.kind == WatchdogEvent::Kind::OrphanPoisoned) {
      out << "watchdog action: poisoned orphaned entity " << ev.entity
          << " (responsible thread dead; waiter thread " << ev.tid
          << " parked " << ev.stalled_ns / 1000000 << " ms)\n";
    } else if (ev.kind == WatchdogEvent::Kind::DeferredReaped) {
      out << "watchdog action: reap requested for thread " << ev.tid
          << " (deferred op running " << ev.stalled_ns / 1000000
          << " ms)\n";
    } else {
      out << "watchdog action: health degraded (thread " << ev.tid
          << " stalled " << ev.stalled_ns / 1000000
          << " ms; admission gate notified)\n";
    }
    if (o.on_action) o.on_action(ev);
  }

  // The enforcement pass: poison orphaned entities reachable through live
  // wait edges (safe: a parked waiter keeps the entity alive) and flag
  // over-budget deferred ops. Returns action lines for the report.
  std::string enforce(const WatchdogOptions& o, std::uint64_t now) {
    const bool poison = o.action == WatchdogAction::PoisonOrphans ||
                        o.action == WatchdogAction::Enforce;
    const bool reap = o.action == WatchdogAction::ReapDeferred ||
                      o.action == WatchdogAction::Enforce;
    if (!poison && !reap) return "";
    std::ostringstream out;
    std::lock_guard<std::mutex> lk(scan_mutex);
    if (poison) {
      for (const WaitEdgeSnapshot& e : snapshot_wait_edges()) {
        if (e.orphaned == nullptr || e.poison == nullptr) continue;
        if (!e.orphaned(e.entity)) {
          poisoned_entities.erase(e.entity);  // repaired: re-arm
          continue;
        }
        if (now < e.since_ns + o.stall_budget_ns) continue;
        if (!poisoned_entities.insert(e.entity).second) continue;
        e.poison(e.entity);
        fire(o,
             WatchdogEvent{WatchdogEvent::Kind::OrphanPoisoned, e.entity,
                           e.tid, now - e.since_ns},
             out);
      }
    }
    if (reap) {
      const std::uint64_t reap_ns =
          o.stall_budget_ns *
          (reap_after_budgets_clamped(o.reap_after_budgets));
      for (std::uint32_t tid = 0; tid < thread_high_water(); ++tid) {
        if (state_of(tid) != ThreadState::DeferredOp) continue;
        const std::uint64_t since = state_since_ns(tid);
        if (since == 0 || now < since + reap_ns) continue;
        if (!thread_slot_live(tid)) continue;
        auto [it, fresh] = reaped_ops.try_emplace(tid, since);
        if (!fresh) {
          if (it->second == since) continue;  // this op already reaped
          it->second = since;
        }
        request_reap(tid);
        fire(o,
             WatchdogEvent{WatchdogEvent::Kind::DeferredReaped, nullptr, tid,
                           now - since},
             out);
      }
    }
    return out.str();
  }

  static std::uint32_t reap_after_budgets_clamped(std::uint32_t n) noexcept {
    return n == 0 ? 1 : n;
  }

  // Builds the report for one sample pass; "" when nothing is stalled and
  // no enforcement action fired.
  std::string scan(const WatchdogOptions& o) {
    const std::uint64_t now = now_ns();
    std::ostringstream out;
    bool stalled = false;
    std::uint32_t first_stalled_tid = 0;
    std::uint64_t first_stalled_ns = 0;
    for (std::uint32_t tid = 0; tid < thread_high_water(); ++tid) {
      const ThreadState state = state_of(tid);
      if (state == ThreadState::Idle || state == ThreadState::InTx) continue;
      const std::uint64_t since = state_since_ns(tid);
      if (since == 0 || now < since + o.stall_budget_ns) continue;
      if (!thread_slot_live(tid)) continue;  // exited mid-park; stale slot
      if (!stalled) {
        stalled = true;
        first_stalled_tid = tid;
        first_stalled_ns = now - since;
        out << "adtm watchdog: stalled threads (budget "
            << o.stall_budget_ns / 1000000 << " ms):\n";
      }
      out << "  thread " << tid << ": " << state_name(state) << " for "
          << (now - since) / 1000000 << " ms";
      const ContentionManager& cm = contention();
      out << " (consecutive aborts " << cm.consecutive_aborts(tid)
          << ", total aborts " << cm.total_aborts(tid) << ", escalations "
          << cm.escalations(tid) << ")\n";
    }
    // Degrade enforcement: flip the health monitor's stall signal on
    // episode boundaries — raised when a scan finds over-budget threads,
    // cleared on the first clean scan afterwards — so the admission gate
    // backs new work off while the process is wedged and recovers
    // automatically once the stall drains.
    if (o.action == WatchdogAction::Degrade) {
      bool flip = false;
      {
        std::lock_guard<std::mutex> lk(scan_mutex);
        flip = stalled != degrade_signal;
        if (flip) degrade_signal = stalled;
      }
      if (flip) {
        health::monitor().set_watchdog_stall(stalled);
        if (stalled) {
          fire(o,
               WatchdogEvent{WatchdogEvent::Kind::HealthDegraded, nullptr,
                             first_stalled_tid, first_stalled_ns},
               out);
        }
      }
    }
    const std::string actions = enforce(o, now);
    if (!stalled && actions.empty()) return "";
    if (stalled) {
      const std::string graph = dump_wait_graph();
      if (!graph.empty()) out << "wait graph:\n" << graph;
      const std::string locks = lock_stats().report();
      if (!locks.empty()) out << "lock stats:\n" << locks;
      // With tracing on, a stall diagnosis carries the events leading up
      // to it — which transactions aborted (and why), who parked where.
      if (obs::enabled()) {
        const std::string tail = obs::recent_tail(32);
        if (!tail.empty()) out << "recent trace events:\n" << tail;
      }
    }
    out << actions;
    return out.str();
  }

  void run() {
    std::unique_lock<std::mutex> lk(mutex);
    while (!stop_requested) {
      cv.wait_for(lk, std::chrono::nanoseconds(opts.interval_ns),
                  [this] { return stop_requested; });
      if (stop_requested) break;
      // Sample without the mutex: the scan reads only lock-free tables
      // (plus the scan mutex for enforcement bookkeeping).
      WatchdogOptions snapshot = opts;
      lk.unlock();
      std::string report = scan(snapshot);
      lk.lock();
      if (!report.empty()) {
        stall_reports.fetch_add(1, std::memory_order_relaxed);
        stats().add(Counter::WatchdogStalls);
        last_report = report;
        if (opts.sink) {
          auto sink = opts.sink;
          lk.unlock();
          sink(report);
          lk.lock();
        }
      }
    }
  }
};

Watchdog::Impl& Watchdog::impl() {
  if (impl_ == nullptr) impl_ = new Impl();
  return *impl_;
}

Watchdog::~Watchdog() {
  stop();
  delete impl_;
}

void Watchdog::start(WatchdogOptions opts) {
  stop();
  Impl& im = impl();
  {
    std::lock_guard<std::mutex> lk(im.mutex);
    im.opts = std::move(opts);
    im.stop_requested = false;
    im.thread_running = true;
  }
  im.thread = std::thread([&im] { im.run(); });
}

void Watchdog::configure(WatchdogOptions opts) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  im.opts = std::move(opts);
}

void Watchdog::stop() {
  if (impl_ == nullptr) return;
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lk(im.mutex);
    if (!im.thread_running) return;
    im.stop_requested = true;
  }
  im.cv.notify_all();
  im.thread.join();
  std::lock_guard<std::mutex> lk(im.mutex);
  im.thread_running = false;
}

bool Watchdog::running() const noexcept {
  if (impl_ == nullptr) return false;
  std::lock_guard<std::mutex> lk(impl_->mutex);
  return impl_->thread_running && !impl_->stop_requested;
}

std::string Watchdog::scan_once() {
  Impl& im = impl();
  WatchdogOptions snapshot;
  {
    std::lock_guard<std::mutex> lk(im.mutex);
    snapshot = im.opts;
  }
  return im.scan(snapshot);
}

std::string Watchdog::last_report() const {
  if (impl_ == nullptr) return "";
  std::lock_guard<std::mutex> lk(impl_->mutex);
  return impl_->last_report;
}

std::uint64_t Watchdog::stall_reports() const noexcept {
  if (impl_ == nullptr) return 0;
  return impl_->stall_reports.load(std::memory_order_relaxed);
}

Watchdog& watchdog() noexcept {
  static Watchdog instance;
  return instance;
}

}  // namespace adtm::liveness
