#include "liveness/wait_graph.hpp"

#include <sstream>
#include <vector>

#include "common/align.hpp"
#include "common/stats.hpp"
#include "common/thread_id.hpp"
#include "common/timing.hpp"
#include "liveness/activity.hpp"

namespace adtm::liveness {
namespace {

struct WaitEdge {
  // `lock` is the linearization point: non-null means the edge (lock,
  // owner_fn, site, since, kind, repair callbacks) is published. Stores to
  // the payload fields happen before the seq_cst store of `lock`.
  std::atomic<const void*> lock{nullptr};
  std::atomic<OwnerFn> owner_fn{nullptr};
  std::atomic<const char*> site{nullptr};
  std::atomic<std::uint64_t> since_ns{0};
  std::atomic<WaitKind> kind{WaitKind::Lock};
  std::atomic<OrphanFn> orphan_fn{nullptr};
  std::atomic<PoisonFn> poison_fn{nullptr};
};

CacheAligned<WaitEdge> g_edges[kMaxThreads];

struct PinnedSlot {
  std::uint32_t holds = 0;
  bool edge_published = false;
};

PinnedSlot& pinned_slot() noexcept {
  thread_local PinnedSlot slot;
  return slot;
}

// One step of the owner-chain walk: returns the owner of the lock `tid` is
// waiting for, or kNoThread when tid is not (visibly) blocked.
std::uint32_t wait_target(std::uint32_t tid) noexcept {
  WaitEdge& e = *g_edges[tid];
  const void* lock = e.lock.load(std::memory_order_seq_cst);
  if (lock == nullptr) return kNoThread;
  OwnerFn fn = e.owner_fn.load(std::memory_order_relaxed);
  if (fn == nullptr) return kNoThread;
  return fn(lock);
}

// Walk owner chains from `start`; fills `cycle` with the thread ids of a
// cycle through `start` and returns true, or returns false.
bool find_cycle(std::uint32_t start, std::vector<std::uint32_t>* cycle) {
  cycle->clear();
  std::uint32_t cur = start;
  for (std::uint32_t steps = 0; steps <= kMaxThreads; ++steps) {
    const std::uint32_t owner = wait_target(cur);
    if (owner == kNoThread || owner >= kMaxThreads) return false;
    if (owner == cur) return false;  // reentrant: about to succeed
    cycle->push_back(cur);
    if (owner == start) return true;
    cur = owner;
  }
  return false;  // walk longer than the thread count: raced, give up
}

// A cycle is only trustworthy if every other member is parked: a parked
// thread has rolled its attempt back, so the ownership the walk read
// through it is committed state, not a speculative write an eager-mode
// abort is about to revoke. (The checking thread itself blocks from a
// non-transactional acquire path and holds nothing in-attempt.)
bool members_parked(const std::vector<std::uint32_t>& cycle,
                    std::uint32_t self) noexcept {
  for (std::uint32_t tid : cycle) {
    if (tid == self) continue;
    const ThreadState s = state_of(tid);
    if (s != ThreadState::RetryWait && s != ThreadState::SerialWait) {
      return false;
    }
  }
  return true;
}

std::string describe_cycle(const std::vector<std::uint32_t>& cycle) {
  std::ostringstream out;
  out << "deadlock cycle:";
  for (std::uint32_t tid : cycle) {
    WaitEdge& e = *g_edges[tid];
    const char* site = e.site.load(std::memory_order_relaxed);
    out << " [thread " << tid << " " << (site ? site : "?") << " lock "
        << e.lock.load(std::memory_order_relaxed) << " -> thread "
        << wait_target(tid) << "]";
  }
  return out.str();
}

}  // namespace

void publish_wait(const void* entity, OwnerFn owner_of, const char* site,
                  WaitKind kind, OrphanFn orphaned, PoisonFn poison) noexcept {
  WaitEdge& e = *g_edges[thread_id()];
  e.owner_fn.store(owner_of, std::memory_order_relaxed);
  e.site.store(site, std::memory_order_relaxed);
  e.since_ns.store(now_ns(), std::memory_order_relaxed);
  e.kind.store(kind, std::memory_order_relaxed);
  e.orphan_fn.store(orphaned, std::memory_order_relaxed);
  e.poison_fn.store(poison, std::memory_order_relaxed);
  e.lock.store(entity, std::memory_order_seq_cst);
  pinned_slot().edge_published = true;
}

void publish_wait(const void* lock, OwnerFn owner_of,
                  const char* site) noexcept {
  publish_wait(lock, owner_of, site, WaitKind::Lock, nullptr, nullptr);
}

void clear_wait() noexcept {
  PinnedSlot& slot = pinned_slot();
  if (!slot.edge_published) return;
  g_edges[thread_id()]->lock.store(nullptr, std::memory_order_seq_cst);
  slot.edge_published = false;
}

bool has_wait_edge() noexcept { return pinned_slot().edge_published; }

bool wait_edge_checkable() noexcept {
  if (!pinned_slot().edge_published) return false;
  const WaitEdge& e = *g_edges[thread_id()];
  if (e.kind.load(std::memory_order_relaxed) == WaitKind::CondVar) return true;
  return pinned_holds() > 0;
}

void deadlock_check() {
  const std::uint32_t me = thread_id();
  std::vector<std::uint32_t> cycle;
  if (!find_cycle(me, &cycle)) return;
  if (!members_parked(cycle, me)) return;
  // Re-validate: edges and owners are sampled racily, so require the same
  // cycle to hold on a second pass before declaring a deadlock. A real
  // deadlock is stable (every participant is parked); a raced one is not.
  std::vector<std::uint32_t> second;
  if (!find_cycle(me, &second) || second != cycle) return;
  if (!members_parked(second, me)) return;
  stats().add(Counter::DeadlocksDetected);
  throw DeadlockError(describe_cycle(cycle));
}

std::uint32_t pinned_holds() noexcept { return pinned_slot().holds; }

void pinned_enter() noexcept { ++pinned_slot().holds; }

void pinned_exit() noexcept {
  PinnedSlot& slot = pinned_slot();
  if (slot.holds > 0) --slot.holds;
}

std::vector<WaitEdgeSnapshot> snapshot_wait_edges() {
  std::vector<WaitEdgeSnapshot> edges;
  for (std::uint32_t tid = 0; tid < kMaxThreads; ++tid) {
    WaitEdge& e = *g_edges[tid];
    const void* entity = e.lock.load(std::memory_order_seq_cst);
    if (entity == nullptr) continue;
    edges.push_back(WaitEdgeSnapshot{
        tid, entity, e.site.load(std::memory_order_relaxed),
        e.kind.load(std::memory_order_relaxed),
        e.since_ns.load(std::memory_order_relaxed), wait_target(tid),
        e.orphan_fn.load(std::memory_order_relaxed),
        e.poison_fn.load(std::memory_order_relaxed)});
  }
  return edges;
}

std::string dump_wait_graph() {
  std::ostringstream out;
  const std::uint64_t now = now_ns();
  for (std::uint32_t tid = 0; tid < kMaxThreads; ++tid) {
    WaitEdge& e = *g_edges[tid];
    const void* lock = e.lock.load(std::memory_order_seq_cst);
    if (lock == nullptr) continue;
    const bool cv =
        e.kind.load(std::memory_order_relaxed) == WaitKind::CondVar;
    const std::uint32_t owner = wait_target(tid);
    const std::uint64_t since = e.since_ns.load(std::memory_order_relaxed);
    const char* site = e.site.load(std::memory_order_relaxed);
    out << "  thread " << tid << ": " << (site ? site : "?") << " on "
        << (cv ? "condvar " : "lock ") << lock << " for "
        << (now > since ? (now - since) / 1000000 : 0) << " ms, "
        << (cv ? "notifier " : "owner ");
    if (owner == kNoThread) {
      out << (cv ? "none (unregistered or dead)"
                 : "none (wake-up in flight)");
    } else {
      out << owner << (thread_slot_live(owner) ? " (live)" : " (exited)");
    }
    out << '\n';
    std::vector<std::uint32_t> cycle;
    if (find_cycle(tid, &cycle) && !cycle.empty() && cycle.front() == tid) {
      out << "  " << describe_cycle(cycle) << '\n';
    }
  }
  return out.str();
}

}  // namespace adtm::liveness
