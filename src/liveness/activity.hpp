// Per-thread activity table: what every thread is doing right now, and
// since when.
//
// The transaction driver, the retry parking loop, the serial gate, and the
// deferred-op runner publish coarse state transitions here; the watchdog
// samples the table to flag threads stalled past the configured budget.
// Publishing is a relaxed store or two on paths that already pay atomic
// traffic, so the table costs nothing measurable when no one is watching.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"
#include "common/thread_id.hpp"

namespace adtm::liveness {

enum class ThreadState : std::uint32_t {
  Idle,        // not inside the runtime
  InTx,        // executing a transaction body
  RetryWait,   // parked in stm::retry waiting for a read-set change
  SerialWait,  // draining the system to enter serial-irrevocable mode
  DeferredOp,  // running a post-commit deferred operation
};

const char* state_name(ThreadState s) noexcept;

struct ActivitySlot {
  std::atomic<std::uint32_t> state{
      static_cast<std::uint32_t>(ThreadState::Idle)};
  std::atomic<std::uint64_t> since_ns{0};
  std::atomic<std::uint32_t> reap{0};
};

namespace detail {
extern CacheAligned<ActivitySlot> g_activity[kMaxThreads];
}

// Publish the calling thread's state. `stamp` is the transition time in
// now_ns() units; pass 0 to keep the previous stamp (used when flipping
// back from a park state to InTx without re-reading the clock).
void set_state(ThreadState s, std::uint64_t stamp) noexcept;

// Sample another thread's state (watchdog only; racy by design).
ThreadState state_of(std::uint32_t tid) noexcept;
std::uint64_t state_since_ns(std::uint32_t tid) noexcept;

// --- cooperative reap requests ---------------------------------------------
//
// The watchdog's ReapDeferred policy cannot abort a deferred operation —
// it runs arbitrary post-commit code on the committing thread — but it can
// flag the thread so the failure-policy retry loop stops re-trying and
// escalates at its next failure (the op's own failure path then poisons
// and releases its locks). A request targets the thread's *current*
// deferred op: starting a new op clears it.
void request_reap(std::uint32_t tid) noexcept;
bool reap_requested() noexcept;  // the calling thread's flag
void clear_reap() noexcept;      // the calling thread starts a fresh op

}  // namespace adtm::liveness
