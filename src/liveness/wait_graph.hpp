// Lock-wait graph: who is blocked on which lock, and deadlock detection
// over the cross-transaction holds.
//
// Transactional TxLock acquisition is deadlock-free by construction: a
// transaction that blocks first aborts, which rolls back every lock it
// speculatively acquired in the same transaction — there is no
// hold-and-wait, so no cycle (asserted in debug builds at the park site).
// The hole is *committed* holds: a lock held across transactions (by an
// in-flight deferred operation or a TxLockGuard section) is not released
// by an abort. A thread that blocks while pinning such a hold can form a
// classic cycle with other pinned holders, and the TM cannot break it.
//
// Every blocking site therefore publishes a thread → lock wait edge before
// parking; owners are resolved through a per-lock callback (the graph does
// not depend on the lock type). When the blocking thread pins committed
// holds, it walks owner chains; a cycle through itself — every other
// member parked, surviving a re-validation pass — raises DeadlockError,
// breaking the deadlock by construction, since the raising thread
// withdraws its edge as the error unwinds. Publication is seq_cst, so of
// any set of threads that complete a cycle, the last one to publish sees
// every other edge; because that thread may look before earlier members
// have finished parking, pinned waiters also re-run the check from their
// park loop, where a formed cycle is stable and cannot be missed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace adtm::liveness {

// Resolves the current owner (small thread id, or kNoThread) of the lock
// a wait edge points at.
using OwnerFn = std::uint32_t (*)(const void* lock);

// What the published entity is. Lock edges (TxLock) are only
// deadlock-checkable while the waiter pins committed holds (hold-and-wait
// needs a hold an abort cannot revoke). CondVar edges (TxCondVar) are
// checkable unconditionally: the duty to notify is committed state — a
// registered notifier stays responsible whether or not the waiter holds
// anything, so a notifier-wait cycle deadlocks with zero locks held.
enum class WaitKind : std::uint8_t { Lock, CondVar };

// Optional repair callbacks carried by an edge for the watchdog's
// enforcement policies. `orphaned` answers "is the entity's responsible
// thread (lock owner / cv notifier) a dead incarnation?"; `poison` marks
// the entity failed, waking every parked waiter to raise. Both must be
// callable from any thread.
using OrphanFn = bool (*)(const void* entity);
using PoisonFn = void (*)(const void* entity);

// Raised by deadlock_check (and thus out of the blocked acquire) when the
// calling thread would complete a wait cycle. The message names the cycle.
struct DeadlockError : std::runtime_error {
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

// Publish / withdraw the calling thread's wait edge. `site` is a static
// string naming the blocking operation (for reports). Publishing twice
// overwrites; clearing when no edge is published is a no-op. The short
// form publishes a WaitKind::Lock edge with no repair callbacks.
void publish_wait(const void* lock, OwnerFn owner_of,
                  const char* site) noexcept;
void publish_wait(const void* entity, OwnerFn owner_of, const char* site,
                  WaitKind kind, OrphanFn orphaned, PoisonFn poison) noexcept;
void clear_wait() noexcept;

// True if the calling thread currently has a published edge (used by the
// transaction driver to clear stale edges cheaply).
bool has_wait_edge() noexcept;

// True if the calling thread's published edge may be deadlock-checked
// right now: any CondVar edge, or a Lock edge while pinned_holds() > 0.
// (The park loop consults this; the block sites apply their own
// in-attempt-hold gates before the first check.)
bool wait_edge_checkable() noexcept;

// Walk the wait graph starting from the calling thread's published edge;
// throws DeadlockError on a re-validated cycle through this thread.
// Call after publish_wait and before parking.
void deadlock_check();

// A consistent-enough copy of one published edge, for the watchdog's
// enforcement pass. The entity pointer is safe to dereference only while
// its waiter stays parked (the waiter keeps the entity alive); policies
// must act through the carried callbacks, not retained pointers.
struct WaitEdgeSnapshot {
  std::uint32_t tid;
  const void* entity;
  const char* site;
  WaitKind kind;
  std::uint64_t since_ns;
  std::uint32_t owner;  // kNoThread when unresolved
  OrphanFn orphaned;    // may be null
  PoisonFn poison;      // may be null
};

// All currently-published edges (racy by design; watchdog only).
std::vector<WaitEdgeSnapshot> snapshot_wait_edges();

// --- pinned-hold accounting ------------------------------------------------
//
// Count of the calling thread's *committed* cross-transaction lock holds
// (holds an abort cannot revoke). Maintained by TxLock commit epilogues;
// blocking sites consult it to decide whether hold-and-wait is possible.
std::uint32_t pinned_holds() noexcept;
void pinned_enter() noexcept;
void pinned_exit() noexcept;

// --- diagnostics -----------------------------------------------------------

// One line per published wait edge: thread, site, lock, owner, owner
// liveness. Empty string when no thread is waiting. Also appends any
// cycle found (without throwing) — the watchdog's report body.
std::string dump_wait_graph();

}  // namespace adtm::liveness
