// Starvation-resistant contention management (karma/greedy style).
//
// The base runtime already serializes a transaction after N failed
// attempts of the *same* atomic() call. That bounds one call's attempts
// but not a thread's fate: under pathological interleavings a thread can
// lose every conflict across many transactions while its rivals commit —
// the starvation Kuznetsov & Ravi quantify for lock-based TMs. This
// manager tracks per-thread conflict history *across* transactions
// (aborts accrue karma, commits spend it) and arbitrates for a
// chronically starved thread in two rungs:
//
//  1. Priority token (this layer, consumed by the stm driver): the first
//     thread whose streak crosses the threshold takes the single
//     process-wide priority token and keeps running *speculatively* —
//     conflict arbitration then favors it (it outwaits busy orecs that
//     would abort anyone else, rivals encountering its orecs step aside,
//     and NOrec rivals hold their sequence-lock commit back while it has
//     an attempt in flight). Unlike serial escalation this works even
//     while the thread pins TxLocks across transactions, closing the old
//     locker_depth()==0 gap.
//  2. Serial escalation (fallback): when the token is already taken, or a
//     privileged thread keeps losing to conflicts arbitration cannot veto
//     (validation failures), the thread escalates into serial-irrevocable
//     mode — the single global token where it cannot lose. Since at most
//     one thread holds each token and every escalated transaction
//     commits, every thread eventually commits: the ladder is
//     starvation-free.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"
#include "common/stats.hpp"
#include "common/thread_id.hpp"

namespace adtm::liveness {

class ContentionManager {
 public:
  // A conflict abort happened on the calling thread (any transaction).
  void on_conflict_abort() noexcept {
    Slot& s = *slots_[thread_id()];
    s.consecutive.fetch_add(1, std::memory_order_relaxed);
    s.total_aborts.fetch_add(1, std::memory_order_relaxed);
  }

  // The calling thread committed: its streak of losses is over, and any
  // priority it held is spent.
  void on_commit() noexcept {
    Slot& s = *slots_[thread_id()];
    if (s.consecutive.load(std::memory_order_relaxed) != 0) {
      s.consecutive.store(0, std::memory_order_relaxed);
    }
    release_priority();
  }

  // Should the calling thread's next transaction run serialized?
  // `threshold` is Config::starvation_threshold; 0 disables escalation.
  bool should_escalate(std::uint32_t threshold) const noexcept {
    if (threshold == 0) return false;
    return slots_[thread_id()]->consecutive.load(std::memory_order_relaxed) >=
           threshold;
  }

  // The calling thread escalated (diagnostics; does not reset the streak —
  // the serial commit's on_commit does).
  void on_escalation() noexcept {
    slots_[thread_id()]->escalations.fetch_add(1, std::memory_order_relaxed);
  }

  // --- priority arbitration (rung 1) ------------------------------------

  // Take (or confirm holding) the process-wide priority token. Returns
  // true while the calling thread holds it: idempotent across the
  // transactions of one starvation episode. Fails when escalation is
  // disabled, the streak is below `threshold`, or another thread holds
  // the token. Succeeding while pinning TxLocks is deliberate — priority
  // arbitration, unlike the serial gate, cannot wedge on a pinned hold.
  bool try_acquire_priority(std::uint32_t threshold) noexcept {
    if (threshold == 0) return false;
    const std::uint32_t me = thread_id();
    if (priority_.load(std::memory_order_acquire) == me) return true;
    if (slots_[me]->consecutive.load(std::memory_order_relaxed) < threshold) {
      return false;
    }
    std::uint32_t expected = kNoThread;
    if (!priority_.compare_exchange_strong(expected, me,
                                           std::memory_order_acq_rel)) {
      return false;
    }
    stats().add(Counter::CmPriorityAcquired);
    return true;
  }

  // Hand the token back. Idempotent: a no-op when the calling thread does
  // not hold it. Clears the attempt shield with it.
  void release_priority() noexcept { release_priority_of(thread_id()); }

  // Reclaim the token from a specific slot — the thread-exit hook's path,
  // so a thread that dies mid-starvation-episode cannot leak the token.
  void release_priority_of(std::uint32_t tid) noexcept {
    std::uint32_t expected = tid;
    if (priority_.compare_exchange_strong(expected, kNoThread,
                                          std::memory_order_acq_rel)) {
      priority_attempt_.store(false, std::memory_order_release);
    }
  }

  bool has_priority() const noexcept {
    return priority_.load(std::memory_order_relaxed) == thread_id();
  }

  // Slot currently holding the token (kNoThread when free). Rivals use
  // this to step aside when they hit one of the holder's orecs.
  std::uint32_t priority_thread() const noexcept {
    return priority_.load(std::memory_order_relaxed);
  }

  // NOrec shield: set while the token holder has a speculative attempt in
  // flight. Rival NOrec commits hold back (bounded by
  // Config::priority_wait_ns) so the holder's value-based validation
  // cannot be invalidated mid-attempt. Must be cleared whenever the
  // attempt ends — commit, rollback, or park — or rivals stall for the
  // full bound.
  void set_priority_attempt(bool active) noexcept {
    priority_attempt_.store(active, std::memory_order_release);
  }
  bool priority_attempt_active() const noexcept {
    return priority_attempt_.load(std::memory_order_acquire);
  }

  // Watchdog/report accessors (racy by design).
  std::uint32_t consecutive_aborts(std::uint32_t tid) const noexcept {
    return slots_[tid]->consecutive.load(std::memory_order_relaxed);
  }
  std::uint64_t total_aborts(std::uint32_t tid) const noexcept {
    return slots_[tid]->total_aborts.load(std::memory_order_relaxed);
  }
  std::uint64_t escalations(std::uint32_t tid) const noexcept {
    return slots_[tid]->escalations.load(std::memory_order_relaxed);
  }

  // Test support: forget all history and free the token.
  void reset() noexcept {
    for (auto& slot : slots_) {
      slot->consecutive.store(0, std::memory_order_relaxed);
      slot->total_aborts.store(0, std::memory_order_relaxed);
      slot->escalations.store(0, std::memory_order_relaxed);
    }
    priority_.store(kNoThread, std::memory_order_release);
    priority_attempt_.store(false, std::memory_order_release);
  }

 private:
  struct Slot {
    std::atomic<std::uint32_t> consecutive{0};
    std::atomic<std::uint64_t> total_aborts{0};
    std::atomic<std::uint64_t> escalations{0};
  };
  CacheAligned<Slot> slots_[kMaxThreads];
  alignas(64) std::atomic<std::uint32_t> priority_{kNoThread};
  std::atomic<bool> priority_attempt_{false};
};

// The process-wide manager consulted by the transaction driver.
ContentionManager& contention() noexcept;

}  // namespace adtm::liveness
