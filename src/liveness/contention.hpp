// Starvation-resistant contention management (karma/greedy style).
//
// The base runtime already serializes a transaction after N failed
// attempts of the *same* atomic() call. That bounds one call's attempts
// but not a thread's fate: under pathological interleavings a thread can
// lose every conflict across many transactions while its rivals commit —
// the starvation Kuznetsov & Ravi quantify for lock-based TMs. This
// manager tracks per-thread conflict history *across* transactions
// (aborts accrue karma, commits spend it) and escalates a chronically
// starved thread straight into serial-irrevocable mode — the single
// global token — where it cannot lose. Since the serial gate admits one
// thread at a time and every escalated transaction commits, every thread
// eventually commits: the ladder is starvation-free.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"
#include "common/thread_id.hpp"

namespace adtm::liveness {

class ContentionManager {
 public:
  // A conflict abort happened on the calling thread (any transaction).
  void on_conflict_abort() noexcept {
    Slot& s = *slots_[thread_id()];
    s.consecutive.fetch_add(1, std::memory_order_relaxed);
    s.total_aborts.fetch_add(1, std::memory_order_relaxed);
  }

  // The calling thread committed: its streak of losses is over.
  void on_commit() noexcept {
    Slot& s = *slots_[thread_id()];
    if (s.consecutive.load(std::memory_order_relaxed) != 0) {
      s.consecutive.store(0, std::memory_order_relaxed);
    }
  }

  // Should the calling thread's next transaction run serialized?
  // `threshold` is Config::starvation_threshold; 0 disables escalation.
  bool should_escalate(std::uint32_t threshold) const noexcept {
    if (threshold == 0) return false;
    return slots_[thread_id()]->consecutive.load(std::memory_order_relaxed) >=
           threshold;
  }

  // The calling thread escalated (diagnostics; does not reset the streak —
  // the serial commit's on_commit does).
  void on_escalation() noexcept {
    slots_[thread_id()]->escalations.fetch_add(1, std::memory_order_relaxed);
  }

  // Watchdog/report accessors (racy by design).
  std::uint32_t consecutive_aborts(std::uint32_t tid) const noexcept {
    return slots_[tid]->consecutive.load(std::memory_order_relaxed);
  }
  std::uint64_t total_aborts(std::uint32_t tid) const noexcept {
    return slots_[tid]->total_aborts.load(std::memory_order_relaxed);
  }
  std::uint64_t escalations(std::uint32_t tid) const noexcept {
    return slots_[tid]->escalations.load(std::memory_order_relaxed);
  }

  // Test support: forget all history.
  void reset() noexcept {
    for (auto& slot : slots_) {
      slot->consecutive.store(0, std::memory_order_relaxed);
      slot->total_aborts.store(0, std::memory_order_relaxed);
      slot->escalations.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Slot {
    std::atomic<std::uint32_t> consecutive{0};
    std::atomic<std::uint64_t> total_aborts{0};
    std::atomic<std::uint64_t> escalations{0};
  };
  CacheAligned<Slot> slots_[kMaxThreads];
};

// The process-wide manager consulted by the transaction driver.
ContentionManager& contention() noexcept;

}  // namespace adtm::liveness
