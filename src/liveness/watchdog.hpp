// Stall watchdog: a background thread that samples the activity table and
// the lock-wait graph, flags threads stalled past a budget, and dumps a
// diagnostic report (state, duration, wait edges, owners, abort history).
//
// By default the watchdog observes; recovery is the job of the mechanisms
// it reports on: deadline-aware waits raise RetryTimeout,
// poisoned/orphaned locks raise at the waiter, and the contention manager
// escalates starved threads. The watchdog is the net under all of them —
// the budget is deliberately generous, so a report means a real liveness
// bug (an unbounded wait with no deadline, a leaked lock, a wait cycle
// through committed holds).
//
// Action policies (opt-in, ADTM_WATCHDOG_ACTION) turn the net into an
// enforcer for the two stalls nothing else repairs:
//  * poison-orphans — an entity whose responsible thread incarnation is
//    dead (a TxLock with a dead owner no waiter has broken, a TxCondVar
//    whose registered notifier died) is poisoned through the repair
//    callback its wait edge carries, waking every parked waiter to raise.
//  * reap-deferred — a deferred operation stalled past
//    reap_after_budgets x stall budget has its thread's reap flag set;
//    the failure-policy retry loop escalates at its next failure instead
//    of retrying forever (composing with poison_on_escalate).
//  * enforce — both. Every action fires exactly once per stalled entity
//    (per stall episode) and is counted in Counter::WatchdogActions.
//  * degrade — overload control instead of repair: while any thread is
//    stalled past budget, the watchdog raises the process-wide health
//    monitor's stall signal (health::monitor().set_watchdog_stall), so
//    the admission gate serializes or sheds new front-door work; the
//    signal clears on the first clean scan. Fires a HealthDegraded event
//    once per stall episode.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace adtm::liveness {

enum class WatchdogAction : std::uint8_t {
  Report,         // report-only (default)
  PoisonOrphans,  // + poison entities whose responsible thread is dead
  ReapDeferred,   // + flag over-budget deferred ops for escalation
  Enforce,        // PoisonOrphans and ReapDeferred together
  Degrade,        // + flip the health monitor's watchdog-stall signal
};

const char* watchdog_action_name(WatchdogAction a) noexcept;

// Parse an ADTM_WATCHDOG_ACTION value ("report", "poison-orphans",
// "reap-deferred", "enforce", "degrade"); unknown strings fall back to
// Report.
WatchdogAction parse_watchdog_action(const std::string& s) noexcept;

// One enforcement action, delivered to WatchdogOptions::on_action.
struct WatchdogEvent {
  enum class Kind : std::uint8_t {
    OrphanPoisoned,
    DeferredReaped,
    HealthDegraded,  // stall episode began; monitor signal raised
  };
  Kind kind;
  const void* entity;       // poisoned entity; nullptr for a reap
  std::uint32_t tid;        // a parked waiter / the reaped op's thread
  std::uint64_t stalled_ns; // how long the stall had lasted at the action
};

struct WatchdogOptions {
  // How long a thread may sit in one park state before it is flagged.
  // Default: ADTM_STALL_BUDGET_MS (2000 ms).
  std::uint64_t stall_budget_ns;

  // Sampling period. Default: ADTM_WATCHDOG_INTERVAL_MS (200 ms).
  std::uint64_t interval_ns;

  // Enforcement policy. Default: ADTM_WATCHDOG_ACTION (Report).
  WatchdogAction action;

  // A deferred op is reaped after this many stall budgets. Default:
  // ADTM_REAP_BUDGETS (4); clamped to >= 1.
  std::uint32_t reap_after_budgets;

  // Where reports go. Default: stderr.
  std::function<void(const std::string&)> sink;

  // Observer invoked (from the scanning thread) for every enforcement
  // action fired. Default: none.
  std::function<void(const WatchdogEvent&)> on_action;

  WatchdogOptions();
};

class Watchdog {
 public:
  Watchdog() = default;
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Start/stop the sampling thread. start() on a running watchdog
  // replaces the options (by restarting). Safe to call stop() twice.
  void start(WatchdogOptions opts = WatchdogOptions());
  void stop();
  bool running() const noexcept;

  // Replace the options without starting the sampling thread (scan_once
  // then uses these budgets). A running watchdog picks them up on restart.
  void configure(WatchdogOptions opts);

  // One synchronous sample pass with this watchdog's budgets: returns the
  // report ("" when nothing is stalled) without invoking the sink. Usable
  // without start() — also the hook for on-demand diagnostics.
  std::string scan_once();

  // The most recent nonempty report produced by the background thread.
  std::string last_report() const;

  // Number of scan passes that flagged at least one stalled thread.
  std::uint64_t stall_reports() const noexcept;

 private:
  struct Impl;
  Impl* impl_ = nullptr;  // allocated on first start()/scan_once()
  Impl& impl();
};

// Process-wide watchdog instance (tests may construct their own).
Watchdog& watchdog() noexcept;

}  // namespace adtm::liveness
