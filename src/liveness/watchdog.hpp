// Stall watchdog: a background thread that samples the activity table and
// the lock-wait graph, flags threads stalled past a budget, and dumps a
// diagnostic report (state, duration, wait edges, owners, abort history).
//
// The watchdog observes; it never unblocks anything itself. Recovery is
// the job of the mechanisms it reports on: deadline-aware waits raise
// RetryTimeout, poisoned/orphaned locks raise at the waiter, and the
// contention manager escalates starved threads. The watchdog is the net
// under all of them — the budget is deliberately generous, so a report
// means a real liveness bug (an unbounded wait with no deadline, a leaked
// lock, a wait cycle through committed holds).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace adtm::liveness {

struct WatchdogOptions {
  // How long a thread may sit in one park state before it is flagged.
  // Default: ADTM_STALL_BUDGET_MS (2000 ms).
  std::uint64_t stall_budget_ns;

  // Sampling period. Default: ADTM_WATCHDOG_INTERVAL_MS (200 ms).
  std::uint64_t interval_ns;

  // Where reports go. Default: stderr.
  std::function<void(const std::string&)> sink;

  WatchdogOptions();
};

class Watchdog {
 public:
  Watchdog() = default;
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Start/stop the sampling thread. start() on a running watchdog
  // replaces the options (by restarting). Safe to call stop() twice.
  void start(WatchdogOptions opts = WatchdogOptions());
  void stop();
  bool running() const noexcept;

  // Replace the options without starting the sampling thread (scan_once
  // then uses these budgets). A running watchdog picks them up on restart.
  void configure(WatchdogOptions opts);

  // One synchronous sample pass with this watchdog's budgets: returns the
  // report ("" when nothing is stalled) without invoking the sink. Usable
  // without start() — also the hook for on-demand diagnostics.
  std::string scan_once();

  // The most recent nonempty report produced by the background thread.
  std::string last_report() const;

  // Number of scan passes that flagged at least one stalled thread.
  std::uint64_t stall_reports() const noexcept;

 private:
  struct Impl;
  Impl* impl_ = nullptr;  // allocated on first start()/scan_once()
  Impl& impl();
};

// Process-wide watchdog instance (tests may construct their own).
Watchdog& watchdog() noexcept;

}  // namespace adtm::liveness
