// TxCache: a memcached-style in-memory cache on transactional memory.
//
// The paper's §5.1 discusses transactionalized memcached (Ruan et al.,
// ASPLOS 2014): critical sections guard a hash table plus an LRU list, and
// occasionally want to log diagnostics — which under plain TM forces
// irrevocability or drops the log line. This subsystem reproduces that
// shape: get/set/del/incr are single transactions over a chained hash
// table and an intrusive LRU list (gets are writers, as in memcached with
// its cache lock), and optional diagnostic logging rides on atomic_defer
// via TxLogger, so it never serializes the cache.
//
// Entries are immutable once published: updates replace the entry and
// reclaim the old one through a commit epilogue, which runs after
// quiescence — so a concurrent reader can never observe a freed entry.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm::txlog {
class TxLogger;
}

namespace adtm::kvcache {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t sets = 0;
  std::uint64_t evictions = 0;
};

class TxCache {
 public:
  // `capacity` = maximum number of items before LRU eviction;
  // `logger` (optional) receives a deferred diagnostic record per
  // eviction, formatted inside the evicting transaction.
  explicit TxCache(std::size_t capacity, std::size_t buckets = 1024,
                   txlog::TxLogger* logger = nullptr);
  ~TxCache();

  TxCache(const TxCache&) = delete;
  TxCache& operator=(const TxCache&) = delete;

  // Store (insert or replace). Evicts the least recently used item when
  // at capacity. Usable standalone or inside an enclosing transaction.
  void set(const std::string& key, const std::string& value);
  void set(stm::Tx& tx, const std::string& key, const std::string& value);

  // Fetch; refreshes the item's LRU position (so gets are writers, as in
  // memcached under its cache lock).
  std::optional<std::string> get(const std::string& key);
  std::optional<std::string> get(stm::Tx& tx, const std::string& key);

  // Remove. Returns true if present.
  bool del(const std::string& key);
  bool del(stm::Tx& tx, const std::string& key);

  // Atomic numeric increment (memcached incr/decr). Returns the new value,
  // or nullopt if the key is absent or non-numeric.
  std::optional<long> incr(const std::string& key, long delta);
  std::optional<long> incr(stm::Tx& tx, const std::string& key, long delta);

  std::size_t size() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const noexcept { return capacity_; }

  CacheStats stats_snapshot() const noexcept;

 private:
  struct Entry {
    std::string key;    // immutable after publication
    std::string value;  // immutable after publication
    stm::tvar<Entry*> hash_next{nullptr};
    stm::tvar<Entry*> lru_next{nullptr};
    stm::tvar<Entry*> lru_prev{nullptr};
  };

  stm::tvar<Entry*>& bucket_of(const std::string& key) const;
  Entry* find_in_bucket(stm::Tx& tx, const std::string& key) const;

  // LRU intrusive list helpers (all transactional).
  void lru_unlink(stm::Tx& tx, Entry* e);
  void lru_push_front(stm::Tx& tx, Entry* e);

  // Unlink from bucket + LRU and schedule reclamation.
  void remove_entry(stm::Tx& tx, Entry* e);

  std::size_t capacity_;
  txlog::TxLogger* logger_;
  mutable std::vector<stm::tvar<Entry*>> buckets_;
  stm::tvar<Entry*> lru_head_{nullptr};
  stm::tvar<Entry*> lru_tail_{nullptr};
  stm::tvar<std::size_t> items_{0};

  // Monotonic mirrors for lock-free observation (tests/monitoring).
  std::atomic<std::size_t> count_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> sets_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace adtm::kvcache
