#include "kvcache/tx_cache.hpp"

#include <cerrno>
#include <cstdlib>
#include <functional>

#include "health/gate.hpp"
#include "txlog/txlog.hpp"

namespace adtm::kvcache {

TxCache::TxCache(std::size_t capacity, std::size_t buckets,
                 txlog::TxLogger* logger)
    : capacity_(capacity == 0 ? 1 : capacity),
      logger_(logger),
      buckets_(buckets == 0 ? 1 : buckets) {}

TxCache::~TxCache() {
  for (auto& head : buckets_) {
    Entry* e = head.load_direct();
    while (e != nullptr) {
      Entry* next = e->hash_next.load_direct();
      delete e;
      e = next;
    }
  }
}

stm::tvar<TxCache::Entry*>& TxCache::bucket_of(const std::string& key) const {
  return buckets_[std::hash<std::string>{}(key) % buckets_.size()];
}

TxCache::Entry* TxCache::find_in_bucket(stm::Tx& tx,
                                        const std::string& key) const {
  for (Entry* e = bucket_of(key).get(tx); e != nullptr;
       e = e->hash_next.get(tx)) {
    if (e->key == key) return e;  // key immutable: plain compare is safe
  }
  return nullptr;
}

void TxCache::lru_unlink(stm::Tx& tx, Entry* e) {
  Entry* prev = e->lru_prev.get(tx);
  Entry* next = e->lru_next.get(tx);
  if (prev != nullptr) {
    prev->lru_next.set(tx, next);
  } else {
    lru_head_.set(tx, next);
  }
  if (next != nullptr) {
    next->lru_prev.set(tx, prev);
  } else {
    lru_tail_.set(tx, prev);
  }
  e->lru_prev.set(tx, nullptr);
  e->lru_next.set(tx, nullptr);
}

void TxCache::lru_push_front(stm::Tx& tx, Entry* e) {
  Entry* head = lru_head_.get(tx);
  e->lru_next.set(tx, head);
  e->lru_prev.set(tx, nullptr);
  if (head != nullptr) {
    head->lru_prev.set(tx, e);
  } else {
    lru_tail_.set(tx, e);
  }
  lru_head_.set(tx, e);
}

void TxCache::remove_entry(stm::Tx& tx, Entry* e) {
  // Unlink from the bucket chain.
  auto& head = bucket_of(e->key);
  Entry* cur = head.get(tx);
  if (cur == e) {
    head.set(tx, e->hash_next.get(tx));
  } else {
    while (cur != nullptr) {
      Entry* next = cur->hash_next.get(tx);
      if (next == e) {
        cur->hash_next.set(tx, e->hash_next.get(tx));
        break;
      }
      cur = next;
    }
  }
  lru_unlink(tx, e);
  items_.set(tx, items_.get(tx) - 1);
  // Reclaim after commit + quiescence: no reader can still hold e.
  tx.on_commit([this, e] {
    count_.fetch_sub(1, std::memory_order_relaxed);
    delete e;
  });
}

void TxCache::set(stm::Tx& tx, const std::string& key,
                  const std::string& value) {
  Entry* old = find_in_bucket(tx, key);

  // Plan-then-write, in two phases. Phase 1 only reads: walk the LRU list
  // from the tail to pick every victim this insert will evict, and
  // register their ordered log records (paper §5.1 — formatted in the
  // transaction, written after commit). A contended log registration
  // waits by retrying, which is legal only while the write set is still
  // empty, so every registration must precede the first tvar write below.
  std::vector<Entry*> victims;
  std::size_t items = items_.get(tx) - (old != nullptr ? 1 : 0);
  for (Entry* cand = lru_tail_.get(tx);
       items >= capacity_ && cand != nullptr;
       cand = cand->lru_prev.get(tx)) {
    if (cand == old) continue;  // removed below regardless
    victims.push_back(cand);
    --items;
  }
  if (logger_ != nullptr) {
    for (const Entry* v : victims) logger_->log(tx, "evict key=" + v->key);
  }

  // Phase 2 — the writes.
  if (old != nullptr) remove_entry(tx, old);
  for (Entry* v : victims) remove_entry(tx, v);
  if (!victims.empty()) {
    tx.on_commit([this, n = victims.size()] {
      evictions_.fetch_add(n, std::memory_order_relaxed);
    });
  }

  Entry* e = new Entry;
  e->key = key;
  e->value = value;
  tx.on_abort([e] { delete e; });  // unpublished on abort
  auto& head = bucket_of(key);
  e->hash_next.set(tx, head.get(tx));
  head.set(tx, e);
  lru_push_front(tx, e);
  items_.set(tx, items_.get(tx) + 1);
  tx.on_commit([this] {
    count_.fetch_add(1, std::memory_order_relaxed);
    sets_.fetch_add(1, std::memory_order_relaxed);
  });
}

void TxCache::set(const std::string& key, const std::string& value) {
  // Front door: new work enters here, so the admission gate decides
  // first — Healthy admits for free, Degraded serializes, Critical
  // throws health::Overloaded before any TM work. The transactional
  // overloads above stay gate-free: nested composition must not consult
  // admission twice.
  const auto guard = health::gate().enter("kvcache.set");
  stm::atomic([&](stm::Tx& tx) { set(tx, key, value); });
}

std::optional<std::string> TxCache::get(stm::Tx& tx, const std::string& key) {
  Entry* e = find_in_bucket(tx, key);
  if (e == nullptr) {
    tx.on_commit([this] { misses_.fetch_add(1, std::memory_order_relaxed); });
    return std::nullopt;
  }
  // Refresh recency (gets are writers, like memcached under its lock).
  if (lru_head_.get(tx) != e) {
    lru_unlink(tx, e);
    lru_push_front(tx, e);
  }
  tx.on_commit([this] { hits_.fetch_add(1, std::memory_order_relaxed); });
  return e->value;  // immutable; copy taken inside the transaction
}

std::optional<std::string> TxCache::get(const std::string& key) {
  const auto guard = health::gate().enter("kvcache.get");
  return stm::atomic([&](stm::Tx& tx) { return get(tx, key); });
}

bool TxCache::del(stm::Tx& tx, const std::string& key) {
  Entry* e = find_in_bucket(tx, key);
  if (e == nullptr) return false;
  remove_entry(tx, e);
  return true;
}

bool TxCache::del(const std::string& key) {
  const auto guard = health::gate().enter("kvcache.del");
  return stm::atomic([&](stm::Tx& tx) { return del(tx, key); });
}

std::optional<long> TxCache::incr(stm::Tx& tx, const std::string& key,
                                  long delta) {
  Entry* e = find_in_bucket(tx, key);
  if (e == nullptr) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long current = std::strtol(e->value.c_str(), &end, 10);
  if (errno != 0 || end == e->value.c_str() || *end != '\0') {
    return std::nullopt;  // non-numeric value
  }
  const long updated = current + delta;
  // Entries are immutable: replace (preserving LRU freshness via set).
  set(tx, key, std::to_string(updated));
  return updated;
}

std::optional<long> TxCache::incr(const std::string& key, long delta) {
  const auto guard = health::gate().enter("kvcache.incr");
  return stm::atomic([&](stm::Tx& tx) { return incr(tx, key, delta); });
}

CacheStats TxCache::stats_snapshot() const noexcept {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.sets = sets_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace adtm::kvcache
