// RecoverableCache: the TxCache with a durability story.
//
// The paper's §5.1 cache is volatile; crash torture needs a workload
// whose post-crash state is checkable. RecoverableCache pairs every
// cache mutation with a WAL append *in the same transaction*, so atomic
// deferral gives the both-or-neither contract crashmat verifies: a crash
// at any point leaves a log whose valid prefix corresponds exactly to a
// prefix-closed set of committed transactions, and replaying that prefix
// rebuilds the cache the survivors saw.
//
// Records are self-describing ops ("<op-id>|S|<key>|<value>" /
// "<op-id>|D|<key>"); the op id makes replay idempotent — a duplicated
// record (e.g. hand-crafted in tests) applies once.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "kvcache/tx_cache.hpp"
#include "wal/wal.hpp"

namespace adtm::kvcache {

class RecoverableCache {
 public:
  struct Op {
    std::string id;     // unique per logical op; replay dedupe key
    char kind = 'S';    // 'S' = set, 'D' = del
    std::string key;    // must not contain '|' or '\n'
    std::string value;  // sets only; must not contain '\n'
  };

  static std::string encode(const Op& op);
  // False if `record` is not a well-formed op.
  static bool decode(const std::string& record, Op& out);

  // Fold records (in LSN order) into the final map. Records with an
  // already-seen op id are skipped (counted in *duplicates if given);
  // undecodable records are skipped and counted in *undecodable.
  static std::map<std::string, std::string> replay(
      const std::vector<std::string>& records,
      std::size_t* duplicates = nullptr, std::size_t* undecodable = nullptr);

  // Recovers `wal_path` (truncating any torn tail durably), replays the
  // valid prefix into the cache, then accepts new operations. Requires
  // stm::init to have been called.
  RecoverableCache(std::size_t capacity, const std::string& wal_path);

  // One transaction: mutate the cache AND append the serialized op.
  wal::Lsn set(const std::string& key, const std::string& value,
               const std::string& op_id);
  wal::Lsn del(const std::string& key, const std::string& op_id);

  // Building block for callers composing a larger transaction.
  wal::Lsn apply(stm::Tx& tx, const Op& op);

  void flush() { wal_.flush(); }

  TxCache& cache() noexcept { return cache_; }
  wal::WriteAheadLog& wal() noexcept { return wal_; }

  // What the constructor's recovery scan found on disk (pre-truncation
  // view: `clean` is false if a torn tail was present and cut).
  const wal::WriteAheadLog::RecoveryResult& recovery() const noexcept {
    return recovery_;
  }

 private:
  // Order matters: scan first (pre-truncation view), then let the WAL
  // constructor truncate and make the cut durable, then replay.
  wal::WriteAheadLog::RecoveryResult recovery_;
  wal::WriteAheadLog wal_;
  TxCache cache_;
};

}  // namespace adtm::kvcache
