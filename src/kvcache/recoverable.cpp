#include "kvcache/recoverable.hpp"

#include <utility>

#include "health/gate.hpp"
#include "stm/api.hpp"

namespace adtm::kvcache {

std::string RecoverableCache::encode(const Op& op) {
  std::string out = op.id;
  out += '|';
  out += op.kind;
  out += '|';
  out += op.key;
  if (op.kind == 'S') {
    out += '|';
    out += op.value;
  }
  return out;
}

bool RecoverableCache::decode(const std::string& record, Op& out) {
  const std::size_t p1 = record.find('|');
  if (p1 == std::string::npos || p1 == 0) return false;
  const std::size_t p2 = record.find('|', p1 + 1);
  if (p2 != p1 + 2) return false;  // kind is exactly one char
  const char kind = record[p1 + 1];
  if (kind == 'S') {
    const std::size_t p3 = record.find('|', p2 + 1);
    if (p3 == std::string::npos || p3 == p2 + 1) return false;
    out.id = record.substr(0, p1);
    out.kind = 'S';
    out.key = record.substr(p2 + 1, p3 - p2 - 1);
    out.value = record.substr(p3 + 1);
    return true;
  }
  if (kind == 'D') {
    if (p2 + 1 >= record.size()) return false;
    out.id = record.substr(0, p1);
    out.kind = 'D';
    out.key = record.substr(p2 + 1);
    out.value.clear();
    return true;
  }
  return false;
}

std::map<std::string, std::string> RecoverableCache::replay(
    const std::vector<std::string>& records, std::size_t* duplicates,
    std::size_t* undecodable) {
  std::map<std::string, std::string> state;
  std::map<std::string, bool> seen_ids;
  std::size_t dups = 0;
  std::size_t bad = 0;
  for (const std::string& record : records) {
    Op op;
    if (!decode(record, op)) {
      ++bad;
      continue;
    }
    if (!seen_ids.emplace(op.id, true).second) {
      ++dups;
      continue;
    }
    if (op.kind == 'S') {
      state[op.key] = op.value;
    } else {
      state.erase(op.key);
    }
  }
  if (duplicates != nullptr) *duplicates = dups;
  if (undecodable != nullptr) *undecodable = bad;
  return state;
}

RecoverableCache::RecoverableCache(std::size_t capacity,
                                   const std::string& wal_path)
    : recovery_(wal::WriteAheadLog::recover(wal_path)),
      wal_(wal_path),
      cache_(capacity) {
  // Rebuild the cache from the valid prefix. Replaying the folded map
  // (rather than op-by-op) keeps recovery O(keys) transactions. Replay
  // uses the transactional entry point: recovery is internal work, not
  // new front-door load, so it must not be shed by the admission gate.
  for (const auto& [key, value] : replay(recovery_.records)) {
    stm::atomic([&](stm::Tx& tx) { cache_.set(tx, key, value); });
  }
}

wal::Lsn RecoverableCache::apply(stm::Tx& tx, const Op& op) {
  if (op.kind == 'S') {
    cache_.set(tx, op.key, op.value);
  } else {
    cache_.del(tx, op.key);
  }
  return wal_.append(tx, encode(op));
}

wal::Lsn RecoverableCache::set(const std::string& key, const std::string& value,
                               const std::string& op_id) {
  // Front door: admission first (shed/serialize under overload), TM and
  // WAL work only once admitted.
  const auto guard = health::gate().enter("recoverable.set");
  return stm::atomic([&](stm::Tx& tx) {
    return apply(tx, Op{op_id, 'S', key, value});
  });
}

wal::Lsn RecoverableCache::del(const std::string& key,
                               const std::string& op_id) {
  const auto guard = health::gate().enter("recoverable.del");
  return stm::atomic([&](stm::Tx& tx) {
    return apply(tx, Op{op_id, 'D', key, std::string()});
  });
}

}  // namespace adtm::kvcache
