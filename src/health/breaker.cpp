#include "health/breaker.hpp"

#include "common/rng.hpp"
#include "common/runtime_config.hpp"
#include "common/stats.hpp"
#include "common/timing.hpp"
#include "health/health.hpp"
#include "obs/trace.hpp"

namespace adtm::health {

const char* breaker_state_name(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "unknown";
}

BreakerOptions::BreakerOptions() {
  const RuntimeConfig& cfg = runtime_config();
  failure_threshold = cfg.breaker_threshold;
  cooldown_ms = cfg.breaker_cooldown_ms;
  max_cooldown_ms = cfg.breaker_max_cooldown_ms;
}

CircuitBreaker::CircuitBreaker(BreakerOptions opts) : opts_(std::move(opts)) {
  cooldown_ms_ = opts_.cooldown_ms;
  if (opts_.report_to_monitor) monitor().register_breaker(this);
}

CircuitBreaker::~CircuitBreaker() {
  if (opts_.report_to_monitor) monitor().unregister_breaker(this);
}

// Same decorrelation idiom as common::Backoff's jittered saturation cap:
// draw the actual cooldown uniformly from [3/4·cooldown, cooldown] so
// breakers tripped by the same dying disk don't probe in lockstep.
std::uint64_t CircuitBreaker::jittered_cooldown_ns() noexcept {
  const std::uint64_t ns = cooldown_ms_ * 1'000'000;
  const std::uint64_t jitter_window = ns / 4;
  if (jitter_window == 0) return ns;
  return ns - thread_rng().next_below(jitter_window + 1);
}

void CircuitBreaker::transition_locked(BreakerState to) noexcept {
  state_.store(to, std::memory_order_relaxed);
}

void CircuitBreaker::publish(BreakerState from, BreakerState to) noexcept {
  obs::emit(obs::EventType::BreakerTransition, obs::AbortCause::None,
            obs::kNoAlgo, static_cast<std::uint64_t>(from),
            static_cast<std::uint32_t>(to));
  if (opts_.report_to_monitor) monitor().breaker_transition(this, from, to);
  if (opts_.on_state_change) opts_.on_state_change(from, to);
}

bool CircuitBreaker::allow() noexcept {
  if (state_.load(std::memory_order_relaxed) == BreakerState::Closed) {
    return true;  // hot path: one relaxed load
  }
  if (!enabled()) return true;

  BreakerState from;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    switch (state_.load(std::memory_order_relaxed)) {
      case BreakerState::Closed:
        return true;
      case BreakerState::Open:
        if (now_ns() < reopen_at_ns_) {
          fast_fails_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        // Cooldown over: this caller becomes the half-open probe.
        from = BreakerState::Open;
        transition_locked(BreakerState::HalfOpen);
        probe_inflight_ = true;
        break;
      case BreakerState::HalfOpen:
        if (!probe_inflight_) {
          probe_inflight_ = true;
          return true;  // probe slot freed without a verdict; reclaim it
        }
        fast_fails_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
  }
  publish(from, BreakerState::HalfOpen);
  return true;
}

void CircuitBreaker::record_success() noexcept {
  if (state_.load(std::memory_order_relaxed) == BreakerState::Closed &&
      streak_.load(std::memory_order_relaxed) == 0) {
    return;  // hot path: clean resource, no writes at all
  }
  if (!enabled()) {
    streak_.store(0, std::memory_order_relaxed);
    return;
  }

  BreakerState from;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    streak_.store(0, std::memory_order_relaxed);
    switch (state_.load(std::memory_order_relaxed)) {
      case BreakerState::Closed:
        return;
      case BreakerState::Open:
        return;  // straggler from before the trip; the probe decides
      case BreakerState::HalfOpen:
        from = BreakerState::HalfOpen;
        probe_inflight_ = false;
        cooldown_ms_ = opts_.cooldown_ms;  // recovered: back to base
        transition_locked(BreakerState::Closed);
        break;
    }
  }
  publish(from, BreakerState::Closed);
}

void CircuitBreaker::record_failure() noexcept {
  if (!enabled()) {
    streak_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  BreakerState from;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    switch (state_.load(std::memory_order_relaxed)) {
      case BreakerState::Closed:
        if (streak_.fetch_add(1, std::memory_order_relaxed) + 1 <
            opts_.failure_threshold) {
          return;
        }
        from = BreakerState::Closed;
        break;
      case BreakerState::HalfOpen:
        // The probe failed: back off harder before the next one.
        probe_inflight_ = false;
        cooldown_ms_ = std::min(cooldown_ms_ * 2, opts_.max_cooldown_ms);
        from = BreakerState::HalfOpen;
        break;
      case BreakerState::Open:
        return;  // straggler failure while already open
    }
    reopen_at_ns_ = now_ns() + jittered_cooldown_ns();
    trips_.fetch_add(1, std::memory_order_relaxed);
    stats().add(Counter::BreakerTrips);
    transition_locked(BreakerState::Open);
  }
  publish(from, BreakerState::Open);
}

void CircuitBreaker::trip() noexcept {
  BreakerState from;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    from = state_.load(std::memory_order_relaxed);
    if (from == BreakerState::Open) return;
    probe_inflight_ = false;
    reopen_at_ns_ = now_ns() + jittered_cooldown_ns();
    trips_.fetch_add(1, std::memory_order_relaxed);
    stats().add(Counter::BreakerTrips);
    transition_locked(BreakerState::Open);
  }
  publish(from, BreakerState::Open);
}

void CircuitBreaker::reset() noexcept {
  BreakerState from;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    from = state_.load(std::memory_order_relaxed);
    streak_.store(0, std::memory_order_relaxed);
    probe_inflight_ = false;
    cooldown_ms_ = opts_.cooldown_ms;
    if (from == BreakerState::Closed) return;
    transition_locked(BreakerState::Closed);
  }
  publish(from, BreakerState::Closed);
}

}  // namespace adtm::health
