// Process-wide health state machine for overload control.
//
// The monitor folds three degradation signals into one state:
//
//   - open circuit breakers (any breaker not Closed),
//   - saturated submission queues (AsyncIOEngine at capacity),
//   - liveness watchdog stall reports (action "degrade").
//
//   0 active signals -> Healthy    (admission gate admits everything)
//   1 active signal  -> Degraded   (gate serializes front-door work)
//   2+ active signals -> Critical  (gate sheds front-door work)
//
// Every transition emits an obs HealthTransition trace event; time spent
// non-Healthy accumulates into Counter::DegradedMs (credited when the
// process recovers, with the in-progress episode included in snapshots).
// healthz() returns a point-in-time snapshot for the future server's
// health endpoint; healthz_json() renders it as a single JSON object.
//
// state() is one relaxed atomic load — the admission gate reads it per
// front-door transaction, so it must stay free.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "health/breaker.hpp"

namespace adtm::health {

enum class HealthState : std::uint8_t { Healthy, Degraded, Critical };

const char* health_state_name(HealthState s) noexcept;

struct BreakerInfo {
  std::string name;
  BreakerState state;
  std::uint64_t trips;
};

struct HealthSnapshot {
  HealthState state = HealthState::Healthy;
  std::uint32_t open_breakers = 0;    // breakers not currently Closed
  std::uint32_t saturated_queues = 0; // queues reporting pressure
  bool watchdog_stall = false;
  std::uint64_t degraded_ms = 0;      // cumulative, incl. current episode
  std::uint64_t transitions = 0;      // health state changes so far
  std::uint64_t shed = 0;             // admission-gate sheds (Counter)
  std::uint64_t serialized = 0;       // admission-gate serializations
  std::uint64_t breaker_trips = 0;
  std::uint64_t io_callback_errors = 0;
  std::vector<BreakerInfo> breakers;  // every registered breaker
};

class Monitor {
 public:
  HealthState state() const noexcept {
    return state_.load(std::memory_order_relaxed);
  }

  // --- signal sources ------------------------------------------------
  // Breakers register on construction (BreakerOptions::report_to_monitor)
  // and report every state transition.
  void register_breaker(CircuitBreaker* b);
  void unregister_breaker(CircuitBreaker* b);
  void breaker_transition(CircuitBreaker* b, BreakerState from,
                          BreakerState to);

  // Bounded queues report saturation flips, keyed by owner address so
  // independent queues are independent signals.
  void set_queue_pressure(const void* source, bool saturated);
  void forget_queue(const void* source);

  // Liveness watchdog stall signal (action "degrade").
  void set_watchdog_stall(bool stalled);

  // Completion callbacks that threw (fdpool worker survival fix); feeds
  // the snapshot, not the state machine.
  void note_io_callback_error() noexcept;

  // --- observation ---------------------------------------------------
  HealthSnapshot healthz() const;
  std::string healthz_json() const;

  // Single-slot observer fired after every state transition, outside the
  // monitor's lock. Test hook and future server hook.
  using Observer = std::function<void(HealthState from, HealthState to)>;
  void set_observer(Observer obs);

  // Test isolation: drop every signal source and return to Healthy
  // (publishing the transition if one happens). Registered breakers stay
  // registered; their current state is re-counted.
  void reset();

 private:
  // Recomputes the folded state; returns true and fills from/to when the
  // state changed (caller publishes after unlock).
  bool recompute_locked(HealthState* from, HealthState* to);
  void publish(HealthState from, HealthState to);

  mutable std::mutex mutex_;
  std::atomic<HealthState> state_{HealthState::Healthy};
  std::set<CircuitBreaker*> breakers_;      // all registered
  std::set<CircuitBreaker*> open_breakers_; // subset not Closed
  std::set<const void*> saturated_;
  bool watchdog_stall_ = false;
  std::uint64_t unhealthy_since_ns_ = 0;
  std::atomic<std::uint64_t> degraded_ms_{0};
  std::atomic<std::uint64_t> io_cb_errors_{0};
  std::atomic<std::uint64_t> transitions_{0};
  Observer observer_;
};

// The process-wide monitor fed by fdpool, wal, defer, and liveness.
Monitor& monitor() noexcept;

// Convenience: monitor().healthz_json().
std::string healthz();

}  // namespace adtm::health
