// Admission control at the transactional front doors.
//
// The gate is consulted where new work enters the system (kvcache /
// RecoverableCache non-transactional wrappers) and maps the monitor's
// health state to an admission decision:
//
//   Healthy  -> Admit      zero-cost pass-through (one relaxed load)
//   Degraded -> Serialize  the op runs under the gate's mutex — one
//                          front-door op at a time; optimistic concurrency
//                          is what melts under contention, so a degraded
//                          process falls back to lock-based progress
//   Critical -> Shed       throw health::Overloaded before any TM work
//
// Shedding before stm::atomic means a shed request costs no tvar reads,
// no lock acquisitions and no deferred work — the fast-fail latency is
// pinned in BENCH_health.json. The gate is on by default but Healthy
// short-circuits, so it is invisible until something degrades; set
// ADTM_ADMISSION=0 (or set_enabled(false)) to remove it entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

#include "health/health.hpp"

namespace adtm::health {

enum class Admission : std::uint8_t { Admit, Serialize, Shed };

const char* admission_name(Admission a) noexcept;

// Thrown by AdmissionGate::enter when the process is Critical. Callers at
// the front door translate this into their transport's overload error
// (HTTP 503, kvcache miss, ...).
class Overloaded : public std::runtime_error {
 public:
  explicit Overloaded(const std::string& door);
};

class AdmissionGate {
 public:
  explicit AdmissionGate(Monitor& m);

  // RAII admission: released (serialization mutex dropped) at scope exit.
  class Guard {
   public:
    Guard(Guard&& other) noexcept
        : serial_(other.serial_), admission_(other.admission_) {
      other.serial_ = nullptr;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard() {
      if (serial_ != nullptr) serial_->unlock();
    }
    Admission admission() const noexcept { return admission_; }

   private:
    friend class AdmissionGate;
    Guard(std::mutex* serial, Admission a) noexcept
        : serial_(serial), admission_(a) {}
    std::mutex* serial_;
    Admission admission_;
  };

  // The decision the gate would make right now (no side effects).
  Admission decide() const noexcept {
    if (!enabled_.load(std::memory_order_relaxed)) return Admission::Admit;
    switch (monitor_.state()) {
      case HealthState::Healthy: return Admission::Admit;
      case HealthState::Degraded: return Admission::Serialize;
      case HealthState::Critical: return Admission::Shed;
    }
    return Admission::Admit;
  }

  // Front-door entry: Admit returns a trivial guard, Serialize returns a
  // guard holding the serialization mutex, Shed throws Overloaded (and
  // bumps Counter::AdmissionShed). `door` names the entry point for the
  // exception message.
  Guard enter(const char* door);

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  std::uint64_t shed() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }
  std::uint64_t serialized() const noexcept {
    return serialized_.load(std::memory_order_relaxed);
  }

 private:
  Monitor& monitor_;
  std::atomic<bool> enabled_;
  std::mutex serialize_mutex_;
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> serialized_{0};
};

// The process-wide gate over monitor(). Enabled per ADTM_ADMISSION at
// first use; configure() re-applies the knob.
AdmissionGate& gate() noexcept;

}  // namespace adtm::health
