// Per-resource circuit breakers for the deferred-I/O pipeline.
//
// A breaker sits in front of a failure-prone resource (a pooled fd, the
// WAL's disk, a FailurePolicy-guarded deferred op) and turns a persistent
// failure streak into fast-fail instead of a retry storm:
//
//            failure streak >= threshold
//   Closed ------------------------------> Open
//     ^                                     | cooldown elapsed (jittered,
//     | probe succeeds                      v  doubling per failed probe)
//     +--------------------------------- HalfOpen
//                                           | probe fails -> Open again
//
// Closed is the hot path: allow() is a single relaxed load, and
// record_success() is load-only while the failure streak is zero, so a
// closed breaker costs nothing measurable on the I/O fast path (pinned in
// BENCH_health.json). Open fast-fails every caller until the cooldown
// expires; HalfOpen lets exactly one probe through and everyone else keeps
// fast-failing until the probe's verdict is in. Failed probes double the
// cooldown up to a cap, with the same decorrelating jitter idiom as
// common::Backoff (uniform in [3/4·cooldown, cooldown]) so a fleet of
// breakers tripped by one dying disk does not probe in lockstep.
//
// A breaker constructed with failure_threshold == 0 is disabled: allow()
// always returns true and record_*() never changes state. That is the
// process default (ADTM_BREAKER_THRESHOLD=0), so nothing trips unless
// overload control is armed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace adtm::health {

enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

const char* breaker_state_name(BreakerState s) noexcept;

struct BreakerOptions {
  // Consecutive failures that trip the breaker; 0 disables it.
  std::uint32_t failure_threshold;
  // First cooldown before a half-open probe; doubles (jittered) on each
  // failed probe up to max_cooldown_ms.
  std::uint64_t cooldown_ms;
  std::uint64_t max_cooldown_ms;
  // Resource name carried into healthz() and trace events.
  std::string name = "breaker";
  // Observer invoked after every state transition, outside the breaker's
  // lock (the breaker may already have moved on when it runs).
  std::function<void(BreakerState from, BreakerState to)> on_state_change;
  // Report transitions to the process-wide health monitor so open
  // breakers degrade the admission gate. Off for breakers unit-tested in
  // isolation.
  bool report_to_monitor = true;

  // Defaults resolve from adtm::runtime_config() (ADTM_BREAKER_*).
  BreakerOptions();
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions opts = BreakerOptions());
  ~CircuitBreaker();

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  // May this attempt proceed? Closed: yes (one relaxed load). Open: no,
  // until the cooldown expires, at which point the first caller becomes
  // the half-open probe. HalfOpen: only the single probe slot.
  bool allow() noexcept;

  // Verdict of an attempt that allow() admitted.
  void record_success() noexcept;
  void record_failure() noexcept;

  BreakerState state() const noexcept {
    return state_.load(std::memory_order_relaxed);
  }
  bool enabled() const noexcept { return opts_.failure_threshold != 0; }
  const std::string& name() const noexcept { return opts_.name; }

  // Closed/half-open -> open transitions (also Counter::BreakerTrips).
  std::uint64_t trips() const noexcept {
    return trips_.load(std::memory_order_relaxed);
  }
  // Attempts rejected without touching the resource.
  std::uint64_t fast_fails() const noexcept {
    return fast_fails_.load(std::memory_order_relaxed);
  }
  std::uint32_t consecutive_failures() const noexcept {
    return streak_.load(std::memory_order_relaxed);
  }

  // Test support: force the breaker open as if the threshold had been
  // hit, or back to Closed with a fresh streak and base cooldown.
  void trip() noexcept;
  void reset() noexcept;

 private:
  // Returns the transition to publish (observer + monitor), fired by the
  // caller after dropping the lock.
  void transition_locked(BreakerState to) noexcept;
  void publish(BreakerState from, BreakerState to) noexcept;
  std::uint64_t jittered_cooldown_ns() noexcept;

  BreakerOptions opts_;
  mutable std::mutex mutex_;
  std::atomic<BreakerState> state_{BreakerState::Closed};
  std::atomic<std::uint32_t> streak_{0};
  std::uint64_t reopen_at_ns_ = 0;   // guarded by mutex_
  std::uint64_t cooldown_ms_ = 0;    // current (doubling) cooldown
  bool probe_inflight_ = false;      // the single HalfOpen probe slot
  std::atomic<std::uint64_t> trips_{0};
  std::atomic<std::uint64_t> fast_fails_{0};
};

}  // namespace adtm::health
