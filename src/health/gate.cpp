#include "health/gate.hpp"

#include "common/runtime_config.hpp"
#include "common/stats.hpp"

namespace adtm::health {

const char* admission_name(Admission a) noexcept {
  switch (a) {
    case Admission::Admit: return "admit";
    case Admission::Serialize: return "serialize";
    case Admission::Shed: return "shed";
  }
  return "unknown";
}

Overloaded::Overloaded(const std::string& door)
    : std::runtime_error("adtm: overloaded, shedding at " + door) {}

AdmissionGate::AdmissionGate(Monitor& m)
    : monitor_(m), enabled_(runtime_config().admission_gate) {}

AdmissionGate::Guard AdmissionGate::enter(const char* door) {
  switch (decide()) {
    case Admission::Admit:
      return Guard(nullptr, Admission::Admit);
    case Admission::Serialize:
      serialize_mutex_.lock();
      serialized_.fetch_add(1, std::memory_order_relaxed);
      stats().add(Counter::AdmissionSerialized);
      return Guard(&serialize_mutex_, Admission::Serialize);
    case Admission::Shed:
      break;
  }
  shed_.fetch_add(1, std::memory_order_relaxed);
  stats().add(Counter::AdmissionShed);
  throw Overloaded(door);
}

namespace {

// configure() applier: keeps the live gate tracking ADTM_ADMISSION
// overrides, mirroring the obs registration idiom.
void apply_config(const RuntimeConfig& cfg) {
  gate().set_enabled(cfg.admission_gate);
}

struct RegisterApplier {
  RegisterApplier() { detail::register_config_applier(&apply_config); }
} g_register_applier;

}  // namespace

AdmissionGate& gate() noexcept {
  static AdmissionGate g(monitor());
  return g;
}

}  // namespace adtm::health
