#include "health/health.hpp"

#include <sstream>

#include "common/stats.hpp"
#include "common/timing.hpp"
#include "obs/trace.hpp"

namespace adtm::health {

const char* health_state_name(HealthState s) noexcept {
  switch (s) {
    case HealthState::Healthy: return "healthy";
    case HealthState::Degraded: return "degraded";
    case HealthState::Critical: return "critical";
  }
  return "unknown";
}

bool Monitor::recompute_locked(HealthState* from, HealthState* to) {
  const int signals = (open_breakers_.empty() ? 0 : 1) +
                      (saturated_.empty() ? 0 : 1) + (watchdog_stall_ ? 1 : 0);
  const HealthState next = signals == 0   ? HealthState::Healthy
                           : signals == 1 ? HealthState::Degraded
                                          : HealthState::Critical;
  const HealthState cur = state_.load(std::memory_order_relaxed);
  if (next == cur) return false;

  const std::uint64_t now = now_ns();
  if (cur == HealthState::Healthy) {
    unhealthy_since_ns_ = now;  // episode starts
  } else if (next == HealthState::Healthy) {
    // Episode over: credit the degraded wall time.
    const std::uint64_t ms = (now - unhealthy_since_ns_) / 1'000'000;
    degraded_ms_.fetch_add(ms, std::memory_order_relaxed);
    stats().add(Counter::DegradedMs, ms);
    unhealthy_since_ns_ = 0;
  }
  state_.store(next, std::memory_order_relaxed);
  transitions_.fetch_add(1, std::memory_order_relaxed);
  *from = cur;
  *to = next;
  return true;
}

void Monitor::publish(HealthState from, HealthState to) {
  obs::emit(obs::EventType::HealthTransition, obs::AbortCause::None,
            obs::kNoAlgo, static_cast<std::uint64_t>(from),
            static_cast<std::uint32_t>(to));
  Observer obs_copy;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    obs_copy = observer_;
  }
  if (obs_copy) obs_copy(from, to);
}

void Monitor::register_breaker(CircuitBreaker* b) {
  HealthState from, to;
  bool changed;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    breakers_.insert(b);
    if (b->state() != BreakerState::Closed) open_breakers_.insert(b);
    changed = recompute_locked(&from, &to);
  }
  if (changed) publish(from, to);
}

void Monitor::unregister_breaker(CircuitBreaker* b) {
  HealthState from, to;
  bool changed;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    breakers_.erase(b);
    open_breakers_.erase(b);
    changed = recompute_locked(&from, &to);
  }
  if (changed) publish(from, to);
}

void Monitor::breaker_transition(CircuitBreaker* b, BreakerState /*from*/,
                                 BreakerState to) {
  HealthState hfrom, hto;
  bool changed;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (breakers_.count(b) == 0) return;  // raced with unregister
    if (to == BreakerState::Closed) {
      open_breakers_.erase(b);
    } else {
      open_breakers_.insert(b);
    }
    changed = recompute_locked(&hfrom, &hto);
  }
  if (changed) publish(hfrom, hto);
}

void Monitor::set_queue_pressure(const void* source, bool saturated) {
  HealthState from, to;
  bool changed;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (saturated) {
      saturated_.insert(source);
    } else {
      saturated_.erase(source);
    }
    changed = recompute_locked(&from, &to);
  }
  if (changed) publish(from, to);
}

void Monitor::forget_queue(const void* source) {
  set_queue_pressure(source, false);
}

void Monitor::set_watchdog_stall(bool stalled) {
  HealthState from, to;
  bool changed;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    watchdog_stall_ = stalled;
    changed = recompute_locked(&from, &to);
  }
  if (changed) publish(from, to);
}

void Monitor::note_io_callback_error() noexcept {
  io_cb_errors_.fetch_add(1, std::memory_order_relaxed);
}

HealthSnapshot Monitor::healthz() const {
  HealthSnapshot snap;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    snap.state = state_.load(std::memory_order_relaxed);
    snap.open_breakers = static_cast<std::uint32_t>(open_breakers_.size());
    snap.saturated_queues = static_cast<std::uint32_t>(saturated_.size());
    snap.watchdog_stall = watchdog_stall_;
    snap.degraded_ms = degraded_ms_.load(std::memory_order_relaxed);
    if (snap.state != HealthState::Healthy && unhealthy_since_ns_ != 0) {
      snap.degraded_ms += (now_ns() - unhealthy_since_ns_) / 1'000'000;
    }
    snap.transitions = transitions_.load(std::memory_order_relaxed);
    snap.breakers.reserve(breakers_.size());
    for (const CircuitBreaker* b : breakers_) {
      snap.breakers.push_back(BreakerInfo{b->name(), b->state(), b->trips()});
    }
  }
  snap.shed = stats().total(Counter::AdmissionShed);
  snap.serialized = stats().total(Counter::AdmissionSerialized);
  snap.breaker_trips = stats().total(Counter::BreakerTrips);
  snap.io_callback_errors = io_cb_errors_.load(std::memory_order_relaxed);
  return snap;
}

std::string Monitor::healthz_json() const {
  const HealthSnapshot snap = healthz();
  std::ostringstream out;
  out << "{\"state\":\"" << health_state_name(snap.state) << "\""
      << ",\"open_breakers\":" << snap.open_breakers
      << ",\"saturated_queues\":" << snap.saturated_queues
      << ",\"watchdog_stall\":" << (snap.watchdog_stall ? "true" : "false")
      << ",\"degraded_ms\":" << snap.degraded_ms
      << ",\"transitions\":" << snap.transitions
      << ",\"shed\":" << snap.shed
      << ",\"serialized\":" << snap.serialized
      << ",\"breaker_trips\":" << snap.breaker_trips
      << ",\"io_callback_errors\":" << snap.io_callback_errors
      << ",\"breakers\":[";
  for (std::size_t i = 0; i < snap.breakers.size(); ++i) {
    const BreakerInfo& b = snap.breakers[i];
    if (i != 0) out << ',';
    out << "{\"name\":\"" << b.name << "\",\"state\":\""
        << breaker_state_name(b.state) << "\",\"trips\":" << b.trips << '}';
  }
  out << "]}";
  return out.str();
}

void Monitor::set_observer(Observer obs) {
  std::lock_guard<std::mutex> lk(mutex_);
  observer_ = std::move(obs);
}

void Monitor::reset() {
  HealthState from, to;
  bool changed;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    saturated_.clear();
    watchdog_stall_ = false;
    open_breakers_.clear();
    for (CircuitBreaker* b : breakers_) {
      if (b->state() != BreakerState::Closed) open_breakers_.insert(b);
    }
    degraded_ms_.store(0, std::memory_order_relaxed);
    io_cb_errors_.store(0, std::memory_order_relaxed);
    unhealthy_since_ns_ =
        state_.load(std::memory_order_relaxed) == HealthState::Healthy
            ? 0
            : now_ns();
    changed = recompute_locked(&from, &to);
  }
  if (changed) publish(from, to);
}

Monitor& monitor() noexcept {
  static Monitor m;
  return m;
}

std::string healthz() { return monitor().healthz_json(); }

}  // namespace adtm::health
