#include "durable/durable.hpp"

namespace adtm::durable {

void durable_write(stm::Tx& tx, DurableFile& file, DurableBuffer& buffer) {
  // Listing 4, lines 1-6: defer {write, fsync, flag <- true} holding the
  // implicit locks of both the descriptor and the buffer.
  atomic_defer(
      tx,
      [&file, &buffer] {
        const std::string& data = buffer.raw_payload();
        file.raw_file().write_fully(data.data(), data.size());
        file.raw_file().sync();
        buffer.mark_durable();
      },
      file, buffer);
}

void wait_durable(stm::Tx& tx, const DurableBuffer& buffer) {
  if (!buffer.durable(tx)) stm::retry(tx);
}

}  // namespace adtm::durable
