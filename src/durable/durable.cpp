#include "durable/durable.hpp"

#include <stdexcept>
#include <utility>

#include "faultsim/crashpoint.hpp"

namespace adtm::durable {
namespace {

// Crash-torture sites in the deferred write+fsync (see tools/crashmat).
const faultsim::CrashPointId kCpWrite =
    faultsim::register_crash_point("durable.write", "durable", true);
const faultsim::CrashPointId kCpPreFsync =
    faultsim::register_crash_point("durable.pre_fsync", "durable", false);
const faultsim::CrashPointId kCpPostFsync =
    faultsim::register_crash_point("durable.post_fsync", "durable", false);

}  // namespace

void durable_write(stm::Tx& tx, DurableFile& file, DurableBuffer& buffer,
                   FailurePolicy policy) {
  // Listing 4, lines 1-6: defer {write, fsync, flag <- true} holding the
  // implicit locks of both the descriptor and the buffer. The write+fsync
  // runs under the failure policy; `done` survives retries so a transient
  // failure resumes mid-buffer instead of duplicating the prefix.
  atomic_defer(
      tx,
      [&file, &buffer, policy = std::move(policy)] {
        const std::string& data = buffer.raw_payload();
        std::size_t done = 0;
        try {
          run_with_policy(policy, [&] {
            faultsim::crash_point_write(kCpWrite, file.raw_file().fd(),
                                        data.data() + done,
                                        data.size() - done);
            while (done < data.size()) {
              done += file.raw_file().write_some(data.data() + done,
                                                 data.size() - done);
            }
            faultsim::crash_point(kCpPreFsync);
            file.raw_file().sync();
          });
        } catch (...) {
          // Poison before the locks are released (atomic_defer's catch
          // path): a subscriber that gets the lock next sees the failure
          // immediately.
          buffer.mark_failed();
          throw;
        }
        // Between here and mark_durable the data is on disk but the flag
        // is not set: a crash must leave a recovery that still finds the
        // payload (the flag is in-memory only, so both-or-neither holds
        // trivially; the torture harness checks the payload side).
        faultsim::crash_point(kCpPostFsync);
        buffer.mark_durable();
      },
      file, buffer);
}

void wait_durable(stm::Tx& tx, const DurableBuffer& buffer) {
  if (buffer.failed(tx)) {
    throw std::runtime_error(
        "DurableBuffer: deferred write failed permanently");
  }
  if (!buffer.durable(tx)) stm::retry(tx);
}

}  // namespace adtm::durable
