#include "durable/durable.hpp"

#include <stdexcept>
#include <utility>

namespace adtm::durable {

void durable_write(stm::Tx& tx, DurableFile& file, DurableBuffer& buffer,
                   FailurePolicy policy) {
  // Listing 4, lines 1-6: defer {write, fsync, flag <- true} holding the
  // implicit locks of both the descriptor and the buffer. The write+fsync
  // runs under the failure policy; `done` survives retries so a transient
  // failure resumes mid-buffer instead of duplicating the prefix.
  atomic_defer(
      tx,
      [&file, &buffer, policy = std::move(policy)] {
        const std::string& data = buffer.raw_payload();
        std::size_t done = 0;
        try {
          run_with_policy(policy, [&] {
            while (done < data.size()) {
              done += file.raw_file().write_some(data.data() + done,
                                                 data.size() - done);
            }
            file.raw_file().sync();
          });
        } catch (...) {
          // Poison before the locks are released (atomic_defer's catch
          // path): a subscriber that gets the lock next sees the failure
          // immediately.
          buffer.mark_failed();
          throw;
        }
        buffer.mark_durable();
      },
      file, buffer);
}

void wait_durable(stm::Tx& tx, const DurableBuffer& buffer) {
  if (buffer.failed(tx)) {
    throw std::runtime_error(
        "DurableBuffer: deferred write failed permanently");
  }
  if (!buffer.durable(tx)) stm::retry(tx);
}

}  // namespace adtm::durable
