// Durable output with guaranteed order (paper §5.2, Listing 4).
//
// Programs that persist data with fsync sometimes need cross-file ordering:
// file F2 must not be updated until F1's update has reached the disk.
// Deferring the fsync alone cannot express this; the trick is to
// encapsulate the *completion status* of the deferred fsync in a
// Deferrable object. The flag is set inside the deferred operation, while
// the buffer's implicit lock is still held — so a transaction that
// subscribes to the buffer and sees flag==true knows the data is durable,
// and one that runs while the fsync is in flight waits (retry) rather than
// observing the intermediate state.
//
//   // T1: durable write of buf1 to f1
//   stm::atomic([&](stm::Tx& tx) { durable_write(tx, f1, buf1); });
//
//   // T2: write buf2 to f2 only after buf1 is durable
//   stm::atomic([&](stm::Tx& tx) {
//     if (is_durable(tx, buf1)) durable_write(tx, f2, buf2);
//   });
#pragma once

// Failure model: the deferred write+fsync runs under a FailurePolicy —
// transient errors are retried (resuming mid-buffer), permanent ones
// poison the buffer. A poisoned buffer's failed() flag is transactional,
// so wait_durable subscribers raise instead of blocking forever, and the
// implicit TxLocks are released on every path (see atomic_defer).

#include <string>
#include <vector>

#include "defer/atomic_defer.hpp"
#include "defer/failure_policy.hpp"
#include "io/posix_file.hpp"
#include "stm/tvar.hpp"

namespace adtm::durable {

// Deferrable wrapper for an output file descriptor (Listing 4 defer_fd).
class DurableFile : public Deferrable {
 public:
  explicit DurableFile(const std::string& path)
      : file_(io::PosixFile::open_append(path)) {}

  // Raw access for deferred operations (implicit lock held).
  io::PosixFile& raw_file() noexcept { return file_; }

 private:
  io::PosixFile file_;
};

// Deferrable wrapper for an output buffer plus its durability flag
// (Listing 4 defer_buffer).
class DurableBuffer : public Deferrable {
 public:
  explicit DurableBuffer(std::string payload) : payload_(std::move(payload)) {}

  // Transactional view of the durability flag (subscribes first, so a
  // reader blocks while a deferred write/fsync pair is in flight).
  bool durable(stm::Tx& tx) const {
    subscribe(tx);
    return flag_.get(tx);
  }

  // Transactional view of the poison flag: true once the deferred
  // write/fsync failed permanently. This record will never be durable;
  // consumers should fail fast (wait_durable does).
  bool failed(stm::Tx& tx) const {
    subscribe(tx);
    return failed_.get(tx);
  }

  bool failed_direct() const { return failed_.load_direct(); }

  // For deferred operations (implicit lock held).
  const std::string& raw_payload() const noexcept { return payload_; }

 private:
  friend void durable_write(stm::Tx&, DurableFile&, DurableBuffer&,
                            FailurePolicy);

  void mark_durable() {
    // Runs inside the deferred operation, under the implicit lock. The
    // flag update must be transactional so subscribers waiting in retry
    // observe the change.
    stm::atomic([this](stm::Tx& tx) { flag_.set(tx, true); });
  }

  void mark_failed() {
    // Also transactional: wakes wait_durable subscribers so they raise
    // instead of waiting for a durability that will never come.
    stm::atomic([this](stm::Tx& tx) { failed_.set(tx, true); });
  }

  std::string payload_;
  stm::tvar<bool> flag_{false};
  stm::tvar<bool> failed_{false};
};

// Atomically: commit the transaction, then (still appearing atomic to
// subscribers of `file` and `buffer`) write the buffer, fsync, and set the
// durability flag. Must be called inside a transaction. The deferred
// write+fsync runs under `policy` (default: 8 bounded retries on
// transient errors); on permanent failure the buffer is poisoned and the
// failure propagates out of the committing thread's atomic() call.
void durable_write(stm::Tx& tx, DurableFile& file, DurableBuffer& buffer,
                   FailurePolicy policy = {.max_retries = 8,
                                           .backoff_min_spins = 64,
                                           .backoff_max_spins = 64 * 1024,
                                           .retryable = nullptr,
                                           .escalate = nullptr});

// Convenience: subscribe + flag test (Listing 4, lines 7-8).
inline bool is_durable(stm::Tx& tx, const DurableBuffer& buffer) {
  return buffer.durable(tx);
}

// Block (via retry) until the buffer is durable. Raises std::runtime_error
// if the buffer's deferred write failed permanently (fail fast, no hang).
void wait_durable(stm::Tx& tx, const DurableBuffer& buffer);

}  // namespace adtm::durable
