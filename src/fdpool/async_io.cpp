#include "fdpool/async_io.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "common/backoff.hpp"
#include "common/stats.hpp"
#include "faultsim/crashpoint.hpp"
#include "faultsim/faultsim.hpp"
#include "obs/trace.hpp"

namespace adtm::fdpool {
namespace {

// Crash-torture site: an async worker about to issue the positional write
// for a submitted request (see tools/crashmat).
const faultsim::CrashPointId kCpPwrite =
    faultsim::register_crash_point("fdpool.pwrite", "fdpool", true);

// A worker must never hang on an endlessly failing descriptor: transient
// errors get this many backed-off retries, then the error escalates to
// the completion callback.
constexpr unsigned kMaxTransientRetries = 16;

bool transient_errno(int e) noexcept {
  return e == EINTR || e == EAGAIN || e == ENOSPC;
}

}  // namespace

AsyncIOEngine::AsyncIOEngine(unsigned workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AsyncIOEngine::~AsyncIOEngine() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  have_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void AsyncIOEngine::submit_write(int fd, std::uint64_t offset,
                                 std::string data, Completion done) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.push_back(Request{fd, offset, std::move(data), std::move(done)});
  }
  have_work_.notify_one();
}

void AsyncIOEngine::drain() {
  std::unique_lock<std::mutex> lk(mutex_);
  drained_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::uint64_t AsyncIOEngine::completed() const noexcept {
  std::lock_guard<std::mutex> lk(mutex_);
  return completed_;
}

std::uint64_t AsyncIOEngine::failed() const noexcept {
  std::lock_guard<std::mutex> lk(mutex_);
  return failed_;
}

void AsyncIOEngine::worker_loop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      have_work_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      req = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }

    std::error_code ec;
    const char* p = req.data.data();
    std::size_t remaining = req.data.size();
    std::uint64_t off = req.offset;
    faultsim::crash_point_pwrite(kCpPwrite, req.fd, p, remaining, off);
    Backoff backoff;
    unsigned retries = 0;
    while (remaining > 0) {
      std::size_t ask = remaining;
      ssize_t rv;
      int injected = 0;
      if (faultsim::active()) {
        const faultsim::Fault f =
            faultsim::engine().on_syscall(faultsim::Op::Pwrite, req.fd);
        if (f.kind == faultsim::FaultKind::Errno) {
          injected = f.err;
        } else if (f.kind == faultsim::FaultKind::ShortWrite) {
          ask = std::max<std::size_t>(std::min(ask, f.max_bytes), 1);
        } else if (f.kind == faultsim::FaultKind::Crash) {
          // A crash point in an async worker cannot unwind the submitter;
          // persist the torn prefix and surface a permanent I/O error.
          const std::size_t persist = std::min(remaining, f.max_bytes);
          if (persist > 0) {
            (void)!::pwrite(req.fd, p, persist, static_cast<off_t>(off));
          }
          ec = std::error_code(EIO, std::generic_category());
          stats().add(Counter::FailureEscalations);
          break;
        }
      }
      if (injected != 0) {
        errno = injected;
        rv = -1;
      } else {
        rv = ::pwrite(req.fd, p, ask, static_cast<off_t>(off));
      }
      if (rv < 0) {
        if (transient_errno(errno) && retries < kMaxTransientRetries) {
          ++retries;
          stats().add(Counter::FailureRetries);
          backoff.pause();
          continue;
        }
        // Permanent (or retry budget exhausted): report to the callback
        // rather than dropping the error on the worker thread.
        ec = std::error_code(errno, std::generic_category());
        stats().add(Counter::FailureEscalations);
        break;
      }
      p += rv;
      remaining -= static_cast<std::size_t>(rv);
      off += static_cast<std::uint64_t>(rv);
    }

    obs::emit(obs::EventType::IoComplete, obs::AbortCause::None, obs::kNoAlgo,
              req.data.size() - remaining,
              static_cast<std::uint32_t>(ec.value()));
    if (req.done) req.done(ec);

    {
      std::lock_guard<std::mutex> lk(mutex_);
      --in_flight_;
      ++completed_;
      if (ec) ++failed_;
      if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
    }
  }
}

}  // namespace adtm::fdpool
