#include "fdpool/async_io.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "common/backoff.hpp"
#include "common/runtime_config.hpp"
#include "common/stats.hpp"
#include "faultsim/crashpoint.hpp"
#include "faultsim/faultsim.hpp"
#include "health/health.hpp"
#include "obs/trace.hpp"

namespace adtm::fdpool {
namespace {

// Crash-torture site: an async worker about to issue the positional write
// for a submitted request (see tools/crashmat).
const faultsim::CrashPointId kCpPwrite =
    faultsim::register_crash_point("fdpool.pwrite", "fdpool", true);

// Crash-torture site: a worker just dequeued a request it has not yet
// written — dying here loses an accepted-but-unpersisted submission, the
// window the fd-pool's pending counts must tolerate.
const faultsim::CrashPointId kCpDequeue =
    faultsim::register_crash_point("fdpool.worker.dequeue", "fdpool", false);

// Crash-torture site: a caller entered drain() while requests may still
// be queued or in flight — death during the quiesce barrier.
const faultsim::CrashPointId kCpDrain =
    faultsim::register_crash_point("fdpool.drain", "fdpool", false);

// A worker must never hang on an endlessly failing descriptor: transient
// errors get this many backed-off retries, then the error escalates to
// the completion callback.
constexpr unsigned kMaxTransientRetries = 16;

bool transient_errno(int e) noexcept {
  return e == EINTR || e == EAGAIN || e == ENOSPC;
}

health::BreakerOptions engine_breaker_options() {
  health::BreakerOptions opts;  // thresholds from runtime_config
  opts.name = "fdpool.io";
  return opts;
}

}  // namespace

QueuePolicy parse_queue_policy(const std::string& s) noexcept {
  if (s == "shed") return QueuePolicy::Shed;
  if (s == "deadline") return QueuePolicy::Deadline;
  return QueuePolicy::Block;
}

const char* queue_policy_name(QueuePolicy p) noexcept {
  switch (p) {
    case QueuePolicy::Block: return "block";
    case QueuePolicy::Shed: return "shed";
    case QueuePolicy::Deadline: return "deadline";
  }
  return "unknown";
}

QueueOptions::QueueOptions() {
  const RuntimeConfig& cfg = runtime_config();
  cap = cfg.queue_cap;
  policy = parse_queue_policy(cfg.queue_policy);
  deadline_ms = cfg.queue_deadline_ms;
}

AsyncIOEngine::AsyncIOEngine(unsigned workers)
    : AsyncIOEngine(workers, QueueOptions(), engine_breaker_options()) {}

AsyncIOEngine::AsyncIOEngine(unsigned workers, QueueOptions queue,
                             health::BreakerOptions breaker)
    : queue_opts_(queue), breaker_(std::move(breaker)) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AsyncIOEngine::~AsyncIOEngine() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  have_work_.notify_all();
  have_space_.notify_all();  // blocked submitters give up (shed)
  for (auto& w : workers_) w.join();
  health::monitor().forget_queue(this);
}

// Completion callbacks may run user code; one that throws must not kill
// the worker thread (or the submitter, on the synchronous shed path) —
// catch, count, and surface through the health layer instead.
void AsyncIOEngine::run_completion(const Completion& done,
                                   std::error_code ec) noexcept {
  if (!done) return;
  try {
    done(ec);
  } catch (...) {
    callback_errors_.fetch_add(1, std::memory_order_relaxed);
    stats().add(Counter::IoCallbackErrors);
    health::monitor().note_io_callback_error();
  }
}

bool AsyncIOEngine::submit_write(int fd, std::uint64_t offset,
                                 std::string data, Completion done) {
  bool shed = false;
  int pressure_flip = 0;  // +1: report saturated, outside the lock
  {
    std::unique_lock<std::mutex> lk(mutex_);
    const std::size_t cap = queue_opts_.cap;
    if (stopping_) {
      shed = true;
    } else if (cap != 0 && queue_.size() >= cap) {
      if (!pressure_reported_) {
        pressure_reported_ = true;
        pressure_flip = +1;
      }
      switch (queue_opts_.policy) {
        case QueuePolicy::Block:
          stats().add(Counter::QueueBlockWaits);
          have_space_.wait(lk, [this, cap] {
            return stopping_ || queue_.size() < cap;
          });
          shed = stopping_;
          break;
        case QueuePolicy::Deadline:
          stats().add(Counter::QueueBlockWaits);
          have_space_.wait_for(lk,
              std::chrono::milliseconds(queue_opts_.deadline_ms),
              [this, cap] { return stopping_ || queue_.size() < cap; });
          shed = stopping_ || queue_.size() >= cap;
          break;
        case QueuePolicy::Shed:
          shed = true;
          break;
      }
    }
    if (!shed) {
      queue_.push_back(Request{fd, offset, std::move(data), std::move(done)});
      high_water_ = std::max(high_water_, queue_.size());
    }
  }
  if (pressure_flip > 0) health::monitor().set_queue_pressure(this, true);
  if (shed) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    stats().add(Counter::QueueSheds);
    obs::emit(obs::EventType::IoComplete, obs::AbortCause::None, obs::kNoAlgo,
              0, static_cast<std::uint32_t>(EAGAIN));
    run_completion(done, std::error_code(EAGAIN, std::generic_category()));
    return false;
  }
  have_work_.notify_one();
  return true;
}

void AsyncIOEngine::drain() {
  faultsim::crash_point(kCpDrain);
  std::unique_lock<std::mutex> lk(mutex_);
  drained_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::uint64_t AsyncIOEngine::completed() const noexcept {
  std::lock_guard<std::mutex> lk(mutex_);
  return completed_;
}

std::uint64_t AsyncIOEngine::failed() const noexcept {
  std::lock_guard<std::mutex> lk(mutex_);
  return failed_;
}

std::size_t AsyncIOEngine::depth() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return queue_.size();
}

std::size_t AsyncIOEngine::high_water() const noexcept {
  std::lock_guard<std::mutex> lk(mutex_);
  return high_water_;
}

void AsyncIOEngine::worker_loop() {
  for (;;) {
    Request req;
    int pressure_flip = 0;  // -1: report pressure cleared, outside the lock
    {
      std::unique_lock<std::mutex> lk(mutex_);
      have_work_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      req = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      if (queue_opts_.cap != 0) {
        have_space_.notify_one();
        // Hysteresis: saturation clears at half capacity, not cap-1, so
        // one pop does not flap the health signal.
        if (pressure_reported_ && queue_.size() <= queue_opts_.cap / 2) {
          pressure_reported_ = false;
          pressure_flip = -1;
        }
      }
    }
    if (pressure_flip < 0) health::monitor().set_queue_pressure(this, false);
    faultsim::crash_point(kCpDequeue);

    std::error_code ec;
    const char* p = req.data.data();
    std::size_t remaining = req.data.size();
    std::uint64_t off = req.offset;
    if (!breaker_.allow()) {
      // Breaker open: the descriptor is known to be dying — fast-fail
      // without touching it (no retry burst, no syscall).
      ec = std::error_code(EIO, std::generic_category());
    } else {
      faultsim::crash_point_pwrite(kCpPwrite, req.fd, p, remaining, off);
      Backoff backoff;
      unsigned retries = 0;
      while (remaining > 0) {
        std::size_t ask = remaining;
        ssize_t rv;
        int injected = 0;
        if (faultsim::active()) {
          const faultsim::Fault f =
              faultsim::engine().on_syscall(faultsim::Op::Pwrite, req.fd);
          if (f.kind == faultsim::FaultKind::Errno) {
            injected = f.err;
          } else if (f.kind == faultsim::FaultKind::ShortWrite) {
            ask = std::max<std::size_t>(std::min(ask, f.max_bytes), 1);
          } else if (f.kind == faultsim::FaultKind::Crash) {
            // A crash point in an async worker cannot unwind the submitter;
            // persist the torn prefix and surface a permanent I/O error.
            const std::size_t persist = std::min(remaining, f.max_bytes);
            if (persist > 0) {
              (void)!::pwrite(req.fd, p, persist, static_cast<off_t>(off));
            }
            ec = std::error_code(EIO, std::generic_category());
            stats().add(Counter::FailureEscalations);
            break;
          }
        }
        if (injected != 0) {
          errno = injected;
          rv = -1;
        } else {
          rv = ::pwrite(req.fd, p, ask, static_cast<off_t>(off));
        }
        if (rv < 0) {
          if (transient_errno(errno) && retries < kMaxTransientRetries) {
            ++retries;
            stats().add(Counter::FailureRetries);
            backoff.pause();
            continue;
          }
          // Permanent (or retry budget exhausted): report to the callback
          // rather than dropping the error on the worker thread.
          ec = std::error_code(errno, std::generic_category());
          stats().add(Counter::FailureEscalations);
          break;
        }
        p += rv;
        remaining -= static_cast<std::size_t>(rv);
        off += static_cast<std::uint64_t>(rv);
      }
      if (ec) {
        breaker_.record_failure();
      } else {
        breaker_.record_success();
      }
    }

    obs::emit(obs::EventType::IoComplete, obs::AbortCause::None, obs::kNoAlgo,
              req.data.size() - remaining,
              static_cast<std::uint32_t>(ec.value()));
    run_completion(req.done, ec);

    {
      std::lock_guard<std::mutex> lk(mutex_);
      --in_flight_;
      ++completed_;
      if (ec) ++failed_;
      if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
    }
  }
}

}  // namespace adtm::fdpool
