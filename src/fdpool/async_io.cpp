#include "fdpool/async_io.hpp"

#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace adtm::fdpool {

AsyncIOEngine::AsyncIOEngine(unsigned workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AsyncIOEngine::~AsyncIOEngine() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  have_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void AsyncIOEngine::submit_write(int fd, std::uint64_t offset,
                                 std::string data,
                                 std::function<void()> done) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.push_back(Request{fd, offset, std::move(data), std::move(done)});
  }
  have_work_.notify_one();
}

void AsyncIOEngine::drain() {
  std::unique_lock<std::mutex> lk(mutex_);
  drained_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::uint64_t AsyncIOEngine::completed() const noexcept {
  std::lock_guard<std::mutex> lk(mutex_);
  return completed_;
}

void AsyncIOEngine::worker_loop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      have_work_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      req = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }

    const char* p = req.data.data();
    std::size_t remaining = req.data.size();
    std::uint64_t off = req.offset;
    while (remaining > 0) {
      const ssize_t rv = ::pwrite(req.fd, p, remaining,
                                  static_cast<off_t>(off));
      if (rv < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        // Report and drop: an async engine cannot throw into the
        // submitter. The completion callback still runs so metadata
        // (pending counts) stays consistent.
        break;
      }
      p += rv;
      remaining -= static_cast<std::size_t>(rv);
      off += static_cast<std::uint64_t>(rv);
    }

    if (req.done) req.done();

    {
      std::lock_guard<std::mutex> lk(mutex_);
      --in_flight_;
      ++completed_;
      if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
    }
  }
}

}  // namespace adtm::fdpool
