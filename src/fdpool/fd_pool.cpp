#include "fdpool/fd_pool.hpp"

#include <stdexcept>

namespace adtm::fdpool {

FilePool::FilePool(std::string dir, std::size_t max_open,
                   AsyncIOEngine& engine)
    : dir_(std::move(dir)), max_open_(max_open), engine_(engine) {
  if (max_open_ == 0) {
    throw std::invalid_argument("FilePool: max_open must be positive");
  }
}

FilePool::~FilePool() {
  engine_.drain();
  // Descriptors close via PosixFile destructors.
}

std::size_t FilePool::add_node(const std::string& name) {
  auto node = std::make_unique<Node>();
  node->path = dir_ + "/" + name;
  // Create the file eagerly so open_read/open_rw never races on existence.
  io::PosixFile::open_append(node->path);
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

void FilePool::plan_open(stm::Tx& tx, std::size_t id,
                         std::vector<std::size_t>& to_close,
                         bool& needs_open) {
  // Read-only planning phase: any retry() must happen before the first
  // transactional write so the pool also works under direct-mode (CGL /
  // serial) execution, which cannot roll writes back.
  Node& node = *nodes_[id];
  needs_open = false;
  if (node.open.get(tx)) return;

  std::uint64_t open_now = open_count_.get(tx);
  // Evict least-recently-used victims with no in-flight I/O until there is
  // room (Listing 5's close_more loop, folded into one transaction).
  std::uint64_t planned_closes = 0;
  while (open_now - planned_closes >= max_open_) {
    std::size_t victim = nodes_.size();
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (i == id) continue;
      Node& cand = *nodes_[i];
      if (!cand.open.get(tx)) continue;
      if (cand.pending.get(tx) != 0) continue;  // outstanding accesses
      bool already_chosen = false;
      for (const std::size_t c : to_close) already_chosen |= (c == i);
      if (already_chosen) continue;
      const std::uint64_t use = cand.last_use.get(tx);
      if (use < oldest) {
        oldest = use;
        victim = i;
      }
    }
    if (victim == nodes_.size()) {
      // Every open file has I/O in flight: wait for a completion (the
      // pending counters are transactional, so retry wakes us).
      stm::retry(tx);
    }
    to_close.push_back(victim);
    ++planned_closes;
  }
  needs_open = true;
}

void FilePool::prepare_io(stm::Tx& tx, std::size_t id) {
  if (id >= nodes_.size()) throw std::out_of_range("FilePool: bad node id");
  subscribe(tx);  // pool metadata access: wait out deferred open/close

  std::vector<std::size_t> to_close;
  bool needs_open = false;
  plan_open(tx, id, to_close, needs_open);

  // Write phase: apply the plan.
  const std::uint64_t tick = clock_.get(tx) + 1;
  clock_.set(tx, tick);
  nodes_[id]->last_use.set(tx, tick);
  if (!needs_open) return;

  for (const std::size_t v : to_close) nodes_[v]->open.set(tx, false);
  nodes_[id]->open.set(tx, true);
  open_count_.set(tx, open_count_.get(tx) - to_close.size() + 1);

  // The system calls run after commit while the pool's implicit lock is
  // held; concurrent transactions that subscribe to the pool stall until
  // the pool is back in a usable state (paper §5.3).
  atomic_defer(
      tx,
      [this, id, to_close = std::move(to_close)] {
        for (const std::size_t v : to_close) nodes_[v]->file.close();
        nodes_[id]->file = io::PosixFile::open_rw(nodes_[id]->path);
      },
      *this);
}

std::uint64_t FilePool::append_async(std::size_t id, std::string data) {
  if (id >= nodes_.size()) throw std::out_of_range("FilePool: bad node id");
  Node& node = *nodes_[id];
  const auto len = static_cast<std::uint64_t>(data.size());

  // Critical section (a transaction): ensure the file is open, reserve the
  // offset, and count the write as in-flight so the node cannot be chosen
  // as an eviction victim until it completes.
  const std::uint64_t offset = stm::atomic([&](stm::Tx& tx) {
    prepare_io(tx, id);
    const std::uint64_t off = node.size.get(tx);
    node.size.set(tx, off + len);
    node.pending.set(tx, node.pending.get(tx) + 1);
    return off;
  });

  // Data transfer outside any critical section, via async I/O. The fd is
  // stable: pending > 0 forbids eviction, and the deferred open (if any)
  // completed before our transaction could commit (it subscribes).
  engine_.submit_write(node.file.fd(), offset, std::move(data),
                       [this, &node](std::error_code ec) {
                         // The pending count drops on failure too — the
                         // reservation is dead either way — but the error
                         // is recorded, not swallowed.
                         if (ec) {
                           io_errors_.fetch_add(1, std::memory_order_relaxed);
                         }
                         stm::atomic([&](stm::Tx& tx) {
                           node.pending.set(tx, node.pending.get(tx) - 1);
                         });
                       });
  return offset;
}

void FilePool::open_initial() {
  // Listing 5 mySQL_initialize: the loop over tablespace nodes runs as a
  // deferred operation while the pool's implicit lock is held; the
  // transaction only flips metadata.
  stm::atomic([&](stm::Tx& tx) {
    subscribe(tx);
    const std::uint64_t already_open = open_count_.get(tx);
    if (already_open >= max_open_) return;
    const std::size_t room =
        max_open_ - static_cast<std::size_t>(already_open);
    std::vector<std::size_t> to_open;
    for (std::size_t i = 0; i < nodes_.size() && to_open.size() < room; ++i) {
      if (!nodes_[i]->open.get(tx)) to_open.push_back(i);
    }
    if (to_open.empty()) return;
    for (const std::size_t i : to_open) nodes_[i]->open.set(tx, true);
    open_count_.set(tx, open_count_.get(tx) + to_open.size());
    atomic_defer(
        tx,
        [this, to_open = std::move(to_open)] {
          for (const std::size_t i : to_open) {
            nodes_[i]->file = io::PosixFile::open_rw(nodes_[i]->path);
          }
        },
        *this);
  });
}

void FilePool::close_all() {
  // Listing 5 mySQL_destroy. Nodes with in-flight I/O make the
  // transaction retry until their completions land.
  stm::atomic([&](stm::Tx& tx) {
    subscribe(tx);
    std::vector<std::size_t> to_close;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i]->open.get(tx)) continue;
      if (nodes_[i]->pending.get(tx) != 0) stm::retry(tx);
      to_close.push_back(i);
    }
    if (to_close.empty()) return;
    for (const std::size_t i : to_close) nodes_[i]->open.set(tx, false);
    open_count_.set(tx, open_count_.get(tx) - to_close.size());
    atomic_defer(
        tx,
        [this, to_close = std::move(to_close)] {
          for (const std::size_t i : to_close) nodes_[i]->file.close();
        },
        *this);
  });
}

void FilePool::drain() { engine_.drain(); }

std::size_t FilePool::open_count_direct() const {
  return static_cast<std::size_t>(open_count_.load_direct());
}

bool FilePool::node_open_direct(std::size_t id) const {
  return nodes_.at(id)->open.load_direct();
}

std::uint64_t FilePool::node_size_direct(std::size_t id) const {
  return nodes_.at(id)->size.load_direct();
}

std::uint64_t FilePool::node_pending_direct(std::size_t id) const {
  return nodes_.at(id)->pending.load_direct();
}

const std::string& FilePool::node_path(std::size_t id) const {
  return nodes_.at(id)->path;
}

}  // namespace adtm::fdpool
