// Transactional file-descriptor pool (paper §5.3, Listing 5).
//
// Models MySQL InnoDB's tablespace file pool: a bounded set of open file
// descriptors with per-file metadata, where appends reserve their offset
// under the pool's synchronization and transfer data via asynchronous I/O.
// Opening a file when the pool is at capacity requires closing victims —
// open/close system calls that would force irrevocability under plain TM.
//
// With atomic deferral the pool is a Deferrable object: metadata updates
// are transactions that subscribe to the pool, so they run fully in
// parallel on disjoint files; in the uncommon open/close case the system
// calls are deferred from the transaction while concurrent pool accesses
// stall via retry, and resume once the pool is usable again.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "defer/atomic_defer.hpp"
#include "fdpool/async_io.hpp"
#include "io/posix_file.hpp"
#include "stm/tvar.hpp"

namespace adtm::fdpool {

class FilePool : public Deferrable {
 public:
  // Files are created under `dir`; at most `max_open` may be open at once.
  FilePool(std::string dir, std::size_t max_open, AsyncIOEngine& engine);
  ~FilePool();

  // Register a pool file (an InnoDB "node"). Returns its id. Not
  // transactional: call during setup.
  std::size_t add_node(const std::string& name);

  std::size_t node_count() const noexcept { return nodes_.size(); }

  // The InnoDB append protocol: transactionally reserve `data.size()`
  // bytes at the end of `node` (opening it first if needed, possibly
  // deferring open/close system calls), then issue the write
  // asynchronously at the reserved offset. Returns the offset.
  std::uint64_t append_async(std::size_t node, std::string data);

  // Ensure `node` is open, transactionally. If the pool is at capacity,
  // victims without in-flight I/O are closed; both the closes and the open
  // are deferred system calls executed while the pool's implicit lock is
  // held (Listing 5 mySQL_io_prepare). Retries if every open file has
  // in-flight I/O.
  void prepare_io(stm::Tx& tx, std::size_t node);

  // Listing 5's mySQL_initialize: transactionally mark up to max_open
  // nodes open and defer the actual open() system calls on the pool.
  void open_initial();

  // Listing 5's mySQL_destroy: transactionally mark every node closed and
  // defer the close() system calls. In-flight async I/O is waited out
  // (via retry on the pending counters) before a node is closed.
  void close_all();

  // Wait for all submitted I/O to complete.
  void drain();

  // --- direct (non-transactional) observers for tests & diagnostics ---
  std::size_t open_count_direct() const;
  bool node_open_direct(std::size_t node) const;
  std::uint64_t node_size_direct(std::size_t node) const;
  std::uint64_t node_pending_direct(std::size_t node) const;
  const std::string& node_path(std::size_t node) const;

  std::size_t max_open() const noexcept { return max_open_; }

  // Async writes whose error_code was non-zero (reported by the engine's
  // completion callback; the submitter has already returned by then).
  std::uint64_t io_error_count() const noexcept {
    return io_errors_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    std::string path;
    stm::tvar<bool> open{false};
    stm::tvar<std::uint64_t> size{0};     // reserved logical size
    stm::tvar<std::uint64_t> pending{0};  // in-flight async writes
    stm::tvar<std::uint64_t> last_use{0};
    io::PosixFile file;  // only touched in deferred ops (pool lock held)
  };

  // Transactional part of prepare_io; fills `to_close`/`to_open` with the
  // deferred system-call work.
  void plan_open(stm::Tx& tx, std::size_t node,
                 std::vector<std::size_t>& to_close, bool& needs_open);

  std::string dir_;
  std::size_t max_open_;
  AsyncIOEngine& engine_;
  std::vector<std::unique_ptr<Node>> nodes_;
  stm::tvar<std::uint64_t> open_count_{0};
  stm::tvar<std::uint64_t> clock_{0};  // LRU tick
  std::atomic<std::uint64_t> io_errors_{0};
};

}  // namespace adtm::fdpool
