// Minimal asynchronous I/O engine (substrate for the fd-pool use case).
//
// MySQL InnoDB performs file updates via asynchronous I/O: critical
// sections only touch pool metadata, and the data transfer happens outside
// any lock. We reproduce that structure with a submission queue drained by
// background worker threads.
//
// Failure model: a worker retries transient errors (EINTR, EAGAIN,
// ENOSPC) with exponential backoff up to a bound, then reports the errno
// to the request's completion callback as a std::error_code — an async
// engine cannot throw into its submitter, but it must never silently drop
// a failed write either. The callback always runs (success or failure) so
// submitter-side metadata (pending counts) stays consistent. A callback
// that itself throws is caught and counted (Counter::IoCallbackErrors,
// health monitor) instead of killing the worker thread.
//
// Overload contract: the submission queue is bounded (ADTM_QUEUE_CAP;
// 0 restores the old unbounded behavior). A full queue applies the
// configured policy — block until space, shed with EAGAIN, or block up to
// a deadline then shed — and reports saturation to the health monitor so
// the admission gate can push back at the front door instead of letting
// memory grow without bound. A per-engine circuit breaker watches
// permanent write failures and fast-fails requests while the descriptor
// is known to be dying (disabled unless ADTM_BREAKER_THRESHOLD > 0).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "health/breaker.hpp"

namespace adtm::fdpool {

// What a submitter does when the bounded queue is full.
enum class QueuePolicy : std::uint8_t {
  Block,     // wait for space (backpressure propagates to the submitter)
  Shed,      // fail the request immediately with EAGAIN
  Deadline,  // block up to deadline_ms, then shed
};

// Parses "block" / "shed" / "deadline" (unknown strings -> Block).
QueuePolicy parse_queue_policy(const std::string& s) noexcept;
const char* queue_policy_name(QueuePolicy p) noexcept;

struct QueueOptions {
  std::size_t cap;            // 0 = unbounded
  QueuePolicy policy;
  std::uint64_t deadline_ms;  // Deadline policy's block budget

  // Defaults resolve from adtm::runtime_config() (ADTM_QUEUE_*).
  QueueOptions();
};

class AsyncIOEngine {
 public:
  // Completion callback: invoked on a worker thread with a default
  // (falsy) error_code on success, or the failing errno. May start
  // transactions. A shed request's callback runs synchronously on the
  // submitting thread with EAGAIN.
  using Completion = std::function<void(std::error_code)>;

  explicit AsyncIOEngine(unsigned workers = 1);
  AsyncIOEngine(unsigned workers, QueueOptions queue,
                health::BreakerOptions breaker);
  ~AsyncIOEngine();

  AsyncIOEngine(const AsyncIOEngine&) = delete;
  AsyncIOEngine& operator=(const AsyncIOEngine&) = delete;

  // Queue a positional write of `data` to `fd` at `offset`. `done` (if
  // any) runs after the write completes or fails. Returns false when the
  // request was shed (full queue under shed/deadline policy, or the
  // engine is stopping) — the callback has then already run with EAGAIN.
  bool submit_write(int fd, std::uint64_t offset, std::string data,
                    Completion done = {});

  // Block until every submitted request has completed.
  void drain();

  std::uint64_t completed() const noexcept;

  // Requests whose write failed permanently (errno delivered to `done`).
  std::uint64_t failed() const noexcept;

  // --- overload-control observability --------------------------------
  std::size_t depth() const;  // current queue depth
  std::size_t capacity() const noexcept { return queue_opts_.cap; }
  std::size_t high_water() const noexcept;  // deepest the queue ever got
  std::uint64_t shed() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }
  // Completion callbacks that threw (caught; worker survived).
  std::uint64_t callback_errors() const noexcept {
    return callback_errors_.load(std::memory_order_relaxed);
  }
  health::CircuitBreaker& breaker() noexcept { return breaker_; }

 private:
  struct Request {
    int fd;
    std::uint64_t offset;
    std::string data;
    Completion done;
  };

  void worker_loop();
  void run_completion(const Completion& done, std::error_code ec) noexcept;

  QueueOptions queue_opts_;
  health::CircuitBreaker breaker_;

  mutable std::mutex mutex_;
  std::condition_variable have_work_;
  std::condition_variable have_space_;
  std::condition_variable drained_;
  std::deque<Request> queue_;
  unsigned in_flight_ = 0;
  bool stopping_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::size_t high_water_ = 0;
  bool pressure_reported_ = false;
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> callback_errors_{0};
  std::vector<std::thread> workers_;
};

}  // namespace adtm::fdpool
