// Minimal asynchronous I/O engine (substrate for the fd-pool use case).
//
// MySQL InnoDB performs file updates via asynchronous I/O: critical
// sections only touch pool metadata, and the data transfer happens outside
// any lock. We reproduce that structure with a submission queue drained by
// background worker threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace adtm::fdpool {

class AsyncIOEngine {
 public:
  explicit AsyncIOEngine(unsigned workers = 1);
  ~AsyncIOEngine();

  AsyncIOEngine(const AsyncIOEngine&) = delete;
  AsyncIOEngine& operator=(const AsyncIOEngine&) = delete;

  // Queue a positional write of `data` to `fd` at `offset`. `done` (if
  // any) runs on a worker thread after the write completes; it may start
  // transactions.
  void submit_write(int fd, std::uint64_t offset, std::string data,
                    std::function<void()> done = {});

  // Block until every submitted request has completed.
  void drain();

  std::uint64_t completed() const noexcept;

 private:
  struct Request {
    int fd;
    std::uint64_t offset;
    std::string data;
    std::function<void()> done;
  };

  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable have_work_;
  std::condition_variable drained_;
  std::deque<Request> queue_;
  unsigned in_flight_ = 0;
  bool stopping_ = false;
  std::uint64_t completed_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace adtm::fdpool
