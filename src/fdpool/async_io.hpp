// Minimal asynchronous I/O engine (substrate for the fd-pool use case).
//
// MySQL InnoDB performs file updates via asynchronous I/O: critical
// sections only touch pool metadata, and the data transfer happens outside
// any lock. We reproduce that structure with a submission queue drained by
// background worker threads.
//
// Failure model: a worker retries transient errors (EINTR, EAGAIN,
// ENOSPC) with exponential backoff up to a bound, then reports the errno
// to the request's completion callback as a std::error_code — an async
// engine cannot throw into its submitter, but it must never silently drop
// a failed write either. The callback always runs (success or failure) so
// submitter-side metadata (pending counts) stays consistent.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

namespace adtm::fdpool {

class AsyncIOEngine {
 public:
  // Completion callback: invoked on a worker thread with a default
  // (falsy) error_code on success, or the failing errno. May start
  // transactions.
  using Completion = std::function<void(std::error_code)>;

  explicit AsyncIOEngine(unsigned workers = 1);
  ~AsyncIOEngine();

  AsyncIOEngine(const AsyncIOEngine&) = delete;
  AsyncIOEngine& operator=(const AsyncIOEngine&) = delete;

  // Queue a positional write of `data` to `fd` at `offset`. `done` (if
  // any) runs on a worker thread after the write completes or fails.
  void submit_write(int fd, std::uint64_t offset, std::string data,
                    Completion done = {});

  // Block until every submitted request has completed.
  void drain();

  std::uint64_t completed() const noexcept;

  // Requests whose write failed permanently (errno delivered to `done`).
  std::uint64_t failed() const noexcept;

 private:
  struct Request {
    int fd;
    std::uint64_t offset;
    std::string data;
    Completion done;
  };

  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable have_work_;
  std::condition_variable drained_;
  std::deque<Request> queue_;
  unsigned in_flight_ = 0;
  bool stopping_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace adtm::fdpool
