// Process-wide runtime configuration, resolved once.
//
// Every ADTM_* environment knob is read in one place — here — instead of
// scattered env_u64 calls at each subsystem's first use. The resolved
// struct is immutable after startup unless adtm::configure() replaces it
// programmatically, which is how tests override knobs without mutating
// the process environment.
//
// Resolution order: the first call to runtime_config() (typically from
// stm::init or a subsystem singleton) snapshots the environment; a later
// configure() replaces the snapshot and pushes the knobs that gate live
// singletons (per-lock stats, tracing). Subsystems that read their knobs
// at each start — the watchdog (WatchdogOptions), the contention manager
// (stm::init) — pick up the new values naturally.
//
// The full knob table lives in README.md ("Runtime configuration").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace adtm {

struct RuntimeConfig {
  // --- backend selection (stm) ---------------------------------------
  // STM backend by registry id ("tl2", "eager", "cgl", "htmsim",
  // "norec", "2pl", ...), or "auto" for adaptive switching. Empty defers
  // to the stm::Config passed to stm::init. [ADTM_ALGO]
  std::string algo;
  // Adaptive mode: length of one abort-taxonomy observation window.
  // [ADTM_ADAPT_WINDOW_MS]
  std::uint64_t adapt_window_ms = 50;
  // Adaptive mode: minimum dwell on a backend before the next switch
  // (hysteresis against decision flapping). [ADTM_ADAPT_MIN_DWELL_MS]
  std::uint64_t adapt_min_dwell_ms = 200;

  // --- contention management (stm) -----------------------------------
  // Consecutive conflict-abort streak at which a thread climbs the
  // starvation ladder (priority token, then serial escalation); 0
  // disables both rungs. [ADTM_STARVATION_THRESHOLD]
  std::uint32_t starvation_threshold = 64;

  // --- diagnostics (liveness) ----------------------------------------
  // Per-lock wait/hold latency histograms. [ADTM_LOCK_STATS]
  bool lock_stats = false;
  // Park duration after which the watchdog flags a thread as stalled.
  // [ADTM_STALL_BUDGET_MS]
  std::uint64_t stall_budget_ms = 2000;
  // Watchdog sampling period. [ADTM_WATCHDOG_INTERVAL_MS]
  std::uint64_t watchdog_interval_ms = 200;
  // Watchdog enforcement policy: "report", "poison-orphans",
  // "reap-deferred", or "enforce". [ADTM_WATCHDOG_ACTION]
  std::string watchdog_action = "report";
  // Stall budgets before a deferred op is reaped. [ADTM_REAP_BUDGETS]
  std::uint32_t reap_budgets = 4;

  // --- tracing (obs) -------------------------------------------------
  // Transaction tracing gate; when set via environment, tracing starts
  // at the first stm::init. [ADTM_TRACE]
  bool trace = false;
  // Per-thread trace ring capacity in events (rounded up to a power of
  // two; one event = 32 bytes). [ADTM_TRACE_RING]
  std::size_t trace_ring_capacity = 8192;
  // Cap on events retained by the collector; overflow is dropped and
  // counted, never silently merged. [ADTM_TRACE_MAX_EVENTS]
  std::size_t trace_max_events = std::size_t{1} << 18;
  // Chrome trace written here at process exit while tracing is enabled;
  // "" disables the exit writer (call obs::write_chrome_trace yourself).
  // [ADTM_TRACE_OUT]
  std::string trace_out = "adtm_trace.json";

  // --- overload control (health) -------------------------------------
  // Admission gate at the kvcache/RecoverableCache front doors: Healthy
  // admits, Degraded serializes, Critical sheds. [ADTM_ADMISSION]
  bool admission_gate = true;
  // Consecutive failures that trip a circuit breaker (fdpool I/O, WAL
  // flush, FailurePolicy escalation). 0 disables every breaker — the
  // default, so retry/escalation semantics are unchanged unless overload
  // control is armed. [ADTM_BREAKER_THRESHOLD]
  std::uint32_t breaker_threshold = 0;
  // Open-state cooldown before the first half-open probe; doubles with
  // jitter on each failed probe up to the max (common::Backoff idiom).
  // [ADTM_BREAKER_COOLDOWN_MS] / [ADTM_BREAKER_MAX_COOLDOWN_MS]
  std::uint64_t breaker_cooldown_ms = 100;
  std::uint64_t breaker_max_cooldown_ms = 2000;
  // AsyncIOEngine submission-queue capacity; 0 = unbounded (pre-overload
  // behavior). [ADTM_QUEUE_CAP]
  std::size_t queue_cap = 4096;
  // What a submitter does when the queue is full: "block" (wait for
  // space), "shed" (fail the request with EAGAIN), or "deadline" (block
  // up to queue_deadline_ms, then shed). [ADTM_QUEUE_POLICY]
  std::string queue_policy = "block";
  // Block budget for the "deadline" policy. [ADTM_QUEUE_DEADLINE_MS]
  std::uint64_t queue_deadline_ms = 100;
  // WAL group-commit gather window cap in microseconds: the flush-lock
  // holder waits up to this long (scaled by backlog depth) for
  // reserved-but-unstaged records to arrive before fsyncing. 0 = off.
  // [ADTM_WAL_GROUP_WINDOW_US]
  std::uint64_t wal_group_window_us = 0;

  // --- TM-aware sanitizer (tmsan) ------------------------------------
  // Mixed-mode race and deferral-contract checking; when set via the
  // environment the checkers start at the first stm::init. [ADTM_TMSAN]
  bool tmsan = false;
  // Opacity checking (per-transaction read/write history validation at
  // every commit and abort). Much heavier than the other checkers — for
  // test schedules, not production. [ADTM_TMSAN_OPACITY]
  bool tmsan_opacity = false;
  // Capture a real backtrace on only every Nth shadow-table update per
  // thread (1 = every access, 0 = never). Violation-site stacks are
  // always captured; sampling only thins the bookkeeping side, so a
  // report's "other side" stack may read <no stack>. backtrace() is the
  // dominant cost of the race checker — sample it down to make
  // tmsan-armed torture cheap enough for CI. [ADTM_TMSAN_STACK_SAMPLE]
  std::uint32_t tmsan_stack_sample = 1;
};

// Fresh resolution of every knob from the current environment (defaults
// where unset). Does not touch the process-wide snapshot.
RuntimeConfig runtime_config_from_env();

// The process-wide configuration: resolved from the environment on first
// use, replaced by configure().
const RuntimeConfig& runtime_config() noexcept;

// Programmatic override: replaces the process-wide snapshot and applies
// the knobs that gate already-running singletons (lock stats, tracing).
// Call at startup or between test phases, not concurrently with
// transactions.
void configure(const RuntimeConfig& cfg);

namespace detail {
// Downstream subsystems (obs) register a callback invoked by configure()
// so their gates track programmatic overrides without this library
// depending on them. Process-lifetime, small fixed capacity.
void register_config_applier(void (*apply)(const RuntimeConfig&)) noexcept;
}  // namespace detail

}  // namespace adtm
