#include "common/stats.hpp"

#include <cmath>
#include <sstream>

#include "common/runtime_config.hpp"

namespace adtm {

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::TxStart: return "tx_start";
    case Counter::TxCommit: return "tx_commit";
    case Counter::TxAbortConflict: return "tx_abort_conflict";
    case Counter::TxAbortCapacity: return "tx_abort_capacity";
    case Counter::TxAbortExplicit: return "tx_abort_explicit";
    case Counter::TxRetry: return "tx_retry";
    case Counter::TxIrrevocable: return "tx_irrevocable";
    case Counter::TxHtmFallback: return "tx_htm_fallback";
    case Counter::QuiesceWaits: return "quiesce_waits";
    case Counter::DeferredOps: return "deferred_ops";
    case Counter::TxLockAcquires: return "txlock_acquires";
    case Counter::TxLockSubscribes: return "txlock_subscribes";
    case Counter::FaultsInjected: return "faults_injected";
    case Counter::FailureRetries: return "failure_retries";
    case Counter::FailureEscalations: return "failure_escalations";
    case Counter::RetryTimeouts: return "retry_timeouts";
    case Counter::CmEscalations: return "cm_escalations";
    case Counter::DeadlocksDetected: return "deadlocks_detected";
    case Counter::WatchdogStalls: return "watchdog_stalls";
    case Counter::LockLeaks: return "txlock_leaked_holds";
    case Counter::LockPoisons: return "lock_poisons";
    case Counter::CmPriorityAcquired: return "cm_priority_acquired";
    case Counter::CmPriorityWins: return "cm_priority_wins";
    case Counter::CmPriorityYields: return "cm_priority_yields";
    case Counter::WatchdogActions: return "watchdog_actions";
    case Counter::QueueSheds: return "queue_sheds";
    case Counter::QueueBlockWaits: return "queue_block_waits";
    case Counter::AdmissionShed: return "shed";
    case Counter::AdmissionSerialized: return "admission_serialized";
    case Counter::BreakerTrips: return "breaker_trips";
    case Counter::DegradedMs: return "degraded_ms";
    case Counter::IoCallbackErrors: return "io_callback_errors";
    case Counter::BackendSwitches: return "backend_switches";
    case Counter::kCount: break;
  }
  return "unknown";
}

std::uint64_t StatsRegistry::total(Counter c) const noexcept {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->at(static_cast<std::uint32_t>(c))
               .load(std::memory_order_relaxed);
  }
  return sum;
}

void StatsRegistry::reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& counter : *shard) counter.store(0, std::memory_order_relaxed);
  }
}

std::string StatsRegistry::report() const {
  std::ostringstream out;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(Counter::kCount);
       ++i) {
    const auto c = static_cast<Counter>(i);
    const std::uint64_t v = total(c);
    if (v != 0) out << counter_name(c) << " = " << v << '\n';
  }
  return out.str();
}

StatsRegistry& stats() noexcept {
  static StatsRegistry registry;
  return registry;
}

// --- LatencyHistogram ------------------------------------------------------

std::uint64_t LatencyHistogram::count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t LatencyHistogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (p <= 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  auto rank = static_cast<std::uint64_t>(std::ceil(p / 100.0 *
                                                   static_cast<double>(n)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::uint32_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_value(b);
  }
  return bucket_value(kBuckets - 1);
}

void LatencyHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// --- LockStatsRegistry -----------------------------------------------------

namespace {

std::size_t lock_hash(const void* lock) noexcept {
  auto a = reinterpret_cast<std::uintptr_t>(lock);
  a >>= 4;  // locks are word-aligned objects; drop the dead bits
  a *= 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(a >> 56);  // top 8 bits: kEntries = 256
}

}  // namespace

LockStatsRegistry::LockStatsRegistry()
    : enabled_(runtime_config().lock_stats) {}

const LockStatsRegistry::Entry* LockStatsRegistry::find(
    const void* lock) const noexcept {
  const std::size_t start = lock_hash(lock);
  for (std::size_t i = 0; i < kEntries; ++i) {
    const Entry& e = entries_[(start + i) % kEntries];
    const void* key = e.key.load(std::memory_order_acquire);
    if (key == lock) return &e;
    if (key == nullptr) return nullptr;  // claim-once: absent
  }
  return nullptr;
}

LockStatsRegistry::Entry* LockStatsRegistry::find_or_claim(
    const void* lock) noexcept {
  const std::size_t start = lock_hash(lock);
  for (std::size_t i = 0; i < kEntries; ++i) {
    Entry& e = entries_[(start + i) % kEntries];
    const void* key = e.key.load(std::memory_order_acquire);
    if (key == lock) return &e;
    if (key == nullptr) {
      const void* expected = nullptr;
      if (e.key.compare_exchange_strong(expected, lock,
                                        std::memory_order_acq_rel)) {
        return &e;
      }
      if (expected == lock) return &e;  // lost the race to ourselves
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void LockStatsRegistry::record_wait(const void* lock,
                                    std::uint64_t ns) noexcept {
  if (!enabled()) return;
  if (Entry* e = find_or_claim(lock)) e->wait.record(ns);
}

void LockStatsRegistry::record_hold(const void* lock,
                                    std::uint64_t ns) noexcept {
  if (!enabled()) return;
  if (Entry* e = find_or_claim(lock)) e->hold.record(ns);
}

std::uint64_t LockStatsRegistry::wait_count(const void* lock) const noexcept {
  const Entry* e = find(lock);
  return e ? e->wait.count() : 0;
}

std::uint64_t LockStatsRegistry::hold_count(const void* lock) const noexcept {
  const Entry* e = find(lock);
  return e ? e->hold.count() : 0;
}

std::uint64_t LockStatsRegistry::wait_percentile(const void* lock,
                                                 double p) const noexcept {
  const Entry* e = find(lock);
  return e ? e->wait.percentile(p) : 0;
}

std::uint64_t LockStatsRegistry::hold_percentile(const void* lock,
                                                 double p) const noexcept {
  const Entry* e = find(lock);
  return e ? e->hold.percentile(p) : 0;
}

std::string LockStatsRegistry::report() const {
  std::ostringstream out;
  for (const Entry& e : entries_) {
    const void* key = e.key.load(std::memory_order_acquire);
    if (key == nullptr) continue;
    const std::uint64_t waits = e.wait.count();
    const std::uint64_t holds = e.hold.count();
    if (waits == 0 && holds == 0) continue;
    out << "lock " << key << ": " << waits << " waits (p50 "
        << e.wait.percentile(50) / 1000 << " us, p99 "
        << e.wait.percentile(99) / 1000 << " us), " << holds << " holds (p50 "
        << e.hold.percentile(50) / 1000 << " us, p99 "
        << e.hold.percentile(99) / 1000 << " us)\n";
  }
  const std::uint64_t drops = dropped();
  if (drops != 0) {
    out << "lock-stats table full: " << drops << " record(s) dropped\n";
  }
  return out.str();
}

void LockStatsRegistry::reset() noexcept {
  for (Entry& e : entries_) {
    e.key.store(nullptr, std::memory_order_relaxed);
    e.wait.reset();
    e.hold.reset();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

LockStatsRegistry& lock_stats() noexcept {
  static LockStatsRegistry registry;
  return registry;
}

}  // namespace adtm
