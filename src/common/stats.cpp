#include "common/stats.hpp"

#include <sstream>

namespace adtm {

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::TxStart: return "tx_start";
    case Counter::TxCommit: return "tx_commit";
    case Counter::TxAbortConflict: return "tx_abort_conflict";
    case Counter::TxAbortCapacity: return "tx_abort_capacity";
    case Counter::TxAbortExplicit: return "tx_abort_explicit";
    case Counter::TxRetry: return "tx_retry";
    case Counter::TxIrrevocable: return "tx_irrevocable";
    case Counter::TxHtmFallback: return "tx_htm_fallback";
    case Counter::QuiesceWaits: return "quiesce_waits";
    case Counter::DeferredOps: return "deferred_ops";
    case Counter::TxLockAcquires: return "txlock_acquires";
    case Counter::TxLockSubscribes: return "txlock_subscribes";
    case Counter::FaultsInjected: return "faults_injected";
    case Counter::FailureRetries: return "failure_retries";
    case Counter::FailureEscalations: return "failure_escalations";
    case Counter::RetryTimeouts: return "retry_timeouts";
    case Counter::CmEscalations: return "cm_escalations";
    case Counter::DeadlocksDetected: return "deadlocks_detected";
    case Counter::WatchdogStalls: return "watchdog_stalls";
    case Counter::LockLeaks: return "txlock_leaked_holds";
    case Counter::LockPoisons: return "lock_poisons";
    case Counter::kCount: break;
  }
  return "unknown";
}

std::uint64_t StatsRegistry::total(Counter c) const noexcept {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->at(static_cast<std::uint32_t>(c))
               .load(std::memory_order_relaxed);
  }
  return sum;
}

void StatsRegistry::reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& counter : *shard) counter.store(0, std::memory_order_relaxed);
  }
}

std::string StatsRegistry::report() const {
  std::ostringstream out;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(Counter::kCount);
       ++i) {
    const auto c = static_cast<Counter>(i);
    const std::uint64_t v = total(c);
    if (v != 0) out << counter_name(c) << " = " << v << '\n';
  }
  return out.str();
}

StatsRegistry& stats() noexcept {
  static StatsRegistry registry;
  return registry;
}

}  // namespace adtm
