// adtm::Deadline — the one vocabulary type for bounded waits.
//
// Every timed wait in the library (TxLock::acquire/subscribe,
// TxCondVar::wait, stm::retry) takes a Deadline instead of parallel
// `_until(timestamp)` / `_for(duration)` overloads. A Deadline is either
// unbounded (the default) or an absolute now_ns() timestamp:
//
//   lock.acquire(tx);                              // wait forever
//   lock.acquire(tx, std::chrono::milliseconds(5)) // now + 5 ms, computed here
//   auto d = Deadline::in(std::chrono::seconds(1));
//   cv.wait(tx, d);                                // absolute: survives re-execution
//
// The distinction the old API expressed with two names is now where the
// Deadline is *constructed*: building it from a duration inside a
// transaction body re-arms the window on every re-execution (the old
// `_for` sliding semantics); building it once outside the body gives a
// hard total budget (the old `_until` semantics). For a wait that must be
// bounded across re-executions — the RetryTimeout-survives-re-execution
// guarantee — construct the Deadline before entering stm::atomic.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/timing.hpp"

namespace adtm {

class Deadline {
 public:
  // Unbounded: the wait never times out.
  constexpr Deadline() noexcept = default;

  // From a relative timeout: deadline = now + timeout, computed at the
  // call. Implicit so call sites read `acquire(tx, 5ms)`. Non-positive
  // timeouts yield an already-expired deadline (the wait still raises /
  // returns false rather than silently becoming unbounded).
  template <typename Rep, typename Period>
  Deadline(std::chrono::duration<Rep, Period> timeout) noexcept  // NOLINT
      : ns_(from_timeout(
            std::chrono::duration_cast<std::chrono::nanoseconds>(timeout)
                .count())) {}

  // Named constructors for the two explicit forms.
  static constexpr Deadline never() noexcept { return Deadline{}; }
  static constexpr Deadline at(std::uint64_t timestamp_ns) noexcept {
    // 0 is the internal "unbounded" sentinel; an explicit zero timestamp
    // means "already passed", so clamp to the smallest real instant.
    Deadline d;
    d.ns_ = timestamp_ns == 0 ? 1 : timestamp_ns;
    return d;
  }
  static Deadline in(std::chrono::nanoseconds timeout) noexcept {
    return Deadline(timeout);
  }

  constexpr bool unbounded() const noexcept { return ns_ == 0; }

  // The raw now_ns() timestamp; 0 encodes "unbounded" (the runtime's
  // internal convention, which this type makes private vocabulary).
  constexpr std::uint64_t raw_ns() const noexcept { return ns_; }

  bool expired() const noexcept { return ns_ != 0 && now_ns() >= ns_; }

  friend constexpr bool operator==(Deadline a, Deadline b) noexcept {
    return a.ns_ == b.ns_;
  }

 private:
  static std::uint64_t from_timeout(long long ns) noexcept {
    return ns <= 0 ? 1 : now_ns() + static_cast<std::uint64_t>(ns);
  }

  std::uint64_t ns_ = 0;
};

}  // namespace adtm
