// Fatal-error and invariant-check helpers.
//
// ADTM_INVARIANT is used for conditions that indicate a broken runtime
// invariant (never for user errors, which throw std::logic_error from the
// public API). It is active in all build types: a TM runtime with a
// silently broken invariant produces data corruption, which is strictly
// worse than a crash.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace adtm::detail {

[[noreturn]] inline void panic(const char* cond, const char* file, int line,
                               const char* msg) {
  std::fprintf(stderr, "adtm: invariant violated: %s (%s) at %s:%d\n", msg,
               cond, file, line);
  std::abort();
}

}  // namespace adtm::detail

#define ADTM_INVARIANT(cond, msg)                                  \
  do {                                                             \
    if (!(cond)) ::adtm::detail::panic(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
