#include "common/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace adtm {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(raw, &end, 0);
  if (errno != 0 || end == raw) return fallback;
  switch (std::tolower(static_cast<unsigned char>(*end))) {
    case 'k': v <<= 10; ++end; break;
    case 'm': v <<= 20; ++end; break;
    case 'g': v <<= 30; ++end; break;
    default: break;
  }
  if (*end != '\0') return fallback;
  return static_cast<std::uint64_t>(v);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw != nullptr && *raw != '\0') ? std::string(raw) : fallback;
}

}  // namespace adtm
