#include "common/rng.hpp"

namespace adtm {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: recommended seeding procedure for xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Xoshiro256::reseed(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
  // All-zero state is the one forbidden state; splitmix64 cannot produce
  // four zero outputs from any seed, so no further check is needed.
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift rejection-free reduction; the tiny modulo bias
  // is irrelevant for workload generation and backoff jitter.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double Xoshiro256::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Xoshiro256& thread_rng() noexcept {
  thread_local Xoshiro256 rng{
      0x5bd1e995u ^ reinterpret_cast<std::uint64_t>(&rng)};
  return rng;
}

}  // namespace adtm
