// Environment-variable overrides for bench and test workload sizes.
#pragma once

#include <cstdint>
#include <string>

namespace adtm {

// Returns the integer value of `name`, or `fallback` when unset or
// unparsable. Accepts optional k/m/g suffixes (powers of 1024).
std::uint64_t env_u64(const char* name, std::uint64_t fallback) noexcept;

// Returns the string value of `name`, or `fallback` when unset.
std::string env_str(const char* name, const std::string& fallback);

}  // namespace adtm
