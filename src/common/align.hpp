// Cache-line alignment helpers shared by all concurrent modules.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace adtm {

// Destructive interference size. We hard-code 64 rather than using
// std::hardware_destructive_interference_size because the latter is an
// ABI-unstable constant on GCC (warns under -Winterference-size) and 64
// is correct for every x86-64 and most AArch64 parts.
inline constexpr std::size_t kCacheLine = 64;

// Wraps a T so that distinct instances never share a cache line.
// Used for per-thread registry slots and global hot counters.
template <typename T>
struct alignas(kCacheLine) CacheAligned {
  T value{};

  CacheAligned() = default;
  template <typename... Args>
  explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

}  // namespace adtm
