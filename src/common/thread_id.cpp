#include "common/thread_id.hpp"

#include <atomic>

#include "common/align.hpp"
#include "common/panic.hpp"

namespace adtm {
namespace {

// One flag per slot; true while a live thread owns it.
CacheAligned<std::atomic<bool>> g_slot_used[kMaxThreads];
// Bumped every time a slot is claimed, so (id, generation) names one
// thread incarnation exactly even though ids are recycled.
CacheAligned<std::atomic<std::uint32_t>> g_slot_gen[kMaxThreads];
std::atomic<std::uint32_t> g_high_water{0};
std::atomic<std::uint64_t> g_thread_exits{0};

// Exit hooks: registered once, fired on every thread exit. The count is
// published with release so a racing exit sees fully-written entries.
constexpr std::uint32_t kMaxExitHooks = 8;
std::atomic<void (*)(std::uint32_t)> g_exit_hooks[kMaxExitHooks];
std::atomic<std::uint32_t> g_exit_hook_count{0};

void run_exit_hooks(std::uint32_t tid) noexcept {
  const std::uint32_t n = g_exit_hook_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (auto hook = g_exit_hooks[i].load(std::memory_order_acquire)) {
      hook(tid);
    }
  }
}

struct SlotOwner {
  std::uint32_t id;
  std::uint32_t generation;

  SlotOwner() noexcept : id(kNoThread), generation(0) {
    for (std::uint32_t i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      if (g_slot_used[i]->compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        id = i;
        generation =
            g_slot_gen[i]->fetch_add(1, std::memory_order_acq_rel) + 1;
        break;
      }
    }
    ADTM_INVARIANT(id != kNoThread,
                   "more than kMaxThreads concurrent threads use adtm");
    std::uint32_t hw = g_high_water.load(std::memory_order_relaxed);
    while (hw < id + 1 && !g_high_water.compare_exchange_weak(
                              hw, id + 1, std::memory_order_relaxed)) {
    }
  }

  ~SlotOwner() {
    g_slot_used[id]->store(false, std::memory_order_release);
    // Publish the exit so waiters watching for orphaned owners wake up,
    // then push-notify the subscribers that cannot poll the count.
    g_thread_exits.fetch_add(1, std::memory_order_seq_cst);
    run_exit_hooks(id);
  }
};

SlotOwner& slot_owner() noexcept {
  thread_local SlotOwner owner;
  return owner;
}

}  // namespace

std::uint32_t thread_id() noexcept { return slot_owner().id; }

std::uint32_t thread_high_water() noexcept {
  return g_high_water.load(std::memory_order_relaxed);
}

std::uint32_t thread_slot_generation(std::uint32_t id) noexcept {
  if (id >= kMaxThreads) return 0;
  return g_slot_gen[id]->load(std::memory_order_acquire);
}

bool thread_slot_live(std::uint32_t id) noexcept {
  if (id >= kMaxThreads) return false;
  return g_slot_used[id]->load(std::memory_order_acquire);
}

std::uint32_t thread_id_generation() noexcept {
  return slot_owner().generation;
}

std::uint64_t thread_exit_count() noexcept {
  return g_thread_exits.load(std::memory_order_seq_cst);
}

void register_thread_exit_hook(void (*hook)(std::uint32_t tid)) noexcept {
  if (hook == nullptr) return;
  const std::uint32_t n = g_exit_hook_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (g_exit_hooks[i].load(std::memory_order_acquire) == hook) return;
  }
  const std::uint32_t slot =
      g_exit_hook_count.fetch_add(1, std::memory_order_acq_rel);
  ADTM_INVARIANT(slot < kMaxExitHooks, "too many thread-exit hooks");
  g_exit_hooks[slot].store(hook, std::memory_order_release);
}

}  // namespace adtm
