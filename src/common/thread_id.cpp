#include "common/thread_id.hpp"

#include <atomic>

#include "common/align.hpp"
#include "common/panic.hpp"

namespace adtm {
namespace {

// One flag per slot; true while a live thread owns it.
CacheAligned<std::atomic<bool>> g_slot_used[kMaxThreads];
// Bumped every time a slot is claimed, so (id, generation) names one
// thread incarnation exactly even though ids are recycled.
CacheAligned<std::atomic<std::uint32_t>> g_slot_gen[kMaxThreads];
std::atomic<std::uint32_t> g_high_water{0};
std::atomic<std::uint64_t> g_thread_exits{0};

struct SlotOwner {
  std::uint32_t id;
  std::uint32_t generation;

  SlotOwner() noexcept : id(kNoThread), generation(0) {
    for (std::uint32_t i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      if (g_slot_used[i]->compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        id = i;
        generation =
            g_slot_gen[i]->fetch_add(1, std::memory_order_acq_rel) + 1;
        break;
      }
    }
    ADTM_INVARIANT(id != kNoThread,
                   "more than kMaxThreads concurrent threads use adtm");
    std::uint32_t hw = g_high_water.load(std::memory_order_relaxed);
    while (hw < id + 1 && !g_high_water.compare_exchange_weak(
                              hw, id + 1, std::memory_order_relaxed)) {
    }
  }

  ~SlotOwner() {
    g_slot_used[id]->store(false, std::memory_order_release);
    // Publish the exit so waiters watching for orphaned owners wake up.
    g_thread_exits.fetch_add(1, std::memory_order_seq_cst);
  }
};

SlotOwner& slot_owner() noexcept {
  thread_local SlotOwner owner;
  return owner;
}

}  // namespace

std::uint32_t thread_id() noexcept { return slot_owner().id; }

std::uint32_t thread_high_water() noexcept {
  return g_high_water.load(std::memory_order_relaxed);
}

std::uint32_t thread_slot_generation(std::uint32_t id) noexcept {
  if (id >= kMaxThreads) return 0;
  return g_slot_gen[id]->load(std::memory_order_acquire);
}

bool thread_slot_live(std::uint32_t id) noexcept {
  if (id >= kMaxThreads) return false;
  return g_slot_used[id]->load(std::memory_order_acquire);
}

std::uint32_t thread_id_generation() noexcept {
  return slot_owner().generation;
}

std::uint64_t thread_exit_count() noexcept {
  return g_thread_exits.load(std::memory_order_seq_cst);
}

}  // namespace adtm
