#include "common/thread_id.hpp"

#include <atomic>

#include "common/align.hpp"
#include "common/panic.hpp"

namespace adtm {
namespace {

// One flag per slot; true while a live thread owns it.
CacheAligned<std::atomic<bool>> g_slot_used[kMaxThreads];
std::atomic<std::uint32_t> g_high_water{0};

struct SlotOwner {
  std::uint32_t id;

  SlotOwner() noexcept : id(kNoThread) {
    for (std::uint32_t i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      if (g_slot_used[i]->compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        id = i;
        break;
      }
    }
    ADTM_INVARIANT(id != kNoThread,
                   "more than kMaxThreads concurrent threads use adtm");
    std::uint32_t hw = g_high_water.load(std::memory_order_relaxed);
    while (hw < id + 1 && !g_high_water.compare_exchange_weak(
                              hw, id + 1, std::memory_order_relaxed)) {
    }
  }

  ~SlotOwner() { g_slot_used[id]->store(false, std::memory_order_release); }
};

}  // namespace

std::uint32_t thread_id() noexcept {
  thread_local SlotOwner owner;
  return owner.id;
}

std::uint32_t thread_high_water() noexcept {
  return g_high_water.load(std::memory_order_relaxed);
}

}  // namespace adtm
