// ThreadSanitizer happens-before annotations for the TM runtime.
//
// All transactional data is std::atomic, so TSan already models most of
// the runtime's synchronization; these macros add explicit acquire/release
// edges at the points where the protocol's ordering argument spans a chain
// of relaxed accesses TSan cannot connect on its own:
//
//   * the global version clock (commit publishes, begin/extend observe),
//   * orec lock acquire / version release (the relaxed redo-log and undo
//     stores between them piggyback on the orec edge),
//   * the NOrec sequence lock (relaxed value stores are published by the
//     final seq store),
//   * the TxLock hand-off from a committing transaction to the deferred
//     operation's epilogue and from the epilogue's release to the next
//     subscriber.
//
// ADTM_TSAN_ANNOTATE defaults to 1 under -fsanitize=thread (GCC defines
// __SANITIZE_THREAD__, clang reports __has_feature(thread_sanitizer)) and
// 0 otherwise; builds may force it with -DADTM_TSAN_ANNOTATE=0/1. When off
// the macros are no-ops, so annotated code costs nothing in normal builds.
#pragma once

#ifndef ADTM_TSAN_ANNOTATE
#if defined(__SANITIZE_THREAD__)
#define ADTM_TSAN_ANNOTATE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ADTM_TSAN_ANNOTATE 1
#else
#define ADTM_TSAN_ANNOTATE 0
#endif
#else
#define ADTM_TSAN_ANNOTATE 0
#endif
#endif

#if ADTM_TSAN_ANNOTATE

extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}

// The casts accept any pointer (including pointer-to-const: annotating a
// read-side acquire on logically-const lock metadata is the common case).
#define ADTM_TSAN_ACQUIRE(addr) \
  __tsan_acquire(const_cast<void*>(static_cast<const void*>(addr)))
#define ADTM_TSAN_RELEASE(addr) \
  __tsan_release(const_cast<void*>(static_cast<const void*>(addr)))

#else

// The argument is consumed (unevaluated would warn on otherwise-unused
// locals) but the expression folds away entirely.
#define ADTM_TSAN_ACQUIRE(addr) ((void)(addr))
#define ADTM_TSAN_RELEASE(addr) ((void)(addr))

#endif
