// Randomized exponential backoff for contention management.
#pragma once

#include <cstdint>
#include <thread>

#include "common/rng.hpp"

namespace adtm {

// Pause hint for spin loops; compiles to `pause` on x86.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// Exponential randomized backoff. Each call to pause() spins for a random
// duration whose ceiling doubles, then yields the CPU once the ceiling is
// large — important on machines with fewer cores than threads, where pure
// spinning starves the lock holder.
class Backoff {
 public:
  explicit Backoff(std::uint32_t min_spins = 16,
                   std::uint32_t max_spins = 64 * 1024) noexcept
      : ceiling_(min_spins), max_(max_spins) {}

  void pause() noexcept {
    const std::uint64_t spins = thread_rng().next_below(ceiling_) + 1;
    for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
    if (ceiling_ >= kYieldThreshold) std::this_thread::yield();
    if (ceiling_ < max_) ceiling_ *= 2;
  }

  void reset(std::uint32_t min_spins = 16) noexcept { ceiling_ = min_spins; }

  std::uint32_t ceiling() const noexcept { return ceiling_; }

 private:
  static constexpr std::uint32_t kYieldThreshold = 1024;
  std::uint32_t ceiling_;
  std::uint32_t max_;
};

}  // namespace adtm
