// Randomized exponential backoff for contention management.
#pragma once

#include <cstdint>
#include <thread>

#include "common/rng.hpp"

namespace adtm {

// Pause hint for spin loops; compiles to `pause` on x86.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// Exponential randomized backoff. Each call to pause() spins for a random
// duration whose ceiling doubles, then yields the CPU once the ceiling is
// large — important on machines with fewer cores than threads, where pure
// spinning starves the lock holder.
//
// The saturation cap itself is jittered per instance (drawn uniformly from
// [3/4·max_spins, max_spins]): once many escalated waiters all saturate,
// identical caps make their wake-ups phase-lock into convoys that hammer
// the contended line in lockstep; distinct caps keep the retry schedules
// decorrelated.
class Backoff {
 public:
  explicit Backoff(std::uint32_t min_spins = 16,
                   std::uint32_t max_spins = 64 * 1024) noexcept
      : ceiling_(min_spins), max_(jittered_cap(max_spins)) {}

  void pause() noexcept {
    const std::uint64_t spins = next_spins();
    for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
    if (ceiling_ >= kYieldThreshold) std::this_thread::yield();
  }

  // Draw the next pause's spin count and advance the ceiling, without
  // actually spinning. pause() is built on this; tests sample it to check
  // the distribution bounds.
  std::uint32_t next_spins() noexcept {
    const std::uint32_t spins =
        static_cast<std::uint32_t>(thread_rng().next_below(ceiling_)) + 1;
    if (ceiling_ < max_) {
      ceiling_ = (ceiling_ > max_ / 2) ? max_ : ceiling_ * 2;
    }
    return spins;
  }

  // Drop back to the initial window (and redraw the cap jitter). Called
  // when the condition being waited for made progress, so the next
  // contention episode starts gentle instead of inheriting a saturated
  // ceiling.
  void reset(std::uint32_t min_spins = 16) noexcept {
    ceiling_ = min_spins;
    max_ = jittered_cap(nominal_max_);
  }

  std::uint32_t ceiling() const noexcept { return ceiling_; }
  std::uint32_t cap() const noexcept { return max_; }

 private:
  static constexpr std::uint32_t kYieldThreshold = 1024;

  std::uint32_t jittered_cap(std::uint32_t max_spins) noexcept {
    nominal_max_ = max_spins;
    const std::uint32_t jitter_window = max_spins / 4;
    if (jitter_window == 0) return max_spins;
    return max_spins - static_cast<std::uint32_t>(
                           thread_rng().next_below(jitter_window + 1));
  }

  std::uint32_t ceiling_;
  std::uint32_t nominal_max_ = 0;  // declared before max_: jittered_cap
                                   // stores it while max_ is initialized
  std::uint32_t max_;
};

}  // namespace adtm
