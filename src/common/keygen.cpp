#include "common/keygen.hpp"

#include <cmath>

namespace adtm {

ZipfianSpec::ZipfianSpec(std::uint64_t items, double theta)
    : items_(items == 0 ? 1 : items), theta_(theta) {
  // zeta(n, theta) = sum_{i=1..n} 1/i^theta, the only O(n) step. For the
  // degenerate theta ~ 0 case the formula below still holds (it converges
  // to uniform), so no special-casing.
  double zeta2 = 0.0;
  double zetan = 0.0;
  for (std::uint64_t i = 1; i <= items_; ++i) {
    const double term = 1.0 / std::pow(static_cast<double>(i), theta_);
    zetan += term;
    if (i == 2) zeta2 = zetan;
  }
  if (items_ == 1) zeta2 = zetan;
  zetan_ = zetan;
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_ = std::pow(0.5, theta_);
}

std::uint64_t ZipfianGen::next() noexcept {
  // Gray et al., "Quickly generating billion-record synthetic databases"
  // (SIGMOD '94) — the YCSB ZipfianGenerator formula.
  const ZipfianSpec& s = *spec_;
  const double u = rng_.next_double();
  const double uz = u * s.zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + s.half_pow_) return 1;
  const double frac = std::pow(s.eta_ * u - s.eta_ + 1.0, s.alpha_);
  auto rank = static_cast<std::uint64_t>(static_cast<double>(s.items_) * frac);
  return rank >= s.items_ ? s.items_ - 1 : rank;
}

}  // namespace adtm
