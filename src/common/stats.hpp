// Low-overhead event counters for the TM runtime.
//
// Counters are sharded per thread (one cache line per thread per group) so
// that hot-path increments never contend; reads sum across shards and are
// approximate while threads are running, exact at quiescent points (which
// is when tests and benches read them).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/align.hpp"
#include "common/thread_id.hpp"

namespace adtm {

enum class Counter : std::uint32_t {
  TxStart,
  TxCommit,
  TxAbortConflict,   // validation / lock-acquire failure
  TxAbortCapacity,   // HTM-sim footprint overflow
  TxAbortExplicit,   // user-requested abort
  TxRetry,           // Harris retry invocations
  TxIrrevocable,     // entries into serial-irrevocable mode
  TxHtmFallback,     // HTM-sim retries exhausted -> global lock
  QuiesceWaits,      // commits that had to wait for a concurrent tx
  DeferredOps,       // operations executed via atomic_defer
  TxLockAcquires,
  TxLockSubscribes,
  FaultsInjected,       // faults fired by the faultsim engine
  FailureRetries,       // deferred/I-O operations re-tried after a transient failure
  FailureEscalations,   // failures that exhausted retries or were permanent
  RetryTimeouts,        // deadline-aware retry waits that expired
  CmEscalations,        // starvation escalations into serial-irrevocable mode
  DeadlocksDetected,    // wait-graph cycles detected (and broken by raising)
  WatchdogStalls,       // threads the watchdog flagged as stalled past budget
  LockLeaks,            // cross-transaction lock holds leaked by exiting threads
  LockPoisons,          // TxLock/TxCondVar poison events
  kCount
};

const char* counter_name(Counter c) noexcept;

class StatsRegistry {
 public:
  void add(Counter c, std::uint64_t n = 1) noexcept {
    shards_[thread_id()]
        ->at(static_cast<std::uint32_t>(c))
        .fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t total(Counter c) const noexcept;

  void reset() noexcept;

  // Multi-line human-readable dump of all nonzero counters.
  std::string report() const;

 private:
  using Shard =
      std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(Counter::kCount)>;
  CacheAligned<Shard> shards_[kMaxThreads];
};

// Global registry used by the STM runtime and deferral machinery.
StatsRegistry& stats() noexcept;

}  // namespace adtm
