// Low-overhead event counters for the TM runtime.
//
// Counters are sharded per thread (one cache line per thread per group) so
// that hot-path increments never contend; reads sum across shards and are
// approximate while threads are running, exact at quiescent points (which
// is when tests and benches read them).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

#include "common/align.hpp"
#include "common/thread_id.hpp"

namespace adtm {

enum class Counter : std::uint32_t {
  TxStart,
  TxCommit,
  TxAbortConflict,   // validation / lock-acquire failure
  TxAbortCapacity,   // HTM-sim footprint overflow
  TxAbortExplicit,   // user-requested abort
  TxRetry,           // Harris retry invocations
  TxIrrevocable,     // entries into serial-irrevocable mode
  TxHtmFallback,     // HTM-sim retries exhausted -> global lock
  QuiesceWaits,      // commits that had to wait for a concurrent tx
  DeferredOps,       // operations executed via atomic_defer
  TxLockAcquires,
  TxLockSubscribes,
  FaultsInjected,       // faults fired by the faultsim engine
  FailureRetries,       // deferred/I-O operations re-tried after a transient failure
  FailureEscalations,   // failures that exhausted retries or were permanent
  RetryTimeouts,        // deadline-aware retry waits that expired
  CmEscalations,        // starvation escalations into serial-irrevocable mode
  DeadlocksDetected,    // wait-graph cycles detected (and broken by raising)
  WatchdogStalls,       // threads the watchdog flagged as stalled past budget
  LockLeaks,            // cross-transaction lock holds leaked by exiting threads
  LockPoisons,          // TxLock/TxCondVar poison events
  CmPriorityAcquired,   // starved threads that took the priority token
  CmPriorityWins,       // conflicts a privileged thread won by outwaiting
  CmPriorityYields,     // attempts that stood aside for the priority thread
  WatchdogActions,      // enforcement actions (poison/reap) the watchdog fired
  QueueSheds,           // bounded submission-queue rejections (shed/deadline)
  QueueBlockWaits,      // submits that blocked on a full queue (backpressure)
  AdmissionShed,        // front-door work shed by the admission gate
  AdmissionSerialized,  // front-door work serialized while degraded
  BreakerTrips,         // circuit breaker closed/half-open -> open transitions
  DegradedMs,           // milliseconds spent non-Healthy (added at recovery)
  IoCallbackErrors,     // async-I/O completion callbacks that threw
  BackendSwitches,      // adaptive/manual STM backend swaps at the serial gate
  kCount
};

const char* counter_name(Counter c) noexcept;

class StatsRegistry {
 public:
  void add(Counter c, std::uint64_t n = 1) noexcept {
    shards_[thread_id()]
        ->at(static_cast<std::uint32_t>(c))
        .fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t total(Counter c) const noexcept;

  void reset() noexcept;

  // Multi-line human-readable dump of all nonzero counters.
  std::string report() const;

 private:
  using Shard =
      std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(Counter::kCount)>;
  CacheAligned<Shard> shards_[kMaxThreads];
};

// Global registry used by the STM runtime and deferral machinery.
StatsRegistry& stats() noexcept;

// --- latency histograms ----------------------------------------------------
//
// Fixed power-of-two-bucket histogram for nanosecond durations: bucket 0
// holds exact zeros, bucket b >= 1 holds [2^(b-1), 2^b) ns. Concurrent
// record() is wait-free (one relaxed fetch_add); percentile reads are
// approximate while writers run, exact at quiescent points. 64 buckets
// cover the full uint64 range, so nothing is ever clipped.
class LatencyHistogram {
 public:
  static constexpr std::uint32_t kBuckets = 64;

  void record(std::uint64_t ns) noexcept {
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept;

  // Value representative of the bucket holding the p-th percentile sample
  // (p in (0, 100]); 0 when the histogram is empty. The representative is
  // the bucket's geometric midpoint, so the error is bounded by the 2x
  // bucket width — plenty for p50/p99 capacity planning.
  std::uint64_t percentile(double p) const noexcept;

  void reset() noexcept;

  static std::uint32_t bucket_of(std::uint64_t ns) noexcept {
    const auto width = static_cast<std::uint32_t>(std::bit_width(ns));
    return width < kBuckets ? width : kBuckets - 1;
  }

  // Midpoint value reported for samples in bucket b (inverse of bucket_of).
  static std::uint64_t bucket_value(std::uint32_t b) noexcept {
    if (b == 0) return 0;
    if (b == 1) return 1;
    return (std::uint64_t{1} << (b - 1)) + (std::uint64_t{1} << (b - 2));
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

// --- per-lock hold/wait statistics -----------------------------------------
//
// Wait and hold time distributions per TxLock, keyed by lock address in a
// fixed-size claim-once hash table (capacity planning: "which lock do
// threads queue on, and for how long?"). Disabled by default — recording
// costs a histogram insert per committed acquire/release — and switched on
// with ADTM_LOCK_STATS=1 (or set_enabled, for tests). When more than
// kEntries distinct locks are tracked, further locks are dropped and
// counted, never silently merged.
class LockStatsRegistry {
 public:
  static constexpr std::size_t kEntries = 256;

  LockStatsRegistry();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Record one committed wait-for-acquire / hold span for `lock`. No-ops
  // (cheaply) while disabled.
  void record_wait(const void* lock, std::uint64_t ns) noexcept;
  void record_hold(const void* lock, std::uint64_t ns) noexcept;

  // Per-lock accessors; 0 for a lock that was never recorded.
  std::uint64_t wait_count(const void* lock) const noexcept;
  std::uint64_t hold_count(const void* lock) const noexcept;
  std::uint64_t wait_percentile(const void* lock, double p) const noexcept;
  std::uint64_t hold_percentile(const void* lock, double p) const noexcept;

  // Locks that could not be tracked because the table was full.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  // One line per tracked lock: counts plus p50/p99 of both distributions.
  // "" when nothing was recorded.
  std::string report() const;

  // Test support: forget every lock. Not safe concurrently with record().
  void reset() noexcept;

 private:
  struct Entry {
    std::atomic<const void*> key{nullptr};
    LatencyHistogram wait;
    LatencyHistogram hold;
  };

  const Entry* find(const void* lock) const noexcept;
  Entry* find_or_claim(const void* lock) noexcept;

  Entry entries_[kEntries];
  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> dropped_{0};
};

// Global per-lock stats registry fed by TxLock (tests may construct their
// own). Reads ADTM_LOCK_STATS once at first use.
LockStatsRegistry& lock_stats() noexcept;

}  // namespace adtm
