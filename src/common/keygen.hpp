// Seeded key-distribution generators for OLTP-scale workloads.
//
// The OLTP harness (bench/oltp_*) needs the two access patterns every
// serious TM evaluation uses: uniform (the progressiveness-friendly case —
// conflicts scale with 1/keyspace) and zipfian (the skewed case where a
// handful of hot keys carry most of the traffic and contention management
// earns its keep). The zipfian generator is the Gray et al. rejection-free
// construction that YCSB popularized: O(items) precompute of the zeta sum,
// O(1) per sample afterwards.
//
// Everything here is deterministic for a given seed — the statistical
// tests and the perf gate's repeat runs rely on that.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace adtm {

// The O(items) part of zipfian generation, shared across per-thread
// generators: zeta(n, theta) plus the derived constants of Gray's
// formula. Construction walks the harmonic-like sum once; a bench driver
// builds one spec per (items, theta) pair and hands it to every thread.
class ZipfianSpec {
 public:
  ZipfianSpec(std::uint64_t items, double theta);

  std::uint64_t items() const noexcept { return items_; }
  double theta() const noexcept { return theta_; }

 private:
  friend class ZipfianGen;
  std::uint64_t items_;
  double theta_;
  double zetan_;       // zeta(items, theta)
  double alpha_;       // 1 / (1 - theta)
  double eta_;
  double half_pow_;    // 0.5^theta
};

// Per-thread zipfian rank generator (Gray et al. / YCSB ZipfianGenerator).
// next() returns a *rank* in [0, items): 0 is the most popular item, and
// item frequency follows f(r) ~ 1/(r+1)^theta. Use scramble() to scatter
// the hot ranks across the key space so that popularity does not correlate
// with key adjacency (YCSB's "scrambled zipfian").
class ZipfianGen {
 public:
  // A default-constructed generator is inert (KeyPicker's uniform mode);
  // calling next() on it is undefined.
  ZipfianGen() noexcept : spec_(nullptr), rng_(0) {}
  ZipfianGen(const ZipfianSpec& spec, std::uint64_t seed) noexcept
      : spec_(&spec), rng_(seed) {}

  std::uint64_t next() noexcept;

 private:
  const ZipfianSpec* spec_;
  Xoshiro256 rng_;
};

// splitmix64 finalizer: a cheap stateless bijection on 64-bit words, used
// to scatter zipfian ranks over the key space deterministically.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline std::uint64_t scramble(std::uint64_t rank,
                              std::uint64_t items) noexcept {
  return mix64(rank) % items;
}

// One knob-driven key source: uniform over [0, items) or scrambled
// zipfian with the given spec. The spec may be null for uniform.
class KeyPicker {
 public:
  // Uniform.
  KeyPicker(std::uint64_t items, std::uint64_t seed)
      : items_(items), uniform_(seed) {}

  // Scrambled zipfian over spec.items() keys. The spec must outlive the
  // picker.
  KeyPicker(const ZipfianSpec& spec, std::uint64_t seed)
      : items_(spec.items()), uniform_(seed), zipfian_(true),
        gen_(spec, seed) {}

  std::uint64_t next() noexcept {
    if (!zipfian_) return uniform_.next_below(items_);
    return scramble(gen_.next(), items_);
  }

 private:
  std::uint64_t items_;
  Xoshiro256 uniform_;
  bool zipfian_ = false;
  ZipfianGen gen_;
};

}  // namespace adtm
