#include "common/runtime_config.hpp"

#include <mutex>

#include "common/env.hpp"
#include "common/stats.hpp"

namespace adtm {

RuntimeConfig runtime_config_from_env() {
  RuntimeConfig cfg;
  cfg.algo = env_str("ADTM_ALGO", cfg.algo);
  cfg.adapt_window_ms = env_u64("ADTM_ADAPT_WINDOW_MS", cfg.adapt_window_ms);
  cfg.adapt_min_dwell_ms =
      env_u64("ADTM_ADAPT_MIN_DWELL_MS", cfg.adapt_min_dwell_ms);
  cfg.starvation_threshold = static_cast<std::uint32_t>(
      env_u64("ADTM_STARVATION_THRESHOLD", cfg.starvation_threshold));
  cfg.lock_stats = env_u64("ADTM_LOCK_STATS", cfg.lock_stats ? 1 : 0) != 0;
  cfg.stall_budget_ms = env_u64("ADTM_STALL_BUDGET_MS", cfg.stall_budget_ms);
  cfg.watchdog_interval_ms =
      env_u64("ADTM_WATCHDOG_INTERVAL_MS", cfg.watchdog_interval_ms);
  cfg.watchdog_action = env_str("ADTM_WATCHDOG_ACTION", cfg.watchdog_action);
  cfg.reap_budgets = static_cast<std::uint32_t>(
      env_u64("ADTM_REAP_BUDGETS", cfg.reap_budgets));
  cfg.trace = env_u64("ADTM_TRACE", cfg.trace ? 1 : 0) != 0;
  cfg.trace_ring_capacity = static_cast<std::size_t>(
      env_u64("ADTM_TRACE_RING", cfg.trace_ring_capacity));
  cfg.trace_max_events = static_cast<std::size_t>(
      env_u64("ADTM_TRACE_MAX_EVENTS", cfg.trace_max_events));
  cfg.trace_out = env_str("ADTM_TRACE_OUT", cfg.trace_out);
  cfg.admission_gate =
      env_u64("ADTM_ADMISSION", cfg.admission_gate ? 1 : 0) != 0;
  cfg.breaker_threshold = static_cast<std::uint32_t>(
      env_u64("ADTM_BREAKER_THRESHOLD", cfg.breaker_threshold));
  cfg.breaker_cooldown_ms =
      env_u64("ADTM_BREAKER_COOLDOWN_MS", cfg.breaker_cooldown_ms);
  cfg.breaker_max_cooldown_ms =
      env_u64("ADTM_BREAKER_MAX_COOLDOWN_MS", cfg.breaker_max_cooldown_ms);
  cfg.queue_cap =
      static_cast<std::size_t>(env_u64("ADTM_QUEUE_CAP", cfg.queue_cap));
  cfg.queue_policy = env_str("ADTM_QUEUE_POLICY", cfg.queue_policy);
  cfg.queue_deadline_ms =
      env_u64("ADTM_QUEUE_DEADLINE_MS", cfg.queue_deadline_ms);
  cfg.wal_group_window_us =
      env_u64("ADTM_WAL_GROUP_WINDOW_US", cfg.wal_group_window_us);
  cfg.tmsan = env_u64("ADTM_TMSAN", cfg.tmsan ? 1 : 0) != 0;
  cfg.tmsan_opacity =
      env_u64("ADTM_TMSAN_OPACITY", cfg.tmsan_opacity ? 1 : 0) != 0;
  cfg.tmsan_stack_sample = static_cast<std::uint32_t>(
      env_u64("ADTM_TMSAN_STACK_SAMPLE", cfg.tmsan_stack_sample));
  return cfg;
}

namespace {

std::mutex g_config_mutex;

RuntimeConfig& mutable_config() noexcept {
  static RuntimeConfig cfg = runtime_config_from_env();
  return cfg;
}

// Appliers let subsystems in downstream libraries (obs) react to
// configure() without this translation unit depending on them. They
// register from static initializers, which run iff their library is
// linked into the binary.
constexpr std::size_t kMaxAppliers = 4;
void (*g_appliers[kMaxAppliers])(const RuntimeConfig&) = {};
std::size_t g_applier_count = 0;

}  // namespace

namespace detail {

void register_config_applier(void (*apply)(const RuntimeConfig&)) noexcept {
  std::lock_guard<std::mutex> lk(g_config_mutex);
  if (g_applier_count < kMaxAppliers) g_appliers[g_applier_count++] = apply;
}

}  // namespace detail

const RuntimeConfig& runtime_config() noexcept { return mutable_config(); }

void configure(const RuntimeConfig& cfg) {
  std::lock_guard<std::mutex> lk(g_config_mutex);
  mutable_config() = cfg;
  // Knobs gating live singletons take effect immediately; subsystems that
  // read their knobs at each start (watchdog, stm::init) pick the new
  // values up there.
  lock_stats().set_enabled(cfg.lock_stats);
  for (std::size_t i = 0; i < g_applier_count; ++i) g_appliers[i](cfg);
}

}  // namespace adtm
