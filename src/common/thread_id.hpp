// Small dense per-thread identifiers.
//
// The STM runtime, TxLock ownership, and the quiescence machinery all need
// a compact thread id that can be stored in a word and used to index
// fixed-size registries. Slots are recycled when threads exit, so an
// application may create any number of threads over its lifetime as long
// as at most kMaxThreads are *concurrently* using the library.
#pragma once

#include <cstdint>

namespace adtm {

inline constexpr std::uint32_t kMaxThreads = 128;

// Sentinel meaning "no thread" (e.g. an unheld TxLock's owner).
inline constexpr std::uint32_t kNoThread = ~std::uint32_t{0};

// Returns this thread's dense id in [0, kMaxThreads). Allocates a slot on
// first call; the slot is released when the thread exits. Aborts the
// process if more than kMaxThreads threads are concurrently registered.
std::uint32_t thread_id() noexcept;

// Number of slots ever handed out concurrently (high-water mark). Used by
// diagnostics only.
std::uint32_t thread_high_water() noexcept;

// --- slot liveness (liveness layer) ---------------------------------------
//
// Slots are recycled, so a bare id cannot distinguish "thread T still
// running" from "T exited and a new thread inherited its id". Each slot
// therefore carries a generation that is bumped every time the slot is
// (re)claimed; an (id, generation) pair names one thread incarnation
// exactly. This is what lets a TxLock detect that its owner died.

// Current generation of slot `id` (whether or not the slot is in use).
std::uint32_t thread_slot_generation(std::uint32_t id) noexcept;

// True while a live thread owns slot `id`.
bool thread_slot_live(std::uint32_t id) noexcept;

// The calling thread's own (id, generation) incarnation tag.
std::uint32_t thread_id_generation() noexcept;

// True iff the thread incarnation (id, generation) is still running.
inline bool thread_incarnation_live(std::uint32_t id,
                                    std::uint32_t generation) noexcept {
  return id < kMaxThreads && thread_slot_live(id) &&
         thread_slot_generation(id) == generation;
}

// Monotonic count of thread exits. Waiters parked on state owned by
// another thread watch this to wake up (and re-check for orphaned owners)
// when any thread leaves instead of sleeping until their deadline.
std::uint64_t thread_exit_count() noexcept;

// Register a callback invoked on the exiting thread after its slot is
// released and the exit count bumped (argument: the released slot id).
// Polling the exit count only wakes waiters that spin; waiters parked on
// OS primitives (the CGL commit condition variable) and global state keyed
// by thread id (the contention manager's priority token) need a push
// instead. Registration is process-lifetime — hooks cannot be removed —
// and capped at a small fixed count; hooks must be async-signal-ish tame:
// no throwing, no thread exit.
void register_thread_exit_hook(void (*hook)(std::uint32_t tid)) noexcept;

}  // namespace adtm
