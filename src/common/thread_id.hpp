// Small dense per-thread identifiers.
//
// The STM runtime, TxLock ownership, and the quiescence machinery all need
// a compact thread id that can be stored in a word and used to index
// fixed-size registries. Slots are recycled when threads exit, so an
// application may create any number of threads over its lifetime as long
// as at most kMaxThreads are *concurrently* using the library.
#pragma once

#include <cstdint>

namespace adtm {

inline constexpr std::uint32_t kMaxThreads = 128;

// Sentinel meaning "no thread" (e.g. an unheld TxLock's owner).
inline constexpr std::uint32_t kNoThread = ~std::uint32_t{0};

// Returns this thread's dense id in [0, kMaxThreads). Allocates a slot on
// first call; the slot is released when the thread exits. Aborts the
// process if more than kMaxThreads threads are concurrently registered.
std::uint32_t thread_id() noexcept;

// Number of slots ever handed out concurrently (high-water mark). Used by
// diagnostics only.
std::uint32_t thread_high_water() noexcept;

}  // namespace adtm
