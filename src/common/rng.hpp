// Small, fast PRNGs for workload generation and randomized backoff.
//
// Not cryptographic. Deterministic for a given seed, which the tests and
// the synthetic-input generators rely on.
#pragma once

#include <cstdint>

namespace adtm {

// xoshiro256** by Blackman & Vigna: excellent statistical quality, four
// words of state, no multiplication on the critical path of next().
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  std::uint64_t next() noexcept;

  // Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform double in [0, 1).
  double next_double() noexcept;

 private:
  std::uint64_t s_[4];
};

// Per-thread generator seeded from the thread's small id; cheap to grab in
// hot paths (backoff, contention management).
Xoshiro256& thread_rng() noexcept;

}  // namespace adtm
