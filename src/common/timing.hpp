// Monotonic timing helpers for benches and internal statistics.
#pragma once

#include <chrono>
#include <cstdint>

namespace adtm {

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Stopwatch measuring wall-clock time on the steady clock.
class Timer {
 public:
  Timer() noexcept : start_(now_ns()) {}

  void restart() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }
  double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }

 private:
  std::uint64_t start_;
};

}  // namespace adtm
