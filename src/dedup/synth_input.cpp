#include "dedup/synth_input.hpp"

#include <vector>

#include "common/rng.hpp"

namespace adtm::dedup {
namespace {

// A small dictionary gives text-like statistics: LZSS finds plenty of
// matches, like the mixed text/media content of the PARSEC input.
constexpr const char* kWords[] = {
    "transaction", "memory",   "deferral",  "atomic",    "commit",
    "abort",       "retry",    "lock",      "subscribe", "quiesce",
    "pipeline",    "chunk",    "compress",  "output",    "serializable",
    "concurrent",  "thread",   "buffer",    "stream",    "fsync",
    "the",         "a",        "of",        "and",       "with",
};

std::string make_block(Xoshiro256& rng, std::size_t len) {
  std::string block;
  block.reserve(len + 16);
  while (block.size() < len) {
    block += kWords[rng.next_below(std::size(kWords))];
    block.push_back(rng.next_below(16) == 0 ? '\n' : ' ');
    // Sprinkle low-compressibility runs so ratios are not uniform.
    if (rng.next_below(64) == 0) {
      for (int i = 0; i < 24; ++i) {
        block.push_back(static_cast<char>(rng.next()));
      }
    }
  }
  block.resize(len);
  return block;
}

}  // namespace

std::string make_synthetic_input(const SynthParams& params) {
  Xoshiro256 rng{params.seed};
  std::string out;
  out.reserve(params.total_bytes + params.block_bytes);

  std::vector<std::string> history;
  while (out.size() < params.total_bytes) {
    const bool repeat =
        !history.empty() &&
        rng.next_double() < params.dup_fraction;
    if (repeat) {
      out += history[rng.next_below(history.size())];
    } else {
      std::string block = make_block(rng, params.block_bytes);
      out += block;
      history.push_back(std::move(block));
    }
  }
  out.resize(params.total_bytes);
  return out;
}

}  // namespace adtm::dedup
