// Synthetic workload generator for the dedup pipeline.
//
// The paper evaluates on PARSEC dedup's native input (an archive of mixed
// content); that data set is not redistributable here, so we synthesize
// inputs with the two properties the pipeline cares about — see DESIGN.md's
// substitution table:
//  * compressibility: text-like data built from a word dictionary, so the
//    LZSS stage does real work with realistic ratios;
//  * duplication: a configurable fraction of the stream repeats earlier
//    blocks, so the chunk store sees both hits and misses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace adtm::dedup {

struct SynthParams {
  std::size_t total_bytes = 1 << 20;
  double dup_fraction = 0.4;      // fraction of blocks repeating earlier ones
  std::size_t block_bytes = 16 * 1024;  // granularity of repetition
  std::uint64_t seed = 42;
};

// Deterministic for given params.
std::string make_synthetic_input(const SynthParams& params = {});

}  // namespace adtm::dedup
