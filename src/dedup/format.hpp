// Container format of the deduplicated/compressed output stream, plus the
// restore (decompression) path used to verify round trips.
//
// Layout (little-endian):
//   8-byte magic "ADTMDDP1"
//   records until EOF:
//     u8 type
//     type 0 (unique): u32 comp_len, 20-byte SHA-1, comp_len bytes of LZSS
//     type 1 (ref):    20-byte SHA-1 of an earlier unique record
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dedup/sha1.hpp"

namespace adtm::dedup {

inline constexpr char kMagic[8] = {'A', 'D', 'T', 'M', 'D', 'D', 'P', '1'};

// Serialize one unique-chunk record.
std::vector<std::byte> encode_unique(const Sha1Digest& digest,
                                     std::span<const std::byte> compressed);

// Serialize one reference record.
std::vector<std::byte> encode_ref(const Sha1Digest& digest);

// Reconstruct the original stream from a complete container. Throws
// std::runtime_error on malformed input (bad magic, truncated record,
// reference to an unseen digest, digest mismatch after decompression).
std::vector<std::byte> restore(std::span<const std::byte> container);
std::string restore_str(const std::string& container);

}  // namespace adtm::dedup
