#include "dedup/chunk_store.hpp"

#include "stm/api.hpp"

namespace adtm::dedup {

const char* sync_mode_name(SyncMode m) noexcept {
  switch (m) {
    case SyncMode::Pthread: return "Pthread";
    case SyncMode::TmIrrevoc: return "TM";
    case SyncMode::TmDeferIO: return "TM+DeferIO";
    case SyncMode::TmDeferAll: return "TM+DeferAll";
  }
  return "?";
}

bool is_tm(SyncMode m) noexcept { return m != SyncMode::Pthread; }

ChunkStore::ChunkStore(SyncMode mode, std::size_t buckets)
    : mode_(mode), heads_(buckets) {
  if (mode_ == SyncMode::Pthread) {
    bucket_mutexes_.reserve(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
      bucket_mutexes_.push_back(std::make_unique<std::mutex>());
    }
  }
}

ChunkStore::~ChunkStore() {
  for (auto& head : heads_) {
    Entry* e = head.load_direct();
    while (e != nullptr) {
      Entry* next = e->next_;
      delete e;
      e = next;
    }
  }
}

ChunkStore::Entry* ChunkStore::find_in_chain(Entry* head,
                                             const Sha1Digest& digest) const {
  // Chain links and digests are immutable once an entry is published via
  // the bucket head, so traversal needs no per-node synchronization.
  for (Entry* e = head; e != nullptr; e = e->next_) {
    if (e->digest() == digest) return e;
  }
  return nullptr;
}

ChunkStore::LookupResult ChunkStore::lookup_or_insert(
    const Sha1Digest& digest) {
  const std::size_t bucket = digest.prefix64() % heads_.size();
  auto& head = heads_[bucket];

  if (mode_ == SyncMode::Pthread) {
    std::lock_guard<std::mutex> lk(*bucket_mutexes_[bucket]);
    if (Entry* found = find_in_chain(head.load_direct(), digest)) {
      return {found, false};
    }
    auto* e = new Entry;
    e->digest_ = digest;
    e->next_ = head.load_direct();
    // Pthread baseline mode: the bucket mutex serializes every access to
    // this head, so raw tvar stores are the intended fast path here.
    head.store_direct(e);  // txsafety:allow(raw-tvar-access)
    entries_.fetch_add(1, std::memory_order_relaxed);
    return {e, true};
  }

  // TM modes: the bucket head is the only mutable shared word.
  Entry* prepared = nullptr;
  const LookupResult result = stm::atomic([&](stm::Tx& tx) -> LookupResult {
    if (Entry* found = find_in_chain(head.get(tx), digest)) {
      return {found, false};
    }
    if (prepared == nullptr) {  // reuse across re-executions
      prepared = new Entry;
      prepared->digest_ = digest;
    }
    prepared->next_ = head.get(tx);
    head.set(tx, prepared);
    return {prepared, true};
  });
  if (result.inserted) {
    entries_.fetch_add(1, std::memory_order_relaxed);
  } else {
    delete prepared;  // lost the race on a re-execution
  }
  return result;
}

void ChunkStore::publish_compressed(Entry& entry,
                                    std::vector<std::byte> data) {
  entry.compressed_ = std::move(data);
  if (mode_ == SyncMode::Pthread) {
    {
      std::lock_guard<std::mutex> lk(flags_mutex_);
      // Pthread baseline: flags_mutex_ serializes this flag.
      entry.ready_.store_direct(true);  // txsafety:allow(raw-tvar-access)
    }
    ready_cv_.notify_all();
    return;
  }
  // The flag flip must be transactional so output-stage retry waiters wake.
  stm::atomic([&](stm::Tx& tx) { entry.ready_.set(tx, true); });
}

bool ChunkStore::claim_write(Entry& entry) {
  if (mode_ == SyncMode::Pthread) {
    std::unique_lock<std::mutex> lk(flags_mutex_);
    if (entry.written_.load_direct()) return false;
    ready_cv_.wait(lk, [&] { return entry.ready_.load_direct(); });
    // Pthread baseline: flags_mutex_ serializes this flag.
    entry.written_.store_direct(true);  // txsafety:allow(raw-tvar-access)
    return true;
  }
  return stm::atomic([&](stm::Tx& tx) { return claim_write_in(tx, entry); });
}

bool ChunkStore::claim_write_in(stm::Tx& tx, Entry& entry) {
  // In TmDeferAll mode a deferred compression may hold the entry's
  // implicit lock; subscribing suspends us until it completes (§6.2).
  entry.subscribe(tx);
  if (entry.written_.get(tx)) return false;
  if (!entry.ready_.get(tx)) stm::retry(tx);
  entry.written_.set(tx, true);
  return true;
}

std::uint64_t ChunkStore::entry_count() const noexcept {
  return entries_.load(std::memory_order_relaxed);
}

}  // namespace adtm::dedup
