// SHA-1 (FIPS 180-1), implemented from scratch.
//
// PARSEC dedup fingerprints chunks with SHA-1 to detect duplicates; we do
// the same. SHA-1 is not collision-resistant enough for adversarial inputs
// anymore, but for content-addressed deduplication of benign data it is
// exactly what the original benchmark uses.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace adtm::dedup {

struct Sha1Digest {
  std::array<std::uint8_t, 20> bytes{};

  bool operator==(const Sha1Digest&) const = default;
  auto operator<=>(const Sha1Digest&) const = default;

  // First 8 bytes as an integer — used as the dedup hash-table index.
  std::uint64_t prefix64() const noexcept;

  std::string hex() const;
};

// Incremental hasher.
class Sha1 {
 public:
  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(const void* data, std::size_t len) noexcept;
  void update(std::span<const std::byte> data) noexcept {
    update(data.data(), data.size());
  }
  Sha1Digest finish() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t h_[5];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

// One-shot convenience.
Sha1Digest sha1(const void* data, std::size_t len) noexcept;
Sha1Digest sha1(std::span<const std::byte> data) noexcept;
Sha1Digest sha1(const std::string& data) noexcept;

}  // namespace adtm::dedup
