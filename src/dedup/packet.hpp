// Packet: one chunk flowing through the dedup pipeline (PARSEC's chunk
// struct, made deferrable as in the paper's Listing 7).
#pragma once

#include <cstdint>
#include <memory>

#include "defer/deferrable.hpp"
#include "dedup/chunk_store.hpp"
#include "dedup/sha1.hpp"
#include "stm/tbytes.hpp"

namespace adtm::dedup {

struct Packet : Deferrable {
  // Position in the stream: fragment number from the coarse Fragment
  // stage, chunk index within the fragment from Refine. The output stage
  // reorders lexicographically by (frag, idx); last_in_frag tells it when
  // to advance to the next fragment.
  std::uint64_t frag = 0;
  std::uint32_t idx = 0;
  bool last_in_frag = false;

  stm::tbytes data;                 // raw chunk payload
  Sha1Digest digest;                // content fingerprint
  ChunkStore::Entry* entry = nullptr;
  bool compressor = false;          // this packet inserted the entry
};

using PacketPtr = std::unique_ptr<Packet>;

}  // namespace adtm::dedup
