// Bounded MPMC queue for pipeline stages (PARSEC dedup's inter-stage
// queues). Plain mutex/condvar: the queues are not the contended resource
// under study, the critical sections inside the stages are.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace adtm::dedup {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  // Blocks while full. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lk(mutex_);
    not_full_.wait(lk, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Empty optional once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mutex_);
    not_empty_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  // No more pushes; pending items remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace adtm::dedup
