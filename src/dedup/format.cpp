#include "dedup/format.hpp"

#include <cstring>
#include <map>
#include <stdexcept>

#include "dedup/lzss.hpp"

namespace adtm::dedup {
namespace {

constexpr std::uint8_t kTypeUnique = 0;
constexpr std::uint8_t kTypeRef = 1;

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t len) {
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + len);
}

}  // namespace

std::vector<std::byte> encode_unique(const Sha1Digest& digest,
                                     std::span<const std::byte> compressed) {
  std::vector<std::byte> out;
  out.reserve(1 + 4 + 20 + compressed.size());
  out.push_back(static_cast<std::byte>(kTypeUnique));
  const auto len = static_cast<std::uint32_t>(compressed.size());
  append_bytes(out, &len, 4);
  append_bytes(out, digest.bytes.data(), digest.bytes.size());
  append_bytes(out, compressed.data(), compressed.size());
  return out;
}

std::vector<std::byte> encode_ref(const Sha1Digest& digest) {
  std::vector<std::byte> out;
  out.reserve(1 + 20);
  out.push_back(static_cast<std::byte>(kTypeRef));
  append_bytes(out, digest.bytes.data(), digest.bytes.size());
  return out;
}

std::vector<std::byte> restore(std::span<const std::byte> container) {
  if (container.size() < sizeof(kMagic) ||
      std::memcmp(container.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("restore: bad magic");
  }

  std::map<Sha1Digest, std::vector<std::byte>> seen;
  std::vector<std::byte> out;

  std::size_t i = sizeof(kMagic);
  const std::size_t n = container.size();
  const auto need = [&](std::size_t k) {
    if (i + k > n) throw std::runtime_error("restore: truncated record");
  };

  while (i < n) {
    const auto type = static_cast<std::uint8_t>(container[i]);
    ++i;
    if (type == kTypeUnique) {
      need(4 + 20);
      std::uint32_t comp_len;
      std::memcpy(&comp_len, container.data() + i, 4);
      i += 4;
      Sha1Digest digest;
      std::memcpy(digest.bytes.data(), container.data() + i, 20);
      i += 20;
      need(comp_len);
      std::vector<std::byte> raw =
          lzss_decompress(container.subspan(i, comp_len));
      i += comp_len;
      if (sha1(std::span<const std::byte>(raw)) != digest) {
        throw std::runtime_error("restore: digest mismatch");
      }
      out.insert(out.end(), raw.begin(), raw.end());
      seen.emplace(digest, std::move(raw));
    } else if (type == kTypeRef) {
      need(20);
      Sha1Digest digest;
      std::memcpy(digest.bytes.data(), container.data() + i, 20);
      i += 20;
      const auto it = seen.find(digest);
      if (it == seen.end()) {
        throw std::runtime_error("restore: reference to unseen chunk");
      }
      out.insert(out.end(), it->second.begin(), it->second.end());
    } else {
      throw std::runtime_error("restore: unknown record type");
    }
  }
  return out;
}

std::string restore_str(const std::string& container) {
  const auto out = restore(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(container.data()),
      container.size()));
  return std::string(reinterpret_cast<const char*>(out.data()), out.size());
}

}  // namespace adtm::dedup
