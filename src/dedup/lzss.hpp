// LZSS compression, implemented from scratch.
//
// PARSEC dedup compresses unique chunks (with gzip in the original); we
// substitute a dependency-free LZ77/LZSS codec: a 64 KiB sliding window
// with a hash-chain match finder, emitting literal bytes and
// (offset, length) match tokens behind per-8-token flag bytes. The format
// is self-contained and deterministic; `Compress` here plays the role of
// the paper's long-running pure function.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace adtm::dedup {

// Compress `input`; the output begins with the uncompressed size (u32 LE),
// so decompression can pre-allocate. Worst-case expansion is bounded by
// ~1/8 overhead plus the 4-byte header.
std::vector<std::byte> lzss_compress(std::span<const std::byte> input);

// Inverse of lzss_compress. Throws std::runtime_error on malformed input.
std::vector<std::byte> lzss_decompress(std::span<const std::byte> input);

// String conveniences for tests and tools.
std::string lzss_compress_str(const std::string& input);
std::string lzss_decompress_str(const std::string& input);

}  // namespace adtm::dedup
