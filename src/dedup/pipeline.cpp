#include "dedup/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/timing.hpp"
#include "defer/atomic_defer.hpp"
#include "dedup/bounded_queue.hpp"
#include "dedup/format.hpp"
#include "dedup/lzss.hpp"
#include "dedup/packet.hpp"
#include "io/posix_file.hpp"
#include "stm/api.hpp"

namespace adtm::dedup {
namespace {

// Coarse unit of work from the Fragment stage: a fixed-size slice of the
// input that a worker refines into content-defined chunks.
struct Fragment {
  std::uint64_t seq = 0;
  std::span<const std::byte> bytes;
};

struct PipelineCtx {
  explicit PipelineCtx(const Options& o, const std::string& output_path)
      : opts(o),
        store(o.mode),
        fragments(o.queue_capacity),
        done(o.queue_capacity),
        out(io::PosixFile::create(output_path)) {}

  const Options& opts;
  ChunkStore store;
  BoundedQueue<Fragment> fragments;
  BoundedQueue<PacketPtr> done;
  io::PosixFile out;
  std::mutex output_mutex;  // Pthread mode: the original output-stage lock
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> unique{0};
  std::atomic<std::uint64_t> bytes_out{0};
};

// ---------------------------------------------------------------------------
// Compress stage (unique chunks only)
// ---------------------------------------------------------------------------

void compress_chunk(PipelineCtx& ctx, Packet& pkt) {
  switch (ctx.opts.mode) {
    case SyncMode::Pthread: {
      // Plain reads, no instrumentation: the lock-based baseline.
      const std::vector<std::byte> raw = pkt.data.read_direct();
      ctx.store.publish_compressed(*pkt.entry, lzss_compress(raw));
      return;
    }
    case SyncMode::TmIrrevoc:
    case SyncMode::TmDeferIO: {
      // Wang et al.'s transactionalization: Compress runs *inside* a
      // transaction. The chunk bytes are read through the instrumented
      // path, so the transaction's footprint covers the whole chunk —
      // in STM this long transaction delays every concurrent writer's
      // quiescence; in (simulated) HTM it overflows capacity and
      // serializes (paper §6.2).
      std::vector<std::byte> compressed;
      stm::atomic([&](stm::Tx& tx) {
        const std::vector<std::byte> raw = pkt.data.read(tx);
        compressed = lzss_compress(raw);
      });
      ctx.store.publish_compressed(*pkt.entry, std::move(compressed));
      return;
    }
    case SyncMode::TmDeferAll: {
      // The paper's fix: Compress is pure, so defer it. The chunk buffer
      // and its entry are locked for the duration; transactions that
      // touch them suspend, everyone else proceeds — and the transaction
      // itself is tiny (no capacity overflow, no quiescence drag).
      stm::atomic([&](stm::Tx& tx) {
        atomic_defer(
            tx,
            [&ctx, &pkt] {
              const std::vector<std::byte> raw = pkt.data.read_direct();
              ctx.store.publish_compressed(*pkt.entry, lzss_compress(raw));
            },
            pkt, *pkt.entry);
      });
      return;
    }
  }
}

// Refine + Deduplicate + Compress, fused in each worker (the heavy,
// parallel part of the pipeline).
void worker_loop(PipelineCtx& ctx) {
  while (auto item = ctx.fragments.pop()) {
    const Fragment frag = *item;
    // Refine stage: content-defined chunking within the fragment.
    const std::vector<std::size_t> lengths =
        chunk_lengths(frag.bytes, ctx.opts.chunking);
    ctx.chunks.fetch_add(lengths.size(), std::memory_order_relaxed);
    std::size_t offset = 0;
    for (std::size_t i = 0; i < lengths.size(); ++i) {
      auto pkt = std::make_unique<Packet>();
      pkt->frag = frag.seq;
      pkt->idx = static_cast<std::uint32_t>(i);
      pkt->last_in_frag = (i + 1 == lengths.size());
      pkt->data.assign(frag.bytes.subspan(offset, lengths[i]));
      offset += lengths[i];

      // Fingerprint, then the Deduplicate stage's critical section.
      const std::vector<std::byte> raw = pkt->data.read_direct();
      pkt->digest = sha1(std::span<const std::byte>(raw));
      const auto [entry, inserted] = ctx.store.lookup_or_insert(pkt->digest);
      pkt->entry = entry;
      pkt->compressor = inserted;
      if (inserted) {
        ctx.unique.fetch_add(1, std::memory_order_relaxed);
        compress_chunk(ctx, *pkt);
      }
      ctx.done.push(std::move(pkt));
    }
  }
}

// ---------------------------------------------------------------------------
// Reorder + write stage
// ---------------------------------------------------------------------------

void emit_packet(PipelineCtx& ctx, Packet& pkt, bool do_sync) {
  switch (ctx.opts.mode) {
    case SyncMode::Pthread: {
      const bool full = ctx.store.claim_write(*pkt.entry);
      const std::vector<std::byte> record =
          full ? encode_unique(pkt.digest, pkt.entry->compressed())
               : encode_ref(pkt.digest);
      // The original dedup performs output while holding a lock (§6.2).
      std::lock_guard<std::mutex> lk(ctx.output_mutex);
      ctx.out.write_fully(record.data(), record.size());
      if (do_sync) ctx.out.sync();
      ctx.bytes_out.fetch_add(record.size(), std::memory_order_relaxed);
      return;
    }
    case SyncMode::TmIrrevoc: {
      // Lock -> transaction: the write forces irrevocability, which
      // serializes every concurrent transaction in the program.
      stm::atomic([&](stm::Tx& tx) {
        const bool full = ctx.store.claim_write_in(tx, *pkt.entry);
        stm::become_irrevocable(tx);
        const std::vector<std::byte> record =
            full ? encode_unique(pkt.digest, pkt.entry->compressed())
                 : encode_ref(pkt.digest);
        ctx.out.write_fully(record.data(), record.size());
        if (do_sync) ctx.out.sync();
        ctx.bytes_out.fetch_add(record.size(), std::memory_order_relaxed);
      });
      return;
    }
    case SyncMode::TmDeferIO:
    case SyncMode::TmDeferAll: {
      // Listing 7: the packet is deferrable; moving pipeline_out into a
      // deferred operation is a one-line change that preserves fsync
      // ordering and error handling without serializing anyone.
      stm::atomic([&](stm::Tx& tx) {
        // Subscribe the packet's lock before claim_write_in's tvar write:
        // a contended acquire retries, and retrying after a write is
        // illegal under direct-update modes. The atomic_defer below then
        // re-acquires reentrantly and can no longer block.
        pkt.subscribe(tx);
        const bool full = ctx.store.claim_write_in(tx, *pkt.entry);
        atomic_defer(
            tx,
            [&ctx, &pkt, full, do_sync] {
              const std::vector<std::byte> record =
                  full ? encode_unique(pkt.digest, pkt.entry->compressed())
                       : encode_ref(pkt.digest);
              ctx.out.write_fully(record.data(), record.size());
              if (do_sync) ctx.out.sync();
              ctx.bytes_out.fetch_add(record.size(),
                                      std::memory_order_relaxed);
            },
            pkt);
      });
      return;
    }
  }
}

void output_loop(PipelineCtx& ctx) {
  // Reorder by (fragment, chunk index); last_in_frag advances fragments.
  using Key = std::pair<std::uint64_t, std::uint32_t>;
  std::map<Key, PacketPtr> reorder;
  Key expected{0, 0};
  std::uint64_t records = 0;
  while (auto item = ctx.done.pop()) {
    const Key key{(*item)->frag, (*item)->idx};
    reorder.emplace(key, std::move(*item));
    while (!reorder.empty() && reorder.begin()->first == expected) {
      PacketPtr pkt = std::move(reorder.begin()->second);
      reorder.erase(reorder.begin());
      ++records;
      const bool do_sync = ctx.opts.fsync_every != 0 &&
                           records % ctx.opts.fsync_every == 0;
      emit_packet(ctx, *pkt, do_sync);
      expected = pkt->last_in_frag ? Key{pkt->frag + 1, 0}
                                   : Key{pkt->frag, pkt->idx + 1};
    }
  }
  ctx.out.sync();
}

}  // namespace

PipelineStats dedup_stream(std::span<const std::byte> input,
                           const std::string& output_path,
                           const Options& opts) {
  Timer timer;
  PipelineCtx ctx(opts, output_path);

  // Magic header first, before any records.
  ctx.out.write_fully(kMagic, sizeof(kMagic));

  std::vector<std::thread> workers;
  const unsigned n_workers = opts.workers == 0 ? 1 : opts.workers;
  workers.reserve(n_workers);
  for (unsigned i = 0; i < n_workers; ++i) {
    workers.emplace_back([&ctx] { worker_loop(ctx); });
  }
  std::thread output([&ctx] { output_loop(ctx); });

  // Fragment stage: coarse fixed-size slices feed the parallel refiners.
  PipelineStats stats;
  stats.bytes_in = input.size();
  const std::size_t frag_bytes =
      opts.fragment_bytes == 0 ? (1u << 20) : opts.fragment_bytes;
  std::uint64_t frag_seq = 0;
  for (std::size_t offset = 0; offset < input.size();
       offset += frag_bytes) {
    const std::size_t len = std::min(frag_bytes, input.size() - offset);
    ctx.fragments.push(Fragment{frag_seq++, input.subspan(offset, len)});
  }
  ctx.fragments.close();
  for (auto& w : workers) w.join();
  ctx.done.close();
  output.join();

  stats.chunks = ctx.chunks.load();
  stats.unique_chunks = ctx.unique.load();
  stats.dup_chunks = stats.chunks - stats.unique_chunks;
  stats.bytes_out = ctx.bytes_out.load() + sizeof(kMagic);
  stats.seconds = timer.elapsed_s();
  return stats;
}

PipelineStats dedup_stream(const std::string& input,
                           const std::string& output_path,
                           const Options& opts) {
  return dedup_stream(
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(input.data()), input.size()),
      output_path, opts);
}

}  // namespace adtm::dedup
