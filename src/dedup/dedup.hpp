// Umbrella header for the dedup kernel reimplementation.
#pragma once

#include "dedup/chunk_store.hpp"   // IWYU pragma: export
#include "dedup/format.hpp"        // IWYU pragma: export
#include "dedup/lzss.hpp"          // IWYU pragma: export
#include "dedup/pipeline.hpp"      // IWYU pragma: export
#include "dedup/rabin.hpp"         // IWYU pragma: export
#include "dedup/sha1.hpp"          // IWYU pragma: export
#include "dedup/synth_input.hpp"   // IWYU pragma: export
