// The dedup pipeline (PARSEC dedup kernel reimplementation).
//
// Stages, as in the original benchmark:
//   Fragment/Refine  — content-defined chunking (producer)
//   Deduplicate      — global chunk-store lookup/insert   [critical section]
//   Compress         — LZSS of unique chunks              [long / pure]
//   Reorder + Write  — emit records in input order        [output section]
//
// Four synchronization variants (SyncMode) reproduce the paper's Figure 3
// configurations; see chunk_store.hpp. For TM variants, select the STM or
// simulated-HTM algorithm with stm::init() before calling dedup_stream.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "dedup/chunk_store.hpp"
#include "dedup/rabin.hpp"

namespace adtm::dedup {

struct Options {
  SyncMode mode = SyncMode::Pthread;
  unsigned workers = 4;           // refine/dedup/compress stage threads
  ChunkParams chunking{};
  // Coarse Fragment-stage granularity: the producer splits the input into
  // fragments of this size, and the parallel workers refine each into
  // content-defined chunks (chunks never span fragments, as in PARSEC).
  std::size_t fragment_bytes = 1 << 20;
  std::size_t queue_capacity = 128;
  std::size_t fsync_every = 16;   // fsync after every N records (0 = end only)
};

struct PipelineStats {
  std::uint64_t chunks = 0;
  std::uint64_t unique_chunks = 0;
  std::uint64_t dup_chunks = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  double seconds = 0.0;
};

// Deduplicate + compress `input` into the container file at `output_path`.
PipelineStats dedup_stream(std::span<const std::byte> input,
                           const std::string& output_path,
                           const Options& opts = {});

// Convenience for strings (tests/examples).
PipelineStats dedup_stream(const std::string& input,
                           const std::string& output_path,
                           const Options& opts = {});

}  // namespace adtm::dedup
