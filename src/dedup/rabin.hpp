// Content-defined chunking with a rolling Rabin fingerprint (LBFS-style),
// implemented from scratch.
//
// PARSEC dedup's FragmentRefine stage splits coarse fragments into
// variable-size chunks at content-defined boundaries so that identical
// content produces identical chunks regardless of alignment. We use the
// classic table-driven Rabin fingerprint over a sliding window: a boundary
// is declared where (fingerprint & mask) == magic, subject to minimum and
// maximum chunk sizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace adtm::dedup {

struct ChunkParams {
  std::size_t window = 48;          // sliding window bytes
  std::size_t min_chunk = 1024;     // never cut before this many bytes
  std::size_t max_chunk = 32768;    // always cut at this many bytes
  std::uint64_t mask = (1u << 12) - 1;  // avg chunk ~ 4 KiB + min
  std::uint64_t magic = 0x78;       // boundary when (fp & mask) == magic
};

// Rolling Rabin fingerprint over a fixed-size window.
class RabinRoller {
 public:
  explicit RabinRoller(std::size_t window = 48) noexcept;

  // Slide one byte into the window (and the oldest byte out once the
  // window is full). Returns the fingerprint after the slide.
  std::uint64_t roll(std::uint8_t in) noexcept;

  std::uint64_t fingerprint() const noexcept { return fp_; }
  void reset() noexcept;
  std::size_t window() const noexcept { return win_.size(); }

 private:
  std::uint64_t fp_ = 0;
  std::uint64_t pop_ = 0;  // P^(window-1): weight of the byte leaving
  std::vector<std::uint8_t> win_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
};

// Split `data` into chunk lengths summing to data.size(). Deterministic
// for given params; identical byte sequences produce identical splits.
std::vector<std::size_t> chunk_lengths(std::span<const std::byte> data,
                                       const ChunkParams& params = {});

}  // namespace adtm::dedup
