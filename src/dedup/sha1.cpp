#include "dedup/sha1.hpp"

#include <algorithm>
#include <cstring>

namespace adtm::dedup {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

std::uint64_t Sha1Digest::prefix64() const noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

std::string Sha1Digest::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (const std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

void Sha1::reset() noexcept {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  total_len_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[i * 4]} << 24) |
           (std::uint32_t{block[i * 4 + 1]} << 16) |
           (std::uint32_t{block[i * 4 + 2]} << 8) |
           std::uint32_t{block[i * 4 + 3]};
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_len_ += len;
  if (buffered_ > 0) {
    const std::size_t take = std::min(len, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    len -= take;
    if (buffered_ == sizeof(buffer_)) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (len >= 64) {
    process_block(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffered_ = len;
  }
}

Sha1Digest Sha1::finish() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(&zero, 1);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Bypass total_len_ accounting for the length field itself (it is
  // already included in bit_len captured above, and update() counting it
  // is harmless since we are done), then flush.
  update(len_be, 8);

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest.bytes[static_cast<std::size_t>(i * 4)] =
        static_cast<std::uint8_t>(h_[i] >> 24);
    digest.bytes[static_cast<std::size_t>(i * 4 + 1)] =
        static_cast<std::uint8_t>(h_[i] >> 16);
    digest.bytes[static_cast<std::size_t>(i * 4 + 2)] =
        static_cast<std::uint8_t>(h_[i] >> 8);
    digest.bytes[static_cast<std::size_t>(i * 4 + 3)] =
        static_cast<std::uint8_t>(h_[i]);
  }
  return digest;
}

Sha1Digest sha1(const void* data, std::size_t len) noexcept {
  Sha1 h;
  h.update(data, len);
  return h.finish();
}

Sha1Digest sha1(std::span<const std::byte> data) noexcept {
  return sha1(data.data(), data.size());
}

Sha1Digest sha1(const std::string& data) noexcept {
  return sha1(data.data(), data.size());
}

}  // namespace adtm::dedup
