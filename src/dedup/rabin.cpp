#include "dedup/rabin.hpp"

namespace adtm::dedup {
namespace {

// Karp–Rabin rolling hash: fp = sum(win[i] * P^(W-1-i)) mod 2^64. An odd
// multiplier makes the map over Z/2^64 well-mixed in the low bits we test
// against the boundary mask.
constexpr std::uint64_t kPrime = 0x3B9ACA07'D2D848A5ULL | 1;

std::uint64_t pow_prime(std::size_t e) noexcept {
  std::uint64_t r = 1, b = kPrime;
  while (e > 0) {
    if (e & 1) r *= b;
    b *= b;
    e >>= 1;
  }
  return r;
}

}  // namespace

RabinRoller::RabinRoller(std::size_t window) noexcept
    : win_(window == 0 ? 1 : window, 0) {
  pop_ = pow_prime(win_.size() - 1);
}

void RabinRoller::reset() noexcept {
  fp_ = 0;
  pos_ = 0;
  filled_ = 0;
  win_.assign(win_.size(), 0);
}

std::uint64_t RabinRoller::roll(std::uint8_t in) noexcept {
  if (filled_ == win_.size()) {
    const std::uint8_t out = win_[pos_];
    fp_ -= static_cast<std::uint64_t>(out + 1) * pop_;
  } else {
    ++filled_;
  }
  win_[pos_] = in;
  pos_ = (pos_ + 1) % win_.size();
  // +1 biases away from the all-zeros fixed point (runs of 0x00 would
  // otherwise keep fp == 0 forever and either always or never match).
  fp_ = fp_ * kPrime + (static_cast<std::uint64_t>(in) + 1);
  return fp_;
}

std::vector<std::size_t> chunk_lengths(std::span<const std::byte> data,
                                       const ChunkParams& params) {
  std::vector<std::size_t> lengths;
  if (data.empty()) return lengths;

  RabinRoller roller(params.window);
  std::size_t chunk_start = 0;
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint64_t fp = roller.roll(static_cast<std::uint8_t>(data[i]));
    ++i;
    const std::size_t len = i - chunk_start;
    const bool at_boundary =
        len >= params.min_chunk && (fp & params.mask) == params.magic;
    if (at_boundary || len >= params.max_chunk) {
      lengths.push_back(len);
      chunk_start = i;
      // Restart the window so each chunk's boundaries depend only on its
      // own content — required for identical chunks to split identically
      // wherever they appear.
      roller.reset();
    }
  }
  if (chunk_start < data.size()) {
    lengths.push_back(data.size() - chunk_start);
  }
  return lengths;
}

}  // namespace adtm::dedup
