#include "dedup/lzss.hpp"

#include <cstring>
#include <stdexcept>

namespace adtm::dedup {
namespace {

// Format constants.
//
// token stream: [u32 raw_size] then groups of (flag byte + 8 tokens).
// flag bit i set   -> token i is a match: u16 (offset-1), u8 (len-kMinMatch)
// flag bit i clear -> token i is a literal byte
constexpr std::size_t kWindow = 64 * 1024;   // max match offset
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + 255;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;
constexpr std::size_t kMaxChainSteps = 32;  // match-finder effort bound

std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<std::byte> lzss_compress(std::span<const std::byte> input) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(input.data());
  const std::size_t n = input.size();

  std::vector<std::byte> out;
  out.reserve(n / 2 + 16);
  const auto put = [&out](std::uint8_t b) {
    out.push_back(static_cast<std::byte>(b));
  };
  put(static_cast<std::uint8_t>(n));
  put(static_cast<std::uint8_t>(n >> 8));
  put(static_cast<std::uint8_t>(n >> 16));
  put(static_cast<std::uint8_t>(n >> 24));

  // head[h]: most recent position with hash h; chain[i % kWindow]: previous
  // position with the same hash as position i.
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> chain(kWindow, -1);

  std::size_t flag_pos = 0;  // index of the current flag byte in `out`
  int tokens_in_group = 8;   // forces a fresh flag byte at the start

  const auto begin_token = [&](bool is_match) {
    if (tokens_in_group == 8) {
      flag_pos = out.size();
      put(0);
      tokens_in_group = 0;
    }
    if (is_match) {
      out[flag_pos] = static_cast<std::byte>(
          static_cast<std::uint8_t>(out[flag_pos]) |
          (1u << tokens_in_group));
    }
    ++tokens_in_group;
  };

  std::size_t i = 0;
  while (i < n) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (i + kMinMatch <= n) {
      const std::uint32_t h = hash4(data + i);
      std::int64_t cand = head[h];
      std::size_t steps = 0;
      const std::size_t max_len = std::min(kMaxMatch, n - i);
      while (cand >= 0 && steps < kMaxChainSteps &&
             i - static_cast<std::size_t>(cand) <= kWindow) {
        const auto c = static_cast<std::size_t>(cand);
        std::size_t len = 0;
        while (len < max_len && data[c + len] == data[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_off = i - c;
          if (len == max_len) break;
        }
        cand = chain[c % kWindow];
        ++steps;
      }
    }

    if (best_len >= kMinMatch) {
      begin_token(true);
      const std::uint16_t off = static_cast<std::uint16_t>(best_off - 1);
      put(static_cast<std::uint8_t>(off));
      put(static_cast<std::uint8_t>(off >> 8));
      put(static_cast<std::uint8_t>(best_len - kMinMatch));
      // Index every covered position so later matches can reach into this
      // region.
      const std::size_t end = i + best_len;
      while (i < end) {
        if (i + kMinMatch <= n) {
          const std::uint32_t h = hash4(data + i);
          chain[i % kWindow] = head[h];
          head[h] = static_cast<std::int64_t>(i);
        }
        ++i;
      }
    } else {
      begin_token(false);
      put(data[i]);
      if (i + kMinMatch <= n) {
        const std::uint32_t h = hash4(data + i);
        chain[i % kWindow] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      ++i;
    }
  }
  return out;
}

std::vector<std::byte> lzss_decompress(std::span<const std::byte> input) {
  const auto* in = reinterpret_cast<const std::uint8_t*>(input.data());
  const std::size_t n = input.size();
  if (n < 4) throw std::runtime_error("lzss: truncated header");

  const std::size_t raw_size = std::size_t{in[0]} | (std::size_t{in[1]} << 8) |
                               (std::size_t{in[2]} << 16) |
                               (std::size_t{in[3]} << 24);
  std::vector<std::byte> out;
  out.reserve(raw_size);

  std::size_t i = 4;
  std::uint8_t flags = 0;
  int bits_left = 0;
  while (out.size() < raw_size) {
    if (bits_left == 0) {
      if (i >= n) throw std::runtime_error("lzss: missing flag byte");
      flags = in[i++];
      bits_left = 8;
    }
    const bool is_match = (flags & 1) != 0;
    flags >>= 1;
    --bits_left;

    if (is_match) {
      if (i + 3 > n) throw std::runtime_error("lzss: truncated match");
      const std::size_t off =
          (std::size_t{in[i]} | (std::size_t{in[i + 1]} << 8)) + 1;
      const std::size_t len = std::size_t{in[i + 2]} + kMinMatch;
      i += 3;
      if (off > out.size()) throw std::runtime_error("lzss: bad offset");
      if (out.size() + len > raw_size) {
        throw std::runtime_error("lzss: output overrun");
      }
      // Byte-by-byte copy: overlapping matches (off < len) replicate,
      // exactly as LZ77 semantics require.
      std::size_t src = out.size() - off;
      for (std::size_t k = 0; k < len; ++k) {
        out.push_back(out[src + k]);
      }
    } else {
      if (i >= n) throw std::runtime_error("lzss: truncated literal");
      out.push_back(static_cast<std::byte>(in[i++]));
    }
  }
  return out;
}

std::string lzss_compress_str(const std::string& input) {
  const auto out = lzss_compress(
      std::span<const std::byte>(reinterpret_cast<const std::byte*>(input.data()),
                                 input.size()));
  return std::string(reinterpret_cast<const char*>(out.data()), out.size());
}

std::string lzss_decompress_str(const std::string& input) {
  const auto out = lzss_decompress(
      std::span<const std::byte>(reinterpret_cast<const std::byte*>(input.data()),
                                 input.size()));
  return std::string(reinterpret_cast<const char*>(out.data()), out.size());
}

}  // namespace adtm::dedup
