// The deduplication hash table (PARSEC dedup's global chunk database).
//
// Maps SHA-1 digests to chunk entries. The first packet to insert a digest
// becomes responsible for compressing the chunk; at output time, the first
// packet (in emission order) to *claim* an entry writes the full
// compressed data, and every later packet writes a fingerprint reference.
//
// Two synchronization families share one structure:
//  * Lock mode: per-bucket mutexes plus a store-wide mutex/condvar for the
//    ready/written flags — the paper's well-designed pthread baseline.
//  * TM mode: bucket heads and flags are transactional variables; the
//    ready-wait uses subscribe/retry, so a buffer locked for deferred
//    compression suspends exactly the transactions that touch it (§6.2).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "defer/deferrable.hpp"
#include "dedup/sha1.hpp"
#include "stm/tvar.hpp"

namespace adtm::dedup {

// How pipeline critical sections are synchronized.
enum class SyncMode : std::uint8_t {
  Pthread,     // fine-grained locks (the paper's pthread baseline)
  TmIrrevoc,   // transactions; output via irrevocability; compress inside tx
  TmDeferIO,   // + output deferred with atomic_defer (Listing 7)
  TmDeferAll,  // + pure Compress deferred on the chunk entry as well
};

const char* sync_mode_name(SyncMode m) noexcept;
bool is_tm(SyncMode m) noexcept;

class ChunkStore {
 public:
  // A chunk database entry. Deferrable: in TmDeferAll mode the deferred
  // compression holds the entry's implicit lock, and any transaction that
  // touches the entry (the output stage's claim) subscribes first.
  class Entry : public Deferrable {
   public:
    const Sha1Digest& digest() const noexcept { return digest_; }

    // Compressed payload; stable once ready. Written exactly once by the
    // compressing thread before the ready flag is raised.
    const std::vector<std::byte>& compressed() const noexcept {
      return compressed_;
    }

   private:
    friend class ChunkStore;
    Sha1Digest digest_{};
    stm::tvar<bool> ready_{false};
    stm::tvar<bool> written_{false};
    std::vector<std::byte> compressed_;
    Entry* next_ = nullptr;               // bucket chain (stable once linked)
  };

  explicit ChunkStore(SyncMode mode, std::size_t buckets = 1 << 14);
  ~ChunkStore();

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  struct LookupResult {
    Entry* entry;
    bool inserted;  // true -> caller owns compression of this chunk
  };

  // Dedup-stage critical section: find or insert the digest.
  LookupResult lookup_or_insert(const Sha1Digest& digest);

  // Compress-stage publication: store the compressed payload and raise the
  // ready flag. Caller must be the inserter.
  void publish_compressed(Entry& entry, std::vector<std::byte> data);

  // Output-stage critical section: returns true exactly once per entry —
  // the caller that gets true writes the full data (blocking first until
  // the compressed payload is ready); all others write a reference.
  bool claim_write(Entry& entry);

  // Transactional form, for callers that need the claim to be part of a
  // larger transaction (e.g. atomic with a deferred output operation).
  // TM modes only.
  bool claim_write_in(stm::Tx& tx, Entry& entry);

  SyncMode mode() const noexcept { return mode_; }
  std::uint64_t entry_count() const noexcept;

 private:
  Entry* find_in_chain(Entry* head, const Sha1Digest& digest) const;

  SyncMode mode_;
  std::vector<stm::tvar<Entry*>> heads_;
  std::vector<std::unique_ptr<std::mutex>> bucket_mutexes_;  // Pthread mode
  std::mutex flags_mutex_;              // Pthread mode: guards flags
  std::condition_variable ready_cv_;    // Pthread mode: compress completion
  std::atomic<std::uint64_t> entries_{0};
};

}  // namespace adtm::dedup
