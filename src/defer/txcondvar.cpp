#include "defer/txcondvar.hpp"

#include "common/thread_id.hpp"
#include "liveness/wait_graph.hpp"
#include "stm/registry.hpp"

namespace adtm {

std::uint32_t TxCondVar::notifier_of(const void* cv) noexcept {
  return static_cast<const TxCondVar*>(cv)->notifier_.load(
      std::memory_order_acquire);
}

bool TxCondVar::notifier_dead(const void* cv) noexcept {
  const auto* c = static_cast<const TxCondVar*>(cv);
  const std::uint32_t tid = c->notifier_.load(std::memory_order_acquire);
  if (tid == kNoThread) return false;
  return !thread_incarnation_live(
      tid, c->notifier_gen_.load(std::memory_order_relaxed));
}

void TxCondVar::poison_entity(const void* cv) {
  const_cast<TxCondVar*>(static_cast<const TxCondVar*>(cv))->poison();
}

void TxCondVar::prepare_wait(stm::Tx&) const {
  liveness::publish_wait(this, &TxCondVar::notifier_of, "TxCondVar::wait",
                         liveness::WaitKind::CondVar,
                         &TxCondVar::notifier_dead,
                         &TxCondVar::poison_entity);
  // CondVar edges are checkable with zero pinned holds (notification duty
  // is committed state), but the publish-site scan must still sit out
  // in-attempt lock ownership: under eager algorithms a speculative
  // ownership write is visible in memory, and a cycle through it is about
  // to be broken by this very retry, so reporting it would be a false
  // positive. The parked waiter's poll (wait_for_change / the CGL tick
  // loop) re-checks once the rollback has revoked those writes.
  if (stm::detail::locker_depth() == liveness::pinned_holds()) {
    liveness::deadlock_check();
  }
}

}  // namespace adtm
