#include "defer/txlock.hpp"

#include <stdexcept>

#include "common/stats.hpp"
#include "common/thread_id.hpp"
#include "stm/api.hpp"
#include "stm/registry.hpp"

namespace adtm {

void TxLock::acquire(stm::Tx& tx) {
  const std::uint32_t me = thread_id();
  const std::uint32_t owner = owner_.get(tx);
  if (owner == kNoThread) {
    owner_.set(tx, me);
    depth_.set(tx, 1);
  } else if (owner == me) {
    depth_.set(tx, depth_.get(tx) + 1);
  } else {
    // Held by another thread: wait via retry. The enclosing transaction
    // aborts (discarding any locks acquired so far in it, which is what
    // makes multi-lock acquisition deadlock-free) and re-executes once the
    // owner field changes.
    stm::retry(tx);
  }
  // The hold can outlive this transaction (deferred operations release
  // after commit), so register it with the serial gate's locker
  // accounting; a transaction abort revokes the registration along with
  // the speculative ownership write.
  stm::detail::locker_enter();
  tx.on_abort([] { stm::detail::locker_exit(); });
  stats().add(Counter::TxLockAcquires);
}

void TxLock::acquire() {
  stm::atomic([this](stm::Tx& tx) { acquire(tx); });
}

bool TxLock::try_acquire(stm::Tx& tx) {
  const std::uint32_t owner = owner_.get(tx);
  if (owner != kNoThread && owner != thread_id()) return false;
  acquire(tx);  // free or reentrant: cannot retry
  return true;
}

bool TxLock::try_acquire() {
  return stm::atomic([this](stm::Tx& tx) { return try_acquire(tx); });
}

void TxLock::release(stm::Tx& tx) {
  const std::uint32_t me = thread_id();
  if (owner_.get(tx) != me) {
    throw std::logic_error("TxLock::release: calling thread is not the owner");
  }
  const std::uint32_t d = depth_.get(tx);
  if (d > 1) {
    depth_.set(tx, d - 1);
  } else {
    depth_.set(tx, 0);
    owner_.set(tx, kNoThread);
  }
  // Drop the locker registration only once the release commits; until
  // then the hold is still real.
  tx.on_commit([] { stm::detail::locker_exit(); });
}

void TxLock::release() {
  stm::atomic([this](stm::Tx& tx) { release(tx); });
}

void TxLock::subscribe(stm::Tx& tx) const {
  const std::uint32_t owner = owner_.get(tx);
  if (owner != kNoThread && owner != thread_id()) {
    stm::retry(tx);
  }
  stats().add(Counter::TxLockSubscribes);
}

bool TxLock::held_by_me(stm::Tx& tx) const {
  return owner_.get(tx) == thread_id();
}

bool TxLock::held_by_me() const {
  return owner_.load_direct() == thread_id();
}

}  // namespace adtm
