#include "defer/txlock.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_id.hpp"
#include "common/timing.hpp"
#include "common/tsan.hpp"
#include "liveness/wait_graph.hpp"
#include "obs/trace.hpp"
#include "stm/api.hpp"
#include "stm/registry.hpp"
#include "tmsan/tmsan.hpp"

namespace adtm {

std::uint32_t TxLock::owner_of(const void* lock) noexcept {
  // Wait-graph / watchdog metadata sample: deliberately racy, never acted
  // on without re-validation inside a transaction.
  tmsan::ScopedRawIgnore ignore;
  return static_cast<const TxLock*>(lock)->owner_.load_direct();
}

bool TxLock::orphan_of(const void* lock) noexcept {
  return static_cast<const TxLock*>(lock)->orphaned();
}

void TxLock::poison_orphan(const void* lock) {
  auto* l = const_cast<TxLock*>(static_cast<const TxLock*>(lock));
  // One transaction: waiters woken by the poison observe the break too,
  // so they raise TxLockPoisoned (deliberate — the protected data's state
  // is unknown) rather than racing to re-acquire a half-repaired lock.
  stm::atomic([l](stm::Tx& tx) {
    if (!l->orphaned(tx)) return;  // owner came back to life? stand down
    l->poison(tx);
    l->break_orphaned(tx);
  });
}

namespace {

// Per-thread wait-timing shared by the opt-in lock-wait histogram and the
// trace layer's LockPark/LockWake events: armed at the block site, sampled
// by the first successful pass through the acquire or subscribe fast path
// for the same lock. Re-executions in between keep the original start, so
// the recorded wait spans the whole park.
struct WaitTimer {
  const void* lock = nullptr;
  std::uint64_t since_ns = 0;
};
thread_local WaitTimer t_wait_timer;

void arm_wait_timer(const void* lock) noexcept {
  if (!lock_stats().enabled() && !obs::enabled()) return;
  if (t_wait_timer.lock == lock) return;  // already timing this park
  t_wait_timer = {lock, now_ns()};
  obs::emit(obs::EventType::LockPark, obs::AbortCause::None, obs::kNoAlgo,
            reinterpret_cast<std::uintptr_t>(lock));
}

void sample_wait_timer(const void* lock) noexcept {
  if (t_wait_timer.lock != lock) return;
  const std::uint64_t waited = now_ns() - t_wait_timer.since_ns;
  if (lock_stats().enabled()) lock_stats().record_wait(lock, waited);
  obs::emit(obs::EventType::LockWake, obs::AbortCause::None, obs::kNoAlgo,
            waited);
  t_wait_timer = {};
}

// Hold spans run from the acquire's commit to the final release's
// commit. Both commits happen on the owning thread (TxLock forbids
// handoff), so the start timestamps are thread-local — a shared
// per-lock slot would race: the next owner's acquire on_commit can run
// in the window between a release's commit and its on_commit, and the
// old owner would consume the new owner's timestamp while the new
// owner's release finds nothing.
struct HoldStart {
  const void* lock;
  std::uint64_t since_ns;
};
thread_local std::vector<HoldStart> t_hold_starts;

void hold_begin(const void* lock) {
  t_hold_starts.push_back({lock, now_ns()});
}

void hold_end(const void* lock) noexcept {
  // Newest-first: after an orphan break the same thread can re-acquire a
  // lock whose earlier entry was never released; the newest one is the
  // live hold.
  for (auto it = t_hold_starts.rbegin(); it != t_hold_starts.rend(); ++it) {
    if (it->lock == lock) {
      if (lock_stats().enabled()) {
        lock_stats().record_hold(lock, now_ns() - it->since_ns);
      }
      t_hold_starts.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

void TxLock::block(stm::Tx& tx, Deadline deadline, const char* site) const {
  arm_wait_timer(this);
  liveness::publish_wait(this, &TxLock::owner_of, site,
                         liveness::WaitKind::Lock, &TxLock::orphan_of,
                         &TxLock::poison_orphan);
  // Deadlock scan, gated twice. pinned_holds() > 0: hold-and-wait needs a
  // committed hold an abort cannot revoke. locker_depth() == pinned_holds():
  // no *in-attempt* holds — under eager algorithms an in-attempt ownership
  // write is visible in memory, so a cycle through it would be broken by
  // this very retry and must not be reported. The purely transactional
  // multi-lock path always has locker_depth > pinned here and relies on
  // retry-releases-everything (asserted at the park site); the
  // non-transactional acquire()/TxLockGuard path blocks before any write
  // and is scanned. Cycles this scan races past are caught by the parked
  // waiter's own re-scan in wait_for_change.
  if (liveness::pinned_holds() > 0 &&
      stm::detail::locker_depth() == liveness::pinned_holds()) {
    liveness::deadlock_check();
  }
  stm::retry(tx, deadline);
}

void TxLock::acquire(stm::Tx& tx, Deadline deadline) {
  const std::uint32_t me = thread_id();
  if (poisoned_.get(tx) != 0) {
    throw TxLockPoisoned(
        "TxLock::acquire: lock is poisoned (a failed operation may have "
        "left the data it protects inconsistent; clear_poison() after "
        "recovery)");
  }
  const std::uint32_t owner = owner_.get(tx);
  if (owner == kNoThread) {
    owner_.set(tx, me);
    owner_gen_.set(tx, thread_id_generation());
    depth_.set(tx, 1);
    if (lock_stats().enabled()) {
      // Hold time runs from the commit that makes the ownership real.
      tx.on_commit([this] { hold_begin(this); });
    }
  } else if (owner == me && owner_gen_.get(tx) == thread_id_generation()) {
    depth_.set(tx, depth_.get(tx) + 1);
  } else if (!thread_incarnation_live(owner, owner_gen_.get(tx))) {
    // Covers a dead former owner whose slot id this thread now reuses:
    // that is not reentrancy, the previous incarnation never released.
    throw TxLockOrphaned(
        "TxLock::acquire: owner thread exited while holding the lock "
        "(break_orphaned() to recover)");
  } else {
    // Held by another live thread: wait via retry. The enclosing
    // transaction aborts (discarding any locks acquired so far in it,
    // which is what makes multi-lock acquisition deadlock-free) and
    // re-executes once the lock metadata changes, the deadline passes, or
    // a thread exits (so the orphan check above re-runs).
    block(tx, deadline, "TxLock::acquire");
  }
  // The hold can outlive this transaction (deferred operations release
  // after commit), so register it with the serial gate's locker accounting
  // — an abort revokes the registration along with the speculative
  // ownership write — and, once it commits, with the liveness layer's
  // pinned-hold count that gates deadlock detection.
  stm::detail::locker_enter();
  tx.on_abort([] { stm::detail::locker_exit(); });
  tx.on_commit([] { liveness::pinned_enter(); });
  ADTM_TSAN_ACQUIRE(this);
  sample_wait_timer(this);  // a park that ended here ends its wait now
  stats().add(Counter::TxLockAcquires);
}

void TxLock::acquire() {
  stm::atomic([this](stm::Tx& tx) { acquire(tx); });
}

bool TxLock::acquire(Deadline deadline) {
  try {
    stm::atomic([&](stm::Tx& tx) { acquire(tx, deadline); });
  } catch (const stm::RetryTimeout&) {
    return false;
  }
  return true;
}

bool TxLock::try_acquire(stm::Tx& tx) {
  if (poisoned_.get(tx) != 0) {
    throw TxLockPoisoned("TxLock::try_acquire: lock is poisoned");
  }
  const std::uint32_t owner = owner_.get(tx);
  const bool mine = owner == thread_id() &&
                    owner_gen_.get(tx) == thread_id_generation();
  // An orphaned lock (dead owner incarnation) also reports failure: it
  // needs break_orphaned(), not a wait.
  if (owner != kNoThread && !mine) return false;
  acquire(tx);  // free or reentrant: cannot block
  return true;
}

bool TxLock::try_acquire() {
  return stm::atomic([this](stm::Tx& tx) { return try_acquire(tx); });
}

void TxLock::release(stm::Tx& tx) {
  const std::uint32_t me = thread_id();
  const std::uint32_t owner = owner_.get(tx);
  if (owner == kNoThread) {
    throw std::logic_error(
        "TxLock::release: lock is not held (double release, or release "
        "without acquire)");
  }
  if (owner != me) {
    throw std::logic_error(
        "TxLock::release: calling thread " + std::to_string(me) +
        " is not the owner (thread " + std::to_string(owner) +
        " holds the lock; TxLock forbids lock handoff)");
  }
  if (owner_gen_.get(tx) != thread_id_generation()) {
    throw std::logic_error(
        "TxLock::release: lock is held by an exited thread whose slot id "
        "this thread reuses — this thread never acquired it "
        "(break_orphaned() to recover)");
  }
  const std::uint32_t d = depth_.get(tx);
  if (d > 1) {
    depth_.set(tx, d - 1);
  } else {
    ADTM_TSAN_RELEASE(this);
    depth_.set(tx, 0);
    owner_.set(tx, kNoThread);
    owner_gen_.set(tx, 0);
    if (lock_stats().enabled()) {
      tx.on_commit([this] { hold_end(this); });
    }
    // Checked at the release call, not at commit: by commit time this
    // transaction's own epilogues are already draining (they run before
    // any on_commit bookkeeping below), so the pending count the check
    // needs is only observable here. An attempt that later aborts still
    // executed a release-while-pending — report it like TSan would.
    tmsan::on_lock_freed(this);
  }
  // Drop the locker registration (and its pinned twin) only once the
  // release commits; until then the hold is still real.
  tx.on_commit([] {
    stm::detail::locker_exit();
    liveness::pinned_exit();
  });
}

void TxLock::release() {
  stm::atomic([this](stm::Tx& tx) { release(tx); });
}

void TxLock::subscribe(stm::Tx& tx, Deadline deadline) const {
  if (poisoned_.get(tx) != 0) {
    throw TxLockPoisoned(
        "TxLock::subscribe: lock is poisoned (a failed operation may have "
        "left the data it protects inconsistent; clear_poison() after "
        "recovery)");
  }
  const std::uint32_t owner = owner_.get(tx);
  if (owner != kNoThread) {
    const std::uint32_t gen = owner_gen_.get(tx);
    const bool mine =
        owner == thread_id() && gen == thread_id_generation();
    if (!mine) {
      if (!thread_incarnation_live(owner, gen)) {
        throw TxLockOrphaned(
            "TxLock::subscribe: owner thread exited while holding the "
            "lock (break_orphaned() to recover)");
      }
      block(tx, deadline, "TxLock::subscribe");
    }
  }
  ADTM_TSAN_ACQUIRE(this);
  sample_wait_timer(this);
  stats().add(Counter::TxLockSubscribes);
}

bool TxLock::subscribe(Deadline deadline) const {
  try {
    stm::atomic([&](stm::Tx& tx) { subscribe(tx, deadline); });
  } catch (const stm::RetryTimeout&) {
    return false;
  }
  return true;
}

void TxLock::poison(stm::Tx& tx) {
  if (poisoned_.get(tx) != 0) return;
  poisoned_.set(tx, 1);
  // Counted at commit so re-executed attempts do not inflate the stat.
  tx.on_commit([] { stats().add(Counter::LockPoisons); });
}

void TxLock::poison() {
  stm::atomic([this](stm::Tx& tx) { poison(tx); });
}

void TxLock::clear_poison(stm::Tx& tx) { poisoned_.set(tx, 0); }

void TxLock::clear_poison() {
  stm::atomic([this](stm::Tx& tx) { clear_poison(tx); });
}

bool TxLock::orphaned(stm::Tx& tx) const {
  const std::uint32_t owner = owner_.get(tx);
  return owner != kNoThread &&
         !thread_incarnation_live(owner, owner_gen_.get(tx));
}

bool TxLock::orphaned() const {
  tmsan::ScopedRawIgnore ignore;
  const std::uint32_t owner = owner_.load_direct();
  return owner != kNoThread &&
         !thread_incarnation_live(owner, owner_gen_.load_direct());
}

bool TxLock::break_orphaned(stm::Tx& tx) {
  const std::uint32_t owner = owner_.get(tx);
  if (owner == kNoThread) return false;
  if (thread_incarnation_live(owner, owner_gen_.get(tx))) return false;
  // The dead incarnation's locker accounting was reconciled when its
  // thread exited (registry LockerSlot) and its pinned count died with its
  // thread-locals: clearing the fields is the whole repair. Poison, if
  // set, is deliberately left for the caller to judge.
  owner_.set(tx, kNoThread);
  owner_gen_.set(tx, 0);
  depth_.set(tx, 0);
  return true;
}

bool TxLock::break_orphaned() {
  return stm::atomic([this](stm::Tx& tx) { return break_orphaned(tx); });
}

bool TxLock::held_by_me(stm::Tx& tx) const {
  return owner_.get(tx) == thread_id() &&
         owner_gen_.get(tx) == thread_id_generation();
}

bool TxLock::held_by_me() const {
  tmsan::ScopedRawIgnore ignore;
  return owner_.load_direct() == thread_id() &&
         owner_gen_.load_direct() == thread_id_generation();
}

}  // namespace adtm
