// Transaction-friendly condition variables.
//
// Wang et al. (SPAA 2014) showed that transactionalizing pthread programs
// (dedup among them) requires condition synchronization that composes with
// transactions. This is that facility built on the runtime's retry: a
// waiter reads the condition's generation inside its transaction and
// retries; a notifier bumps the generation transactionally, waking every
// waiter, which re-executes and re-checks its predicate — the standard
// "while (!pred) wait" loop collapses into straight-line transactional
// code:
//
//   stm::atomic([&](stm::Tx& tx) {
//     if (!predicate(tx)) cv.wait(tx);   // aborts; re-runs after notify
//     ...consume...
//   });
//
// Because retry() wakes on *any* read-set change, waiters also wake when
// the predicate's own data changes, even without an explicit notify —
// notify exists for conditions whose data is not transactional.
//
// Liveness: wait() with a bounded adtm::Deadline bounds the wait
// (stm::RetryTimeout is raised out of the enclosing atomic() on expiry),
// and poison() marks the condition dead — the thread that should have
// notified failed permanently — waking every waiter, which raises
// TxCondVarPoisoned instead of re-waiting forever.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

#include "common/deadline.hpp"
#include "common/stats.hpp"
#include "common/thread_id.hpp"
#include "common/timing.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm {

// Raised by wait() on a poisoned condition (the notifying side failed and
// will never signal; typically set by failure-policy escalation).
struct TxCondVarPoisoned : std::runtime_error {
  explicit TxCondVarPoisoned(const char* what) : std::runtime_error(what) {}
};

class TxCondVar {
 public:
  TxCondVar() = default;
  TxCondVar(const TxCondVar&) = delete;
  TxCondVar& operator=(const TxCondVar&) = delete;

  // Abort the enclosing transaction and re-execute it once this condition
  // is notified (or anything else in the read set changes). Call after
  // observing a false predicate. Raises TxCondVarPoisoned — immediately,
  // or on wake — if the condition is (or becomes) poisoned. With a
  // bounded Deadline the enclosing atomic() raises stm::RetryTimeout once
  // it passes; construct the Deadline *outside* the transaction for a
  // hard total budget (the body re-executes on every wake-up — a Deadline
  // built from a duration inside the body re-arms the window per wake-up;
  // see common/deadline.hpp).
  [[noreturn]] void wait(stm::Tx& tx, Deadline deadline = {}) const {
    check_poison(tx);
    (void)gen_.get(tx);  // join the wake-up set
    prepare_wait(tx);
    stm::retry(tx, deadline);
  }

  // Deprecated spellings from the pre-Deadline API; thin forwarders.
  // (Historically deadline 0 meant "already expired" here, unlike the
  // TxLock timed forms; Deadline::at preserves that clamp.)
  [[noreturn]] [[deprecated("use wait(tx, Deadline::at(deadline_ns))")]]
  void wait_until(stm::Tx& tx, std::uint64_t deadline_ns) const {
    wait(tx, Deadline::at(deadline_ns));
  }

  [[noreturn]] [[deprecated("use wait(tx, Deadline(timeout))")]]
  void wait_for(stm::Tx& tx, std::chrono::nanoseconds timeout) const {
    wait(tx, Deadline(timeout));
  }

  // Wake all current waiters, as part of the enclosing transaction (the
  // notification is atomic with the transaction's other effects and is
  // discarded if it aborts).
  void notify_all(stm::Tx& tx) { gen_.set(tx, gen_.get(tx) + 1); }

  // Non-transactional convenience (e.g. from a deferred operation).
  void notify_all() {
    stm::atomic([this](stm::Tx& tx) { notify_all(tx); });
  }

  // Retry wakes every waiter, so notify_one has at-least-one semantics:
  // all waiters re-run, losers re-wait. Provided for pthread-API parity.
  void notify_one(stm::Tx& tx) { notify_all(tx); }

  // Mark the condition dead and wake every waiter (the poison write joins
  // their read sets via check_poison). Idempotent; clear_poison recovers.
  void poison(stm::Tx& tx) {
    if (poisoned_.get(tx) != 0) return;
    poisoned_.set(tx, 1);
    tx.on_commit([] { stats().add(Counter::LockPoisons); });
  }
  void poison() {
    stm::atomic([this](stm::Tx& tx) { poison(tx); });
  }
  void clear_poison(stm::Tx& tx) { poisoned_.set(tx, 0); }
  void clear_poison() {
    stm::atomic([this](stm::Tx& tx) { clear_poison(tx); });
  }
  bool poisoned(stm::Tx& tx) const { return poisoned_.get(tx) != 0; }
  bool poisoned() const { return poisoned_.load_direct() != 0; }

  // Number of notifications so far (diagnostics).
  std::uint64_t generation(stm::Tx& tx) const { return gen_.get(tx); }

  // --- notifier registration (liveness) ---------------------------------

  // Declare the calling thread responsible for eventually notifying this
  // condition. The duty survives the registering code's transactions —
  // it is committed state — which is what makes waiter edges
  // deadlock-checkable: a ring of threads each waiting on a condition the
  // next must notify deadlocks with zero locks held, and the wait graph
  // can only see it if edges resolve to a responsible thread. A registered
  // notifier also lets the watchdog's poison-orphans policy poison the
  // condition if the notifier's thread incarnation dies. Plain atomics:
  // registration is bookkeeping, not a transactional effect (it must not
  // be discarded by an abort of whatever transaction surrounds it).
  void set_notifier() noexcept {
    notifier_gen_.store(thread_id_generation(), std::memory_order_relaxed);
    notifier_.store(thread_id(), std::memory_order_release);
  }
  void clear_notifier() noexcept {
    notifier_.store(kNoThread, std::memory_order_release);
  }
  bool has_notifier() const noexcept { return notifier() != kNoThread; }
  std::uint32_t notifier() const noexcept {  // kNoThread when unregistered
    return notifier_.load(std::memory_order_acquire);
  }

  // Wait-graph callbacks carried by cv wait edges (liveness::OwnerFn /
  // OrphanFn / PoisonFn). Racy by design: the watchdog tolerates stale
  // reads, and a registration is expected to be stable while waiters park.
  static std::uint32_t notifier_of(const void* cv) noexcept;
  static bool notifier_dead(const void* cv) noexcept;
  static void poison_entity(const void* cv);

 private:
  // Publish this waiter's cv edge and run the publish-site deadlock scan
  // (txcondvar.cpp; shared by the three wait forms, called pre-retry).
  void prepare_wait(stm::Tx& tx) const;
  void check_poison(stm::Tx& tx) const {
    // Reading poisoned_ here puts it in every waiter's read set: a
    // committed poison() is a wake-up like any notify, and the re-executed
    // wait lands on this throw.
    if (poisoned_.get(tx) != 0) {
      throw TxCondVarPoisoned(
          "TxCondVar::wait: condition is poisoned (the notifying side "
          "failed permanently; clear_poison() after recovery)");
    }
  }

  mutable stm::tvar<std::uint64_t> gen_{0};
  mutable stm::tvar<std::uint32_t> poisoned_{0};
  // Registered notifier incarnation (slot id + generation); see
  // set_notifier for why these are plain atomics, not tvars.
  mutable std::atomic<std::uint32_t> notifier_{kNoThread};
  mutable std::atomic<std::uint32_t> notifier_gen_{0};
};

}  // namespace adtm
