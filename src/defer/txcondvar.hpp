// Transaction-friendly condition variables.
//
// Wang et al. (SPAA 2014) showed that transactionalizing pthread programs
// (dedup among them) requires condition synchronization that composes with
// transactions. This is that facility built on the runtime's retry: a
// waiter reads the condition's generation inside its transaction and
// retries; a notifier bumps the generation transactionally, waking every
// waiter, which re-executes and re-checks its predicate — the standard
// "while (!pred) wait" loop collapses into straight-line transactional
// code:
//
//   stm::atomic([&](stm::Tx& tx) {
//     if (!predicate(tx)) cv.wait(tx);   // aborts; re-runs after notify
//     ...consume...
//   });
//
// Because retry() wakes on *any* read-set change, waiters also wake when
// the predicate's own data changes, even without an explicit notify —
// notify exists for conditions whose data is not transactional.
#pragma once

#include <cstdint>

#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm {

class TxCondVar {
 public:
  TxCondVar() = default;
  TxCondVar(const TxCondVar&) = delete;
  TxCondVar& operator=(const TxCondVar&) = delete;

  // Abort the enclosing transaction and re-execute it once this condition
  // is notified (or anything else in the read set changes). Call after
  // observing a false predicate.
  [[noreturn]] void wait(stm::Tx& tx) const {
    (void)gen_.get(tx);  // join the wake-up set
    stm::retry(tx);
  }

  // Wake all current waiters, as part of the enclosing transaction (the
  // notification is atomic with the transaction's other effects and is
  // discarded if it aborts).
  void notify_all(stm::Tx& tx) { gen_.set(tx, gen_.get(tx) + 1); }

  // Non-transactional convenience (e.g. from a deferred operation).
  void notify_all() {
    stm::atomic([this](stm::Tx& tx) { notify_all(tx); });
  }

  // Retry wakes every waiter, so notify_one has at-least-one semantics:
  // all waiters re-run, losers re-wait. Provided for pthread-API parity.
  void notify_one(stm::Tx& tx) { notify_all(tx); }

  // Number of notifications so far (diagnostics).
  std::uint64_t generation(stm::Tx& tx) const { return gen_.get(tx); }

 private:
  mutable stm::tvar<std::uint64_t> gen_{0};
};

}  // namespace adtm
