// Deferrable: base class for objects that deferred operations may access
// (the paper's `deferrable class` annotation, Listing 1).
//
// Each instance carries an implicit TxLock. The paper's compiler extension
// injects TxLock.Subscribe as the first instruction of every
// transaction-safe member function; without compiler support, derived
// classes follow the same convention by calling subscribe(tx) (or using
// guard(tx)) at the top of every transactional accessor — see DESIGN.md's
// substitution table.
#pragma once

#include "defer/txlock.hpp"

namespace adtm {

class Deferrable {
 public:
  Deferrable() = default;
  virtual ~Deferrable() = default;
  Deferrable(const Deferrable&) = delete;
  Deferrable& operator=(const Deferrable&) = delete;

  // The implicit per-instance lock.
  TxLock& txlock() const noexcept { return lock_; }

  // Block (via transactional retry) until no deferred operation holds this
  // object. Call first in every transaction-safe accessor.
  void subscribe(stm::Tx& tx) const { lock_.subscribe(tx); }

 private:
  mutable TxLock lock_;
};

}  // namespace adtm
