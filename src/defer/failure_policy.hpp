// Failure policy for deferred operations.
//
// A deferred operation runs *after* its transaction committed, so a failure
// cannot abort anything — the only honest options are: retry (transient
// errors, bounded, with the contention-management backoff), escalate to a
// handler, or propagate so the owner can poison itself and make waiters
// fail fast instead of hanging. Kuznetsov & Ravi's critique of unbounded
// progress claims (PAPERS.md) is why the retry budget is always finite:
// after max_retries the failure *will* surface.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>

namespace adtm {

namespace health {
class CircuitBreaker;
}  // namespace health

struct FailurePolicy {
  // Retries allowed after the first failure (0 = fail on first error).
  std::uint32_t max_retries = 8;

  // Backoff window between retries (see common/backoff.hpp).
  std::uint32_t backoff_min_spins = 64;
  std::uint32_t backoff_max_spins = 64 * 1024;

  // Classify an in-flight exception as transient (retryable). When null,
  // default_transient() is used: std::system_error with EINTR, EAGAIN,
  // ENOSPC or EBUSY. faultsim::SimulatedCrash is never transient.
  std::function<bool(const std::exception_ptr&)> retryable;

  // Invoked when retries are exhausted or the error is permanent. When
  // null the exception propagates to the caller of run_with_policy —
  // for a deferred operation that is the committing thread's atomic()
  // call, *after* every TxLock has been released.
  std::function<void(std::exception_ptr)> escalate;

  // Liveness escalation hook: when true and a deferred operation's failure
  // escalates (retries exhausted or permanent), atomic_defer poisons the
  // TxLock of every listed object *before* releasing it. Subscribers and
  // later acquirers then raise TxLockPoisoned instead of silently touching
  // state the half-run operation may have corrupted. Off by default: most
  // deferred I/O failures leave in-memory state intact.
  bool poison_on_escalate = false;

  // Optional circuit breaker composed with the retry loop (not owned).
  // Every attempt's verdict feeds the breaker; once it opens — from this
  // policy's own failures or anyone else's on the same resource —
  // run_with_policy stops retrying and escalates immediately (a dying
  // disk poisons fast instead of each op burning a full retry budget),
  // and new runs escalate up front without touching the resource.
  health::CircuitBreaker* breaker = nullptr;
};

// Default transient classification (see FailurePolicy::retryable).
bool default_transient(const std::exception_ptr& ep) noexcept;

// Run fn under the policy: retry transient failures with exponential
// backoff up to policy.max_retries, then escalate (or rethrow). Updates
// Counter::FailureRetries / Counter::FailureEscalations.
void run_with_policy(const FailurePolicy& policy,
                     const std::function<void()>& fn);

// Process-wide default applied by atomic_defer when no per-operation
// policy is supplied. The shipped default never blind-retries a whole
// deferred operation (max_retries = 0): a deferred op may not be
// idempotent, so retry belongs at the syscall layer inside the op (WAL,
// DurableFile), not around it.
const FailurePolicy& default_failure_policy() noexcept;
void set_default_failure_policy(FailurePolicy policy);

}  // namespace adtm
