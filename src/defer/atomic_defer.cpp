#include "defer/atomic_defer.hpp"

#include <utility>

#include "common/stats.hpp"
#include "obs/trace.hpp"

namespace adtm {

void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::vector<const Deferrable*> objs, FailurePolicy policy) {
  // Acquire the implicit lock of every object the operation may touch, as
  // part of the enclosing transaction (Listing 1's atomic_defer uses a
  // nested transaction, which flattens into the parent — so the lock
  // writes commit atomically with the parent, and if any lock is held by
  // another thread the whole parent retries, making multi-lock acquisition
  // deadlock-free).
  for (const Deferrable* o : objs) {
    o->txlock().acquire(tx);
  }
  // Emitted at registration (attempt scope): a re-executed attempt emits
  // again, mirroring how the enqueue really happened. The matching
  // epilogue events come from the driver's run_epilogues.
  obs::emit(obs::EventType::DeferEnqueue, obs::AbortCause::None, obs::kNoAlgo,
            0, static_cast<std::uint32_t>(objs.size()));
  tx.on_commit([op = std::move(op), objs = std::move(objs),
                policy = std::move(policy)]() {
    stats().add(Counter::DeferredOps);
    // The locks are released on every exit path: a deferred operation
    // that fails permanently must not wedge its subscribers. Reentrancy
    // ensures an object shared by several deferred operations stays
    // locked until the last one finishes (paper §4.1).
    try {
      run_with_policy(policy, op);
    } catch (...) {
      // Poison first, release second: once released, a waiter can slip in
      // before the poison lands. Poisoning is a transactional write, so it
      // also wakes parked subscribers, which then raise TxLockPoisoned.
      if (policy.poison_on_escalate) {
        for (const Deferrable* o : objs) o->txlock().poison();
      }
      for (const Deferrable* o : objs) o->txlock().release();
      throw;
    }
    for (const Deferrable* o : objs) o->txlock().release();
  });
}

void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::vector<const Deferrable*> objs) {
  atomic_defer(tx, std::move(op), std::move(objs), default_failure_policy());
}

void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::initializer_list<const Deferrable*> objs) {
  atomic_defer(tx, std::move(op),
               std::vector<const Deferrable*>(objs.begin(), objs.end()));
}

void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::initializer_list<const Deferrable*> objs,
                  FailurePolicy policy) {
  atomic_defer(tx, std::move(op),
               std::vector<const Deferrable*>(objs.begin(), objs.end()),
               std::move(policy));
}

}  // namespace adtm
