#include "defer/atomic_defer.hpp"

#include <utility>

#include "common/stats.hpp"

namespace adtm {

void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::vector<const Deferrable*> objs) {
  // Acquire the implicit lock of every object the operation may touch, as
  // part of the enclosing transaction (Listing 1's atomic_defer uses a
  // nested transaction, which flattens into the parent — so the lock
  // writes commit atomically with the parent, and if any lock is held by
  // another thread the whole parent retries, making multi-lock acquisition
  // deadlock-free).
  for (const Deferrable* o : objs) {
    o->txlock().acquire(tx);
  }
  tx.on_commit([op = std::move(op), objs = std::move(objs)]() {
    stats().add(Counter::DeferredOps);
    try {
      op();
    } catch (...) {
      for (const Deferrable* o : objs) o->txlock().release();
      throw;
    }
    // Release after the operation completes; reentrancy ensures an object
    // shared by several deferred operations stays locked until the last
    // one finishes (paper §4.1).
    for (const Deferrable* o : objs) o->txlock().release();
  });
}

void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::initializer_list<const Deferrable*> objs) {
  atomic_defer(tx, std::move(op),
               std::vector<const Deferrable*>(objs.begin(), objs.end()));
}

}  // namespace adtm
