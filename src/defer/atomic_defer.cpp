#include "defer/atomic_defer.hpp"

#include <utility>

#include "common/stats.hpp"
#include "common/tsan.hpp"
#include "obs/trace.hpp"
#include "tmsan/tmsan.hpp"

namespace adtm {

void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::vector<const Deferrable*> objs, FailurePolicy policy) {
  // Acquire the implicit lock of every object the operation may touch, as
  // part of the enclosing transaction (Listing 1's atomic_defer uses a
  // nested transaction, which flattens into the parent — so the lock
  // writes commit atomically with the parent, and if any lock is held by
  // another thread the whole parent retries, making multi-lock acquisition
  // deadlock-free).
  for (const Deferrable* o : objs) {
    o->txlock().acquire(tx);
  }
  // Emitted at registration (attempt scope): a re-executed attempt emits
  // again, mirroring how the enqueue really happened. The matching
  // epilogue events come from the driver's run_epilogues.
  obs::emit(obs::EventType::DeferEnqueue, obs::AbortCause::None, obs::kNoAlgo,
            0, static_cast<std::uint32_t>(objs.size()));
  // tmsan deferral contract: the registration pends one epilogue on each
  // lock (withdrawn if the attempt aborts); the epilogue itself runs
  // bracketed so tmsan can check it touches only covered state. Attempt
  // scope matches the lock acquisition above, so a re-execution re-pends.
  std::vector<const void*> san_locks;
  const bool san = tmsan::active();
  if (san) {
    san_locks.reserve(objs.size());
    for (const Deferrable* o : objs) san_locks.push_back(&o->txlock());
    tmsan::on_defer_registered(san_locks.data(), san_locks.size());
    tx.on_abort([san_locks] {
      tmsan::on_defer_cancelled(san_locks.data(), san_locks.size());
    });
  }
  tx.on_commit([op = std::move(op), objs = std::move(objs),
                policy = std::move(policy), san_locks = std::move(san_locks),
                san]() {
    stats().add(Counter::DeferredOps);
    // The handoff edge: the registering transaction's writes (made before
    // commit) happen-before the epilogue body, which may run on another
    // logical phase of the same thread after arbitrary interleavings.
    for (const void* l : san_locks) ADTM_TSAN_ACQUIRE(l);
    if (san) tmsan::epilogue_begin(san_locks.data(), san_locks.size());
    // The locks are released on every exit path: a deferred operation
    // that fails permanently must not wedge its subscribers. Reentrancy
    // ensures an object shared by several deferred operations stays
    // locked until the last one finishes (paper §4.1).
    try {
      run_with_policy(policy, op);
    } catch (...) {
      // The epilogue is over (even if failed) before any lock can reach
      // its free transition, or on_lock_freed would see it still pending.
      if (san) tmsan::epilogue_end(san_locks.data(), san_locks.size());
      // Poison first, release second: once released, a waiter can slip in
      // before the poison lands. Poisoning is a transactional write, so it
      // also wakes parked subscribers, which then raise TxLockPoisoned.
      if (policy.poison_on_escalate) {
        for (const Deferrable* o : objs) o->txlock().poison();
      }
      for (const Deferrable* o : objs) o->txlock().release();
      throw;
    }
    if (san) tmsan::epilogue_end(san_locks.data(), san_locks.size());
    for (const Deferrable* o : objs) o->txlock().release();
  });
}

void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::vector<const Deferrable*> objs) {
  atomic_defer(tx, std::move(op), std::move(objs), default_failure_policy());
}

void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::initializer_list<const Deferrable*> objs) {
  atomic_defer(tx, std::move(op),
               std::vector<const Deferrable*>(objs.begin(), objs.end()));
}

void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::initializer_list<const Deferrable*> objs,
                  FailurePolicy policy) {
  atomic_defer(tx, std::move(op),
               std::vector<const Deferrable*>(objs.begin(), objs.end()),
               std::move(policy));
}

}  // namespace adtm
