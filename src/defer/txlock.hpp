// Transaction-friendly reentrant mutex (paper §4.2, Listing 2).
//
// A TxLock can be acquired and released both inside and outside
// transactions; because its owner/depth fields are transactional variables,
// acquiring several TxLocks inside one transaction is deadlock-free without
// a global lock order (the enclosing transaction aborts and retries instead
// of blocking while holding).
//
// Transactions that merely need the lock to be free *subscribe* to it:
// subscription reads only lock metadata (owner, generation, poison), so any
// number of transactions can subscribe concurrently, and all of them
// conflict with (and wait out) a thread that acquires the lock — this is
// how deferred operations are kept atomic with their transaction.
//
// Liveness (this layer's extension of the paper):
//  * Timed waits: acquire and subscribe take an adtm::Deadline (default
//    unbounded); expiry raises stm::RetryTimeout inside a transaction, or
//    returns false from the non-transactional wrappers. NOTE: the
//    in-transaction timed variants, when called from a body that is itself
//    nested in an outer atomic(), time out the *whole flattened
//    transaction* — RetryTimeout propagates out of the outermost atomic()
//    call.
//  * Poisoning: poison() marks the protected state suspect (used by the
//    failure-policy escalation hook when a deferred operation dies with the
//    lock held). Waiters wake — poison is a transactional write like any
//    other — and acquire/subscribe raise TxLockPoisoned until
//    clear_poison().
//  * Orphan detection: the owner's thread incarnation (slot id +
//    generation) is recorded at acquire. If the owning thread exits without
//    releasing, waiters observe the dead incarnation, wake (thread exit
//    bumps a global counter every parked waiter watches), and raise
//    TxLockOrphaned; break_orphaned() force-releases such a lock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

#include "common/deadline.hpp"
#include "stm/tvar.hpp"
#include "tmsan/tmsan.hpp"

namespace adtm {

// Raised by acquire/subscribe on a lock marked poisoned (the data it
// protects may be corrupt — typically a deferred operation failed
// permanently while holding it). Recover with clear_poison().
struct TxLockPoisoned : std::runtime_error {
  explicit TxLockPoisoned(const char* what) : std::runtime_error(what) {}
};

// Raised by acquire/subscribe when the recorded owner thread incarnation
// has exited without releasing. Recover with break_orphaned().
struct TxLockOrphaned : std::runtime_error {
  explicit TxLockOrphaned(const char* what) : std::runtime_error(what) {}
};

class TxLock {
 public:
  TxLock() = default;
  TxLock(const TxLock&) = delete;
  TxLock& operator=(const TxLock&) = delete;

  // Acquire inside a transaction. If the lock is held by another live
  // thread, the enclosing transaction retries (aborts and waits for a
  // change of the lock metadata). Reentrant: the owner may re-acquire,
  // incrementing the depth. Raises TxLockPoisoned / TxLockOrphaned instead
  // of waiting on a poisoned or orphaned lock. A bounded Deadline raises
  // stm::RetryTimeout out of the enclosing atomic() on expiry.
  void acquire(stm::Tx& tx, Deadline deadline = {});

  // Acquire outside a transaction: runs acquire() in its own transaction
  // (the paper's Listing 2 Acquire, whose spin/retry loop our stm::retry
  // provides).
  void acquire();

  // Timed acquire outside a transaction: false once `deadline` expires
  // while the lock is still held by another live thread.
  [[nodiscard]] bool acquire(Deadline deadline);

  // Deprecated spellings from the pre-Deadline API; thin forwarders. The
  // in-transaction form kept "deadline 0 = wait forever".
  [[deprecated("use acquire(tx, Deadline::at(deadline_ns))")]]
  void acquire_until(stm::Tx& tx, std::uint64_t deadline_ns) {
    acquire(tx, deadline_ns == 0 ? Deadline::never()
                                 : Deadline::at(deadline_ns));
  }
  [[nodiscard]] [[deprecated("use acquire(Deadline::at(deadline_ns))")]]
  bool acquire_until(std::uint64_t deadline_ns) {
    return acquire(Deadline::at(deadline_ns));
  }
  [[nodiscard]] [[deprecated("use acquire(Deadline(timeout))")]]
  bool acquire_for(std::chrono::nanoseconds timeout) {
    return acquire(Deadline(timeout));
  }

  // Non-blocking acquire: returns false (without retrying) if the lock is
  // held by another thread. Composes with the enclosing transaction like
  // acquire(tx). Still raises on a poisoned lock.
  bool try_acquire(stm::Tx& tx);
  bool try_acquire();

  // Release inside a transaction. Throws std::logic_error with a message
  // naming the actual owner if the calling thread does not hold the lock
  // (the paper's optional "forbid handoff" check, which we always enforce —
  // including across thread-id recycling: a thread whose slot id matches
  // the owner's but whose incarnation differs is rejected).
  void release(stm::Tx& tx);

  // Release outside a transaction (used after a deferred operation runs).
  void release();

  // Block (via transactional retry) until the lock is free or held by the
  // calling thread. Must be called inside a transaction; reads only lock
  // metadata so concurrent subscribers do not conflict with each other.
  // A bounded Deadline bounds the wait like acquire.
  void subscribe(stm::Tx& tx, Deadline deadline = {}) const;

  // Timed subscribe outside a transaction: true once the lock was observed
  // free (or owned by the caller), false on expiry.
  [[nodiscard]] bool subscribe(Deadline deadline) const;

  // Deprecated spellings from the pre-Deadline API; thin forwarders.
  [[deprecated("use subscribe(tx, Deadline::at(deadline_ns))")]]
  void subscribe_until(stm::Tx& tx, std::uint64_t deadline_ns) const {
    subscribe(tx, deadline_ns == 0 ? Deadline::never()
                                   : Deadline::at(deadline_ns));
  }
  [[nodiscard]] [[deprecated("use subscribe(Deadline::at(deadline_ns))")]]
  bool subscribe_until(std::uint64_t deadline_ns) const {
    return subscribe(Deadline::at(deadline_ns));
  }
  [[nodiscard]] [[deprecated("use subscribe(Deadline(timeout))")]]
  bool subscribe_for(std::chrono::nanoseconds timeout) const {
    return subscribe(Deadline(timeout));
  }

  // --- failure handling -------------------------------------------------

  // Mark the lock poisoned / clear the mark. Transactional writes: waiters
  // wake and raise. Any thread may poison (the failure-policy escalation
  // hook poisons locks whose deferred operation failed permanently).
  void poison(stm::Tx& tx);
  void poison();
  void clear_poison(stm::Tx& tx);
  void clear_poison();
  bool poisoned(stm::Tx& tx) const { return poisoned_.get(tx) != 0; }
  bool poisoned() const {
    // Deliberate racy metadata sample (like owner_of): not a data race to
    // report, even when a transaction is concurrently poisoning.
    tmsan::ScopedRawIgnore ignore;
    return poisoned_.load_direct() != 0;
  }

  // True if the recorded owner's thread incarnation has exited without
  // releasing (snapshot; can only become true while the lock is held).
  bool orphaned(stm::Tx& tx) const;
  bool orphaned() const;

  // Force-release a lock whose owner incarnation is dead. Returns true if
  // the lock was orphaned and is now free; false if it was free or its
  // owner is alive (the lock is not touched). The dead thread's locker
  // accounting was already reconciled at its exit.
  bool break_orphaned(stm::Tx& tx);
  bool break_orphaned();

  // --- queries ----------------------------------------------------------

  // True if the calling thread currently owns the lock. Transactional
  // variant for use inside transactions; direct variant for use outside.
  bool held_by_me(stm::Tx& tx) const;
  bool held_by_me() const;

  // Current reentrancy depth as seen by the owner (0 when unheld).
  std::uint32_t depth(stm::Tx& tx) const { return depth_.get(tx); }

  // Owner slot id (kNoThread when free), read non-transactionally — the
  // wait-graph edge resolver (liveness::OwnerFn) for TxLock waits.
  static std::uint32_t owner_of(const void* lock) noexcept;

  // Repair callbacks (liveness::OrphanFn / PoisonFn) carried by this
  // lock's wait edges for the watchdog's poison-orphans policy: is the
  // recorded owner a dead incarnation, and — atomically — poison plus
  // break such a lock so every parked waiter wakes and raises.
  static bool orphan_of(const void* lock) noexcept;
  static void poison_orphan(const void* lock);

 private:
  // Common slow path: record the wait edge, run deadlock detection when
  // this thread pins holds across transactions, then retry (timed or not).
  [[noreturn]] void block(stm::Tx& tx, Deadline deadline,
                          const char* site) const;
  void check_waitable(stm::Tx& tx, std::uint32_t owner) const;

  stm::tvar<std::uint32_t> owner_{kNoThread};
  stm::tvar<std::uint32_t> depth_{0};
  // Incarnation generation of the owning thread, recorded on the
  // free -> held transition (orphan detection).
  stm::tvar<std::uint32_t> owner_gen_{0};
  stm::tvar<std::uint32_t> poisoned_{0};
};

// RAII acquire/release around a non-transactional critical section.
class TxLockGuard {
 public:
  explicit TxLockGuard(TxLock& lock) : lock_(lock) { lock_.acquire(); }
  ~TxLockGuard() { lock_.release(); }
  TxLockGuard(const TxLockGuard&) = delete;
  TxLockGuard& operator=(const TxLockGuard&) = delete;

 private:
  TxLock& lock_;
};

}  // namespace adtm
