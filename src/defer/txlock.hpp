// Transaction-friendly reentrant mutex (paper §4.2, Listing 2).
//
// A TxLock can be acquired and released both inside and outside
// transactions; because its owner/depth fields are transactional variables,
// acquiring several TxLocks inside one transaction is deadlock-free without
// a global lock order (the enclosing transaction aborts and retries instead
// of blocking while holding).
//
// Transactions that merely need the lock to be free *subscribe* to it:
// subscription reads only the owner field, so any number of transactions
// can subscribe concurrently, and all of them conflict with (and wait out)
// a thread that acquires the lock — this is how deferred operations are
// kept atomic with their transaction.
#pragma once

#include <cstdint>

#include "stm/tvar.hpp"

namespace adtm {

class TxLock {
 public:
  TxLock() = default;
  TxLock(const TxLock&) = delete;
  TxLock& operator=(const TxLock&) = delete;

  // Acquire inside a transaction. If the lock is held by another thread,
  // the enclosing transaction retries (aborts and waits for a change of
  // the owner field). Reentrant: the owner may re-acquire, incrementing
  // the depth.
  void acquire(stm::Tx& tx);

  // Acquire outside a transaction: runs acquire() in its own transaction
  // (the paper's Listing 2 Acquire, whose spin/retry loop our stm::retry
  // provides).
  void acquire();

  // Non-blocking acquire: returns false (without retrying) if the lock is
  // held by another thread. Composes with the enclosing transaction like
  // acquire(tx).
  bool try_acquire(stm::Tx& tx);
  bool try_acquire();

  // Release inside a transaction. Throws std::logic_error if the calling
  // thread does not hold the lock (the paper's optional "forbid handoff"
  // check, which we always enforce).
  void release(stm::Tx& tx);

  // Release outside a transaction (used after a deferred operation runs).
  void release();

  // Block (via transactional retry) until the lock is free or held by the
  // calling thread. Must be called inside a transaction; reads only the
  // owner field so concurrent subscribers do not conflict with each other.
  void subscribe(stm::Tx& tx) const;

  // True if the calling thread currently owns the lock. Transactional
  // variant for use inside transactions; direct variant for use outside.
  bool held_by_me(stm::Tx& tx) const;
  bool held_by_me() const;

  // Current reentrancy depth as seen by the owner (0 when unheld).
  std::uint32_t depth(stm::Tx& tx) const { return depth_.get(tx); }

 private:
  stm::tvar<std::uint32_t> owner_{kNoThread};
  stm::tvar<std::uint32_t> depth_{0};
};

// RAII acquire/release around a non-transactional critical section.
class TxLockGuard {
 public:
  explicit TxLockGuard(TxLock& lock) : lock_(lock) { lock_.acquire(); }
  ~TxLockGuard() { lock_.release(); }
  TxLockGuard(const TxLockGuard&) = delete;
  TxLockGuard& operator=(const TxLockGuard&) = delete;

 private:
  TxLock& lock_;
};

}  // namespace adtm
