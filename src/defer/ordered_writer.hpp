// OrderedWriter: totally-ordered deferred output across threads.
//
// The deferred-logging pattern (txlog) orders records on one descriptor by
// holding its TxLock through each deferred write — correct, but writers
// serialize on the lock. This is the Mimir-style alternative (Zhou &
// Spear, TRANSACT 2016, by the paper's authors): each transaction reserves
// a *ticket* transactionally (so aborted transactions never consume one),
// and the deferred write waits its turn on a non-transactional sequencer.
// Writers' transactions only conflict on the ticket counter; the waiting
// happens outside any transaction, after commit, in the deferred phase.
//
// This also demonstrates the paper's "pass nil" deferral variant: the
// deferred operation takes no TxLocks — ordering comes entirely from the
// ticket sequence.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/backoff.hpp"
#include "defer/atomic_defer.hpp"
#include "io/posix_file.hpp"

namespace adtm {

class OrderedWriter {
 public:
  explicit OrderedWriter(const std::string& path)
      : file_(io::PosixFile::open_append(path)) {}

  OrderedWriter(const OrderedWriter&) = delete;
  OrderedWriter& operator=(const OrderedWriter&) = delete;

  // Defer an ordered write of `record`. Records appear in the file in
  // ticket order, which is the commit order of the reserving transactions.
  // Must be called inside a transaction.
  void write(stm::Tx& tx, std::string record) {
    // Reserve the slot transactionally: an abort returns the ticket by
    // rolling this increment back.
    const std::uint64_t ticket = next_ticket_.get(tx);
    next_ticket_.set(tx, ticket + 1);
    atomic_defer(tx, [this, ticket, rec = std::move(record)]() mutable {
      // Post-commit: wait for our turn, entirely outside any transaction.
      Backoff bo;
      while (turn_.load(std::memory_order_acquire) != ticket) bo.pause();
      if (rec.empty() || rec.back() != '\n') rec.push_back('\n');
      file_.write_fully(rec.data(), rec.size());
      turn_.store(ticket + 1, std::memory_order_release);
    });
  }

  // Tickets issued (== records written once all deferred ops finish).
  std::uint64_t tickets_direct() const { return next_ticket_.load_direct(); }

  // Wait until every issued ticket has been written.
  void drain() {
    Backoff bo;
    const std::uint64_t target = tickets_direct();
    while (turn_.load(std::memory_order_acquire) < target) bo.pause();
  }

 private:
  io::PosixFile file_;
  stm::tvar<std::uint64_t> next_ticket_{0};
  std::atomic<std::uint64_t> turn_{0};
};

}  // namespace adtm
