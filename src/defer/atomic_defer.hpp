// atomic_defer: atomically defer an operation past transaction commit
// (the paper's core contribution, §4 / Listing 1).
//
//   stm::atomic([&](stm::Tx& tx) {
//     ...transactional work...
//     atomic_defer(tx, [&] { obj.expensive(); }, {&obj});
//   });
//
// The deferred operation runs immediately after the enclosing transaction
// commits (and quiesces), in registration order when deferred multiple
// times. Before the transaction commits, the implicit TxLock of every
// listed object is acquired *inside* the transaction; transactions that
// subscribe to those objects therefore conflict with the commit and wait
// until the deferred operation completes and releases the locks — two-phase
// locking composed with the TM, which is what makes the transaction plus
// its deferred operation appear atomic.
//
// The programmer must list every shared object the operation may access
// (anything unlisted is a potential data race, paper §4.1). An empty list
// is the paper's "pass nil" variant: plain post-commit deferral with no
// atomicity protection beyond ordering after the commit.
#pragma once

// Failure semantics: deferred operations run post-commit, so a throwing
// operation cannot abort its transaction. atomic_defer guarantees the
// TxLocks of the listed objects are released whether the operation
// succeeds, throws, or is escalated — subscribers never hang on a failed
// deferred op. The operation runs under a FailurePolicy (per-call or the
// process default): transient failures are retried with bounded backoff,
// then the failure escalates to the policy's handler or propagates out of
// the committing thread's stm::atomic call.

#include <functional>
#include <initializer_list>
#include <vector>

#include "defer/deferrable.hpp"
#include "defer/failure_policy.hpp"
#include "stm/api.hpp"

namespace adtm {

// Core form: explicit object list.
void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::initializer_list<const Deferrable*> objs);

// Vector form for dynamically computed object sets.
void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::vector<const Deferrable*> objs);

// Policy forms: run the deferred operation under an explicit
// FailurePolicy instead of the process default.
void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::initializer_list<const Deferrable*> objs,
                  FailurePolicy policy);

void atomic_defer(stm::Tx& tx, std::function<void()> op,
                  std::vector<const Deferrable*> objs, FailurePolicy policy);

// Convenience form: atomic_defer(tx, op, obj1, obj2, ...).
template <typename... Objs>
  requires(std::is_base_of_v<Deferrable, std::remove_cvref_t<Objs>> && ...)
void atomic_defer(stm::Tx& tx, std::function<void()> op, const Objs&... objs) {
  atomic_defer(tx, std::move(op),
               std::initializer_list<const Deferrable*>{&objs...});
}

}  // namespace adtm
