#include "defer/failure_policy.hpp"

#include <cerrno>
#include <mutex>
#include <system_error>
#include <utility>

#include "common/backoff.hpp"
#include "common/stats.hpp"
#include "faultsim/faultsim.hpp"
#include "health/breaker.hpp"
#include "liveness/activity.hpp"

namespace adtm {
namespace {

std::mutex g_default_policy_mutex;
FailurePolicy g_default_policy{.max_retries = 0,
                               .backoff_min_spins = 64,
                               .backoff_max_spins = 64 * 1024,
                               .retryable = nullptr,
                               .escalate = nullptr};

}  // namespace

bool default_transient(const std::exception_ptr& ep) noexcept {
  try {
    std::rethrow_exception(ep);
  } catch (const faultsim::SimulatedCrash&) {
    return false;
  } catch (const std::system_error& e) {
    const int v = e.code().value();
    return v == EINTR || v == EAGAIN || v == ENOSPC || v == EBUSY;
  } catch (...) {
    return false;
  }
}

void run_with_policy(const FailurePolicy& policy,
                     const std::function<void()>& fn) {
  health::CircuitBreaker* breaker = policy.breaker;
  if (breaker != nullptr && !breaker->allow()) {
    // The resource's breaker is open: escalate up front with a synthetic
    // EIO instead of poking a known-dying resource through a fresh retry
    // budget. Escalation (not success) keeps poison_on_escalate and the
    // owner's poisoned-state semantics identical to a real failure.
    stats().add(Counter::FailureEscalations);
    auto ep = std::make_exception_ptr(std::system_error(
        EIO, std::generic_category(),
        "circuit breaker '" + breaker->name() + "' open"));
    if (policy.escalate) {
      policy.escalate(ep);
      return;
    }
    std::rethrow_exception(ep);
  }
  Backoff backoff(policy.backoff_min_spins, policy.backoff_max_spins);
  std::uint32_t retries = 0;
  for (;;) {
    std::exception_ptr ep;
    try {
      fn();
      if (breaker != nullptr) breaker->record_success();
      return;
    } catch (...) {
      ep = std::current_exception();
    }
    if (breaker != nullptr) breaker->record_failure();
    const bool transient =
        policy.retryable ? policy.retryable(ep) : default_transient(ep);
    // Cooperative reaping (watchdog reap-deferred policy): a deferred op
    // flagged as stalled past its budget stops retrying at its next
    // failure and escalates — composing with poison_on_escalate, which
    // then releases the op's TxLocks by poisoning them.
    if (transient && liveness::reap_requested()) {
      liveness::clear_reap();
      stats().add(Counter::FailureEscalations);
      if (policy.escalate) {
        policy.escalate(ep);
        return;
      }
      std::rethrow_exception(ep);
    }
    // A breaker tripped open (by our streak or a concurrent op on the
    // same resource) cuts the retry budget short: escalate now.
    if (transient && retries < policy.max_retries &&
        (breaker == nullptr || breaker->allow())) {
      ++retries;
      stats().add(Counter::FailureRetries);
      backoff.pause();
      continue;
    }
    stats().add(Counter::FailureEscalations);
    if (policy.escalate) {
      policy.escalate(ep);
      return;
    }
    std::rethrow_exception(ep);
  }
}

const FailurePolicy& default_failure_policy() noexcept {
  return g_default_policy;
}

void set_default_failure_policy(FailurePolicy policy) {
  std::lock_guard<std::mutex> lk(g_default_policy_mutex);
  g_default_policy = std::move(policy);
}

}  // namespace adtm
