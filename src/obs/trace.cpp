#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/runtime_config.hpp"
#include "common/stats.hpp"
#include "common/thread_id.hpp"
#include "common/timing.hpp"

namespace adtm::obs {

namespace detail {
std::atomic<bool> g_trace_on{false};
}  // namespace detail

const char* event_name(EventType t) noexcept {
  switch (t) {
    case EventType::TxBegin: return "tx-begin";
    case EventType::TxCommit: return "tx-commit";
    case EventType::TxAbort: return "tx-abort";
    case EventType::RetryPark: return "retry-park";
    case EventType::RetryWake: return "retry-wait";
    case EventType::SerialEnter: return "serial-enter";
    case EventType::DeferEnqueue: return "defer-enqueue";
    case EventType::EpilogueBegin: return "epilogue-begin";
    case EventType::EpilogueEnd: return "epilogue";
    case EventType::LockPark: return "lock-park";
    case EventType::LockWake: return "lock-wait";
    case EventType::IoComplete: return "io-complete";
    case EventType::WalFlush: return "wal-flush";
    case EventType::HealthTransition: return "health-transition";
    case EventType::BreakerTransition: return "breaker-transition";
    case EventType::BackendSwitch: return "backend-switch";
    case EventType::kCount: break;
  }
  return "?";
}

const char* abort_cause_name(AbortCause c) noexcept {
  switch (c) {
    case AbortCause::None: return "none";
    case AbortCause::ConflictLockBusy: return "conflict-lock-busy";
    case AbortCause::ConflictValidation: return "conflict-validation";
    case AbortCause::ConflictNorecValue: return "conflict-norec-value";
    case AbortCause::ConflictPriorityYield: return "conflict-priority-yield";
    case AbortCause::Capacity: return "capacity";
    case AbortCause::Explicit: return "explicit";
    case AbortCause::SerialRestart: return "serial-restart";
    case AbortCause::Timeout: return "timeout";
    case AbortCause::Deadlock: return "deadlock";
    case AbortCause::Exception: return "exception";
    case AbortCause::kCount: break;
  }
  return "?";
}

namespace {

// Backend display names, published by the stm backend registry at
// registration time (register_algo_label). The first five slots are
// prefilled with the built-in algorithm names so the trace layer labels
// correctly even in binaries that never touch the registry; a
// static_assert in api.cpp pins the built-in ordering.
constexpr std::size_t kCauseCount =
    static_cast<std::size_t>(AbortCause::kCount);

std::atomic<const char*> g_algo_names[kMaxAlgos] = {
    "TL2", "Eager", "CGL", "HTMSim", "NOrec",
};

const char* algo_label(std::uint8_t a) noexcept {
  if (a >= kMaxAlgos) return "-";
  const char* name = g_algo_names[a].load(std::memory_order_acquire);
  return name != nullptr ? name : "-";
}

std::size_t round_pow2(std::size_t n) noexcept {
  std::size_t p = 64;  // floor: a ring this small is still functional
  while (p < n && p < (std::size_t{1} << 24)) p <<= 1;
  return p;
}

// SPSC ring: the owning thread produces, the collector (serialized by the
// state mutex) consumes. A full ring drops the newest event.
struct Ring {
  explicit Ring(std::size_t cap) : mask(cap - 1), slots(cap) {}

  void push(const TraceEvent& ev) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    const std::uint64_t t = tail.load(std::memory_order_acquire);
    if (h - t > mask) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots[static_cast<std::size_t>(h) & mask] = ev;
    head.store(h + 1, std::memory_order_release);
  }

  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::atomic<std::uint64_t> dropped{0};
  std::size_t mask;
  std::vector<TraceEvent> slots;
};

// Summary aggregates, updated directly at emit time (never through the
// rings) so ring drops cannot skew the abort-cause breakdown.
struct Aggregates {
  struct PerAlgo {
    std::atomic<std::uint64_t> commits{0};
    std::atomic<std::uint64_t> aborts[kCauseCount] = {};
    LatencyHistogram tx;
    LatencyHistogram commit;
  };
  PerAlgo algos[kMaxAlgos];
  std::atomic<std::uint64_t> epilogues{0};
  LatencyHistogram epilogue;

  void reset() noexcept {
    for (auto& a : algos) {
      a.commits.store(0, std::memory_order_relaxed);
      for (auto& c : a.aborts) c.store(0, std::memory_order_relaxed);
      a.tx.reset();
      a.commit.reset();
    }
    epilogues.store(0, std::memory_order_relaxed);
    epilogue.reset();
  }
};

struct State {
  std::mutex mutex;  // rings directory, collector lifecycle, collected buf
  std::condition_variable cv;
  std::atomic<Ring*> rings[kMaxThreads] = {};
  std::size_t ring_capacity = 8192;
  std::size_t max_events = std::size_t{1} << 18;
  std::vector<TraceEvent> collected;
  std::uint64_t overflow_dropped = 0;
  std::thread collector;
  bool collector_running = false;
  bool stop_requested = false;
  bool exit_writer_registered = false;
  Aggregates agg;
  // stats() totals snapshotted at enable()/clear(): the run summary
  // reports counter *deltas* for the traced window, not process totals.
  std::uint64_t counter_baseline[static_cast<std::size_t>(Counter::kCount)] =
      {};
};

// Leaked on purpose: emit() may run from thread-exit paths and the atexit
// writer after static destructors would have torn a static instance down.
State& state() noexcept {
  static State* s = new State;
  return *s;
}

constexpr std::uint64_t kDrainIntervalMs = 100;

// Caller holds s.mutex.
void snapshot_counter_baseline(State& s) noexcept {
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c) {
    s.counter_baseline[c] = stats().total(static_cast<Counter>(c));
  }
}

Ring* allocate_ring(State& s, std::uint32_t tid) noexcept {
  std::lock_guard<std::mutex> lk(s.mutex);
  Ring* r = s.rings[tid].load(std::memory_order_acquire);
  if (r != nullptr) return r;  // lost the race; reuse
  r = new (std::nothrow) Ring(s.ring_capacity);
  if (r == nullptr) return nullptr;
  s.rings[tid].store(r, std::memory_order_release);
  return r;
}

// Caller holds s.mutex.
void drain_locked(State& s) {
  for (auto& slot : s.rings) {
    Ring* r = slot.load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    std::uint64_t t = r->tail.load(std::memory_order_relaxed);
    for (; t != h; ++t) {
      if (s.collected.size() < s.max_events) {
        s.collected.push_back(r->slots[static_cast<std::size_t>(t) & r->mask]);
      } else {
        ++s.overflow_dropped;
      }
    }
    r->tail.store(h, std::memory_order_release);
  }
}

void collector_loop(State& s) {
  std::unique_lock<std::mutex> lk(s.mutex);
  while (!s.stop_requested) {
    s.cv.wait_for(lk, std::chrono::milliseconds(kDrainIntervalMs),
                  [&s] { return s.stop_requested; });
    drain_locked(s);
  }
  drain_locked(s);  // final sweep so disable() loses nothing
}

void record_aggregates(const TraceEvent& ev) noexcept {
  Aggregates& agg = state().agg;
  switch (ev.type) {
    case EventType::TxCommit:
      if (ev.algo < kMaxAlgos) {
        auto& a = agg.algos[ev.algo];
        a.commits.fetch_add(1, std::memory_order_relaxed);
        a.tx.record(ev.arg0);
        a.commit.record(ev.arg1);
      }
      break;
    case EventType::TxAbort:
      if (ev.algo < kMaxAlgos &&
          static_cast<std::size_t>(ev.cause) < kCauseCount) {
        agg.algos[ev.algo].aborts[static_cast<std::size_t>(ev.cause)]
            .fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case EventType::EpilogueEnd:
      agg.epilogues.fetch_add(1, std::memory_order_relaxed);
      agg.epilogue.record(ev.arg0);
      break;
    default:
      break;
  }
}

void exit_writer() {
  if (!enabled()) return;
  const std::string& path = runtime_config().trace_out;
  if (!path.empty()) (void)write_chrome_trace(path);
}

}  // namespace

void register_algo_label(std::uint8_t idx, const char* name) noexcept {
  if (idx < kMaxAlgos && name != nullptr) {
    g_algo_names[idx].store(name, std::memory_order_release);
  }
}

namespace detail {

void emit_slow(EventType type, AbortCause cause, std::uint8_t algo,
               std::uint64_t arg0, std::uint32_t arg1) noexcept {
  State& s = state();
  TraceEvent ev;
  ev.ts_ns = now_ns();
  ev.arg0 = arg0;
  ev.arg1 = arg1;
  ev.tid = thread_id();
  ev.type = type;
  ev.cause = cause;
  ev.algo = algo;
  ev.reserved = 0;
  record_aggregates(ev);
  Ring* r = s.rings[ev.tid].load(std::memory_order_acquire);
  if (r == nullptr) {
    r = allocate_ring(s, ev.tid);
    if (r == nullptr) return;  // allocation failed: drop silently-but-never-crash
  }
  r->push(ev);
}

}  // namespace detail

void enable() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mutex);
  const RuntimeConfig& cfg = runtime_config();
  // Ring capacity applies to rings allocated from here on; existing rings
  // keep their size (documented: set knobs before enabling).
  s.ring_capacity = round_pow2(cfg.trace_ring_capacity);
  s.max_events = cfg.trace_max_events;
  // Off->on transition starts a new counter-delta window (an idempotent
  // re-enable mid-run must not shift the baseline under a live summary).
  if (!detail::g_trace_on.load(std::memory_order_relaxed)) {
    snapshot_counter_baseline(s);
  }
  detail::g_trace_on.store(true, std::memory_order_relaxed);
  if (!s.collector_running) {
    s.stop_requested = false;
    s.collector = std::thread([&s] { collector_loop(s); });
    s.collector_running = true;
  }
  if (!s.exit_writer_registered && !cfg.trace_out.empty()) {
    std::atexit(exit_writer);
    s.exit_writer_registered = true;
  }
}

void disable() {
  State& s = state();
  detail::g_trace_on.store(false, std::memory_order_relaxed);
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lk(s.mutex);
    if (!s.collector_running) return;
    s.stop_requested = true;
    joinable = std::move(s.collector);
    s.collector_running = false;
  }
  s.cv.notify_all();
  joinable.join();
}

void clear() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mutex);
  for (auto& slot : s.rings) {
    Ring* r = slot.load(std::memory_order_acquire);
    if (r == nullptr) continue;
    r->tail.store(r->head.load(std::memory_order_acquire),
                  std::memory_order_release);
    r->dropped.store(0, std::memory_order_relaxed);
  }
  s.collected.clear();
  s.overflow_dropped = 0;
  s.agg.reset();
  snapshot_counter_baseline(s);
}

void drain() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mutex);
  drain_locked(s);
}

std::size_t collected_count() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mutex);
  return s.collected.size();
}

std::uint64_t dropped_count() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mutex);
  std::uint64_t n = s.overflow_dropped;
  for (auto& slot : s.rings) {
    Ring* r = slot.load(std::memory_order_acquire);
    if (r != nullptr) n += r->dropped.load(std::memory_order_relaxed);
  }
  return n;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

namespace {

// Events that render as Chrome complete ("X") duration events carry their
// span length in arg0; everything else is an instant.
bool is_duration_event(EventType t) noexcept {
  return t == EventType::TxCommit || t == EventType::EpilogueEnd ||
         t == EventType::RetryWake || t == EventType::LockWake;
}

void append_event_json(std::string& out, const TraceEvent& ev) {
  char buf[256];
  const double us = static_cast<double>(ev.ts_ns) / 1000.0;
  if (is_duration_event(ev.type)) {
    const double dur_us = static_cast<double>(ev.arg0) / 1000.0;
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"adtm\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{"
                  "\"algo\":\"%s\",\"arg1\":%u}}",
                  event_name(ev.type), us - dur_us, dur_us, ev.tid,
                  algo_label(ev.algo), ev.arg1);
  } else if (ev.type == EventType::TxAbort) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"adtm\",\"ph\":\"i\","
                  "\"ts\":%.3f,\"s\":\"t\",\"pid\":1,\"tid\":%u,\"args\":{"
                  "\"algo\":\"%s\",\"cause\":\"%s\",\"attempt\":%u}}",
                  event_name(ev.type), us, ev.tid, algo_label(ev.algo),
                  abort_cause_name(ev.cause), ev.arg1);
  } else {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"adtm\",\"ph\":\"i\","
                  "\"ts\":%.3f,\"s\":\"t\",\"pid\":1,\"tid\":%u,\"args\":{"
                  "\"algo\":\"%s\",\"arg0\":%" PRIu64 ",\"arg1\":%u}}",
                  event_name(ev.type), us, ev.tid, algo_label(ev.algo),
                  ev.arg0, ev.arg1);
  }
  out += buf;
}

}  // namespace

std::string chrome_trace_json() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mutex);
  drain_locked(s);
  std::string out;
  out.reserve(128 + s.collected.size() * 160);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"adtm\"}}";
  for (const TraceEvent& ev : s.collected) {
    out += ",\n";
    append_event_json(out, ev);
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::string recent_tail(std::size_t n) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mutex);
  drain_locked(s);
  const std::size_t count = s.collected.size();
  const std::size_t from = count > n ? count - n : 0;
  std::string out;
  char buf[192];
  for (std::size_t i = from; i < count; ++i) {
    const TraceEvent& ev = s.collected[i];
    std::snprintf(buf, sizeof buf,
                  "  [%" PRIu64 ".%06" PRIu64 " ms] tid=%u %s %s%s%s arg0=%" PRIu64
                  " arg1=%u\n",
                  ev.ts_ns / 1000000, ev.ts_ns % 1000000, ev.tid,
                  algo_label(ev.algo), event_name(ev.type),
                  ev.cause == AbortCause::None ? "" : " cause=",
                  ev.cause == AbortCause::None ? ""
                                               : abort_cause_name(ev.cause),
                  ev.arg0, ev.arg1);
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Run summary
// ---------------------------------------------------------------------------

RunSummary summary() {
  State& s = state();
  RunSummary out;
  {
    std::lock_guard<std::mutex> lk(s.mutex);
    drain_locked(s);
    out.events = s.collected.size();
    out.counters.reserve(static_cast<std::size_t>(Counter::kCount));
    for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount);
         ++c) {
      const std::uint64_t total = stats().total(static_cast<Counter>(c));
      const std::uint64_t base = s.counter_baseline[c];
      // A stats().reset() inside the window makes totals go backwards;
      // clamp instead of wrapping.
      out.counters.emplace_back(counter_name(static_cast<Counter>(c)),
                                total >= base ? total - base : 0);
    }
  }
  out.dropped = dropped_count();
  for (std::size_t i = 0; i < kMaxAlgos; ++i) {
    const auto& a = s.agg.algos[i];
    AlgoSummary algo;
    algo.algo = algo_label(static_cast<std::uint8_t>(i));
    algo.commits = a.commits.load(std::memory_order_relaxed);
    for (std::size_t c = 0; c < kCauseCount; ++c) {
      algo.aborts[c] = a.aborts[c].load(std::memory_order_relaxed);
      algo.total_aborts += algo.aborts[c];
    }
    if (algo.commits == 0 && algo.total_aborts == 0) continue;
    algo.tx_p50 = a.tx.percentile(50);
    algo.tx_p99 = a.tx.percentile(99);
    algo.commit_p50 = a.commit.percentile(50);
    algo.commit_p99 = a.commit.percentile(99);
    out.algos.push_back(std::move(algo));
  }
  out.epilogues = s.agg.epilogues.load(std::memory_order_relaxed);
  out.epilogue_p50 = s.agg.epilogue.percentile(50);
  out.epilogue_p99 = s.agg.epilogue.percentile(99);
  return out;
}

std::string summary_json() {
  const RunSummary sum = summary();
  std::string out = "{\"schema\":\"adtm-obs-summary/v2\"";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                ",\"events\":%" PRIu64 ",\"dropped\":%" PRIu64
                ",\"epilogues\":{\"count\":%" PRIu64 ",\"p50_ns\":%" PRIu64
                ",\"p99_ns\":%" PRIu64 "}",
                sum.events, sum.dropped, sum.epilogues, sum.epilogue_p50,
                sum.epilogue_p99);
  out += buf;
  out += ",\"algos\":{";
  bool first_algo = true;
  for (const AlgoSummary& a : sum.algos) {
    if (!first_algo) out += ",";
    first_algo = false;
    out += "\"" + a.algo + "\":{";
    std::snprintf(buf, sizeof buf,
                  "\"commits\":%" PRIu64 ",\"tx_ns\":{\"p50\":%" PRIu64
                  ",\"p99\":%" PRIu64 "},\"commit_ns\":{\"p50\":%" PRIu64
                  ",\"p99\":%" PRIu64 "},\"aborts\":{",
                  a.commits, a.tx_p50, a.tx_p99, a.commit_p50, a.commit_p99);
    out += buf;
    bool first_cause = true;
    for (std::size_t c = 1; c < kCauseCount; ++c) {  // skip None
      if (!first_cause) out += ",";
      first_cause = false;
      std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64,
                    abort_cause_name(static_cast<AbortCause>(c)),
                    a.aborts[c]);
      out += buf;
    }
    out += "}}";
  }
  out += "},\"counters\":{";
  bool first_counter = true;
  for (const auto& [name, delta] : sum.counters) {
    if (!first_counter) out += ",";
    first_counter = false;
    std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64, name.c_str(), delta);
    out += buf;
  }
  out += "}}";
  return out;
}

// Tracing follows adtm::configure() so tests and embedders can flip the
// gate without touching the environment.
namespace {
const bool g_config_applier = [] {
  adtm::detail::register_config_applier([](const RuntimeConfig& cfg) {
    if (cfg.trace) {
      enable();
    } else {
      disable();
    }
  });
  return true;
}();
}  // namespace

}  // namespace adtm::obs
