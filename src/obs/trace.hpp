// Transaction tracing and abort taxonomy (the observability layer).
//
// Always compiled, runtime gated: every instrumentation point in the
// runtime is a single relaxed atomic load and a predicted-not-taken
// branch while tracing is disabled, so the layer can ship enabled-capable
// in production builds (micro_stm_ops proves the disabled delta).
//
// Architecture:
//  * emit() appends a fixed-size 32-byte TraceEvent to the calling
//    thread's lock-free SPSC ring buffer (producer: the thread; consumer:
//    the collector). A full ring drops the newest event and counts the
//    drop — tracing never blocks or allocates on the hot path.
//  * A background collector drains the rings periodically (and on
//    demand) into a bounded in-memory buffer; overflow there is likewise
//    dropped and counted.
//  * write_chrome_trace() renders the buffer as Chrome trace_event JSON
//    (load in Perfetto / chrome://tracing); summary() aggregates the
//    machine-readable run summary — per-algorithm abort-cause breakdown
//    and commit-phase latency percentiles (common/stats LatencyHistogram).
//  * The watchdog appends recent_tail() to stall reports, so a stall
//    diagnosis comes with the events leading up to it.
//
// Knobs (see adtm::RuntimeConfig): ADTM_TRACE, ADTM_TRACE_RING,
// ADTM_TRACE_MAX_EVENTS, ADTM_TRACE_OUT.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace adtm::obs {

// One entry per lifecycle event the runtime records. Keep event_name()
// in sync.
enum class EventType : std::uint8_t {
  TxBegin,        // arg1 = attempt number
  TxCommit,       // arg0 = attempt duration ns, arg1 = commit-phase ns
  TxAbort,        // cause = AbortCause, arg1 = attempt number
  RetryPark,      // thread parked in a retry wait
  RetryWake,      // arg0 = park duration ns, arg1 = 1 on deadline expiry
  SerialEnter,    // attempt escalated to serial-irrevocable mode
  DeferEnqueue,   // arg1 = number of Deferrable objects locked
  EpilogueBegin,  // deferred operation started post-commit
  EpilogueEnd,    // arg0 = epilogue duration ns
  LockPark,       // arg0 = TxLock address; waiter parked on it
  LockWake,       // arg0 = wait duration ns; park on a TxLock ended
  IoComplete,     // arg0 = bytes, arg1 = errno (0 = success)
  WalFlush,       // arg0 = records flushed, arg1 = total fsync count
  HealthTransition,   // arg0 = from HealthState, arg1 = to HealthState
  BreakerTransition,  // arg0 = from BreakerState, arg1 = to BreakerState
  BackendSwitch,      // algo = new backend, arg0 = old backend index
  kCount
};

const char* event_name(EventType t) noexcept;

// Why a transaction attempt rolled back — the structured taxonomy carried
// by every TxAbort event and aggregated per algorithm in the run summary.
// Keep abort_cause_name() in sync.
enum class AbortCause : std::uint8_t {
  None,                   // not an abort event
  ConflictLockBusy,       // busy-orec spin/patience budget exhausted
  ConflictValidation,     // read-set validation / snapshot extension failed
  ConflictNorecValue,     // NOrec value-based validation failed
  ConflictPriorityYield,  // stepped aside for the priority (starved) thread
  Capacity,               // HTMSim footprint exceeded the capacity budget
  Explicit,               // stm::cancel()
  SerialRestart,          // become_irrevocable() rollback before serial re-run
  Timeout,                // deadline-aware retry expired (RetryTimeout)
  Deadlock,               // wait-graph cycle (DeadlockError) unwound the tx
  Exception,              // a user exception unwound the transaction
  kCount
};

const char* abort_cause_name(AbortCause c) noexcept;

// Fixed-size POD record; 32 bytes so a ring slot never straddles more
// than one cache line pair and the collector copies with memcpy cost.
struct TraceEvent {
  std::uint64_t ts_ns;  // now_ns() at the event
  std::uint64_t arg0;   // event-specific (durations, addresses, bytes)
  std::uint32_t arg1;   // event-specific (attempt, errno, counts)
  std::uint32_t tid;    // dense thread id (common/thread_id)
  EventType type;
  AbortCause cause;
  std::uint8_t algo;    // stm::Algo value, kNoAlgo when not applicable
  std::uint8_t reserved;
};
static_assert(sizeof(TraceEvent) == 32, "TraceEvent must stay 32 bytes");

inline constexpr std::uint8_t kNoAlgo = 0xFF;

// Upper bound on registered TM backends the trace layer can label and
// aggregate per-algorithm. The stm backend registry assigns each backend
// a dense index < kMaxAlgos at registration and publishes its display
// name here (obs cannot depend on stm — the dependency runs the other
// way). Indices without a registered name render as "-".
inline constexpr std::size_t kMaxAlgos = 16;

// Publish the display label for backend index `idx`. `name` must have
// process lifetime (the registry passes string literals). Called at
// backend registration, before any event with that index is emitted.
void register_algo_label(std::uint8_t idx, const char* name) noexcept;

namespace detail {
extern std::atomic<bool> g_trace_on;
void emit_slow(EventType type, AbortCause cause, std::uint8_t algo,
               std::uint64_t arg0, std::uint32_t arg1) noexcept;
}  // namespace detail

// The runtime gate. Hot paths test this once per event site.
inline bool enabled() noexcept {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

// Record one event. No-op (one load + branch) while disabled; never
// blocks, throws, or allocates while enabled.
inline void emit(EventType type, AbortCause cause = AbortCause::None,
                 std::uint8_t algo = kNoAlgo, std::uint64_t arg0 = 0,
                 std::uint32_t arg1 = 0) noexcept {
  if (!enabled()) return;
  detail::emit_slow(type, cause, algo, arg0, arg1);
}

// --- control ---------------------------------------------------------------

// Turn tracing on: opens the gate, starts the background collector, and
// (once) registers the process-exit Chrome-trace writer when
// RuntimeConfig::trace_out is nonempty. Idempotent.
void enable();

// Close the gate, stop the collector after a final drain. Events already
// collected are retained until clear(). Idempotent.
void disable();

// Drop every collected event, drop counter, and summary aggregate (the
// per-thread rings are drained and discarded too). For test isolation and
// phase boundaries; not safe concurrently with tracing threads.
void clear();

// Pull all per-thread rings into the collector's buffer now (also done
// periodically by the collector thread and by the render functions).
void drain();

// Number of events currently held by the collector.
std::size_t collected_count();

// Events lost to full rings plus collector overflow since clear().
std::uint64_t dropped_count();

// --- rendering -------------------------------------------------------------

// Chrome trace_event JSON (the "JSON Object Format": {"traceEvents":
// [...]}). Commit, epilogue, retry-park and lock-wait events render as
// complete ("X") duration events; the rest as instants.
std::string chrome_trace_json();

// Write chrome_trace_json() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path);

// Human-readable rendering of the last `n` collected events, newest
// last — the tail the watchdog attaches to stall reports.
std::string recent_tail(std::size_t n);

// --- run summary -----------------------------------------------------------

struct AlgoSummary {
  std::string algo;                  // "TL2", "Eager", ...
  std::uint64_t commits = 0;
  std::uint64_t aborts[static_cast<std::size_t>(AbortCause::kCount)] = {};
  std::uint64_t total_aborts = 0;
  // Percentiles from the LatencyHistogram aggregates (ns).
  std::uint64_t tx_p50 = 0, tx_p99 = 0;          // begin -> commit end
  std::uint64_t commit_p50 = 0, commit_p99 = 0;  // commit phase only
};

struct RunSummary {
  std::vector<AlgoSummary> algos;    // only algorithms that ran
  std::uint64_t epilogues = 0;
  std::uint64_t epilogue_p50 = 0, epilogue_p99 = 0;
  std::uint64_t events = 0;          // collected
  std::uint64_t dropped = 0;
  // stats() counter deltas for the traced window: total(c) minus the
  // baseline snapshotted at enable() (off->on) and clear(). One entry per
  // Counter, in declaration order, named by counter_name().
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

// Aggregate of everything recorded since clear() (independent of the
// ring/collector path, so drops never skew the breakdown).
RunSummary summary();

// The summary as machine-readable JSON (the BENCH_*-style run record).
std::string summary_json();

}  // namespace adtm::obs
