// Transactional red-black tree map.
//
// The paper's introduction motivates TM with exactly this structure: "the
// rebalancing operations of a red-black tree" have irregular,
// hard-to-predict memory accesses that make fine-grained locking painful,
// while a transaction just wraps the sequential algorithm. This is the
// classic CLRS red-black tree with every mutable field behind a tvar, so
// any operation can run inside any transaction (and compose with
// atomic_defer, retry, and the rest of the runtime).
//
// Concurrency model: operations are transactions; conflicting operations
// (overlapping search paths) abort-and-retry via the TM. Erased nodes are
// reclaimed through commit epilogues, which run after quiescence — so no
// reader can still be traversing a reclaimed node.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>

#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm::containers {

template <typename K, typename V>
class TxRbTree {
  static_assert(std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>,
                "TxRbTree requires trivially copyable key/value types");

 public:
  TxRbTree() {
    // Sentinel nil: black, self-linked. Its parent field is written
    // transiently during fix-ups, exactly as in CLRS.
    nil_ = new Node;
    nil_->red.store_direct(false);
    nil_->left.store_direct(nil_);
    nil_->right.store_direct(nil_);
    nil_->parent.store_direct(nil_);
    root_.store_direct(nil_);
  }

  ~TxRbTree() {
    destroy(root_.load_direct());
    delete nil_;
  }

  TxRbTree(const TxRbTree&) = delete;
  TxRbTree& operator=(const TxRbTree&) = delete;

  // Insert or update. Returns true if a new key was inserted.
  bool insert(stm::Tx& tx, const K& key, const V& value) {
    Node* parent = nil_;
    Node* cur = root_.get(tx);
    while (cur != nil_) {
      parent = cur;
      const K ck = cur->key.get(tx);
      if (key < ck) {
        cur = cur->left.get(tx);
      } else if (ck < key) {
        cur = cur->right.get(tx);
      } else {
        cur->value.set(tx, value);
        return false;
      }
    }
    Node* node = static_cast<Node*>(tx.alloc(sizeof(Node)));
    ::new (node) Node;
    node->key.store_direct(key);
    node->value.store_direct(value);
    node->left.store_direct(nil_);
    node->right.store_direct(nil_);
    node->red.store_direct(true);
    node->parent.set(tx, parent);
    if (parent == nil_) {
      root_.set(tx, node);
    } else if (key < parent->key.get(tx)) {
      parent->left.set(tx, node);
    } else {
      parent->right.set(tx, node);
    }
    insert_fixup(tx, node);
    size_.set(tx, size_.get(tx) + 1);
    return true;
  }

  // Lookup.
  std::optional<V> find(stm::Tx& tx, const K& key) const {
    Node* cur = root_.get(tx);
    while (cur != nil_) {
      const K ck = cur->key.get(tx);
      if (key < ck) {
        cur = cur->left.get(tx);
      } else if (ck < key) {
        cur = cur->right.get(tx);
      } else {
        return cur->value.get(tx);
      }
    }
    return std::nullopt;
  }

  bool contains(stm::Tx& tx, const K& key) const {
    return find(tx, key).has_value();
  }

  // Remove. Returns true if the key was present.
  bool erase(stm::Tx& tx, const K& key) {
    Node* z = root_.get(tx);
    while (z != nil_) {
      const K ck = z->key.get(tx);
      if (key < ck) {
        z = z->left.get(tx);
      } else if (ck < key) {
        z = z->right.get(tx);
      } else {
        break;
      }
    }
    if (z == nil_) return false;
    erase_node(tx, z);
    size_.set(tx, size_.get(tx) - 1);
    // Reclaim after commit + quiescence: no concurrent transaction can
    // still hold a reference by then.
    tx.on_commit([z] {
      z->~Node();
      std::free(z);
    });
    return true;
  }

  std::size_t size(stm::Tx& tx) const { return size_.get(tx); }

  // In-order visit (transactional; the visitor must not throw).
  void for_each(stm::Tx& tx,
                const std::function<void(const K&, const V&)>& visit) const {
    visit_inorder(tx, root_.get(tx), visit);
  }

  // --- validation hooks (tests; call while quiescent) -----------------

  // Checks the red-black invariants directly (no transactions):
  // root black, no red node with a red child, equal black heights.
  // Returns the black height, or -1 on violation.
  int validate_direct() const { return check(root_.load_direct()); }

  bool sorted_direct() const {
    const Node* prev = nullptr;
    return check_sorted(root_.load_direct(), &prev);
  }

  std::size_t size_direct() const { return size_.load_direct(); }

 private:
  struct Node {
    stm::tvar<K> key{};
    stm::tvar<V> value{};
    stm::tvar<Node*> left{nullptr};
    stm::tvar<Node*> right{nullptr};
    stm::tvar<Node*> parent{nullptr};
    stm::tvar<bool> red{false};
  };

  // -- rotations & fix-ups (CLRS 13) -----------------------------------

  void rotate_left(stm::Tx& tx, Node* x) {
    Node* y = x->right.get(tx);
    Node* yl = y->left.get(tx);
    x->right.set(tx, yl);
    if (yl != nil_) yl->parent.set(tx, x);
    Node* xp = x->parent.get(tx);
    y->parent.set(tx, xp);
    if (xp == nil_) {
      root_.set(tx, y);
    } else if (x == xp->left.get(tx)) {
      xp->left.set(tx, y);
    } else {
      xp->right.set(tx, y);
    }
    y->left.set(tx, x);
    x->parent.set(tx, y);
  }

  void rotate_right(stm::Tx& tx, Node* x) {
    Node* y = x->left.get(tx);
    Node* yr = y->right.get(tx);
    x->left.set(tx, yr);
    if (yr != nil_) yr->parent.set(tx, x);
    Node* xp = x->parent.get(tx);
    y->parent.set(tx, xp);
    if (xp == nil_) {
      root_.set(tx, y);
    } else if (x == xp->right.get(tx)) {
      xp->right.set(tx, y);
    } else {
      xp->left.set(tx, y);
    }
    y->right.set(tx, x);
    x->parent.set(tx, y);
  }

  void insert_fixup(stm::Tx& tx, Node* z) {
    while (z->parent.get(tx)->red.get(tx)) {
      Node* zp = z->parent.get(tx);
      Node* zpp = zp->parent.get(tx);
      if (zp == zpp->left.get(tx)) {
        Node* uncle = zpp->right.get(tx);
        if (uncle->red.get(tx)) {
          zp->red.set(tx, false);
          uncle->red.set(tx, false);
          zpp->red.set(tx, true);
          z = zpp;
        } else {
          if (z == zp->right.get(tx)) {
            z = zp;
            rotate_left(tx, z);
            zp = z->parent.get(tx);
            zpp = zp->parent.get(tx);
          }
          zp->red.set(tx, false);
          zpp->red.set(tx, true);
          rotate_right(tx, zpp);
        }
      } else {
        Node* uncle = zpp->left.get(tx);
        if (uncle->red.get(tx)) {
          zp->red.set(tx, false);
          uncle->red.set(tx, false);
          zpp->red.set(tx, true);
          z = zpp;
        } else {
          if (z == zp->left.get(tx)) {
            z = zp;
            rotate_right(tx, z);
            zp = z->parent.get(tx);
            zpp = zp->parent.get(tx);
          }
          zp->red.set(tx, false);
          zpp->red.set(tx, true);
          rotate_left(tx, zpp);
        }
      }
    }
    root_.get(tx)->red.set(tx, false);
  }

  void transplant(stm::Tx& tx, Node* u, Node* v) {
    Node* up = u->parent.get(tx);
    if (up == nil_) {
      root_.set(tx, v);
    } else if (u == up->left.get(tx)) {
      up->left.set(tx, v);
    } else {
      up->right.set(tx, v);
    }
    v->parent.set(tx, up);
  }

  Node* minimum(stm::Tx& tx, Node* x) const {
    while (x->left.get(tx) != nil_) x = x->left.get(tx);
    return x;
  }

  void erase_node(stm::Tx& tx, Node* z) {
    Node* y = z;
    bool y_was_red = y->red.get(tx);
    Node* x;
    if (z->left.get(tx) == nil_) {
      x = z->right.get(tx);
      transplant(tx, z, x);
    } else if (z->right.get(tx) == nil_) {
      x = z->left.get(tx);
      transplant(tx, z, x);
    } else {
      y = minimum(tx, z->right.get(tx));
      y_was_red = y->red.get(tx);
      x = y->right.get(tx);
      if (y->parent.get(tx) == z) {
        x->parent.set(tx, y);  // may write the sentinel; CLRS does too
      } else {
        transplant(tx, y, x);
        Node* zr = z->right.get(tx);
        y->right.set(tx, zr);
        zr->parent.set(tx, y);
      }
      transplant(tx, z, y);
      Node* zl = z->left.get(tx);
      y->left.set(tx, zl);
      zl->parent.set(tx, y);
      y->red.set(tx, z->red.get(tx));
    }
    if (!y_was_red) erase_fixup(tx, x);
  }

  void erase_fixup(stm::Tx& tx, Node* x) {
    while (x != root_.get(tx) && !x->red.get(tx)) {
      Node* xp = x->parent.get(tx);
      if (x == xp->left.get(tx)) {
        Node* w = xp->right.get(tx);
        if (w->red.get(tx)) {
          w->red.set(tx, false);
          xp->red.set(tx, true);
          rotate_left(tx, xp);
          w = xp->right.get(tx);
        }
        if (!w->left.get(tx)->red.get(tx) && !w->right.get(tx)->red.get(tx)) {
          w->red.set(tx, true);
          x = xp;
        } else {
          if (!w->right.get(tx)->red.get(tx)) {
            w->left.get(tx)->red.set(tx, false);
            w->red.set(tx, true);
            rotate_right(tx, w);
            w = xp->right.get(tx);
          }
          w->red.set(tx, xp->red.get(tx));
          xp->red.set(tx, false);
          w->right.get(tx)->red.set(tx, false);
          rotate_left(tx, xp);
          x = root_.get(tx);
        }
      } else {
        Node* w = xp->left.get(tx);
        if (w->red.get(tx)) {
          w->red.set(tx, false);
          xp->red.set(tx, true);
          rotate_right(tx, xp);
          w = xp->left.get(tx);
        }
        if (!w->right.get(tx)->red.get(tx) && !w->left.get(tx)->red.get(tx)) {
          w->red.set(tx, true);
          x = xp;
        } else {
          if (!w->left.get(tx)->red.get(tx)) {
            w->right.get(tx)->red.set(tx, false);
            w->red.set(tx, true);
            rotate_left(tx, w);
            w = xp->left.get(tx);
          }
          w->red.set(tx, xp->red.get(tx));
          xp->red.set(tx, false);
          w->left.get(tx)->red.set(tx, false);
          rotate_right(tx, xp);
          x = root_.get(tx);
        }
      }
    }
    x->red.set(tx, false);
  }

  void visit_inorder(
      stm::Tx& tx, Node* n,
      const std::function<void(const K&, const V&)>& visit) const {
    if (n == nil_) return;
    visit_inorder(tx, n->left.get(tx), visit);
    visit(n->key.get(tx), n->value.get(tx));
    visit_inorder(tx, n->right.get(tx), visit);
  }

  // -- direct validation (quiescent) ------------------------------------

  int check(const Node* n) const {
    if (n == nil_) return 1;
    const bool red = n->red.load_direct();
    const Node* l = n->left.load_direct();
    const Node* r = n->right.load_direct();
    if (red && (l->red.load_direct() || r->red.load_direct())) return -1;
    const int lh = check(l);
    const int rh = check(r);
    if (lh < 0 || rh < 0 || lh != rh) return -1;
    return lh + (red ? 0 : 1);
  }

  bool check_sorted(const Node* n, const Node** prev) const {
    if (n == nil_) return true;
    if (!check_sorted(n->left.load_direct(), prev)) return false;
    if (*prev != nullptr &&
        !((*prev)->key.load_direct() < n->key.load_direct())) {
      return false;
    }
    *prev = n;
    return check_sorted(n->right.load_direct(), prev);
  }

  void destroy(Node* n) {
    if (n == nil_) return;
    destroy(n->left.load_direct());
    destroy(n->right.load_direct());
    n->~Node();
    std::free(n);
  }

  Node* nil_;
  stm::tvar<Node*> root_{nullptr};
  stm::tvar<std::size_t> size_{0};
};

}  // namespace adtm::containers
