// Transactional FIFO queue with blocking pop.
//
// pop_wait composes the queue with the runtime's retry: a consumer of an
// empty queue aborts and sleeps until a producer's commit changes the head
// — the condition-synchronization pattern of Harris et al. that the
// paper's TxLock subscription is built from.
#pragma once

#include <cstddef>
#include <optional>
#include <type_traits>

#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm::containers {

template <typename T>
class TxQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "TxQueue requires a trivially copyable element type");

 public:
  TxQueue() = default;

  ~TxQueue() {
    Node* n = head_.load_direct();
    while (n != nullptr) {
      Node* next = n->next.load_direct();
      n->~Node();
      std::free(n);
      n = next;
    }
  }

  TxQueue(const TxQueue&) = delete;
  TxQueue& operator=(const TxQueue&) = delete;

  void push(stm::Tx& tx, const T& value) {
    Node* node = static_cast<Node*>(tx.alloc(sizeof(Node)));
    ::new (node) Node;
    node->value.store_direct(value);
    Node* tail = tail_.get(tx);
    if (tail == nullptr) {
      head_.set(tx, node);
    } else {
      tail->next.set(tx, node);
    }
    tail_.set(tx, node);
    size_.set(tx, size_.get(tx) + 1);
  }

  // Non-blocking pop.
  std::optional<T> pop(stm::Tx& tx) {
    Node* head = head_.get(tx);
    if (head == nullptr) return std::nullopt;
    return do_pop(tx, head);
  }

  // Blocking pop: retries (sleeping) until an element is available.
  T pop_wait(stm::Tx& tx) {
    Node* head = head_.get(tx);
    if (head == nullptr) stm::retry(tx);
    return do_pop(tx, head);
  }

  std::size_t size(stm::Tx& tx) const { return size_.get(tx); }
  std::size_t size_direct() const { return size_.load_direct(); }
  bool empty(stm::Tx& tx) const { return head_.get(tx) == nullptr; }

 private:
  struct Node {
    stm::tvar<T> value{};
    stm::tvar<Node*> next{nullptr};
  };

  T do_pop(stm::Tx& tx, Node* head) {
    const T value = head->value.get(tx);
    Node* next = head->next.get(tx);
    head_.set(tx, next);
    if (next == nullptr) tail_.set(tx, nullptr);
    size_.set(tx, size_.get(tx) - 1);
    tx.on_commit([head] {
      head->~Node();
      std::free(head);
    });
    return value;
  }

  stm::tvar<Node*> head_{nullptr};
  stm::tvar<Node*> tail_{nullptr};
  stm::tvar<std::size_t> size_{0};
};

}  // namespace adtm::containers
