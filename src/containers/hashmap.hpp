// Transactional chained hash map.
//
// Fixed bucket count (no concurrent resize; pick a capacity at
// construction), separate chaining with per-node tvar links. Disjoint
// buckets never conflict, so this scales the way the paper's Figure 1
// says lock-based code partitioned by many locks does — but with plain
// transactional code and full composability (an insert can be one leg of
// a larger transaction).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <vector>

#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm::containers {

template <typename K, typename V, typename Hash = std::hash<K>>
class TxHashMap {
  static_assert(std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>,
                "TxHashMap requires trivially copyable key/value types");

 public:
  explicit TxHashMap(std::size_t buckets = 1024)
      : heads_(buckets == 0 ? 1 : buckets) {}

  ~TxHashMap() {
    for (auto& head : heads_) {
      Node* n = head.load_direct();
      while (n != nullptr) {
        Node* next = n->next.load_direct();
        n->~Node();
        std::free(n);
        n = next;
      }
    }
  }

  TxHashMap(const TxHashMap&) = delete;
  TxHashMap& operator=(const TxHashMap&) = delete;

  // Insert or update; returns true when a new key was added.
  bool put(stm::Tx& tx, const K& key, const V& value) {
    auto& head = bucket(key);
    for (Node* n = head.get(tx); n != nullptr; n = n->next.get(tx)) {
      if (n->key.get(tx) == key) {
        n->value.set(tx, value);
        return false;
      }
    }
    Node* node = static_cast<Node*>(tx.alloc(sizeof(Node)));
    ::new (node) Node;
    node->key.store_direct(key);
    node->value.store_direct(value);
    node->next.set(tx, head.get(tx));
    head.set(tx, node);
    size_.set(tx, size_.get(tx) + 1);
    return true;
  }

  std::optional<V> get(stm::Tx& tx, const K& key) const {
    auto& head = bucket(key);
    for (Node* n = head.get(tx); n != nullptr; n = n->next.get(tx)) {
      if (n->key.get(tx) == key) return n->value.get(tx);
    }
    return std::nullopt;
  }

  bool contains(stm::Tx& tx, const K& key) const {
    return get(tx, key).has_value();
  }

  // Remove; returns true when the key was present.
  bool erase(stm::Tx& tx, const K& key) {
    auto& head = bucket(key);
    Node* prev = nullptr;
    for (Node* n = head.get(tx); n != nullptr; n = n->next.get(tx)) {
      if (n->key.get(tx) == key) {
        Node* next = n->next.get(tx);
        if (prev == nullptr) {
          head.set(tx, next);
        } else {
          prev->next.set(tx, next);
        }
        size_.set(tx, size_.get(tx) - 1);
        tx.on_commit([n] {
          n->~Node();
          std::free(n);
        });
        return true;
      }
      prev = n;
    }
    return false;
  }

  std::size_t size(stm::Tx& tx) const { return size_.get(tx); }
  std::size_t size_direct() const { return size_.load_direct(); }
  std::size_t bucket_count() const noexcept { return heads_.size(); }

 private:
  struct Node {
    stm::tvar<K> key{};
    stm::tvar<V> value{};
    stm::tvar<Node*> next{nullptr};
  };

  stm::tvar<Node*>& bucket(const K& key) const {
    return heads_[Hash{}(key) % heads_.size()];
  }

  mutable std::vector<stm::tvar<Node*>> heads_;
  stm::tvar<std::size_t> size_{0};
};

}  // namespace adtm::containers
