// Transactional B+ tree map.
//
// The OLTP-scale container: wide nodes amortize the descent over few
// cache-resident tvar reads, leaves are chained for range scans, and —
// because every mutable field is a tvar — any operation composes with the
// rest of the runtime (atomic_defer, TxLocks, retry). Modeled on the
// 2PLSF TMBTreeByRef idiom of running the sequential algorithm under TM
// instead of hand-crafting lock crabbing.
//
// Structural policy (write-optimized, as in B-link-style engines):
//  * Inserts split preemptively on the way down, so a split never
//    propagates back up and the parent always has room — one descent,
//    bounded write set.
//  * Removes delete from the leaf only; underfull or empty leaves stay in
//    place and are absorbed by later splits or the destructor. Separator
//    keys may therefore outlive the key they were copied from — routing
//    is by value, so lookups and inserts stay correct. All leaves remain
//    at the same depth forever (only splits change height).
//  * Nodes are reclaimed only by the destructor; erase frees nothing, so
//    concurrent readers never chase freed memory.
//
// Concurrency model: operations are transactions; overlapping descents
// conflict and retry via the TM. Values and keys must be trivially
// copyable (they live in tvars).
#pragma once

#include <array>
#include <cstddef>
#include <cstdlib>
#include <functional>
#include <optional>
#include <type_traits>

#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm::containers {

template <typename K, typename V, unsigned kFanout = 16>
class TxBTree {
  static_assert(std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>,
                "TxBTree requires trivially copyable key/value types");
  static_assert(kFanout >= 4, "TxBTree needs a fanout of at least 4");

  static constexpr unsigned kMaxKeys = kFanout - 1;

 public:
  TxBTree() {
    Node* leaf = static_cast<Node*>(std::malloc(sizeof(Node)));
    ::new (leaf) Node;
    leaf->leaf.store_direct(true);
    root_.store_direct(leaf);
  }

  ~TxBTree() {
    destroy(root_.load_direct());
  }

  TxBTree(const TxBTree&) = delete;
  TxBTree& operator=(const TxBTree&) = delete;

  // Insert or update; returns true when a new key was added.
  bool put(stm::Tx& tx, const K& key, const V& value) {
    Node* root = root_.get(tx);
    if (root->count.get(tx) == kMaxKeys) {
      // Preemptive root split: the tree grows by one level here and
      // nowhere else.
      Node* top = static_cast<Node*>(tx.alloc(sizeof(Node)));
      ::new (top) Node;
      top->leaf.store_direct(false);
      top->children[0].store_direct(root);
      root_.set(tx, top);
      split_child(tx, top, 0);
      root = top;
    }
    Node* cur = root;
    while (!cur->leaf.get(tx)) {
      unsigned idx = route(tx, cur, key);
      Node* child = cur->children[idx].get(tx);
      if (child->count.get(tx) == kMaxKeys) {
        split_child(tx, cur, idx);
        // The new separator at idx decides which half we descend into.
        if (!(key < cur->keys[idx].get(tx))) ++idx;
        child = cur->children[idx].get(tx);
      }
      cur = child;
    }
    return leaf_insert(tx, cur, key, value);
  }

  std::optional<V> get(stm::Tx& tx, const K& key) const {
    Node* cur = descend_to_leaf(tx, key);
    const unsigned n = cur->count.get(tx);
    for (unsigned i = 0; i < n; ++i) {
      const K k = cur->keys[i].get(tx);
      if (!(k < key) && !(key < k)) return cur->values[i].get(tx);
      if (key < k) break;
    }
    return std::nullopt;
  }

  bool contains(stm::Tx& tx, const K& key) const {
    return get(tx, key).has_value();
  }

  // Remove from the leaf; returns true when the key was present. No
  // rebalancing (see the structural policy above).
  bool remove(stm::Tx& tx, const K& key) {
    Node* leaf = descend_to_leaf(tx, key);
    const unsigned n = leaf->count.get(tx);
    for (unsigned i = 0; i < n; ++i) {
      const K k = leaf->keys[i].get(tx);
      if (key < k) return false;
      if (!(k < key)) {
        for (unsigned j = i; j + 1 < n; ++j) {
          leaf->keys[j].set(tx, leaf->keys[j + 1].get(tx));
          leaf->values[j].set(tx, leaf->values[j + 1].get(tx));
        }
        leaf->count.set(tx, n - 1);
        size_.set(tx, size_.get(tx) - 1);
        return true;
      }
    }
    return false;
  }

  // Visit keys in [lo, hi] in order, at most `limit` of them (0 = no
  // limit). The visitor returns false to stop early. Returns the number
  // of pairs visited. Walks the leaf chain, so a scan's read set is the
  // descent plus the touched leaves.
  std::size_t range_scan(
      stm::Tx& tx, const K& lo, const K& hi, std::size_t limit,
      const std::function<bool(const K&, const V&)>& visit) const {
    std::size_t seen = 0;
    Node* leaf = descend_to_leaf(tx, lo);
    while (leaf != nullptr) {
      const unsigned n = leaf->count.get(tx);
      for (unsigned i = 0; i < n; ++i) {
        const K k = leaf->keys[i].get(tx);
        if (k < lo) continue;
        if (hi < k) return seen;
        ++seen;
        if (!visit(k, leaf->values[i].get(tx))) return seen;
        if (limit != 0 && seen >= limit) return seen;
      }
      leaf = leaf->next.get(tx);
    }
    return seen;
  }

  std::size_t size(stm::Tx& tx) const { return size_.get(tx); }
  std::size_t size_direct() const { return size_.load_direct(); }

  // --- validation hooks (tests; call while quiescent) -----------------

  // Checks the structural invariants directly: per-node key ordering,
  // separator bounds on every subtree, child counts, and uniform leaf
  // depth. Returns the height (>= 1), or -1 on violation.
  int validate_direct() const {
    bool have_bound = false;
    K lo{};
    return check(root_.load_direct(), &lo, &have_bound, nullptr);
  }

  // The leaf chain visits every key in strictly increasing order and
  // agrees with size_.
  bool chain_consistent_direct() const {
    const Node* leaf = leftmost_direct();
    std::size_t seen = 0;
    bool have_prev = false;
    K prev{};
    while (leaf != nullptr) {
      const unsigned n = leaf->count.load_direct();
      if (n > kMaxKeys) return false;
      for (unsigned i = 0; i < n; ++i) {
        const K k = leaf->keys[i].load_direct();
        if (have_prev && !(prev < k)) return false;
        prev = k;
        have_prev = true;
        ++seen;
      }
      leaf = leaf->next.load_direct();
    }
    return seen == size_.load_direct();
  }

 private:
  struct Node {
    stm::tvar<std::uint64_t> count{0};
    stm::tvar<bool> leaf{true};
    stm::tvar<Node*> next{nullptr};  // leaf chain only
    std::array<stm::tvar<K>, kMaxKeys> keys{};
    std::array<stm::tvar<V>, kMaxKeys> values{};      // leaves
    std::array<stm::tvar<Node*>, kFanout> children{};  // internal nodes
  };

  // Child index for `key` in internal node `n`: the first subtree whose
  // separator exceeds the key (keys[i] is the smallest key of
  // children[i+1]'s subtree, B+ convention: equal keys go right).
  unsigned route(stm::Tx& tx, Node* n, const K& key) const {
    const unsigned cnt = static_cast<unsigned>(n->count.get(tx));
    unsigned i = 0;
    while (i < cnt && !(key < n->keys[i].get(tx))) ++i;
    return i;
  }

  Node* descend_to_leaf(stm::Tx& tx, const K& key) const {
    Node* cur = root_.get(tx);
    while (!cur->leaf.get(tx)) {
      cur = cur->children[route(tx, cur, key)].get(tx);
    }
    return cur;
  }

  bool leaf_insert(stm::Tx& tx, Node* leaf, const K& key, const V& value) {
    const unsigned n = static_cast<unsigned>(leaf->count.get(tx));
    unsigned pos = 0;
    while (pos < n) {
      const K k = leaf->keys[pos].get(tx);
      if (!(k < key) && !(key < k)) {
        leaf->values[pos].set(tx, value);
        return false;
      }
      if (key < k) break;
      ++pos;
    }
    for (unsigned j = n; j > pos; --j) {
      leaf->keys[j].set(tx, leaf->keys[j - 1].get(tx));
      leaf->values[j].set(tx, leaf->values[j - 1].get(tx));
    }
    leaf->keys[pos].set(tx, key);
    leaf->values[pos].set(tx, value);
    leaf->count.set(tx, n + 1);
    size_.set(tx, size_.get(tx) + 1);
    return true;
  }

  // Split the full child at `idx` of `parent` (which has room — callers
  // split preemptively). The new right sibling is private until linked,
  // so its fields are initialized with direct stores.
  void split_child(stm::Tx& tx, Node* parent, unsigned idx) {
    Node* child = parent->children[idx].get(tx);
    Node* right = static_cast<Node*>(tx.alloc(sizeof(Node)));
    ::new (right) Node;
    const bool child_is_leaf = child->leaf.get(tx);
    right->leaf.store_direct(child_is_leaf);

    K sep{};
    unsigned left_count;
    if (child_is_leaf) {
      // Leaf split: upper half moves right; the separator is the right
      // half's first key (duplicated up, B+ style).
      left_count = kMaxKeys / 2 + 1;
      const unsigned moved = kMaxKeys - left_count;
      for (unsigned i = 0; i < moved; ++i) {
        right->keys[i].store_direct(child->keys[left_count + i].get(tx));
        right->values[i].store_direct(child->values[left_count + i].get(tx));
      }
      right->count.store_direct(moved);
      right->next.store_direct(child->next.get(tx));
      child->next.set(tx, right);
      sep = right->keys[0].load_direct();
    } else {
      // Internal split: the median moves up (not duplicated).
      const unsigned mid = kMaxKeys / 2;
      sep = child->keys[mid].get(tx);
      const unsigned moved = kMaxKeys - mid - 1;
      for (unsigned i = 0; i < moved; ++i) {
        right->keys[i].store_direct(child->keys[mid + 1 + i].get(tx));
      }
      for (unsigned i = 0; i <= moved; ++i) {
        right->children[i].store_direct(
            child->children[mid + 1 + i].get(tx));
      }
      right->count.store_direct(moved);
      left_count = mid;
    }
    child->count.set(tx, left_count);

    const unsigned pcount = static_cast<unsigned>(parent->count.get(tx));
    for (unsigned j = pcount; j > idx; --j) {
      parent->keys[j].set(tx, parent->keys[j - 1].get(tx));
      parent->children[j + 1].set(tx, parent->children[j].get(tx));
    }
    parent->keys[idx].set(tx, sep);
    parent->children[idx + 1].set(tx, right);
    parent->count.set(tx, pcount + 1);
  }

  // --- direct validation (quiescent) ----------------------------------

  // Returns subtree height or -1; checks ordering and that every key in
  // the subtree is >= *lo (when *have_bound) and < *hi (when hi given).
  int check(const Node* n, K* lo, bool* have_bound, const K* hi) const {
    const unsigned cnt = static_cast<unsigned>(n->count.load_direct());
    if (cnt > kMaxKeys) return -1;
    for (unsigned i = 0; i < cnt; ++i) {
      const K k = n->keys[i].load_direct();
      if (i > 0 && !(n->keys[i - 1].load_direct() < k)) return -1;
      if (*have_bound && k < *lo) return -1;
      if (hi != nullptr && !(k < *hi)) return -1;
    }
    if (n->leaf.load_direct()) {
      if (cnt > 0) {
        *lo = n->keys[cnt - 1].load_direct();
        *have_bound = true;
      }
      return 1;
    }
    if (cnt == 0) return -1;  // internal nodes always have >= 2 children
    int height = -1;
    for (unsigned i = 0; i <= cnt; ++i) {
      K sep{};
      const K* child_hi = nullptr;
      if (i < cnt) {
        sep = n->keys[i].load_direct();
        child_hi = &sep;
      } else if (hi != nullptr) {
        sep = *hi;
        child_hi = &sep;
      }
      const int h =
          check(n->children[i].load_direct(), lo, have_bound, child_hi);
      if (h < 0) return -1;
      if (height < 0) height = h;
      if (h != height) return -1;  // all leaves at the same depth
    }
    return height + 1;
  }

  const Node* leftmost_direct() const {
    const Node* cur = root_.load_direct();
    while (!cur->leaf.load_direct()) {
      cur = cur->children[0].load_direct();
    }
    return cur;
  }

  void destroy(Node* n) {
    if (!n->leaf.load_direct()) {
      const unsigned cnt = static_cast<unsigned>(n->count.load_direct());
      for (unsigned i = 0; i <= cnt; ++i) {
        destroy(n->children[i].load_direct());
      }
    }
    n->~Node();
    std::free(n);
  }

  stm::tvar<Node*> root_{nullptr};
  stm::tvar<std::size_t> size_{0};
};

}  // namespace adtm::containers
