// Transactional skip list map.
//
// The probabilistically-balanced ordered map (Pugh): towers of forward
// pointers, expected O(log n) search with no rebalancing, which makes it
// the low-conflict counterpart to the B+ tree — an insert touches one
// tower plus its predecessors instead of shifting sibling arrays, so
// disjoint keys rarely share a write set. Modeled on the 2PLSF TMSkipList
// idiom: the sequential algorithm wrapped in transactions, every mutable
// pointer a tvar.
//
// Tower heights are drawn with p = 1/2 from the per-thread RNG at insert
// time; a re-executed transaction may draw a different height, which is
// fine — the node is allocated through tx.alloc, so an aborted attempt
// rolls its node back entirely. Removed nodes unlink transactionally and
// are reclaimed in a commit epilogue, after quiescence.
#pragma once

#include <array>
#include <cstddef>
#include <cstdlib>
#include <functional>
#include <optional>
#include <type_traits>

#include "common/rng.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm::containers {

template <typename K, typename V, unsigned kMaxLevel = 16>
class TxSkipList {
  static_assert(std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>,
                "TxSkipList requires trivially copyable key/value types");
  static_assert(kMaxLevel >= 2 && kMaxLevel <= 32,
                "TxSkipList level cap out of range");

 public:
  TxSkipList() {
    head_ = static_cast<Node*>(std::malloc(sizeof(Node)));
    ::new (head_) Node;
    head_->level = kMaxLevel;
  }

  ~TxSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].load_direct();
      n->~Node();
      std::free(n);
      n = next;
    }
  }

  TxSkipList(const TxSkipList&) = delete;
  TxSkipList& operator=(const TxSkipList&) = delete;

  // Insert or update; returns true when a new key was added.
  bool put(stm::Tx& tx, const K& key, const V& value) {
    Node* prevs[kMaxLevel];
    find_prevs(tx, key, prevs);
    Node* hit = prevs[0]->next[0].get(tx);
    if (hit != nullptr && equals(hit->key.get(tx), key)) {
      hit->value.set(tx, value);
      return false;
    }
    const unsigned level = random_level();
    const unsigned cur_height = static_cast<unsigned>(height_.get(tx));
    if (level > cur_height) {
      for (unsigned l = cur_height; l < level; ++l) prevs[l] = head_;
      height_.set(tx, level);
    }
    Node* node = static_cast<Node*>(tx.alloc(sizeof(Node)));
    ::new (node) Node;
    node->level = level;
    node->key.store_direct(key);
    node->value.store_direct(value);
    for (unsigned l = 0; l < level; ++l) {
      // The node is private until the prevs are relinked, so its own
      // pointers are direct stores; the splice writes are transactional.
      node->next[l].store_direct(prevs[l]->next[l].get(tx));
      prevs[l]->next[l].set(tx, node);
    }
    size_.set(tx, size_.get(tx) + 1);
    return true;
  }

  std::optional<V> get(stm::Tx& tx, const K& key) const {
    Node* cur = head_;
    for (unsigned l = static_cast<unsigned>(height_.get(tx)); l-- > 0;) {
      for (Node* nxt = cur->next[l].get(tx);
           nxt != nullptr && nxt->key.get(tx) < key;
           nxt = cur->next[l].get(tx)) {
        cur = nxt;
      }
    }
    Node* hit = cur->next[0].get(tx);
    if (hit != nullptr && equals(hit->key.get(tx), key)) {
      return hit->value.get(tx);
    }
    return std::nullopt;
  }

  bool contains(stm::Tx& tx, const K& key) const {
    return get(tx, key).has_value();
  }

  // Remove; returns true when the key was present.
  bool remove(stm::Tx& tx, const K& key) {
    Node* prevs[kMaxLevel];
    find_prevs(tx, key, prevs);
    Node* hit = prevs[0]->next[0].get(tx);
    if (hit == nullptr || !equals(hit->key.get(tx), key)) return false;
    for (unsigned l = 0; l < hit->level; ++l) {
      prevs[l]->next[l].set(tx, hit->next[l].get(tx));
    }
    size_.set(tx, size_.get(tx) - 1);
    // Reclaim after commit + quiescence: no concurrent transaction can
    // still hold a reference by then.
    tx.on_commit([hit] {
      hit->~Node();
      std::free(hit);
    });
    return true;
  }

  // Visit keys in [lo, hi] in order, at most `limit` of them (0 = no
  // limit). The visitor returns false to stop early. Returns the number
  // of pairs visited.
  std::size_t range_scan(
      stm::Tx& tx, const K& lo, const K& hi, std::size_t limit,
      const std::function<bool(const K&, const V&)>& visit) const {
    Node* prevs[kMaxLevel];
    find_prevs(tx, lo, prevs);
    std::size_t seen = 0;
    for (Node* cur = prevs[0]->next[0].get(tx); cur != nullptr;
         cur = cur->next[0].get(tx)) {
      const K k = cur->key.get(tx);
      if (hi < k) break;
      ++seen;
      if (!visit(k, cur->value.get(tx))) break;
      if (limit != 0 && seen >= limit) break;
    }
    return seen;
  }

  std::size_t size(stm::Tx& tx) const { return size_.get(tx); }
  std::size_t size_direct() const { return size_.load_direct(); }

  // --- validation hooks (tests; call while quiescent) -----------------

  // Level-0 chain strictly sorted and node count equal to size_.
  bool sorted_direct() const {
    std::size_t seen = 0;
    bool have_prev = false;
    K prev{};
    for (const Node* n = head_->next[0].load_direct(); n != nullptr;
         n = n->next[0].load_direct()) {
      const K k = n->key.load_direct();
      if (have_prev && !(prev < k)) return false;
      prev = k;
      have_prev = true;
      ++seen;
    }
    return seen == size_.load_direct();
  }

  // Every higher-level list is a sorted sub-chain of level 0, and every
  // node appears in exactly the chains below its tower height.
  bool levels_consistent_direct() const {
    for (unsigned l = 1; l < kMaxLevel; ++l) {
      const Node* upper = head_->next[l].load_direct();
      const Node* lower = head_->next[0].load_direct();
      while (upper != nullptr) {
        if (upper->level <= l) return false;
        // The upper node must be reachable along level 0.
        while (lower != nullptr && lower != upper) {
          lower = lower->next[0].load_direct();
        }
        if (lower == nullptr) return false;
        upper = upper->next[l].load_direct();
      }
    }
    return true;
  }

  // Fraction of nodes with tower height >= 2 (p = 1/2 coin: expected
  // ~0.5); for the level-distribution test.
  double tall_fraction_direct() const {
    std::size_t total = 0;
    std::size_t tall = 0;
    for (const Node* n = head_->next[0].load_direct(); n != nullptr;
         n = n->next[0].load_direct()) {
      ++total;
      if (n->level >= 2) ++tall;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(tall) / static_cast<double>(total);
  }

 private:
  struct Node {
    stm::tvar<K> key{};
    stm::tvar<V> value{};
    unsigned level = 0;  // immutable once the node is published
    std::array<stm::tvar<Node*>, kMaxLevel> next{};
  };

  static bool equals(const K& a, const K& b) {
    return !(a < b) && !(b < a);
  }

  static unsigned random_level() noexcept {
    unsigned level = 1;
    while (level < kMaxLevel && (thread_rng().next() & 1) != 0) ++level;
    return level;
  }

  // prevs[l] = last node at level l with key < `key` (head_ when none).
  // Fills every level up to the current height; callers extend with head_
  // beyond it.
  void find_prevs(stm::Tx& tx, const K& key, Node** prevs) const {
    Node* cur = head_;
    const unsigned h = static_cast<unsigned>(height_.get(tx));
    for (unsigned l = kMaxLevel; l-- > 0;) {
      if (l < h) {
        for (Node* nxt = cur->next[l].get(tx);
             nxt != nullptr && nxt->key.get(tx) < key;
             nxt = cur->next[l].get(tx)) {
          cur = nxt;
        }
      }
      prevs[l] = cur;
    }
  }

  Node* head_;
  stm::tvar<std::uint64_t> height_{1};
  stm::tvar<std::size_t> size_{0};
};

}  // namespace adtm::containers
