// Named crash points: the registry behind the crashmat torture harness.
//
// faultsim's Fault::crash fires at the *syscall* boundary and throws
// SimulatedCrash — an in-process approximation. Crash points are the
// complement: durability-critical sites in the WAL / DurableBuffer /
// txlog / fdpool write paths name themselves at static-init time, so a
// harness can *enumerate* every site, fork a child, arm exactly one, and
// have the child really die there (`_exit` or SIGKILL — no unwinding, no
// destructors, exactly what a crash leaves behind). Write-path sites pass
// the buffer they are about to persist, so a torn-write arm can push a
// seeded-random prefix to the descriptor before dying — the torn tail a
// power cut would leave.
//
// The hook is one relaxed atomic load when nothing is armed, so the
// production cost of a registered site is the same as faultsim's.
//
// Undo stash: process death does not lose syscalls that already returned,
// but a real crash loses un-fsynced *metadata* (a truncate, a directory
// entry). A site that performs such an operation stashes the bytes that
// would resurface if the metadata update were lost; the crash action
// replays uncommitted stashes before dying, and the site commits the
// stash once the corresponding fsync has made the operation durable.
// That is how crashmat proved the recover_and_truncate directory-fsync
// bug (see DESIGN.md "Crash-recovery contract").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adtm::faultsim {

using CrashPointId = std::size_t;

inline constexpr CrashPointId kNoCrashPoint = static_cast<CrashPointId>(-1);

// Exit status a crash-armed child dies with under CrashAction::Exit; the
// harness treats any other status as a harness bug, not a crash.
inline constexpr int kCrashExitStatus = 86;

struct CrashPointDesc {
  std::string name;       // e.g. "wal.commit.write"
  std::string subsystem;  // "wal", "durable", "txlog", "fdpool"
  bool write_path;        // true: site carries a buffer, torn arms apply
};

enum class CrashAction : std::uint8_t {
  Throw,  // throw SimulatedCrash (in-process unit tests)
  Exit,   // _exit(kCrashExitStatus): real death, no unwinding
  Kill,   // raise(SIGKILL): death without even the exit path
};

struct CrashArm {
  CrashAction action = CrashAction::Exit;
  std::uint64_t skip = 0;        // let this many hits through first
  // Torn-write persistence at a write-path site: bytes of the pending
  // buffer pushed to the descriptor before dying. kPersistNone writes
  // nothing; kPersistRandom draws uniformly in [0, len] from `seed`.
  static constexpr std::size_t kPersistNone = 0;
  static constexpr std::size_t kPersistRandom = static_cast<std::size_t>(-1);
  std::size_t persist_bytes = kPersistNone;
  std::uint64_t seed = 1;        // kPersistRandom draw (deterministic)
};

// Register a site (called from namespace-scope statics in the subsystem
// .cpp, so linking a subsystem makes its points enumerable). Re-registering
// an existing name returns the existing id.
CrashPointId register_crash_point(const char* name, const char* subsystem,
                                  bool write_path);

// Every registered point, in registration order (index == id).
std::vector<CrashPointDesc> crash_points();

// Id for `name`, or kNoCrashPoint.
CrashPointId find_crash_point(const std::string& name);

// Arm exactly this point (points accumulate; disarm clears all).
void arm_crash_point(CrashPointId id, const CrashArm& arm);
void disarm_crash_points();

// Times the site was reached (armed or not, while any point is armed —
// hit counting needs the slow path; all-disarmed runs do not count).
std::uint64_t crash_point_hits(CrashPointId id);

namespace detail {
extern std::atomic<bool> g_cp_active;
void crash_point_slow(CrashPointId id, int fd, const void* data,
                      std::size_t len, std::uint64_t offset, bool positional);
}  // namespace detail

// True while any crash point is armed — gates work done only to make a
// simulated crash faithful (e.g. stashing a truncated tail).
inline bool crash_points_armed() noexcept {
  return detail::g_cp_active.load(std::memory_order_relaxed);
}

// Control-path site: nothing to tear.
inline void crash_point(CrashPointId id) {
  if (detail::g_cp_active.load(std::memory_order_relaxed)) {
    detail::crash_point_slow(id, -1, nullptr, 0, 0, false);
  }
}

// Write-path site: about to write [data, data+len) to fd (appending).
inline void crash_point_write(CrashPointId id, int fd, const void* data,
                              std::size_t len) {
  if (detail::g_cp_active.load(std::memory_order_relaxed)) {
    detail::crash_point_slow(id, fd, data, len, 0, false);
  }
}

// Positional variant (fdpool pwrite path).
inline void crash_point_pwrite(CrashPointId id, int fd, const void* data,
                               std::size_t len, std::uint64_t offset) {
  if (detail::g_cp_active.load(std::memory_order_relaxed)) {
    detail::crash_point_slow(id, fd, data, len, offset, true);
  }
}

// --- undo stash (lost-metadata modeling) -----------------------------------

// Record that, were the process to crash before commit_undo_stash, the
// bytes [offset, offset+data.size()) of `path` would hold `data` again
// (e.g. a truncated torn tail whose truncation has not been fsynced).
// Returns a token; no-op (returns 0) while no crash point is armed.
std::uint64_t stash_undo_write(const std::string& path, std::uint64_t offset,
                               std::string data);

// The metadata operation is durable: drop the stash.
void commit_undo_stash(std::uint64_t token);

}  // namespace adtm::faultsim
