// Deterministic fault injection at the POSIX syscall boundary.
//
// The paper moves irrevocable effects (write, fsync) *after* commit; that
// makes the post-commit window a failure domain of its own: a deferred
// operation can fail after the transaction that scheduled it has already
// committed. faultsim makes that window testable. io::PosixFile (and the
// async I/O engine) consult the global FaultEngine before every syscall;
// an armed engine can
//
//   - truncate a transfer (short write / short read),
//   - fail the call with a chosen errno (EINTR, ENOSPC, EIO, ...),
//   - fire a *crash point*: persist a prefix of the buffer to produce a
//     torn tail on disk, then throw SimulatedCrash so the test can drop
//     all in-memory state and exercise recovery by reopening the file.
//
// Faults are described by Plans (match an op, optionally one fd; let
// `skip` calls through; fire `count` times) or by a seeded Bernoulli
// process per op — both fully deterministic for a given seed, so every
// failing schedule is replayable. When nothing is armed the hook is one
// relaxed atomic load.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace adtm::faultsim {

// Syscall classes the engine can intercept.
enum class Op : std::uint32_t { Write, Pwrite, Read, Pread, Fsync, kCount };

const char* op_name(Op op) noexcept;

enum class FaultKind : std::uint32_t { None, ShortWrite, Errno, Crash };

struct Fault {
  FaultKind kind = FaultKind::None;
  int err = 0;                // errno to inject (FaultKind::Errno)
  std::size_t max_bytes = 0;  // ShortWrite: transfer cap; Crash: bytes
                              // persisted before the simulated crash

  static Fault none() noexcept { return {}; }
  static Fault short_write(std::size_t cap) noexcept {
    return {FaultKind::ShortWrite, 0, cap};
  }
  static Fault error(int e) noexcept { return {FaultKind::Errno, e, 0}; }
  static Fault crash(std::size_t persist_bytes) noexcept {
    return {FaultKind::Crash, 0, persist_bytes};
  }
};

// Thrown by the I/O layer when a crash point fires. Deliberately not a
// std::system_error: no retry policy may classify it as transient.
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(const std::string& where)
      : std::runtime_error("faultsim: simulated crash in " + where) {}
};

// One injection plan. The first plan matching (op, fd) claims the call:
// while skip > 0 it lets the call through; afterwards it fires `count`
// times (0 = forever) and is discarded when exhausted.
struct Plan {
  Op op = Op::Write;
  Fault fault;
  std::uint64_t skip = 0;
  std::uint64_t count = 1;
  int fd = -1;  // restrict to one descriptor; -1 matches any
};

class FaultEngine {
 public:
  void arm(const Plan& plan);

  // Seeded Bernoulli injection: each matching call fires `fault` with
  // `probability` (checked after plans). Deterministic per seed.
  void arm_random(Op op, double probability, Fault fault, std::uint64_t seed);

  // Remove every plan and random process and reset per-op counters.
  void disarm();

  // Hook used by the I/O layer: decide the fault for this call.
  Fault on_syscall(Op op, int fd);

  std::uint64_t calls(Op op) const;
  std::uint64_t injected(Op op) const;
  std::uint64_t injected_total() const;

 private:
  void refresh_active_locked();

  mutable std::mutex mutex_;
  std::vector<Plan> plans_;
  struct RandomProc {
    std::uint64_t threshold = 0;  // fire when rng.next_below(kDenom) < this
    Fault fault;
  };
  static constexpr std::uint64_t kProbDenom = 1u << 20;
  RandomProc random_[static_cast<std::size_t>(Op::kCount)];
  Xoshiro256 rng_{0};
  std::atomic<std::uint64_t> calls_[static_cast<std::size_t>(Op::kCount)] = {};
  std::atomic<std::uint64_t> injected_[static_cast<std::size_t>(Op::kCount)] =
      {};
};

// Global engine consulted by io::PosixFile and fdpool::AsyncIOEngine.
FaultEngine& engine() noexcept;

namespace detail {
extern std::atomic<bool> g_active;
}  // namespace detail

// Fast gate: false (one relaxed load) unless something is armed.
inline bool active() noexcept {
  return detail::g_active.load(std::memory_order_relaxed);
}

// RAII for tests: disarms the global engine on scope exit.
class FaultScope {
 public:
  FaultScope() = default;
  explicit FaultScope(const Plan& plan) { engine().arm(plan); }
  ~FaultScope() { engine().disarm(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

}  // namespace adtm::faultsim
