#include "faultsim/crashpoint.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <mutex>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "faultsim/faultsim.hpp"

namespace adtm::faultsim {
namespace {

struct PointState {
  CrashPointDesc desc;
  bool armed = false;
  CrashArm arm;
  std::uint64_t hits = 0;  // counted while any point is armed
};

struct UndoEntry {
  std::uint64_t token;
  std::string path;
  std::uint64_t offset;
  std::string data;
};

struct Registry {
  std::mutex mutex;
  std::vector<PointState> points;
  std::vector<UndoEntry> undo;
  std::uint64_t next_token = 1;
};

// Leaked: crash points are consulted from epilogue and worker threads that
// may outlive static destruction.
Registry& registry() noexcept {
  static Registry* r = new Registry;
  return *r;
}

// Replay every uncommitted stash: the metadata operations they undo never
// became durable, so the old bytes resurface. Raw syscalls only — this
// runs on the way to _exit/SIGKILL.
void replay_undo_locked(Registry& r) noexcept {
  for (const UndoEntry& u : r.undo) {
    const int fd = ::open(u.path.c_str(), O_WRONLY);
    if (fd < 0) continue;
    (void)!::pwrite(fd, u.data.data(), u.data.size(),
                    static_cast<off_t>(u.offset));
    ::close(fd);
  }
  r.undo.clear();
}

}  // namespace

namespace detail {
std::atomic<bool> g_cp_active{false};
}  // namespace detail

CrashPointId register_crash_point(const char* name, const char* subsystem,
                                  bool write_path) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  for (CrashPointId id = 0; id < r.points.size(); ++id) {
    if (r.points[id].desc.name == name) return id;
  }
  PointState ps;
  ps.desc = CrashPointDesc{name, subsystem, write_path};
  r.points.push_back(std::move(ps));
  return r.points.size() - 1;
}

std::vector<CrashPointDesc> crash_points() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  std::vector<CrashPointDesc> out;
  out.reserve(r.points.size());
  for (const PointState& ps : r.points) out.push_back(ps.desc);
  return out;
}

CrashPointId find_crash_point(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  for (CrashPointId id = 0; id < r.points.size(); ++id) {
    if (r.points[id].desc.name == name) return id;
  }
  return kNoCrashPoint;
}

void arm_crash_point(CrashPointId id, const CrashArm& arm) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  if (id >= r.points.size()) return;
  r.points[id].armed = true;
  r.points[id].arm = arm;
  r.points[id].hits = 0;
  detail::g_cp_active.store(true, std::memory_order_relaxed);
}

void disarm_crash_points() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  for (PointState& ps : r.points) {
    ps.armed = false;
    ps.hits = 0;
  }
  r.undo.clear();
  detail::g_cp_active.store(false, std::memory_order_relaxed);
}

std::uint64_t crash_point_hits(CrashPointId id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  return id < r.points.size() ? r.points[id].hits : 0;
}

std::uint64_t stash_undo_write(const std::string& path, std::uint64_t offset,
                               std::string data) {
  if (!detail::g_cp_active.load(std::memory_order_relaxed)) return 0;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  const std::uint64_t token = r.next_token++;
  r.undo.push_back(UndoEntry{token, path, offset, std::move(data)});
  return token;
}

void commit_undo_stash(std::uint64_t token) {
  if (token == 0) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  r.undo.erase(std::remove_if(r.undo.begin(), r.undo.end(),
                              [token](const UndoEntry& u) {
                                return u.token == token;
                              }),
               r.undo.end());
}

namespace detail {

void crash_point_slow(CrashPointId id, int fd, const void* data,
                      std::size_t len, std::uint64_t offset, bool positional) {
  Registry& r = registry();
  CrashArm arm;
  std::string name;
  {
    std::lock_guard<std::mutex> lk(r.mutex);
    if (id >= r.points.size()) return;
    PointState& ps = r.points[id];
    ++ps.hits;
    if (!ps.armed) return;
    if (ps.arm.skip > 0) {
      --ps.arm.skip;
      return;
    }
    ps.armed = false;  // fire once
    arm = ps.arm;
    name = ps.desc.name;
    // Torn-write prefix: persisted below, outside the lock for Throw (the
    // exception must not leave the registry locked) but the process is
    // about to die for Exit/Kill, so ordering is free either way.
  }

  // Persist the torn prefix of the pending buffer, if asked and possible.
  if (fd >= 0 && data != nullptr && len > 0 &&
      arm.persist_bytes != CrashArm::kPersistNone) {
    std::size_t persist = arm.persist_bytes;
    if (persist == CrashArm::kPersistRandom) {
      Xoshiro256 rng{arm.seed};
      persist = static_cast<std::size_t>(rng.next_below(len + 1));
    }
    persist = std::min(persist, len);
    if (persist > 0) {
      if (positional) {
        (void)!::pwrite(fd, data, persist, static_cast<off_t>(offset));
      } else {
        (void)!::write(fd, data, persist);
      }
    }
  }

  stats().add(Counter::FaultsInjected);

  switch (arm.action) {
    case CrashAction::Throw: {
      std::lock_guard<std::mutex> lk(r.mutex);
      replay_undo_locked(r);
      detail::g_cp_active.store(false, std::memory_order_relaxed);
      break;  // throw below, outside the lock scope
    }
    case CrashAction::Exit: {
      std::lock_guard<std::mutex> lk(r.mutex);
      replay_undo_locked(r);
      ::_exit(kCrashExitStatus);
    }
    case CrashAction::Kill: {
      std::lock_guard<std::mutex> lk(r.mutex);
      replay_undo_locked(r);
      ::kill(::getpid(), SIGKILL);
      ::_exit(kCrashExitStatus);  // SIGKILL cannot be outrun, but be safe
    }
  }
  throw SimulatedCrash(name);
}

}  // namespace detail

}  // namespace adtm::faultsim
