#include "faultsim/faultsim.hpp"

#include "common/stats.hpp"

namespace adtm::faultsim {

namespace detail {
std::atomic<bool> g_active{false};
}  // namespace detail

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::Write: return "write";
    case Op::Pwrite: return "pwrite";
    case Op::Read: return "read";
    case Op::Pread: return "pread";
    case Op::Fsync: return "fsync";
    case Op::kCount: break;
  }
  return "unknown";
}

void FaultEngine::arm(const Plan& plan) {
  std::lock_guard<std::mutex> lk(mutex_);
  plans_.push_back(plan);
  refresh_active_locked();
}

void FaultEngine::arm_random(Op op, double probability, Fault fault,
                             std::uint64_t seed) {
  if (probability < 0.0) probability = 0.0;
  if (probability > 1.0) probability = 1.0;
  std::lock_guard<std::mutex> lk(mutex_);
  auto& proc = random_[static_cast<std::size_t>(op)];
  proc.threshold =
      static_cast<std::uint64_t>(probability * static_cast<double>(kProbDenom));
  proc.fault = fault;
  rng_.reseed(seed);
  refresh_active_locked();
}

void FaultEngine::disarm() {
  std::lock_guard<std::mutex> lk(mutex_);
  plans_.clear();
  for (auto& proc : random_) proc = RandomProc{};
  for (auto& c : calls_) c.store(0, std::memory_order_relaxed);
  for (auto& c : injected_) c.store(0, std::memory_order_relaxed);
  refresh_active_locked();
}

Fault FaultEngine::on_syscall(Op op, int fd) {
  const auto idx = static_cast<std::size_t>(op);
  std::lock_guard<std::mutex> lk(mutex_);
  calls_[idx].fetch_add(1, std::memory_order_relaxed);

  for (auto it = plans_.begin(); it != plans_.end(); ++it) {
    if (it->op != op) continue;
    if (it->fd >= 0 && it->fd != fd) continue;
    // First matching plan claims the call, fired or not — this is what
    // makes "skip N, then fail" schedules deterministic.
    if (it->skip > 0) {
      --it->skip;
      return Fault::none();
    }
    const Fault fault = it->fault;
    if (it->count != 0 && --it->count == 0) plans_.erase(it);
    injected_[idx].fetch_add(1, std::memory_order_relaxed);
    stats().add(Counter::FaultsInjected);
    return fault;
  }

  const auto& proc = random_[idx];
  if (proc.threshold != 0 && rng_.next_below(kProbDenom) < proc.threshold) {
    injected_[idx].fetch_add(1, std::memory_order_relaxed);
    stats().add(Counter::FaultsInjected);
    return proc.fault;
  }
  return Fault::none();
}

void FaultEngine::refresh_active_locked() {
  bool armed = !plans_.empty();
  for (const auto& proc : random_) armed = armed || proc.threshold != 0;
  detail::g_active.store(armed, std::memory_order_relaxed);
}

std::uint64_t FaultEngine::calls(Op op) const {
  return calls_[static_cast<std::size_t>(op)].load(std::memory_order_relaxed);
}

std::uint64_t FaultEngine::injected(Op op) const {
  return injected_[static_cast<std::size_t>(op)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultEngine::injected_total() const {
  std::uint64_t sum = 0;
  for (const auto& c : injected_) sum += c.load(std::memory_order_relaxed);
  return sum;
}

FaultEngine& engine() noexcept {
  static FaultEngine instance;
  return instance;
}

}  // namespace adtm::faultsim
