// adtm — atomic-deferral transactional memory.
//
// Umbrella header: the public API surface in one include. Applications
// include this and nothing else from the library:
//
//   #include "adtm.hpp"
//
// and link the targets for the subsystems they use (adtm_stm and
// adtm_defer for the core; adtm_io / adtm_txlog / adtm_wal / ... for the
// storage layers). Including a subsystem's header costs nothing at link
// time unless its symbols are used.
//
// The layering, bottom to top:
//
//   common/    Deadline, RuntimeConfig (ADTM_* knobs), stats, timing, RNG
//   obs/       transaction tracing + abort taxonomy (always compiled,
//              runtime-gated; see DESIGN.md "Observability")
//   stm/       the TM runtime: atomic(), retry(), tvar<T>, Config/Algo
//   defer/     atomic deferral (the paper's contribution): atomic_defer,
//              Deferrable, TxLock, TxCondVar, failure policies
//   liveness/  watchdog, stall reports, deadlock detection
//   io/ ...    storage subsystems built on deferral: files, fd pool,
//              transaction log, WAL, durable values, kv-cache, dedup
#pragma once

// --- foundation ------------------------------------------------------------
#include "common/backoff.hpp"
#include "common/deadline.hpp"
#include "common/rng.hpp"
#include "common/runtime_config.hpp"
#include "common/stats.hpp"
#include "common/timing.hpp"

// --- observability ---------------------------------------------------------
#include "obs/trace.hpp"

// --- overload control & graceful degradation -------------------------------
#include "health/breaker.hpp"
#include "health/gate.hpp"
#include "health/health.hpp"

// --- transactional memory --------------------------------------------------
#include "stm/api.hpp"
#include "stm/backend.hpp"
#include "stm/config.hpp"
#include "stm/tvar.hpp"

// --- atomic deferral -------------------------------------------------------
#include "defer/atomic_defer.hpp"
#include "defer/deferrable.hpp"
#include "defer/failure_policy.hpp"
#include "defer/ordered_writer.hpp"
#include "defer/txcondvar.hpp"
#include "defer/txlock.hpp"

// --- liveness --------------------------------------------------------------
#include "liveness/watchdog.hpp"

// --- fault injection (testing) ---------------------------------------------
#include "faultsim/faultsim.hpp"

// --- transactional containers ----------------------------------------------
#include "containers/hashmap.hpp"
#include "containers/queue.hpp"
#include "containers/rbtree.hpp"

// --- storage subsystems ----------------------------------------------------
#include "dedup/dedup.hpp"
#include "durable/durable.hpp"
#include "fdpool/async_io.hpp"
#include "fdpool/fd_pool.hpp"
#include "io/defer_file.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"
#include "kvcache/tx_cache.hpp"
#include "txlog/txlog.hpp"
#include "wal/wal.hpp"
