// crashmat core: fork-based crash-torture of the durable write paths.
//
// One torture case = one crash point × one STM algorithm × one crash
// flavor (clean _exit, SIGKILL, torn-prefix persistence). run_case:
//
//   phase 1  fork; the child arms the point (or, for points in the
//            recovery path, a WAL torn-write setup arm so phase 2 has a
//            torn tail to recover) and runs the workload until the
//            process dies there for real.
//   phase 2  fork again over the same directory; recovery runs, the
//            workload resumes, the re-armed point kills it again.
//   phase 3  fork once more, unarmed; recovery must succeed and the
//            workload must run to completion.
//
// After each death the parent classifies the wait status (exit 86 or the
// arranged SIGKILL = crashed; anything unexpected fails the case), and at
// the end verifies the wreckage against the phases' oracles: recovery is
// deterministic and idempotent, every recovered record belongs to a
// committed or in-flight transaction, no acked-durable LSN is lost, no
// LSN regresses across phases, and the txlog/checkpoint/block side files
// contain everything their acks promised.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crashsim/workload.hpp"
#include "faultsim/crashpoint.hpp"

namespace adtm::crashsim {

struct TortureCase {
  std::string point;  // crash point name (must be registered)
  std::string algo = "TL2";  // backend display name (stm::find_backend)
  faultsim::CrashAction action = faultsim::CrashAction::Exit;
  std::size_t persist_bytes = faultsim::CrashArm::kPersistNone;
  std::uint64_t skip = 2;  // batches let through before the crash
  std::uint64_t seed = 1;
  // Regression demo: restore the pre-fix recover_and_truncate (no
  // durability barrier after the truncate) in phase 2 and stop before
  // the clean phase, so the resurrected torn tail is observable.
  bool demo_dirsync_bug = false;

  std::string name() const;
};

enum class ChildOutcome { Crashed, Completed, Error, Timeout };

const char* outcome_name(ChildOutcome o) noexcept;

struct PhaseResult {
  int phase = 0;
  ChildOutcome outcome = ChildOutcome::Error;
  int wait_status = 0;  // raw waitpid status
};

struct CaseResult {
  TortureCase tc;
  std::vector<PhaseResult> phases;
  std::vector<std::string> violations;
  bool passed = false;
  std::string summary;  // one line: case name + outcome
};

// Run one case in `dir` (created if missing; caller owns cleanup —
// leaving it behind on failure is deliberate, it is the crime scene).
CaseResult run_case(const TortureCase& tc, const std::string& dir,
                    const WorkloadOptions& base = {});

// Verify a torture directory against its phase oracles. Standalone so
// tests can aim it at hand-broken state. `last_phase_may_tear_wal` is
// true when the final phase could legitimately leave a torn WAL tail
// (it crashed mid-record or inside the recovery truncation window);
// otherwise a torn tail means a truncation was lost.
std::vector<std::string> verify_dir(const std::string& dir, int phases,
                                    bool last_phase_may_tear_wal);

// Case matrices. Quick: every registered point under TL2 (torn variants
// on the write-path points) plus a cross-algorithm core — bounded for
// CI. Full: every point × every algorithm × {clean, torn} × {Exit,
// Kill}, for `ADTM_CRASHMAT_FULL=1` runs.
std::vector<TortureCase> quick_matrix(std::uint64_t seed);
std::vector<TortureCase> full_matrix(std::uint64_t seed);

}  // namespace adtm::crashsim
