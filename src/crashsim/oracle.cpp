#include "crashsim/oracle.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <sstream>
#include <system_error>

#include "io/posix_file.hpp"

namespace adtm::crashsim {

OracleWriter::OracleWriter(const std::string& path) {
  for (;;) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ >= 0) break;
    if (errno == EINTR) continue;
    throw std::system_error(errno, std::generic_category(), "oracle open");
  }
}

OracleWriter::~OracleWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void OracleWriter::line(const std::string& s) {
  // One write per line: O_APPEND makes it atomic, so concurrent workload
  // threads (and transaction bodies) need no lock here. A crash mid-write
  // leaves at most one torn final line, which the parser drops.
  std::string buf = s;
  buf.push_back('\n');
  for (;;) {
    // Deliberate in-tx side channel: the oracle must see the intent even
    // when the transaction later aborts; re-execution just re-appends the
    // same idempotent line.
    const ssize_t rv = ::write(fd_, buf.data(), buf.size());  // txsafety:allow(irrevocable-call-in-tx)
    if (rv >= 0) return;  // O_APPEND small writes do not go short
    if (errno == EINTR) continue;
    throw std::system_error(errno, std::generic_category(), "oracle write");
  }
}

void OracleWriter::intent(std::uint64_t lsn, const std::string& payload) {
  line("I " + std::to_string(lsn) + " " + payload);
}

void OracleWriter::acked(std::uint64_t lsn, const std::string& payload) {
  line("A " + std::to_string(lsn) + " " + payload);
}

void OracleWriter::durable(std::uint64_t lsn) {
  line("D " + std::to_string(lsn));
}

void OracleWriter::recovered(std::uint64_t records, std::uint64_t valid_bytes,
                             bool clean) {
  line("R " + std::to_string(records) + " " + std::to_string(valid_bytes) +
       " " + (clean ? "1" : "0"));
}

void OracleWriter::logline(const std::string& tag) { line("L " + tag); }

void OracleWriter::checkpoint(const std::string& payload) {
  line("C " + payload);
}

void OracleWriter::block(std::uint64_t offset, std::uint64_t len,
                         std::uint32_t crc) {
  line("B " + std::to_string(offset) + " " + std::to_string(len) + " " +
       std::to_string(crc));
}

void OracleWriter::completed(std::uint64_t ops) {
  line("W " + std::to_string(ops));
}

OracleLog parse_oracle(const std::string& path) {
  OracleLog log;
  std::string data;
  try {
    data = io::read_file(path);
  } catch (const std::system_error&) {
    return log;  // child died before the oracle existed
  }

  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) break;  // torn final line: drop
    const std::string raw = data.substr(pos, nl - pos);
    pos = nl + 1;
    if (raw.size() < 2 || raw[1] != ' ') continue;
    const char kind = raw[0];
    const std::string rest = raw.substr(2);
    std::istringstream in(rest);
    switch (kind) {
      case 'I': {
        std::uint64_t lsn = 0;
        std::string payload;
        if (in >> lsn >> payload) log.intents[lsn].insert(payload);
        break;
      }
      case 'A': {
        std::uint64_t lsn = 0;
        std::string payload;
        if (in >> lsn >> payload) log.acked[lsn] = payload;
        break;
      }
      case 'D': {
        std::uint64_t lsn = 0;
        if (in >> lsn && lsn > log.max_durable) log.max_durable = lsn;
        break;
      }
      case 'R': {
        std::uint64_t records = 0;
        std::uint64_t bytes = 0;
        int clean = 1;
        if (in >> records >> bytes >> clean) {
          log.has_recovery = true;
          log.recovered_records = records;
          log.recovered_valid_bytes = bytes;
          log.recovered_clean = clean != 0;
        }
        break;
      }
      case 'L':
        log.log_acks.push_back(rest);
        break;
      case 'C':
        log.ckpt_acks.push_back(rest);
        break;
      case 'B': {
        OracleLog::BlockAck ack;
        if (in >> ack.offset >> ack.len >> ack.crc) {
          log.block_acks.push_back(ack);
        }
        break;
      }
      case 'W': {
        std::uint64_t ops = 0;
        if (in >> ops) {
          log.completed = true;
          log.completed_ops = ops;
        }
        break;
      }
      default:
        break;  // unknown line kinds are ignored, not errors
    }
  }
  return log;
}

}  // namespace adtm::crashsim
