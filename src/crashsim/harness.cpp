#include "crashsim/harness.hpp"

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <system_error>

#include "crashsim/oracle.hpp"
#include "stm/backend.hpp"
#include "io/posix_file.hpp"
#include "kvcache/recoverable.hpp"
#include "wal/crc32.hpp"
#include "wal/wal.hpp"

namespace adtm::crashsim {
namespace {

// Torn-setup arm: a fixed 13-byte prefix of a group-commit batch is
// always mid-record (header is 8 bytes, payloads are longer than 5), so
// a phase that needs a torn tail to recover is guaranteed one.
constexpr std::size_t kSetupTornBytes = 13;

bool is_recovery_point(const std::string& point) {
  return point.rfind("wal.recover.", 0) == 0;
}

bool fires_once_per_process(const std::string& point) {
  return point == "wal.open.post_create" || is_recovery_point(point);
}

struct ArmSpec {
  std::string point;
  faultsim::CrashArm arm;
};

PhaseResult launch_phase(int phase, const WorkloadOptions& options,
                         const ArmSpec* arm, bool skip_truncate_sync) {
  PhaseResult result;
  result.phase = phase;

  // The child writes nothing to stdio, but flush inherited buffers
  // anyway so a future printf in the workload cannot double-print.
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    result.outcome = ChildOutcome::Error;
    return result;
  }
  if (pid == 0) {
    // Child. The parent is single-threaded at fork time, so taking the
    // registry mutex here is safe. Arm first, then run; never return.
    if (skip_truncate_sync) {
      wal::WriteAheadLog::testing_skip_truncate_sync(true);
    }
    if (arm != nullptr) {
      const faultsim::CrashPointId id = faultsim::find_crash_point(arm->point);
      if (id == faultsim::kNoCrashPoint) ::_exit(kChildBadPoint);
      faultsim::arm_crash_point(id, arm->arm);
    }
    run_child_workload(options);  // [[noreturn]]
  }

  // Parent: bounded wait — a wedged child (the bug class crashmat exists
  // to find) must fail the case, not hang CI.
  constexpr int kTimeoutMs = 120000;
  int waited_ms = 0;
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    if (r < 0 && errno != EINTR) {
      result.outcome = ChildOutcome::Error;
      return result;
    }
    if (waited_ms >= kTimeoutMs) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      result.outcome = ChildOutcome::Timeout;
      result.wait_status = status;
      return result;
    }
    ::usleep(2000);
    waited_ms += 2;
  }

  result.wait_status = status;
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == kChildOk) {
      result.outcome = ChildOutcome::Completed;
    } else if (code == faultsim::kCrashExitStatus) {
      result.outcome = ChildOutcome::Crashed;
    } else {
      result.outcome = ChildOutcome::Error;
    }
  } else if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
    result.outcome = ChildOutcome::Crashed;  // CrashAction::Kill
  } else {
    result.outcome = ChildOutcome::Error;
  }
  return result;
}

std::size_t count_lines(const std::string& haystack,
                        const std::string& needle) {
  std::size_t n = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

}  // namespace

const char* outcome_name(ChildOutcome o) noexcept {
  switch (o) {
    case ChildOutcome::Crashed:
      return "crashed";
    case ChildOutcome::Completed:
      return "completed";
    case ChildOutcome::Error:
      return "error";
    case ChildOutcome::Timeout:
      return "timeout";
  }
  return "?";
}

std::string TortureCase::name() const {
  std::string n = point;
  n += '/';
  n += algo;
  switch (action) {
    case faultsim::CrashAction::Exit:
      break;
    case faultsim::CrashAction::Kill:
      n += "/kill";
      break;
    case faultsim::CrashAction::Throw:
      n += "/throw";
      break;
  }
  if (persist_bytes == faultsim::CrashArm::kPersistRandom) {
    n += "/torn";
  } else if (persist_bytes != faultsim::CrashArm::kPersistNone) {
    n += "/torn" + std::to_string(persist_bytes);
  }
  if (demo_dirsync_bug) n += "/dirsync-demo";
  return n;
}

std::vector<std::string> verify_dir(const std::string& dir, int phases,
                                    bool last_phase_may_tear_wal) {
  std::vector<std::string> v;
  const auto fail = [&v](std::string why) { v.push_back(std::move(why)); };

  std::vector<OracleLog> logs;
  logs.reserve(static_cast<std::size_t>(phases));
  for (int p = 1; p <= phases; ++p) {
    logs.push_back(parse_oracle(oracle_path(dir, p)));
  }

  // --- WAL: deterministic, idempotent, clean-after-truncate -----------
  const std::string wpath = wal_path(dir);
  const auto r1 = wal::WriteAheadLog::recover(wpath);
  const auto r2 = wal::WriteAheadLog::recover(wpath);
  if (r1.records != r2.records || r1.valid_bytes != r2.valid_bytes ||
      r1.clean != r2.clean) {
    fail("recovery scan is not deterministic across two passes");
  }
  if (!r1.clean && !last_phase_may_tear_wal) {
    fail("torn WAL tail although no phase could have torn it since the "
         "last completed recovery — a truncation was lost (missing "
         "durability barrier)");
  }
  const auto rt = wal::WriteAheadLog::recover_and_truncate(wpath);
  if (rt.records != r1.records) {
    fail("recover_and_truncate changed the recovered record set");
  }
  const auto r3 = wal::WriteAheadLog::recover(wpath);
  if (!r3.clean || r3.records != r1.records) {
    fail("recovery is not idempotent: a second pass after truncation "
         "disagrees or still sees a torn tail");
  }

  // --- LSN horizon: monotone across phases, no acked-durable loss -----
  std::uint64_t prev_recovered = 0;
  std::uint64_t max_acked_durable = 0;
  for (std::size_t k = 0; k < logs.size(); ++k) {
    const OracleLog& log = logs[k];
    if (log.has_recovery) {
      if (log.recovered_records < prev_recovered) {
        fail("phase " + std::to_string(k + 1) + " recovered " +
             std::to_string(log.recovered_records) +
             " records, fewer than an earlier phase (LSN regression)");
      }
      if (log.recovered_records < max_acked_durable) {
        fail("phase " + std::to_string(k + 1) + " recovered only " +
             std::to_string(log.recovered_records) +
             " records but LSN " + std::to_string(max_acked_durable) +
             " had been acked durable (lost acknowledged data)");
      }
      prev_recovered = std::max(prev_recovered, log.recovered_records);
    }
    max_acked_durable = std::max(max_acked_durable, log.max_durable);
  }
  if (r1.records.size() < max_acked_durable) {
    fail("final log holds " + std::to_string(r1.records.size()) +
         " records but LSN " + std::to_string(max_acked_durable) +
         " was acked durable (lost acknowledged data)");
  }

  // --- Content: every recovered record belongs to some transaction ----
  for (std::size_t i = 0; i < r1.records.size(); ++i) {
    const std::uint64_t lsn = i + 1;
    const std::string& payload = r1.records[i];
    bool matched = false;
    for (const OracleLog& log : logs) {
      const auto a = log.acked.find(lsn);
      if (a != log.acked.end() && a->second == payload) {
        matched = true;
        break;
      }
      const auto in = log.intents.find(lsn);
      if (in != log.intents.end() && in->second.count(payload) != 0) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      fail("recovered record at LSN " + std::to_string(lsn) +
           " matches no committed or intended append (invented data)");
    }
  }

  // --- Replay: decodable, no double-written ops -----------------------
  std::size_t duplicates = 0;
  std::size_t undecodable = 0;
  (void)kvcache::RecoverableCache::replay(r1.records, &duplicates,
                                          &undecodable);
  if (undecodable != 0) {
    fail(std::to_string(undecodable) +
         " recovered record(s) do not decode as cache ops");
  }
  if (duplicates != 0) {
    fail(std::to_string(duplicates) +
         " duplicate op id(s) in the log — a record was written twice");
  }

  // --- txlog: every acked diagnostic line is on disk, exactly once ----
  std::string diag;
  try {
    diag = io::read_file(diag_path(dir));
  } catch (const std::system_error&) {
    // missing file: only a violation if something was acked
  }
  for (const OracleLog& log : logs) {
    for (const std::string& tag : log.log_acks) {
      const std::size_t n = count_lines(diag, tag + "\n");
      if (n == 0) {
        fail("acked txlog line '" + tag + "' missing from diag log");
      } else if (n > 1) {
        fail("acked txlog line '" + tag + "' appears " + std::to_string(n) +
             " times");
      }
    }
  }

  // --- checkpoints: acked payloads present, in ack order --------------
  std::string ckpt;
  try {
    ckpt = io::read_file(ckpt_path(dir));
  } catch (const std::system_error&) {
  }
  std::size_t cursor = 0;
  for (const OracleLog& log : logs) {
    for (const std::string& payload : log.ckpt_acks) {
      const std::size_t pos = ckpt.find(payload, cursor);
      if (pos == std::string::npos) {
        fail("acked durable checkpoint '" + payload +
             "' missing (or out of order) in checkpoint file");
      } else {
        cursor = pos + payload.size();
      }
    }
  }

  // --- fdpool blocks: acked block contents intact ---------------------
  bool blocks_open = false;
  io::PosixFile blocks;
  try {
    blocks = io::PosixFile::open_read(blocks_path(dir));
    blocks_open = true;
  } catch (const std::system_error&) {
  }
  for (const OracleLog& log : logs) {
    for (const OracleLog::BlockAck& ack : log.block_acks) {
      if (!blocks_open) {
        fail("acked fdpool block at offset " + std::to_string(ack.offset) +
             " but block file is missing");
        continue;
      }
      std::string buf(ack.len, '\0');
      const std::size_t got = blocks.pread_some(buf.data(), buf.size(),
                                                ack.offset);
      if (got != ack.len || wal::crc32(buf) != ack.crc) {
        fail("acked fdpool block at offset " + std::to_string(ack.offset) +
             " is short or corrupt");
      }
    }
  }

  return v;
}

CaseResult run_case(const TortureCase& tc, const std::string& dir,
                    const WorkloadOptions& base) {
  CaseResult result;
  result.tc = tc;
  (void)::mkdir(dir.c_str(), 0755);

  const std::uint64_t effective_skip =
      fires_once_per_process(tc.point) ? 0 : tc.skip;

  // Phase 1 arm: the case's point — except for points inside the
  // recovery path, which cannot fire on a clean log; those get a WAL
  // torn-write setup crash so phase 2 has a tail to recover. The
  // dirsync demo needs the same torn setup.
  ArmSpec phase1;
  if (is_recovery_point(tc.point) || tc.demo_dirsync_bug) {
    phase1.point = "wal.commit.write";
    phase1.arm = faultsim::CrashArm{faultsim::CrashAction::Exit, tc.skip,
                                    kSetupTornBytes, tc.seed};
  } else {
    phase1.point = tc.point;
    phase1.arm = faultsim::CrashArm{tc.action, effective_skip,
                                    tc.persist_bytes, tc.seed};
  }

  // Phase 2 arm: always the case's point. For the dirsync demo the
  // crash fires before the first post-recovery write, squarely inside
  // the window where the truncation is volatile.
  ArmSpec phase2;
  phase2.point = tc.demo_dirsync_bug ? "wal.commit.write" : tc.point;
  phase2.arm = faultsim::CrashArm{
      tc.action, tc.demo_dirsync_bug ? 0 : effective_skip,
      tc.demo_dirsync_bug ? faultsim::CrashArm::kPersistNone
                          : tc.persist_bytes,
      tc.seed + 1};

  WorkloadOptions options = base;
  options.algo = tc.algo;
  options.dir = dir;
  options.seed = tc.seed;

  options.phase = 1;
  result.phases.push_back(launch_phase(1, options, &phase1, false));

  options.phase = 2;
  result.phases.push_back(
      launch_phase(2, options, &phase2, tc.demo_dirsync_bug));

  int phases = 2;
  if (!tc.demo_dirsync_bug) {
    // Phase 3: unarmed — recovery must succeed and the workload must
    // run to completion.
    options.phase = 3;
    result.phases.push_back(launch_phase(3, options, nullptr, false));
    phases = 3;
  }

  bool outcomes_ok = true;
  for (const PhaseResult& pr : result.phases) {
    const ChildOutcome expect = (pr.phase == 3) ? ChildOutcome::Completed
                                                : ChildOutcome::Crashed;
    if (pr.outcome != expect) {
      outcomes_ok = false;
      result.violations.push_back(
          "phase " + std::to_string(pr.phase) + " " +
          outcome_name(pr.outcome) + " (expected " + outcome_name(expect) +
          ", wait status " + std::to_string(pr.wait_status) + ")");
    }
  }

  // The final on-disk state can legitimately hold a torn WAL tail only
  // if the last phase could have torn it: a normal case ends with a
  // clean completed phase (no tear), the demo ends with a persist-none
  // crash (no tear either) — so any tear found is a real violation.
  const bool may_tear = false;
  auto wreckage = verify_dir(dir, phases, may_tear);
  result.violations.insert(result.violations.end(), wreckage.begin(),
                           wreckage.end());

  result.passed = outcomes_ok && result.violations.empty();
  result.summary = tc.name() + ": " +
                   (result.passed
                        ? "ok"
                        : (std::to_string(result.violations.size()) +
                           " violation(s)"));
  return result;
}

std::vector<TortureCase> quick_matrix(std::uint64_t seed) {
  std::vector<TortureCase> cases;
  std::uint64_t s = seed;
  for (const faultsim::CrashPointDesc& desc : faultsim::crash_points()) {
    TortureCase tc;
    tc.point = desc.name;
    tc.algo = "TL2";
    tc.skip = desc.subsystem == "txlog" ? 7 : (desc.subsystem == "wal" ? 2 : 1);
    tc.seed = ++s;
    cases.push_back(tc);
    if (desc.write_path) {
      TortureCase torn = tc;
      torn.persist_bytes = faultsim::CrashArm::kPersistRandom;
      torn.seed = ++s;
      cases.push_back(torn);
    }
  }
  for (const char* algo : {"Eager", "CGL", "HTMSim", "NOrec", "2PL"}) {
    TortureCase wal_torn;
    wal_torn.point = "wal.commit.write";
    wal_torn.algo = algo;
    wal_torn.persist_bytes = faultsim::CrashArm::kPersistRandom;
    wal_torn.seed = ++s;
    cases.push_back(wal_torn);
    TortureCase ckpt;
    ckpt.point = "durable.pre_fsync";
    ckpt.algo = algo;
    ckpt.skip = 1;
    ckpt.seed = ++s;
    cases.push_back(ckpt);
  }
  TortureCase kill;
  kill.point = "wal.commit.pre_fsync";
  kill.action = faultsim::CrashAction::Kill;
  kill.seed = ++s;
  cases.push_back(kill);
  return cases;
}

std::vector<TortureCase> full_matrix(std::uint64_t seed) {
  std::vector<TortureCase> cases;
  std::uint64_t s = seed * 7919;
  // Every registered backend: the full matrix picks up new families
  // (e.g. 2PL) automatically.
  std::vector<std::string> kAlgos;
  for (std::size_t i = 0; i < stm::backend_registry().size(); ++i) {
    kAlgos.emplace_back(stm::backend_registry().at(i)->name);
  }
  for (const faultsim::CrashPointDesc& desc : faultsim::crash_points()) {
    for (const std::string& algo : kAlgos) {
      TortureCase tc;
      tc.point = desc.name;
      tc.algo = algo;
      tc.skip =
          desc.subsystem == "txlog" ? 7 : (desc.subsystem == "wal" ? 2 : 1);
      tc.seed = ++s;
      cases.push_back(tc);
      if (desc.write_path) {
        TortureCase torn = tc;
        torn.persist_bytes = faultsim::CrashArm::kPersistRandom;
        torn.seed = ++s;
        cases.push_back(torn);
        TortureCase killed = torn;
        killed.action = faultsim::CrashAction::Kill;
        killed.seed = ++s;
        cases.push_back(killed);
      }
    }
  }
  return cases;
}

}  // namespace adtm::crashsim
