// Oracle side channel for the crashmat torture harness.
//
// The child streams a line-oriented commit oracle to a file as it runs;
// after the child is killed at a crash point, the parent replays the
// oracle against the recovered on-disk state. The protocol separates
// *intent* from *acknowledgement* so both directions of the durability
// contract are checkable:
//
//   I <lsn> <payload>   inside the appending transaction, after append()
//                       handed out <lsn>. Aborted re-executions emit
//                       again (possibly with a different lsn/payload), so
//                       intents over-approximate: a recovered record must
//                       match SOME intent or ack at its lsn, and a record
//                       matching none was invented by the log.
//   A <lsn> <payload>   after the appending transaction committed.
//   D <lsn>             after flush() returned: every record <= lsn was
//                       acked durable (fsync completed). A later recovery
//                       finding fewer records lost acknowledged data.
//   R <recs> <bytes> <clean>  this process's startup recovery completed
//                       (what the scan found on disk, pre-truncation).
//   L <tag>             txlog diagnostic line <tag> committed.
//   C <payload>         durable-buffer checkpoint acked (wait_durable).
//   B <off> <len> <crc> fdpool block write completed and fsynced.
//   W <ops>             workload ran to completion.
//
// Every line is emitted with one write(2) to an O_APPEND descriptor:
// atomic without a mutex, and therefore legal inside transaction bodies
// (no lock acquisition — the adtmlint tx-region check stays clean).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace adtm::crashsim {

class OracleWriter {
 public:
  explicit OracleWriter(const std::string& path);
  ~OracleWriter();
  OracleWriter(const OracleWriter&) = delete;
  OracleWriter& operator=(const OracleWriter&) = delete;

  void intent(std::uint64_t lsn, const std::string& payload);
  void acked(std::uint64_t lsn, const std::string& payload);
  void durable(std::uint64_t lsn);
  void recovered(std::uint64_t records, std::uint64_t valid_bytes, bool clean);
  void logline(const std::string& tag);
  void checkpoint(const std::string& payload);
  void block(std::uint64_t offset, std::uint64_t len, std::uint32_t crc);
  void completed(std::uint64_t ops);

 private:
  void line(const std::string& s);
  int fd_ = -1;
};

// Parent-side view of one phase's oracle file.
struct OracleLog {
  std::map<std::uint64_t, std::set<std::string>> intents;
  std::map<std::uint64_t, std::string> acked;
  std::uint64_t max_durable = 0;
  bool has_recovery = false;
  std::uint64_t recovered_records = 0;
  std::uint64_t recovered_valid_bytes = 0;
  bool recovered_clean = true;
  std::vector<std::string> log_acks;
  std::vector<std::string> ckpt_acks;
  struct BlockAck {
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
  };
  std::vector<BlockAck> block_acks;
  bool completed = false;
  std::uint64_t completed_ops = 0;
};

// A missing file parses as an empty log (the child died before its first
// event); a torn final line (no trailing newline) is dropped.
OracleLog parse_oracle(const std::string& path);

}  // namespace adtm::crashsim
