#include "crashsim/workload.hpp"

#include <unistd.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "crashsim/oracle.hpp"
#include "durable/durable.hpp"
#include "fdpool/async_io.hpp"
#include "io/posix_file.hpp"
#include "kvcache/recoverable.hpp"
#include "stm/api.hpp"
#include "tmsan/tmsan.hpp"
#include "txlog/txlog.hpp"
#include "wal/crc32.hpp"
#include "wal/wal.hpp"

namespace adtm::crashsim {

std::string wal_path(const std::string& dir) { return dir + "/wal.log"; }
std::string diag_path(const std::string& dir) { return dir + "/diag.log"; }
std::string ckpt_path(const std::string& dir) { return dir + "/ckpt.dat"; }
std::string blocks_path(const std::string& dir) { return dir + "/blocks.dat"; }

std::string oracle_path(const std::string& dir, int phase) {
  return dir + "/oracle." + std::to_string(phase);
}

std::uint64_t block_offset(int phase, std::uint64_t k) {
  return (static_cast<std::uint64_t>(phase - 1) * 1024 + k) * kBlockLen;
}

std::string block_payload(int phase, std::uint64_t k) {
  std::string out = "blk-p" + std::to_string(phase) + "-k" + std::to_string(k);
  out.push_back('-');
  Xoshiro256 rng(0x626c6bU + static_cast<std::uint64_t>(phase) * 131 + k);
  while (out.size() < kBlockLen) {
    out.push_back(static_cast<char>('a' + rng.next_below(26)));
  }
  return out;
}

namespace {

// One worker thread's slice of the workload. Thread 0 additionally runs
// the checkpoint and async-block duties so those paths interleave with
// the WAL traffic instead of running in a separate quiet period.
struct ChildState {
  const WorkloadOptions* opts;
  kvcache::RecoverableCache* kv;
  OracleWriter* oracle;
  txlog::TxLogger* diag;
  durable::DurableFile* ckpt;
  io::PosixFile* blocks;
  fdpool::AsyncIOEngine* engine;
  std::atomic<bool> failed{false};
};

void worker(ChildState& st, unsigned tid) {
  const WorkloadOptions& o = *st.opts;
  Xoshiro256 rng(o.seed * 1000003 + tid * 7919 +
                 static_cast<std::uint64_t>(o.phase));
  try {
    for (std::uint64_t i = 0; i < o.ops_per_thread; ++i) {
      kvcache::RecoverableCache::Op op;
      op.id = "p" + std::to_string(o.phase) + "t" + std::to_string(tid) + "n" +
              std::to_string(i);
      op.key = "k" + std::to_string(rng.next_below(o.keyspace));
      if (rng.next_below(4) == 0) {
        op.kind = 'D';
      } else {
        op.kind = 'S';
        op.value = "v" + op.id + "x" + std::to_string(rng.next());
      }
      const std::string record = kvcache::RecoverableCache::encode(op);
      const std::string tag = "diag-" + op.id;
      const wal::Lsn lsn = stm::atomic([&](stm::Tx& tx) {
        // Cache mutation + WAL append + diagnostic line: one transaction,
        // so the crash contract is both-or-neither across all three.
        //
        // The ordered logger acquires its TxLock at registration, and a
        // contended acquire blocks via stm::retry — so it must come
        // before the transaction's first write. Under CGL writes are
        // direct (irrevocable) and a retry after one is an error.
        st.diag->log(tx, tag);
        const wal::Lsn l = st.kv->apply(tx, op);
        // Intent line from inside the body: may repeat on re-execution,
        // by design (see oracle.hpp).
        st.oracle->intent(l, record);
        return l;
      });
      st.oracle->acked(lsn, record);
      st.oracle->logline(tag);

      if ((i + 1) % o.flush_every == 0) {
        st.kv->flush();
        st.oracle->durable(st.kv->wal().durable_lsn_direct());
      }
      if (tid == 0 && (i + 1) % o.ckpt_every == 0) {
        const std::string payload = "ckpt-p" + std::to_string(o.phase) + "-n" +
                                    std::to_string((i + 1) / o.ckpt_every) +
                                    ";";
        durable::DurableBuffer buf(payload);
        stm::atomic(
            [&](stm::Tx& tx) { durable::durable_write(tx, *st.ckpt, buf); });
        stm::atomic(
            [&](stm::Tx& tx) { durable::wait_durable(tx, buf); });
        st.oracle->checkpoint(payload);
      }
      if (tid == 0 && (i + 1) % o.block_every == 0) {
        const std::uint64_t k = (i + 1) / o.block_every;
        const std::string data = block_payload(o.phase, k);
        const std::uint64_t off =
            block_offset(o.phase, k);
        st.engine->submit_write(st.blocks->fd(), off, data);
        st.engine->drain();
        st.blocks->sync();
        st.oracle->block(off, data.size(), wal::crc32(data));
      }
    }
  } catch (...) {
    st.failed.store(true, std::memory_order_relaxed);
  }
}

}  // namespace

void run_child_workload(const WorkloadOptions& options) {
  try {
    stm::init({.backend = options.algo});
    OracleWriter oracle(oracle_path(options.dir, options.phase));
    kvcache::RecoverableCache kv(4096, wal_path(options.dir));
    const auto& found = kv.recovery();
    // Recovery self-check (both-or-neither visibility): the cache the
    // constructor rebuilt must agree with a fold of the recovered log.
    for (const auto& [key, value] : kvcache::RecoverableCache::replay(
             kv.recovery().records)) {
      const auto got = kv.cache().get(key);
      if (!got.has_value() || *got != value) ::_exit(kChildReplayMismatch);
    }
    oracle.recovered(found.records.size(), found.valid_bytes, found.clean);

    txlog::TxLogger diag(diag_path(options.dir));
    durable::DurableFile ckpt(ckpt_path(options.dir));
    io::PosixFile blocks = io::PosixFile::open_rw(blocks_path(options.dir));
    fdpool::AsyncIOEngine engine(2);

    ChildState st;
    st.opts = &options;
    st.kv = &kv;
    st.oracle = &oracle;
    st.diag = &diag;
    st.ckpt = &ckpt;
    st.blocks = &blocks;
    st.engine = &engine;

    std::vector<std::thread> threads;
    threads.reserve(options.threads);
    for (unsigned t = 0; t < options.threads; ++t) {
      threads.emplace_back([&st, t] { worker(st, t); });
    }
    for (auto& th : threads) th.join();
    if (st.failed.load(std::memory_order_relaxed)) ::_exit(kChildException);

    kv.flush();
    oracle.durable(kv.wal().durable_lsn_direct());
    // Under the crash preset the child runs with tmsan armed (inherited
    // environment): a clean completion also vouches that the torture
    // workload raced and deferred nothing illegally.
    if (tmsan::active() && tmsan::violation_count() != 0) {
      std::fputs(tmsan::report().c_str(), stderr);
      ::_exit(kChildTmsanViolation);
    }
    oracle.completed(static_cast<std::uint64_t>(options.threads) *
                     options.ops_per_thread);
    ::_exit(kChildOk);
  } catch (...) {
    ::_exit(kChildException);
  }
}

}  // namespace adtm::crashsim
