// The crashmat child workload: a deterministic multi-threaded exercise
// of every durable write path in the tree (WAL group commit via
// RecoverableCache, txlog deferred diagnostics, DurableBuffer
// checkpoints, fdpool async block writes), streaming the commit oracle
// as it goes. Runs in a forked child with exactly one crash point armed;
// the process really dies there, and the parent verifies the wreckage.
#pragma once

#include <cstdint>
#include <string>

#include "stm/config.hpp"

namespace adtm::crashsim {

struct WorkloadOptions {
  std::string algo = "TL2";  // backend display name (stm::find_backend)
  unsigned threads = 2;
  std::uint64_t ops_per_thread = 120;
  std::uint64_t flush_every = 16;  // wal flush + D ack cadence (per thread)
  std::uint64_t ckpt_every = 12;   // durable checkpoint cadence (thread 0)
  std::uint64_t block_every = 10;  // fdpool block cadence (thread 0)
  std::uint64_t keyspace = 64;
  std::uint64_t seed = 1;
  int phase = 1;  // 1-based; selects the oracle file and block offsets
  std::string dir;
};

// Child exit codes beyond faultsim::kCrashExitStatus (86 = armed crash).
inline constexpr int kChildOk = 0;
inline constexpr int kChildException = 2;      // unexpected throw
inline constexpr int kChildReplayMismatch = 4; // recovery self-check failed
inline constexpr int kChildBadPoint = 5;       // arm target not registered
inline constexpr int kChildTmsanViolation = 6; // armed tmsan found a bug

// Shared layout of the torture directory.
std::string wal_path(const std::string& dir);
std::string diag_path(const std::string& dir);
std::string ckpt_path(const std::string& dir);
std::string blocks_path(const std::string& dir);
std::string oracle_path(const std::string& dir, int phase);

// fdpool blocks: fixed-size, phase-disjoint offsets so no phase
// overwrites another's acked block.
inline constexpr std::uint64_t kBlockLen = 256;
std::uint64_t block_offset(int phase, std::uint64_t k);
std::string block_payload(int phase, std::uint64_t k);

// Run the workload in the calling (forked) process. Never returns:
// _exit(kChildOk) on completion, dies at the armed crash point, or
// _exit with one of the error codes above.
[[noreturn]] void run_child_workload(const WorkloadOptions& options);

}  // namespace adtm::crashsim
