#include "tmsan/tmsan.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "common/runtime_config.hpp"
#include "common/thread_id.hpp"
#include "tmsan/internal.hpp"

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define ADTM_TMSAN_HAVE_BACKTRACE 1
#endif
#endif
#ifndef ADTM_TMSAN_HAVE_BACKTRACE
#define ADTM_TMSAN_HAVE_BACKTRACE 0
#endif

namespace adtm::tmsan {

namespace detail {
std::atomic<std::uint32_t> g_mode{0};
}  // namespace detail

const char* violation_name(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::MixedModeRace: return "mixed-mode-race";
    case ViolationKind::DeferralUncovered: return "deferral-uncovered";
    case ViolationKind::EarlyLockRelease: return "early-lock-release";
    case ViolationKind::OpacityViolation: return "opacity-violation";
  }
  return "?";
}

namespace detail {

void capture_stack(Stack& out) noexcept {
#if ADTM_TMSAN_HAVE_BACKTRACE
  out.depth = ::backtrace(out.frames, Stack::kMaxFrames);
#else
  out.depth = 0;
#endif
}

std::string format_stack(const Stack& s) {
#if ADTM_TMSAN_HAVE_BACKTRACE
  if (s.depth <= 0) return "  <no stack>";
  std::string out;
  char** symbols = ::backtrace_symbols(const_cast<void* const*>(s.frames),
                                       s.depth);
  for (int i = 0; i < s.depth; ++i) {
    out += "  #";
    out += std::to_string(i);
    out += ' ';
    if (symbols != nullptr && symbols[i] != nullptr) {
      out += symbols[i];
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%p", s.frames[i]);
      out += buf;
    }
    out += '\n';
  }
  std::free(symbols);
  return out;
#else
  (void)s;
  return "  <backtrace unavailable>";
#endif
}

}  // namespace detail

namespace {

using detail::Access;
using detail::Stack;

// --- shadow table ----------------------------------------------------------
//
// Direct-mapped by word address; a collision evicts the previous entry,
// so hash collisions can only hide a race, never invent one.

constexpr std::size_t kShadowBits = 16;
constexpr std::size_t kShadowSize = std::size_t{1} << kShadowBits;
constexpr std::size_t kStripes = 64;

struct ShadowEntry {
  const void* addr = nullptr;
  // Transactional side: the most recent transaction that touched the word.
  std::uint32_t tx_tid = 0;
  std::uint64_t tx_interval = 0;  // 0 = no transactional access recorded
  bool tx_read = false;
  bool tx_write = false;
  Stack tx_stack;
  // Raw (non-transactional) side: the most recent direct access.
  std::uint32_t raw_tid = 0;
  std::uint64_t raw_read_seq = 0;   // 0 = none recorded
  std::uint64_t raw_write_seq = 0;
  bool raw_epilogue = false;  // access came from a deferred epilogue
  Stack raw_stack;
};

// Coverage declaration: [base, end) is protected by `lock`.
struct CoverRange {
  std::uintptr_t end;
  const void* lock;
};

struct State {
  // Shadow table, allocated on first enable() and leaked (hooks may run
  // from thread-exit paths after static destructors).
  std::atomic<ShadowEntry*> shadow{nullptr};
  std::mutex stripes[kStripes];

  // Unique id per transaction attempt; slot 0 of the counter is reserved
  // so "interval 0" always means idle.
  std::atomic<std::uint64_t> interval_counter{1};
  // The interval currently running on each thread slot (0 = idle).
  std::atomic<std::uint64_t> active_interval[kMaxThreads] = {};
  // Global raw-access sequence; transactions snapshot it at begin.
  std::atomic<std::uint64_t> raw_seq{1};

  // Violation reports.
  std::mutex report_mutex;
  std::vector<Violation> violations;  // bounded; counts are not
  std::atomic<std::uint64_t> counts[4] = {};

  // Deferral contract: per-lock pending-epilogue counts and coverage.
  std::mutex defer_mutex;
  std::map<const void*, std::uint64_t> pending;
  std::map<std::uintptr_t, CoverRange> cover;
};

State& state() noexcept {
  static State* s = new State;
  return *s;
}

constexpr std::size_t kMaxStoredViolations = 256;
// Per-transaction access-log cap; past it the transaction's opacity
// bookkeeping is skipped (never reported from partial data).
constexpr std::size_t kMaxTxLog = std::size_t{1} << 20;

// Per-thread transaction log and epilogue context.
struct TxLog {
  bool in_tx = false;
  bool direct_mode = false;
  bool opacity_skip = false;
  std::uint64_t interval = 0;
  std::uint64_t raw_seq_at_begin = 0;
  std::vector<Access> reads;
  std::vector<Access> writes;
  // Ranges handed out by tx.alloc this attempt. Raw stores into them are
  // private initialization: ordered before every reader by the publishing
  // commit (or freed by the abort), so their shadow marks are withdrawn
  // when the transaction ends instead of lingering as phantom racers.
  std::vector<std::pair<const void*, std::size_t>> allocs;
};
thread_local TxLog t_tx;
thread_local int t_raw_ignore = 0;
// Stack of epilogue lock sets (an epilogue may run transactions whose
// epilogues nest). A raw access is "in an epilogue" while nonempty; its
// lock set is the union of all levels (outer locks are still held).
thread_local std::vector<std::vector<const void*>> t_epi_stack;

// Shadow-side stack sampling (ADTM_TMSAN_STACK_SAMPLE): backtrace() on
// every shadow update dominates the race checker's cost. Violation-site
// stacks stay unconditional; only the bookkeeping side is thinned, to
// every Nth access per thread (0 = never).
std::atomic<std::uint32_t> g_stack_sample{1};
thread_local std::uint32_t t_stack_tick = 0;

void maybe_capture_stack(Stack& out) noexcept {
  const std::uint32_t n = g_stack_sample.load(std::memory_order_relaxed);
  if (n == 1) {
    detail::capture_stack(out);
  } else if (n != 0 && ++t_stack_tick >= n) {
    t_stack_tick = 0;
    detail::capture_stack(out);
  } else {
    out.depth = 0;
  }
}

std::size_t shadow_index(const void* addr) noexcept {
  auto a = reinterpret_cast<std::uintptr_t>(addr) >> 3;
  a *= 0x9e3779b97f4a7c15ULL;
  return static_cast<std::size_t>(a >> (64 - kShadowBits));
}

ShadowEntry* shadow_table() noexcept {
  return state().shadow.load(std::memory_order_acquire);
}

std::string addr_str(const void* p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%p", p);
  return buf;
}

bool epilogue_holds(const void* lock) noexcept {
  for (const auto& level : t_epi_stack) {
    for (const void* l : level) {
      if (l == lock) return true;
    }
  }
  return false;
}

// The covering lock of addr, or nullptr. Caller holds defer_mutex.
const void* covering_lock_locked(State& s, const void* addr) noexcept {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  auto it = s.cover.upper_bound(a);
  if (it == s.cover.begin()) return nullptr;
  --it;
  return a < it->second.end ? it->second.lock : nullptr;
}

}  // namespace

namespace detail {

void record_violation(ViolationKind kind, const void* addr,
                      std::uint32_t tid_a, std::uint32_t tid_b,
                      std::string detail_text, std::string stack_a,
                      std::string stack_b) noexcept {
  State& s = state();
  s.counts[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(s.report_mutex);
  if (s.violations.size() >= kMaxStoredViolations) return;
  Violation v;
  v.kind = kind;
  v.addr = addr;
  v.tid_a = tid_a;
  v.tid_b = tid_b;
  v.detail = std::move(detail_text);
  v.stack_a = std::move(stack_a);
  v.stack_b = std::move(stack_b);
  s.violations.push_back(std::move(v));
}

// --- raw (non-transactional) access ----------------------------------------

void raw_access_slow(const void* addr, bool is_write) noexcept {
  if (t_raw_ignore > 0) return;
  State& s = state();
  const std::uint32_t me = thread_id();
  const bool in_epilogue = !t_epi_stack.empty();

  if (in_epilogue && active(kCheckDeferral)) {
    // Deferral contract: an epilogue may touch covered state only under
    // a lock its atomic_defer acquired.
    const void* needed = nullptr;
    {
      std::lock_guard<std::mutex> lk(s.defer_mutex);
      needed = covering_lock_locked(s, addr);
    }
    if (needed != nullptr && !epilogue_holds(needed)) {
      Stack here;
      capture_stack(here);
      record_violation(
          ViolationKind::DeferralUncovered, addr, me, 0,
          "epilogue " + std::string(is_write ? "wrote" : "read") + " word " +
              addr_str(addr) + " covered by TxLock " + addr_str(needed) +
              " that its atomic_defer did not acquire",
          format_stack(here), "");
    }
  }

  if (!active(kCheckRace)) return;
  ShadowEntry* table = shadow_table();
  if (table == nullptr) return;
  ShadowEntry& e = table[shadow_index(addr)];
  std::lock_guard<std::mutex> lk(s.stripes[shadow_index(addr) % kStripes]);

  if (e.addr == addr && !in_epilogue && e.tx_interval != 0 &&
      e.tx_tid != me &&
      s.active_interval[e.tx_tid].load(std::memory_order_acquire) ==
          e.tx_interval &&
      (is_write || e.tx_write)) {
    // The transaction that touched this word is still running: the raw
    // access is concurrent with it, and one side writes.
    Stack here;
    capture_stack(here);
    record_violation(
        ViolationKind::MixedModeRace, addr, me, e.tx_tid,
        "non-transactional " + std::string(is_write ? "store" : "load") +
            " of word " + addr_str(addr) + " races transaction on thread " +
            std::to_string(e.tx_tid) + " (" +
            (e.tx_write ? "transactional write" : "transactional read") + ")",
        format_stack(here), format_stack(e.tx_stack));
  }

  if (e.addr != addr) {
    e = ShadowEntry{};  // collision: evict (may hide, never invents)
    e.addr = addr;
  }
  const std::uint64_t seq =
      s.raw_seq.fetch_add(1, std::memory_order_acq_rel) + 1;
  e.raw_tid = me;
  if (is_write) {
    e.raw_write_seq = seq;
  } else {
    e.raw_read_seq = seq;
  }
  e.raw_epilogue = in_epilogue;
  maybe_capture_stack(e.raw_stack);
}

// --- transactional access --------------------------------------------------

void tx_access_slow(const void* addr, std::uint64_t value,
                    bool is_write) noexcept {
  State& s = state();
  const std::uint32_t me = thread_id();

  if (active(kCheckOpacity) && t_tx.in_tx && !t_tx.opacity_skip) {
    if (is_write) {
      // Direct-mode writes enter the history too: speculative readers
      // validate against them.
      if (t_tx.writes.size() < kMaxTxLog) {
        t_tx.writes.push_back({addr, value});
      } else {
        t_tx.opacity_skip = true;
      }
    } else if (!t_tx.direct_mode) {
      // Direct-mode reads are serialized by construction; only
      // speculative reads need snapshot validation.
      if (t_tx.reads.size() < kMaxTxLog) {
        t_tx.reads.push_back({addr, value});
      } else {
        t_tx.opacity_skip = true;
      }
    }
  }

  if (!active(kCheckRace)) return;
  ShadowEntry* table = shadow_table();
  if (table == nullptr) return;
  ShadowEntry& e = table[shadow_index(addr)];
  std::lock_guard<std::mutex> lk(s.stripes[shadow_index(addr) % kStripes]);

  if (e.addr == addr && (e.raw_read_seq | e.raw_write_seq) != 0 &&
      e.raw_tid != me && !e.raw_epilogue) {
    // A raw access later than our begin snapshot is concurrent with this
    // transaction. Epilogue accesses are excluded: the deferral contract
    // (subscription) orders them, and its own checker covers them.
    const bool raw_wrote = e.raw_write_seq > t_tx.raw_seq_at_begin;
    const bool raw_read = e.raw_read_seq > t_tx.raw_seq_at_begin;
    if (raw_wrote || (is_write && raw_read)) {
      Stack here;
      capture_stack(here);
      record_violation(
          ViolationKind::MixedModeRace, addr, me, e.raw_tid,
          "transactional " + std::string(is_write ? "write" : "read") +
              " of word " + addr_str(addr) +
              " races non-transactional " +
              (raw_wrote ? "store" : "load") + " by thread " +
              std::to_string(e.raw_tid),
          format_stack(here), format_stack(e.raw_stack));
    }
  }

  if (e.addr != addr) {
    e = ShadowEntry{};
    e.addr = addr;
  }
  if (e.tx_interval != t_tx.interval) {
    // A different (older) transaction's marks: start fresh.
    e.tx_read = false;
    e.tx_write = false;
  }
  e.tx_tid = me;
  e.tx_interval = t_tx.interval;
  e.tx_read = e.tx_read || !is_write;
  e.tx_write = e.tx_write || is_write;
  maybe_capture_stack(e.tx_stack);
}

namespace {

// Drop shadow entries for every word of [base, base + bytes).
void clear_shadow_range(const void* base, std::size_t bytes) noexcept {
  ShadowEntry* table = shadow_table();
  if (table == nullptr) return;
  State& s = state();
  auto p = reinterpret_cast<std::uintptr_t>(base) & ~std::uintptr_t{7};
  const auto end = reinterpret_cast<std::uintptr_t>(base) + bytes;
  for (; p < end; p += 8) {
    const void* addr = reinterpret_cast<const void*>(p);
    const std::size_t idx = shadow_index(addr);
    std::lock_guard<std::mutex> lk(s.stripes[idx % kStripes]);
    ShadowEntry& e = table[idx];
    if (e.addr == addr) e = ShadowEntry{};
  }
}

// Withdraw the shadow marks left by this attempt's private initialization
// of freshly allocated ranges (see TxLog::allocs).
void retire_tx_allocs() noexcept {
  for (const auto& [base, bytes] : t_tx.allocs) {
    clear_shadow_range(base, bytes);
  }
}

}  // namespace

void tx_alloc_slow(const void* base, std::size_t bytes) noexcept {
  // A transactional allocation recycles whatever the allocator hands
  // back: per-word state filed under these addresses describes a freed
  // object, not this one. Forget it before the new object's raw
  // initialization runs.
  if (active(kCheckOpacity)) opacity_on_alloc(base, bytes);
  if (!active(kCheckRace)) return;
  clear_shadow_range(base, bytes);
  if (t_tx.in_tx) t_tx.allocs.push_back({base, bytes});
}

}  // namespace detail

// --- lifecycle -------------------------------------------------------------

void on_tx_begin(bool direct_mode) noexcept {
  if (!active()) return;
  State& s = state();
  t_tx.in_tx = true;
  t_tx.direct_mode = direct_mode;
  t_tx.opacity_skip = false;
  t_tx.interval =
      s.interval_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  t_tx.raw_seq_at_begin = s.raw_seq.load(std::memory_order_acquire);
  t_tx.reads.clear();
  t_tx.writes.clear();
  s.active_interval[thread_id()].store(t_tx.interval,
                                       std::memory_order_release);
}

void on_tx_commit(std::uint64_t primary_key) noexcept {
  // Still runs when disabled mid-transaction: the active-interval slot
  // published by on_tx_begin must be withdrawn either way.
  if (!active() && !t_tx.in_tx) return;
  State& s = state();
  s.active_interval[thread_id()].store(0, std::memory_order_release);
  if (active(kCheckOpacity) && t_tx.in_tx && !t_tx.opacity_skip) {
    std::uint64_t self = 0;
    if (!t_tx.writes.empty()) {
      self = detail::opacity_commit_writes(t_tx.writes, primary_key);
    }
    if (!t_tx.reads.empty()) {
      // Validate against history minus this commit's own versions: every
      // read here predates the write set that was just filed.
      detail::opacity_validate_reads(t_tx.reads, "commit", self);
    }
  }
  // Publication: the commit orders this attempt's private initialization
  // of fresh allocations before any reader that can reach them (we run
  // before the locks/sequence publishing the writes are released), so
  // those raw marks must not survive as phantom racers.
  detail::retire_tx_allocs();
  t_tx = TxLog{};
}

void on_tx_abort() noexcept {
  if (!active() && !t_tx.in_tx) return;
  State& s = state();
  s.active_interval[thread_id()].store(0, std::memory_order_release);
  // Opacity holds for aborted transactions too: everything read up to the
  // abort must still have been one consistent snapshot.
  if (active(kCheckOpacity) && t_tx.in_tx && !t_tx.opacity_skip &&
      !t_tx.reads.empty()) {
    detail::opacity_validate_reads(t_tx.reads, "abort");
  }
  // The rollback freed this attempt's fresh allocations; their raw
  // initialization marks describe memory that no longer exists.
  detail::retire_tx_allocs();
  t_tx = TxLog{};
}

void on_nested_abort() noexcept { t_tx.opacity_skip = true; }

// --- deferral contract -----------------------------------------------------

void on_defer_registered(const void* const* locks, std::size_t n) noexcept {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.defer_mutex);
  for (std::size_t i = 0; i < n; ++i) ++s.pending[locks[i]];
}

void on_defer_cancelled(const void* const* locks, std::size_t n) noexcept {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.defer_mutex);
  for (std::size_t i = 0; i < n; ++i) {
    auto it = s.pending.find(locks[i]);
    if (it != s.pending.end() && it->second > 0) --it->second;
  }
}

void epilogue_begin(const void* const* locks, std::size_t n) noexcept {
  t_epi_stack.emplace_back(locks, locks + n);
}

void epilogue_end(const void* const* locks, std::size_t n) noexcept {
  // The epilogue is done: it no longer pends on its locks, so the
  // releases that follow are legitimate free transitions.
  on_defer_cancelled(locks, n);
  if (!t_epi_stack.empty()) t_epi_stack.pop_back();
}

void on_lock_freed(const void* lock) noexcept {
  if (!active(kCheckDeferral)) return;
  State& s = state();
  std::uint64_t pending = 0;
  {
    std::lock_guard<std::mutex> lk(s.defer_mutex);
    auto it = s.pending.find(lock);
    if (it != s.pending.end()) pending = it->second;
  }
  if (pending == 0) return;
  Stack here;
  detail::capture_stack(here);
  detail::record_violation(
      ViolationKind::EarlyLockRelease, lock, thread_id(), 0,
      "TxLock " + addr_str(lock) + " reached the free state with " +
          std::to_string(pending) +
          " deferred epilogue(s) registered under it still pending",
      detail::format_stack(here), "");
}

void cover(const void* base, std::size_t bytes, const void* lock) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.defer_mutex);
  const auto b = reinterpret_cast<std::uintptr_t>(base);
  s.cover[b] = CoverRange{b + bytes, lock};
}

// --- control / reports -----------------------------------------------------

void enable(std::uint32_t mask) {
  State& s = state();
  g_stack_sample.store(runtime_config().tmsan_stack_sample,
                       std::memory_order_relaxed);
  if (s.shadow.load(std::memory_order_acquire) == nullptr) {
    auto* table = new ShadowEntry[kShadowSize];
    ShadowEntry* expected = nullptr;
    if (!s.shadow.compare_exchange_strong(expected, table,
                                          std::memory_order_acq_rel)) {
      delete[] table;  // lost the allocation race
    }
  }
  detail::g_mode.fetch_or(mask & kCheckAll, std::memory_order_relaxed);
}

void disable(std::uint32_t mask) {
  detail::g_mode.fetch_and(~mask, std::memory_order_relaxed);
}

void reset() {
  State& s = state();
  {
    std::lock_guard<std::mutex> lk(s.report_mutex);
    s.violations.clear();
  }
  for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(s.defer_mutex);
    s.pending.clear();
    s.cover.clear();
  }
  if (ShadowEntry* table = shadow_table()) {
    for (std::size_t i = 0; i < kShadowSize; ++i) {
      std::lock_guard<std::mutex> lk(s.stripes[i % kStripes]);
      table[i] = ShadowEntry{};
    }
  }
  detail::opacity_reset();
}

std::size_t violation_count() {
  State& s = state();
  std::uint64_t n = 0;
  for (const auto& c : s.counts) n += c.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(n);
}

std::size_t violation_count(ViolationKind k) {
  return static_cast<std::size_t>(
      state().counts[static_cast<std::size_t>(k)].load(
          std::memory_order_relaxed));
}

std::vector<Violation> violations() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.report_mutex);
  return s.violations;
}

std::string report() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.report_mutex);
  std::string out;
  for (const Violation& v : s.violations) {
    out += "tmsan: ";
    out += violation_name(v.kind);
    out += ": ";
    out += v.detail;
    out += '\n';
    if (!v.stack_a.empty()) {
      out += " reporting side (thread " + std::to_string(v.tid_a) + "):\n";
      out += v.stack_a;
    }
    if (!v.stack_b.empty()) {
      out += " other side (thread " + std::to_string(v.tid_b) + "):\n";
      out += v.stack_b;
    }
  }
  return out;
}

ScopedRawIgnore::ScopedRawIgnore() noexcept { ++t_raw_ignore; }
ScopedRawIgnore::~ScopedRawIgnore() { --t_raw_ignore; }

// The checkers follow adtm::configure() like the obs layer does, so tests
// and embedders flip them without touching the environment.
namespace {
const bool g_config_applier = [] {
  adtm::detail::register_config_applier([](const RuntimeConfig& cfg) {
    if (cfg.tmsan) {
      enable(kCheckRace | kCheckDeferral);
    } else {
      disable(kCheckRace | kCheckDeferral);
    }
    if (cfg.tmsan_opacity) {
      enable(kCheckOpacity);
    } else {
      disable(kCheckOpacity);
    }
  });
  return true;
}();
}  // namespace

}  // namespace adtm::tmsan
