// tmsan: the TM-aware race & atomicity sanitizer.
//
// Plain TSan cannot check a transactional memory: it either drowns in
// false positives on orec/seqlock traffic or, suppressed, misses exactly
// the bugs that matter. tmsan sits inside the runtime's own barriers and
// checks the three contracts the runtime actually promises:
//
//  1. Mixed-mode isolation — a non-transactional (direct) load or store
//     to a word that a concurrently running transaction also accesses is
//     a mixed-mode/publication race unless the access is privatized
//     (the owning transaction has committed/aborted — quiescence-correct
//     privatization passes naturally) or is part of a deferred epilogue
//     (governed by contract 2 instead). Reported with both stack
//     contexts.
//
//  2. The deferral contract (the paper's atomicity guarantee) — a
//     deferred epilogue may touch only state covered by a TxLock its
//     atomic_defer acquired; and a TxLock must not reach the free state
//     while an epilogue registered under it is still pending. Coverage
//     is declared with cover() (the test-side analogue of the paper's
//     `deferrable class` annotation).
//
//  3. Opacity — every transaction, committed OR aborted, must have
//     observed a consistent snapshot. Each transaction's value-level
//     read set is checked against a global per-word version history
//     built from committed write sets: if no single point in commit
//     order could have produced all observed values, the snapshot was
//     inconsistent.
//
// Always compiled, runtime gated (the obs-layer pattern): every barrier
// hook is one relaxed atomic load and a predicted-not-taken branch while
// disabled. Enable with ADTM_TMSAN=1 / ADTM_TMSAN_OPACITY=1 (read at
// stm::init), adtm::configure(), or the explicit enable() below.
//
// This library depends only on adtm_common; the stm and defer layers call
// into it, never the reverse.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adtm::tmsan {

// Which checkers are armed; a bitmask so tests can plant a bug, prove the
// disabled stub misses it, then arm one checker and prove it is caught.
enum CheckMask : std::uint32_t {
  kCheckNone = 0,
  kCheckRace = 1u << 0,      // mixed-mode/publication races
  kCheckDeferral = 1u << 1,  // deferral contract (coverage + early release)
  kCheckOpacity = 1u << 2,   // per-transaction snapshot consistency
  kCheckAll = kCheckRace | kCheckDeferral | kCheckOpacity,
};

enum class ViolationKind : std::uint8_t {
  MixedModeRace,     // raw access raced a live transaction's access
  DeferralUncovered, // epilogue touched state outside its lock set
  EarlyLockRelease,  // TxLock freed with a covered epilogue pending
  OpacityViolation,  // a transaction observed an inconsistent snapshot
};

const char* violation_name(ViolationKind k) noexcept;

struct Violation {
  ViolationKind kind;
  const void* addr = nullptr;   // word (or lock) the report is about
  std::uint32_t tid_a = 0;      // reporting side (raw accessor / tx / releaser)
  std::uint32_t tid_b = 0;      // other side (tx / epilogue owner), if known
  std::string detail;           // human-readable one-liner
  std::string stack_a;          // reporting side's captured stack
  std::string stack_b;          // other side's stack (mixed-mode only)
};

namespace detail {
extern std::atomic<std::uint32_t> g_mode;

void raw_access_slow(const void* addr, bool is_write) noexcept;
void tx_alloc_slow(const void* base, std::size_t bytes) noexcept;
void tx_access_slow(const void* addr, std::uint64_t value,
                    bool is_write) noexcept;
}  // namespace detail

// The runtime gate every barrier hook tests first. Relaxed: arming the
// sanitizer mid-run is best-effort by design (like obs::enabled()).
inline bool active() noexcept {
  return detail::g_mode.load(std::memory_order_relaxed) != 0;
}

inline bool active(CheckMask m) noexcept {
  return (detail::g_mode.load(std::memory_order_relaxed) & m) != 0;
}

// --- control ---------------------------------------------------------------

// Arm the given checkers (OR-ed into the current mask). Allocates the
// shadow table on first use; idempotent.
void enable(std::uint32_t mask = kCheckAll);

// Disarm the given checkers (default: all). Recorded violations are kept
// until reset().
void disable(std::uint32_t mask = kCheckAll);

// Drop all recorded violations, the shadow table contents, the opacity
// history, and coverage declarations. Call at test-phase boundaries, not
// concurrently with transactions.
void reset();

// --- reports ---------------------------------------------------------------

std::size_t violation_count();
std::size_t violation_count(ViolationKind k);
std::vector<Violation> violations();

// Reads whose value never appears in the opacity history (pre-history
// baseline disagreements, direct-mode interleavings). Counted, treated as
// consistent — the checker reports only provable inconsistency.
std::uint64_t opacity_unverifiable_reads();

// Human-readable rendering of every recorded violation ("" when clean).
std::string report();

// --- coverage declarations (deferral contract) -----------------------------

// Declare that [base, base + bytes) is protected by `lock` (a TxLock
// address). An epilogue whose lock set lacks `lock` and touches a covered
// word is reported. Coverage persists until reset().
void cover(const void* base, std::size_t bytes, const void* lock);

// --- barrier hooks (called by the stm / defer layers) ----------------------
//
// Every hook is inline-gated: disabled cost is one relaxed load + branch.

// Non-transactional (direct) access to a transactional word.
inline void on_raw_read(const void* addr) noexcept {
  if (active()) detail::raw_access_slow(addr, false);
}
inline void on_raw_write(const void* addr) noexcept {
  if (active()) detail::raw_access_slow(addr, true);
}

// Validated transactional access (speculative or direct-mode) to a word.
inline void on_tx_read(const void* addr, std::uint64_t value) noexcept {
  if (active()) detail::tx_access_slow(addr, value, false);
}
inline void on_tx_write(const void* addr, std::uint64_t value) noexcept {
  if (active()) detail::tx_access_slow(addr, value, true);
}

// Memory handed out by a transactional allocation: stale per-word state
// (opacity history, race shadow marks) under the range belongs to a freed
// previous occupant and is dropped.
inline void on_tx_alloc(const void* base, std::size_t bytes) noexcept {
  if (active()) detail::tx_alloc_slow(base, bytes);
}

// Transaction lifecycle. `direct_mode` transactions (serial/CGL) skip
// opacity read validation — they are serialized by construction — but
// their writes still enter the history other transactions validate
// against. `primary_key` orders committed writers: the commit timestamp
// (TL2/Eager/HTMSim), the post-publish sequence (NOrec), or 0 for
// direct-mode commits (ordered by hook arrival, which their global
// gate/mutex serializes).
void on_tx_begin(bool direct_mode) noexcept;
void on_tx_commit(std::uint64_t primary_key) noexcept;
void on_tx_abort() noexcept;

// A closed-nested scope rolled back: this transaction's tmsan logs no
// longer match what will commit — skip its opacity bookkeeping entirely
// (never report from partial data).
void on_nested_abort() noexcept;

// Deferral contract. A registering transaction calls on_defer_registered
// inside the transaction (after acquiring the locks) and pairs it with
// on_defer_cancelled from an abort hook; the driver wraps the epilogue in
// epilogue_begin/epilogue_end. `locks` are TxLock addresses.
void on_defer_registered(const void* const* locks, std::size_t n) noexcept;
void on_defer_cancelled(const void* const* locks, std::size_t n) noexcept;
void epilogue_begin(const void* const* locks, std::size_t n) noexcept;
void epilogue_end(const void* const* locks, std::size_t n) noexcept;

// A TxLock reached its free transition (depth 1 -> 0), called at the
// release site inside the transaction. Reports EarlyLockRelease while an
// epilogue registered under the lock is still pending — the epilogue's
// own release is clean because epilogue_end withdraws the pend first.
void on_lock_freed(const void* lock) noexcept;

// Suppress raw-access checking for deliberate, benign racy reads (lock
// metadata sampled by the watchdog / wait-graph: owner_of, orphaned,
// held_by_me, poisoned). Nestable, thread-local.
class ScopedRawIgnore {
 public:
  ScopedRawIgnore() noexcept;
  ~ScopedRawIgnore();
  ScopedRawIgnore(const ScopedRawIgnore&) = delete;
  ScopedRawIgnore& operator=(const ScopedRawIgnore&) = delete;
};

}  // namespace adtm::tmsan
