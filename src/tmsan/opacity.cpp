// Opacity checker: per-word committed version history + snapshot
// validation.
//
// Model. Every committed writer appends its (deduplicated) write set to a
// global per-word history, keyed by the commit's position in the runtime's
// own serialization order: the commit timestamp (TL2/Eager/HTMSim), the
// post-publish sequence (NOrec), or the global clock snapshot for
// direct-mode commits — with arrival order under the history mutex
// breaking ties (correct because the commit hook runs after publication,
// under the gate/mutex that serializes direct modes). A word's history is
// then a sequence of half-open validity intervals: version i holds over
// [key_i, key_{i+1}), and the pre-history baseline (first value any
// transaction observed) holds over (-inf, key_0).
//
// A transaction's reads are consistent — opaque — iff the intersection of
// their validity intervals is nonempty: some single point in commit order
// explains every value it saw. Checked for committed AND aborted
// transactions; an aborted transaction that acted on a torn snapshot is a
// bug even though its effects were discarded.
//
// Deliberate under-approximation: a read whose value appears nowhere in
// the word's history (insertion racing validation, values written by
// mixed-mode stores, truncated histories) is counted as "unverifiable"
// and treated as consistent. The checker reports only provable
// inconsistency, so clean runs stay clean without schedule luck; the
// negative tests prove detection by constructing a history that does
// contain the impossible pair.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_id.hpp"
#include "tmsan/internal.hpp"
#include "tmsan/tmsan.hpp"

namespace adtm::tmsan::detail {

namespace {

// Global commit order position: (primary, arrival).
using Key = std::pair<std::uint64_t, std::uint64_t>;
constexpr Key kNegInf{0, 0};
constexpr Key kPosInf{~std::uint64_t{0}, ~std::uint64_t{0}};

struct Interval {
  Key lo, hi;  // half-open [lo, hi)
};

struct Version {
  Key key;
  std::uint64_t value;
};

struct History {
  bool baseline_set = false;
  bool truncated = false;  // old versions dropped: baseline meaningless
  std::uint64_t baseline = 0;
  std::vector<Version> versions;  // sorted by key
};

// Cap per-word history; overflowing drops the oldest version and marks
// the word truncated (its early reads become unverifiable, never wrong).
constexpr std::size_t kMaxVersions = 512;

struct OpacityState {
  std::mutex mutex;
  std::unordered_map<const void*, History> history;
  std::uint64_t arrival = 0;
  std::atomic<std::uint64_t> unverifiable{0};
};

OpacityState& ostate() noexcept {
  static OpacityState* s = new OpacityState;
  return *s;
}

// Intersect two sorted disjoint interval lists.
std::vector<Interval> intersect(const std::vector<Interval>& a,
                                const std::vector<Interval>& b) {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Key lo = std::max(a[i].lo, b[j].lo);
    const Key hi = std::min(a[i].hi, b[j].hi);
    if (lo < hi) out.push_back({lo, hi});
    if (a[i].hi < b[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

// Validity intervals of value `v` in `h` (sorted, possibly empty). May
// claim the baseline slot for a first pre-history observation.
//
// `skip_arrival` hides versions committed by the validating transaction
// itself: its reads all happened before its commit, so its own committed
// values cannot explain them. Without this a transaction that reads a
// word's pre-history value and later overwrites the word with that same
// value (a split restoring a node's fanout count, say) would see its read
// mapped onto its own post-commit interval — a guaranteed-empty
// intersection with every pre-commit read. The word's history is walked
// as if the transaction's writes were absent: a hidden version's interval
// is absorbed by its predecessor.
std::vector<Interval> intervals_for(History& h, std::uint64_t v,
                                    std::uint64_t skip_arrival) {
  std::vector<Interval> out;
  const auto& vs = h.versions;
  const auto next_visible = [&](std::size_t i) {
    while (i < vs.size() && vs[i].key.second == skip_arrival) ++i;
    return i;
  };
  const std::size_t first = next_visible(0);
  if (h.baseline_set && h.baseline == v && first < vs.size()) {
    out.push_back({kNegInf, vs[first].key});
  }
  bool found_version = false;
  for (std::size_t i = first; i < vs.size(); i = next_visible(i + 1)) {
    if (vs[i].value != v) continue;
    found_version = true;
    const std::size_t j = next_visible(i + 1);
    const Key hi = j < vs.size() ? vs[j].key : kPosInf;
    if (vs[i].key < hi) out.push_back({vs[i].key, hi});
  }
  if (out.empty() && !found_version && !h.baseline_set && !h.truncated) {
    // First observation of this word's pre-history value: claim the
    // baseline. A later conflicting claim becomes unverifiable.
    h.baseline = v;
    h.baseline_set = true;
    out.push_back({kNegInf, first < vs.size() ? vs[first].key : kPosInf});
  }
  return out;
}

}  // namespace

std::uint64_t opacity_commit_writes(const std::vector<Access>& writes,
                                    std::uint64_t primary) noexcept {
  OpacityState& s = ostate();
  std::lock_guard<std::mutex> lk(s.mutex);
  const Key key{primary, ++s.arrival};
  // Deduplicate by address keeping the last (final) value: intermediate
  // values of a word rewritten inside one transaction are never visible
  // to a committed snapshot.
  for (std::size_t i = writes.size(); i > 0; --i) {
    const Access& w = writes[i - 1];
    bool seen_later = false;
    for (std::size_t j = i; j < writes.size(); ++j) {
      if (writes[j].addr == w.addr) {
        seen_later = true;
        break;
      }
    }
    if (seen_later) continue;
    History& h = s.history[w.addr];
    // Insert in key order; concurrent committers can reach the mutex out
    // of primary-key order, so append is not always correct.
    auto pos = h.versions.end();
    while (pos != h.versions.begin() && key < std::prev(pos)->key) --pos;
    h.versions.insert(pos, Version{key, w.value});
    if (h.versions.size() > kMaxVersions) {
      h.versions.erase(h.versions.begin());
      h.truncated = true;
      h.baseline_set = false;
    }
  }
  return key.second;
}

void opacity_on_alloc(const void* base, std::size_t bytes) noexcept {
  // Fresh transactional memory has no past: any history filed under these
  // addresses belongs to a previous (freed) object. Left in place it would
  // constrain reads of the new object's raw-initialized values to the dead
  // object's intervals — a false inconsistency whenever the values alias.
  OpacityState& s = ostate();
  std::lock_guard<std::mutex> lk(s.mutex);
  if (s.history.empty()) return;
  auto p = reinterpret_cast<std::uintptr_t>(base) & ~std::uintptr_t{7};
  const auto end = reinterpret_cast<std::uintptr_t>(base) + bytes;
  for (; p < end; p += 8) {
    s.history.erase(reinterpret_cast<const void*>(p));
  }
}

void opacity_validate_reads(const std::vector<Access>& reads,
                            const char* outcome,
                            std::uint64_t self_arrival) noexcept {
  OpacityState& s = ostate();
  std::lock_guard<std::mutex> lk(s.mutex);
  std::vector<Interval> feasible{{kNegInf, kPosInf}};
  for (const Access& r : reads) {
    auto it = s.history.find(r.addr);
    if (it == s.history.end()) {
      // Never written by a committed transaction: claim the baseline so
      // a later conflicting pre-history claim is at least counted.
      History& h = s.history[r.addr];
      h.baseline = r.value;
      h.baseline_set = true;
      continue;  // unconstrained
    }
    History& h = it->second;
    if (h.versions.empty()) {
      if (h.baseline_set && h.baseline != r.value) {
        s.unverifiable.fetch_add(1, std::memory_order_relaxed);
      } else if (!h.baseline_set) {
        h.baseline = r.value;
        h.baseline_set = true;
      }
      continue;  // unconstrained
    }
    const std::vector<Interval> ivs = intervals_for(h, r.value, self_arrival);
    if (ivs.empty()) {
      s.unverifiable.fetch_add(1, std::memory_order_relaxed);
      continue;  // cannot place this read: do not constrain
    }
    std::vector<Interval> next = intersect(feasible, ivs);
    if (next.empty()) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "%p=%llu", r.addr,
                    static_cast<unsigned long long>(r.value));
      record_violation(
          ViolationKind::OpacityViolation, r.addr, thread_id(), 0,
          std::string("transaction (") + outcome +
              ") observed an inconsistent snapshot: no point in commit "
              "order explains all its reads (first impossible read: " +
              buf + ")",
          "", "");
      return;
    }
    feasible = std::move(next);
  }
}

void opacity_reset() noexcept {
  OpacityState& s = ostate();
  std::lock_guard<std::mutex> lk(s.mutex);
  s.history.clear();
  s.arrival = 0;
  s.unverifiable.store(0, std::memory_order_relaxed);
}

}  // namespace adtm::tmsan::detail

namespace adtm::tmsan {

std::uint64_t opacity_unverifiable_reads() {
  return detail::ostate().unverifiable.load(std::memory_order_relaxed);
}

}  // namespace adtm::tmsan
