// tmsan internals shared between the checker translation units.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tmsan/tmsan.hpp"

namespace adtm::tmsan::detail {

// Captured call stack; resolved to symbols only when a report is filed.
struct Stack {
  static constexpr int kMaxFrames = 16;
  void* frames[kMaxFrames];
  int depth = 0;
};

void capture_stack(Stack& out) noexcept;
std::string format_stack(const Stack& s);

// File one violation (thread-safe; bounded storage, unbounded counts).
void record_violation(ViolationKind kind, const void* addr,
                      std::uint32_t tid_a, std::uint32_t tid_b,
                      std::string detail_text, std::string stack_a,
                      std::string stack_b) noexcept;

// --- opacity checker (opacity.cpp) -----------------------------------------

// One value-level access observed by the current transaction.
struct Access {
  const void* addr;
  std::uint64_t value;
};

// Append a committed writer's deduplicated write set to the global
// history. `primary` orders commits (see on_tx_commit); arrival order
// under the history mutex breaks ties. Returns the arrival tie-breaker
// assigned to this commit, for self-exclusion during read validation.
std::uint64_t opacity_commit_writes(const std::vector<Access>& writes,
                                    std::uint64_t primary) noexcept;

// Drop any history filed under words of [base, base + bytes): the range
// was handed out by a transactional allocation, so prior versions belong
// to a freed object and must not constrain the new one's reads.
void opacity_on_alloc(const void* base, std::size_t bytes) noexcept;

// Check that some single point in commit order explains every read;
// reports OpacityViolation otherwise. `outcome` names the transaction
// fate for the report ("commit" / "abort"). `self_arrival` (nonzero for
// a committed writer) hides that commit's own versions: the reads all
// predate them.
void opacity_validate_reads(const std::vector<Access>& reads,
                            const char* outcome,
                            std::uint64_t self_arrival = 0) noexcept;

void opacity_reset() noexcept;

}  // namespace adtm::tmsan::detail
