#include "wal/crc32.hpp"

#include <array>

namespace adtm::wal {
namespace {

// Reflected table for polynomial 0xEDB88320 (bit-reversed 0x04C11DB7).
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const void* data, std::size_t len) noexcept {
  return crc32_update(0, data, len);
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  return crc32(data.data(), data.size());
}

std::uint32_t crc32(const std::string& data) noexcept {
  return crc32(data.data(), data.size());
}

}  // namespace adtm::wal
