// Write-ahead log with group commit via atomic deferral.
//
// Generalizes the paper's §5.2 durable-output pattern (Listing 4) into a
// production-shaped facility: transactions append records and obtain an
// LSN; durability (write + fsync) happens in a deferred operation after
// commit, and the log's durable horizon is a transactional variable, so
// any transaction can order itself after a record's persistence with
// plain retry-based waiting:
//
//   const wal::Lsn lsn = log.append(tx, payload);   // inside a tx
//   ...
//   stm::atomic([&](stm::Tx& tx) {
//     log.wait_durable(tx, lsn);      // §5.2's flag pattern, generalized
//     ...act on the fact the record is on disk...
//   });
//
// Group commit: concurrent appends stage their payloads post-commit; one
// thread's deferred operation drains the whole staged prefix with a
// single write+fsync (combining), so N concurrent appends cost far fewer
// than N fsyncs. Every record carries a CRC-32 and length header;
// recovery scans the log, verifies checksums, and stops cleanly at a torn
// or corrupt tail.
//
// Failure model (see DESIGN.md "Failure model of deferred operations"):
// the group-commit write+fsync runs under a FailurePolicy — transient
// errors (EINTR, EAGAIN, ENOSPC, EBUSY) are retried with exponential
// backoff up to a bound, resuming mid-buffer so no byte is written twice.
// A permanent error (or an exhausted retry budget) poisons the log: the
// failed() terminal state is transactional, so blocked wait_durable
// subscribers wake and raise instead of hanging, and every subsequent
// append/wait_durable/flush raises std::runtime_error with the original
// failure reason.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "defer/atomic_defer.hpp"
#include "defer/failure_policy.hpp"
#include "health/breaker.hpp"
#include "io/posix_file.hpp"
#include "stm/tvar.hpp"

namespace adtm::wal {

using Lsn = std::uint64_t;  // 1-based; 0 means "nothing"

class WriteAheadLog {
 public:
  // Opens (creating if needed) and appends to `path`.
  explicit WriteAheadLog(std::string path);

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Transactionally reserve the next LSN for `payload` and schedule its
  // durable write as a deferred operation. The record is on disk no
  // earlier than the transaction's commit and no later than any
  // wait_durable(lsn) completion. Raises if the log is poisoned.
  Lsn append(stm::Tx& tx, std::string payload);

  // Convenience: one-record transaction.
  Lsn append(std::string payload);

  // True once every record with LSN <= lsn is on disk (fsync'd).
  bool is_durable(stm::Tx& tx, Lsn lsn) const;

  // Block (transactional retry) until is_durable(lsn). Raises — instead
  // of blocking forever — if the log is (or becomes) poisoned.
  void wait_durable(stm::Tx& tx, Lsn lsn) const;

  // Non-transactional convenience: wait for all appends issued so far.
  void flush();

  Lsn durable_lsn_direct() const { return durable_lsn_.load_direct(); }
  Lsn next_lsn_direct() const { return next_lsn_.load_direct() - 1; }

  // Number of fsync() calls issued (group-commit effectiveness metric).
  std::uint64_t fsync_count() const noexcept {
    return fsyncs_.load(std::memory_order_relaxed);
  }

  // --- failure handling ------------------------------------------------

  // Terminal state: true once a group-commit write/fsync failed
  // permanently. No further record can become durable; append, flush and
  // wait_durable raise. Recovery path: reopen a fresh WriteAheadLog on
  // the same file (the constructor truncates the torn tail).
  bool failed() const noexcept { return failed_.load_direct(); }

  // Human-readable reason for the poisoning ("" while healthy).
  std::string failure_reason() const;

  // Replace the retry policy for the group-commit write+fsync path. The
  // default retries transient errors 8 times with exponential backoff.
  // The policy's escalate handler is not used here — escalation always
  // poisons the log (an escaped group-commit failure cannot be isolated
  // to one record).
  void set_failure_policy(FailurePolicy policy);

  // Per-log circuit breaker composed with the group-commit FailurePolicy
  // (created iff ADTM_BREAKER_THRESHOLD > 0). While open, the next flush
  // escalates — and poisons — immediately instead of burning a retry
  // budget against a dying disk. nullptr when breakers are disabled.
  health::CircuitBreaker* breaker() noexcept { return breaker_.get(); }

  // --- adaptive group-commit window ------------------------------------

  // Gather window cap in microseconds (ADTM_WAL_GROUP_WINDOW_US; 0 =
  // flush immediately, the default). When reserved-but-unstaged records
  // exist, the flush-lock holder waits up to min(cap, backlog-scaled)
  // for them to stage so one fsync covers more records under load.
  void set_group_window_us(std::uint64_t us) noexcept {
    group_window_us_ = us;
  }
  std::uint64_t group_window_us() const noexcept { return group_window_us_; }

  // Drains that entered the gather window (batch-adaptivity metric).
  std::uint64_t window_gathers() const noexcept {
    return window_gathers_.load(std::memory_order_relaxed);
  }

  // --- recovery --------------------------------------------------------

  struct RecoveryResult {
    std::vector<std::string> records;  // valid prefix, in LSN order
    std::uint64_t valid_bytes = 0;     // offset of the first bad byte
    bool clean = true;                 // false if a torn/corrupt tail was cut
  };

  // Scan a log file, verify record checksums, and return the valid
  // prefix. Never throws on torn/corrupt tails — that is the normal
  // crash case; throws std::system_error only on I/O failure.
  static RecoveryResult recover(const std::string& path);

  // Recover and truncate the file to the valid prefix. The truncation is
  // made durable before returning (file fsync + containing-directory
  // fsync): without that barrier the cut itself can be lost on a second
  // crash, and a resurrected garbage tail under newly appended records
  // severs them from the valid prefix (found by tools/crashmat; see
  // DESIGN.md "Crash-recovery contract").
  static RecoveryResult recover_and_truncate(const std::string& path);

  // Harness-only: restore the pre-fix behavior of recover_and_truncate
  // (no durability barrier after the truncate) so the crashmat dirsync
  // regression demo can show the bug being caught. Never set in
  // production code.
  static void testing_skip_truncate_sync(bool skip) noexcept;

 private:
  void stage_and_flush(Lsn lsn, std::string payload);

  // Drain the contiguous staged prefix with one write+fsync per batch.
  // Caller must hold flush_mutex_.
  void stage_and_flush_locked_drain();

  // Wait (bounded by the gather window, scaled to backlog depth) for
  // reserved-but-unstaged records to stage. Caller must hold flush_mutex_.
  void gather_window_locked();

  // Enter the terminal failure state and wake retry-blocked subscribers.
  void poison(const std::string& reason) noexcept;

  [[noreturn]] void throw_failed() const;

  std::string path_;
  io::PosixFile file_;

  stm::tvar<Lsn> next_lsn_{1};
  stm::tvar<Lsn> durable_lsn_{0};

  // Transactional so waiters blocked in retry wake when the log poisons.
  stm::tvar<bool> failed_{false};
  mutable std::mutex error_mutex_;
  std::string failure_reason_;  // guarded by error_mutex_

  // Post-commit staging area: records waiting for the group flush.
  // Ordered by LSN; the flusher writes the contiguous prefix.
  std::mutex staging_mutex_;
  std::map<Lsn, std::string> staged_;
  Lsn next_to_write_ = 1;  // guarded by flush_mutex_
  std::mutex flush_mutex_;
  FailurePolicy policy_{.max_retries = 8,
                        .backoff_min_spins = 64,
                        .backoff_max_spins = 64 * 1024,
                        .retryable = nullptr,
                        .escalate = nullptr};  // guarded by flush_mutex_
  std::unique_ptr<health::CircuitBreaker> breaker_;  // set once, in ctor

  std::atomic<std::uint64_t> fsyncs_{0};
  std::uint64_t group_window_us_ = 0;
  std::atomic<std::uint64_t> window_gathers_{0};
};

}  // namespace adtm::wal
