#include "wal/wal.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>

#include "common/backoff.hpp"
#include "common/runtime_config.hpp"
#include "common/timing.hpp"
#include "faultsim/crashpoint.hpp"
#include "obs/trace.hpp"
#include "stm/api.hpp"
#include "wal/crc32.hpp"

namespace adtm::wal {
namespace {

// Crash-torture sites (tools/crashmat enumerates these; see DESIGN.md
// "Crash-recovery contract"). Registered at load so the harness can list
// them without running a workload first.
const faultsim::CrashPointId kCpCommitWrite =
    faultsim::register_crash_point("wal.commit.write", "wal", true);
const faultsim::CrashPointId kCpCommitPreFsync =
    faultsim::register_crash_point("wal.commit.pre_fsync", "wal", false);
const faultsim::CrashPointId kCpCommitPostFsync =
    faultsim::register_crash_point("wal.commit.post_fsync", "wal", false);
const faultsim::CrashPointId kCpOpenPostCreate =
    faultsim::register_crash_point("wal.open.post_create", "wal", false);
const faultsim::CrashPointId kCpRecoverPostTruncate =
    faultsim::register_crash_point("wal.recover.post_truncate", "wal", false);
const faultsim::CrashPointId kCpRecoverPostSync =
    faultsim::register_crash_point("wal.recover.post_sync", "wal", false);

// Pre-fix escape hatch for the crashmat dirsync regression demo: skips the
// truncation durability barrier in recover_and_truncate, restoring the
// bug this harness was built to catch. Never set outside tests/tools.
std::atomic<bool> g_skip_truncate_sync{false};

// On-disk record: u32 payload length (LE), u32 CRC-32 of the payload
// (LE), payload bytes.
constexpr std::size_t kHeaderBytes = 8;
constexpr std::size_t kMaxRecordBytes = std::size_t{1} << 30;

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path) : path_(std::move(path)) {
  // Crash recovery on open: cut any torn tail, then resume numbering
  // after the valid prefix.
  const RecoveryResult recovered = recover_and_truncate(path_);
  file_ = io::PosixFile::open_append(path_);
  // A newly created log is not crash-safe until its directory entry is:
  // without this, the first group commit can fsync data into a file a
  // crash then makes unreachable.
  faultsim::crash_point(kCpOpenPostCreate);
  io::fsync_parent_dir(path_);
  const Lsn base = recovered.records.size();
  next_lsn_.store_direct(base + 1);
  durable_lsn_.store_direct(base);
  next_to_write_ = base + 1;
  const RuntimeConfig& cfg = runtime_config();
  group_window_us_ = cfg.wal_group_window_us;
  if (cfg.breaker_threshold != 0) {
    health::BreakerOptions bo;  // thresholds from runtime_config
    bo.name = "wal:" + path_;
    breaker_ = std::make_unique<health::CircuitBreaker>(std::move(bo));
    policy_.breaker = breaker_.get();
  }
}

Lsn WriteAheadLog::append(stm::Tx& tx, std::string payload) {
  // Fail fast on a poisoned log — and transactionally, so a transaction
  // racing with the poisoning either sees the failure or conflicts.
  if (failed_.get(tx)) throw_failed();
  const Lsn lsn = next_lsn_.get(tx);
  next_lsn_.set(tx, lsn + 1);
  // The paper's "pass nil" deferral: no lock is needed — ordering comes
  // from the LSNs and durability from the staged group flush.
  atomic_defer(tx, [this, lsn, p = std::move(payload)]() mutable {
    stage_and_flush(lsn, std::move(p));
  });
  return lsn;
}

Lsn WriteAheadLog::append(std::string payload) {
  return stm::atomic([&](stm::Tx& tx) { return append(tx, std::move(payload)); });
}

bool WriteAheadLog::is_durable(stm::Tx& tx, Lsn lsn) const {
  return durable_lsn_.get(tx) >= lsn;
}

void WriteAheadLog::wait_durable(stm::Tx& tx, Lsn lsn) const {
  // The failed_ read joins the retry watch set, so poisoning wakes every
  // blocked waiter and this raises instead of hanging forever.
  if (failed_.get(tx)) throw_failed();
  if (!is_durable(tx, lsn)) stm::retry(tx);
}

void WriteAheadLog::flush() {
  // Committed horizon (a transaction: a speculative in-place reservation
  // must not inflate the target).
  const Lsn target =
      stm::atomic([&](stm::Tx& tx) { return next_lsn_.get(tx); }) - 1;
  Backoff bo;
  while (durable_lsn_.load_direct() < target) {
    if (failed_.load_direct()) throw_failed();
    if (flush_mutex_.try_lock()) {
      // Drain whatever is staged (the helper expects the lock held).
      try {
        stage_and_flush_locked_drain();
      } catch (...) {
        flush_mutex_.unlock();
        throw;
      }
      flush_mutex_.unlock();
    }
    if (durable_lsn_.load_direct() >= target) return;
    if (failed_.load_direct()) throw_failed();
    bo.pause();  // an epilogue on another thread is about to stage/flush
  }
}

std::string WriteAheadLog::failure_reason() const {
  std::lock_guard<std::mutex> lk(error_mutex_);
  return failure_reason_;
}

void WriteAheadLog::set_failure_policy(FailurePolicy policy) {
  std::lock_guard<std::mutex> lk(flush_mutex_);
  policy_ = std::move(policy);
  // Keep the per-log breaker composed unless the caller supplied their
  // own; replacing the retry budget should not silently detach overload
  // protection.
  if (policy_.breaker == nullptr) policy_.breaker = breaker_.get();
}

void WriteAheadLog::poison(const std::string& reason) noexcept {
  try {
    {
      std::lock_guard<std::mutex> lk(error_mutex_);
      if (failure_reason_.empty()) failure_reason_ = reason;
    }
    // Transactional store: retry-blocked waiters watch failed_ and wake.
    stm::atomic([&](stm::Tx& tx) { failed_.set(tx, true); });
  } catch (...) {
    // Last resort — waiters may then only observe failure via the direct
    // checks in flush()/stage_and_flush(). Raw store is deliberate: the
    // transactional store above already failed.
    failed_.store_direct(true);  // txsafety:allow(raw-tvar-access)
  }
}

void WriteAheadLog::throw_failed() const {
  std::string reason;
  {
    // Failure path only: the transaction dies by the throw below, so a
    // short uncontended mutex hold cannot wedge a commit.
    std::lock_guard<std::mutex> lk(error_mutex_);  // txsafety:allow(irrevocable-call-in-tx)
    reason = failure_reason_;
  }
  throw std::runtime_error("WriteAheadLog: log poisoned by I/O failure: " +
                           (reason.empty() ? "unknown" : reason));
}

void WriteAheadLog::stage_and_flush(Lsn lsn, std::string payload) {
  {
    std::lock_guard<std::mutex> lk(staging_mutex_);
    staged_.emplace(lsn, std::move(payload));
  }
  // Group commit: whoever holds the flush lock drains the whole staged
  // prefix with one write+fsync. Everyone leaves only once their own
  // record is durable — that is the atomic-deferral contract: the
  // deferred operation *is* the durable write. On a poisoned log the
  // contract is unmeetable: raise within the bounded-retry budget
  // rather than spin forever.
  Backoff bo;
  for (;;) {
    if (durable_lsn_.load_direct() >= lsn) return;
    if (failed_.load_direct()) throw_failed();
    if (flush_mutex_.try_lock()) {
      try {
        stage_and_flush_locked_drain();
      } catch (...) {
        flush_mutex_.unlock();
        throw;
      }
      flush_mutex_.unlock();
    } else {
      bo.pause();  // another thread is flushing; it may cover us
    }
  }
}

void WriteAheadLog::gather_window_locked() {
  if (group_window_us_ == 0) return;
  // Reserved-but-unstaged records are LSNs already handed out whose
  // deferred stage has not arrived yet (their committers are between
  // commit and epilogue). Waiting a beat folds them into this fsync
  // instead of the next one. The wait scales with backlog depth — an
  // idle log never waits, a convoying one amortizes harder — and is
  // capped by the window knob either way. next_lsn_'s direct load may
  // see a speculative reservation under in-place algorithms; for a
  // gather heuristic an over-estimate only means waiting out the cap.
  const Lsn durable = durable_lsn_.load_direct();
  const Lsn reserved = next_lsn_.load_direct() - 1;
  if (reserved <= durable) return;
  const std::uint64_t backlog = reserved - durable;
  constexpr std::uint64_t kPerRecordUs = 2;
  const std::uint64_t window_ns =
      std::min(group_window_us_, backlog * kPerRecordUs) * 1000;
  const std::uint64_t deadline = now_ns() + window_ns;
  window_gathers_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(staging_mutex_);
      // Every outstanding record is staged: flush now, nothing to gain.
      if (next_to_write_ + staged_.size() > reserved) return;
    }
    if (failed_.load_direct()) return;
    if (now_ns() >= deadline) return;
    std::this_thread::yield();
  }
}

void WriteAheadLog::stage_and_flush_locked_drain() {
  gather_window_locked();
  for (;;) {
    if (failed_.load_direct()) return;  // poisoned: callers raise
    // Collect the contiguous LSN prefix. A gap means an earlier
    // committer has not staged yet; its own deferred op will flush it
    // (and anything after) shortly.
    std::string buffer;
    Lsn last = 0;
    std::uint64_t records = 0;
    {
      std::lock_guard<std::mutex> lk(staging_mutex_);
      for (;;) {
        const auto it = staged_.find(next_to_write_);
        if (it == staged_.end()) break;
        const std::string& payload = it->second;
        put_u32(buffer, static_cast<std::uint32_t>(payload.size()));
        put_u32(buffer, crc32(payload));
        buffer += payload;
        last = next_to_write_;
        staged_.erase(it);
        ++next_to_write_;
        ++records;
      }
    }
    if (buffer.empty()) return;
    // Bounded retry on transient failures. `done` persists across retry
    // attempts, so a retry resumes exactly where the failed attempt
    // stopped — re-writing the prefix would corrupt the log, which is
    // worse than tearing it.
    std::size_t done = 0;
    try {
      run_with_policy(policy_, [&] {
        faultsim::crash_point_write(kCpCommitWrite, file_.fd(),
                                    buffer.data() + done,
                                    buffer.size() - done);
        while (done < buffer.size()) {
          done += file_.write_some(buffer.data() + done, buffer.size() - done);
        }
        faultsim::crash_point(kCpCommitPreFsync);
        file_.sync();
      });
    } catch (const std::exception& e) {
      poison(e.what());
      throw;
    } catch (...) {
      poison("unknown error in group commit");
      throw;
    }
    faultsim::crash_point(kCpCommitPostFsync);
    const std::uint64_t fsyncs =
        fsyncs_.fetch_add(1, std::memory_order_relaxed) + 1;
    obs::emit(obs::EventType::WalFlush, obs::AbortCause::None, obs::kNoAlgo,
              records, static_cast<std::uint32_t>(fsyncs));
    // Publish the new durable horizon transactionally so wait_durable
    // retry-waiters wake.
    stm::atomic([&](stm::Tx& tx) {
      if (durable_lsn_.get(tx) < last) durable_lsn_.set(tx, last);
    });
  }
}

WriteAheadLog::RecoveryResult WriteAheadLog::recover(
    const std::string& path) {
  RecoveryResult result;
  std::string data;
  try {
    data = io::read_file(path);
  } catch (const std::system_error&) {
    return result;  // no log yet: empty, clean
  }

  std::size_t off = 0;
  while (off + kHeaderBytes <= data.size()) {
    const std::uint32_t len = get_u32(data.data() + off);
    const std::uint32_t crc = get_u32(data.data() + off + 4);
    if (len > kMaxRecordBytes || off + kHeaderBytes + len > data.size()) {
      result.clean = false;  // torn tail
      break;
    }
    const char* payload = data.data() + off + kHeaderBytes;
    if (crc32(payload, len) != crc) {
      result.clean = false;  // corrupt record
      break;
    }
    result.records.emplace_back(payload, len);
    off += kHeaderBytes + len;
  }
  if (off != data.size() && result.clean) {
    result.clean = false;  // trailing garbage shorter than a header
  }
  result.valid_bytes = off;
  return result;
}

WriteAheadLog::RecoveryResult WriteAheadLog::recover_and_truncate(
    const std::string& path) {
  RecoveryResult result = recover(path);
  if (!result.clean) {
    // Under crash torture, stash the tail being cut: until the truncation
    // is durable (file + directory fsync below), a crash resurfaces it —
    // and a resurrected garbage tail sitting *under* records appended
    // after this recovery severs them from the valid prefix, losing
    // acked-durable data on the next recovery.
    std::uint64_t stash = 0;
    if (faultsim::crash_points_armed()) {
      const std::string data = io::read_file(path);
      if (data.size() > result.valid_bytes) {
        stash = faultsim::stash_undo_write(path, result.valid_bytes,
                                           data.substr(result.valid_bytes));
      }
    }
    if (::truncate(path.c_str(), static_cast<off_t>(result.valid_bytes)) !=
        0) {
      throw std::system_error(errno, std::generic_category(),
                              "wal truncate");
    }
    faultsim::crash_point(kCpRecoverPostTruncate);
    if (!g_skip_truncate_sync.load(std::memory_order_relaxed)) {
      // Make the truncation itself durable before reporting recovery
      // complete: the file's size metadata, then its directory entry.
      io::fsync_path(path);
      io::fsync_parent_dir(path);
      faultsim::commit_undo_stash(stash);
      faultsim::crash_point(kCpRecoverPostSync);
    }
  }
  return result;
}

void WriteAheadLog::testing_skip_truncate_sync(bool skip) noexcept {
  g_skip_truncate_sync.store(skip, std::memory_order_relaxed);
}

}  // namespace adtm::wal
