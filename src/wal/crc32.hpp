// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant), from scratch.
// Used by the write-ahead log to detect torn and corrupted records.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace adtm::wal {

// One-shot CRC of a buffer.
std::uint32_t crc32(const void* data, std::size_t len) noexcept;
std::uint32_t crc32(std::span<const std::byte> data) noexcept;
std::uint32_t crc32(const std::string& data) noexcept;

// Incremental: feed `crc` from a previous call (start with 0).
std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t len) noexcept;

}  // namespace adtm::wal
