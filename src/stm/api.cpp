#include "stm/api.hpp"

#include <cstdlib>
#include <exception>
#include <stdexcept>

#include "common/backoff.hpp"
#include "common/env.hpp"
#include "common/panic.hpp"
#include "common/runtime_config.hpp"
#include "common/stats.hpp"
#include "common/timing.hpp"
#include "liveness/activity.hpp"
#include "liveness/contention.hpp"
#include "liveness/wait_graph.hpp"
#include "obs/trace.hpp"
#include "stm/adaptive.hpp"
#include "stm/backend.hpp"
#include "stm/control.hpp"
#include "stm/orec.hpp"
#include "stm/registry.hpp"
#include "tmsan/tmsan.hpp"

namespace adtm::stm {

// The built-ins register in enum order, so Backend::obs_index equals the
// enum value and the obs default label table stays aligned; pin the
// layout both rely on.
static_assert(static_cast<int>(Algo::TL2) == 0 &&
                  static_cast<int>(Algo::NOrec) == 4,
              "update BackendRegistry's built-in registration order "
              "(src/stm/backend.cpp) and the default label table in "
              "src/obs/trace.cpp");

const char* algo_name(Algo a) noexcept {
  switch (a) {
    case Algo::TL2: return "TL2";
    case Algo::Eager: return "Eager";
    case Algo::CGL: return "CGL";
    case Algo::HTMSim: return "HTMSim";
    case Algo::NOrec: return "NOrec";
  }
  return "?";
}

namespace detail {

Orec g_orecs[kOrecCount];
CacheAligned<std::atomic<std::uint64_t>> g_clock{1};

RuntimeState& runtime() noexcept {
  static RuntimeState state;
  // Wake CGL retry waiters whenever a thread exits: an owner that dies
  // while a waiter is parked would otherwise only be noticed at a deadline.
  // The empty critical section is the classic lost-wakeup fence — the
  // waiter re-checks its predicate under cgl_mutex, so notifying after
  // passing through the mutex guarantees it observes the exit.
  static const bool exit_hook = [] {
    register_thread_exit_hook([](std::uint32_t) {
      RuntimeState& rt = runtime();
      { std::lock_guard<std::mutex> lk(rt.cgl_mutex); }
      rt.cgl_cv.notify_all();
    });
    return true;
  }();
  (void)exit_hook;
  return state;
}

// All privileged access to Tx internals funnels through this friend.
struct Driver {
  static Tx& tls() noexcept {
    thread_local Tx tx;
    return tx;
  }

  static bool active(const Tx& tx) noexcept { return tx.in_tx_; }

  // Obs label index of the backend this transaction is running (begin()
  // may have re-resolved it after a switch at the serial gate).
  static std::uint8_t obs_idx(const Tx& tx) noexcept {
    return tx.backend_ != nullptr ? tx.backend_->obs_index : obs::kNoAlgo;
  }
  static const Backend* backend(const Tx& tx) noexcept { return tx.backend_; }

  static Tx::NestedCheckpoint nested_checkpoint(const Tx& tx) {
    return tx.nested_checkpoint();
  }
  static void nested_abort(Tx& tx, const Tx::NestedCheckpoint& cp) noexcept {
    tx.nested_abort(cp);
  }

  // Release resources of a failed direct-mode attempt (retry-before-write
  // or cancel-before-write). Direct modes have no speculative state.
  static void discard_direct_attempt(Tx& tx) noexcept {
    for (void* p : tx.allocs_) std::free(p);
    tx.allocs_.clear();
    tx.frees_.clear();
    tx.epilogues_.clear();
    tmsan::on_tx_abort();
    tx.in_tx_ = false;
    for (auto it = tx.abort_hooks_.rbegin(); it != tx.abort_hooks_.rend();
         ++it) {
      (*it)();
    }
    tx.abort_hooks_.clear();
  }

  // Run commit epilogues (deferred operations) and then process deferred
  // frees — the tail of the paper's TxEnd (Listing 1). The lists are moved
  // out first so epilogues may start new transactions.
  static void run_epilogues(Tx& tx) {
    auto epilogues = std::move(tx.epilogues_);
    tx.epilogues_.clear();
    auto frees = std::move(tx.frees_);
    tx.frees_.clear();
    tx.allocs_.clear();  // committed: ownership passed to the program
    tx.abort_hooks_.clear();  // committed: abort bookkeeping is moot
    // Every epilogue runs even if an earlier one throws: a later epilogue
    // may hold TxLocks (atomic_defer) that must be released, or its
    // subscribers block forever. The first exception wins; frees are
    // processed regardless.
    std::exception_ptr first_error;
    for (auto& fn : epilogues) {
      // Visible to the watchdog: a deferred op that stalls past the budget
      // is reported with this state and its start time. A reap request
      // targets one op, so starting the next op discards any stale flag.
      liveness::set_state(liveness::ThreadState::DeferredOp, now_ns());
      liveness::clear_reap();
      const bool traced = obs::enabled();
      const std::uint64_t t_epi = traced ? now_ns() : 0;
      if (traced) obs::emit(obs::EventType::EpilogueBegin);
      try {
        fn();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
      if (traced) {
        obs::emit(obs::EventType::EpilogueEnd, obs::AbortCause::None,
                  obs::kNoAlgo, now_ns() - t_epi);
      }
    }
    for (void* p : frees) std::free(p);
    if (first_error) std::rethrow_exception(first_error);
  }

  // True once a parked retry waiter should re-execute: a watched location
  // may have changed, a serial commit happened (those do not touch orecs;
  // the gate check avoids sitting out a long serial section), or a thread
  // exited (state it owned — a TxLock, a condition watched through
  // non-transactional data — may be orphaned; re-run the body so its
  // owner-liveness checks fire). For NOrec any committed change bumps the
  // sequence lock, so watching it covers every value in the read set
  // without touching user memory (which might be reclaimed while we
  // sleep). Spurious wake-ups just re-run the body and re-wait.
  static bool retry_wake_ready(const Tx& tx) {
    for (const auto& e : tx.retry_watch_) {
      if (e.orec->load(std::memory_order_acquire) != e.seen) return true;
    }
    if (!tx.retry_value_watch_.empty() &&
        runtime().norec_seq.load(std::memory_order_acquire) !=
            tx.retry_norec_snap_) {
      return true;
    }
    if (runtime().serial_commits.load(std::memory_order_acquire) !=
        tx.retry_serial_snap_) {
      return true;
    }
    if (g_serial_gate.busy()) return true;
    return thread_exit_count() != tx.retry_exit_snap_;
  }

  // Block until a location in the retry watch set may have changed, a
  // thread exits (owner-death checks must re-run), or — with a nonzero
  // deadline — the deadline passes, which raises RetryTimeout.
  static void wait_for_change(Tx& tx, std::uint64_t deadline_ns) {
    if (tx.retry_watch_.empty() && tx.retry_value_watch_.empty()) {
      throw std::logic_error(
          "stm::retry(): transaction has an empty read set; "
          "nothing can wake it");
    }
    // The transaction is rolled back here, so every in-attempt lock
    // acquisition has been revoked: a parked waiter pins only committed
    // holds, all of which are counted — the transactional acquire path
    // cannot create an untracked hold-and-wait edge (the cycle-freedom
    // argument for pure transactional locking).
    ADTM_INVARIANT(liveness::pinned_holds() == locker_depth(),
                   "parked with untracked cross-transaction lock holds");
    liveness::set_state(liveness::ThreadState::RetryWait, now_ns());
    const bool traced = obs::enabled();
    const std::uint64_t t_park = traced ? now_ns() : 0;
    if (traced) {
      obs::emit(obs::EventType::RetryPark, obs::AbortCause::None,
                obs_idx(tx));
    }
    Backoff bo;
    for (;;) {
      if (retry_wake_ready(tx)) {
        if (traced) {
          obs::emit(obs::EventType::RetryWake, obs::AbortCause::None,
                    obs_idx(tx), now_ns() - t_park, 0);
        }
        return;
      }
      if (deadline_ns != 0 && now_ns() >= deadline_ns) {
        stats().add(Counter::RetryTimeouts);
        if (traced) {
          obs::emit(obs::EventType::RetryWake, obs::AbortCause::None,
                    obs_idx(tx), now_ns() - t_park, 1);
        }
        obs::emit(obs::EventType::TxAbort, obs::AbortCause::Timeout,
                  obs_idx(tx), 0, tx.attempt_);
        throw RetryTimeout("stm::retry deadline expired");
      }
      // A waiter with a checkable wait edge keeps scanning for wait
      // cycles while parked: the block-site scan can race with other
      // members that published but had not parked yet, and a cycle that
      // forms is stable precisely once everyone is parked — someone's
      // poll then sees it and raises DeadlockError here. Lock edges are
      // checkable only while committed holds are pinned; condvar edges
      // always are (notification duty is committed state).
      if (liveness::wait_edge_checkable()) {
        try {
          liveness::deadlock_check();
        } catch (liveness::DeadlockError&) {
          obs::emit(obs::EventType::TxAbort, obs::AbortCause::Deadlock,
                    obs_idx(tx), 0, tx.attempt_);
          throw;
        }
      }
      bo.pause();
    }
  }

  static void run_serial(Tx& tx, FunctionRef<void(Tx&)> body,
                         const Backend* b) {
    Backoff retry_bo;
    for (;;) {
      acquire_serial_gate();
      tx.begin(b, Tx::Mode::Serial, tx.attempt_ + 1);
      const bool traced = obs::enabled();
      const std::uint64_t t_attempt = traced ? now_ns() : 0;
      if (traced) {
        obs::emit(obs::EventType::SerialEnter, obs::AbortCause::None,
                  b->obs_index, 0, tx.attempt_);
      }
      try {
        body(tx);
      } catch (RetryRequest& rr) {
        if (tx.wrote_direct_) {
          discard_direct_attempt(tx);
          release_serial_gate();
          throw std::logic_error(
              "stm::retry() after a write in serial-irrevocable mode "
              "(direct-mode writes cannot be rolled back)");
        }
        discard_direct_attempt(tx);
        release_serial_gate();
        stats().add(Counter::TxRetry);
        if (rr.deadline_ns != 0 && now_ns() >= rr.deadline_ns) {
          stats().add(Counter::RetryTimeouts);
          obs::emit(obs::EventType::TxAbort, obs::AbortCause::Timeout,
                    b->obs_index, 0, tx.attempt_);
          throw RetryTimeout("stm::retry deadline expired (serial mode)");
        }
        // No read set to watch in direct mode: back off and re-execute.
        // The thread is still a parked waiter between executions — keep
        // its state honest for the watchdog and poll for wait cycles
        // (a serial waiter on a TxCondVar participates in cv-only cycles
        // like any other waiter).
        liveness::set_state(liveness::ThreadState::RetryWait, now_ns());
        if (liveness::wait_edge_checkable()) liveness::deadlock_check();
        retry_bo.pause();
        continue;
      } catch (UserAbort&) {
        if (tx.wrote_direct_) {
          discard_direct_attempt(tx);
          release_serial_gate();
          throw std::logic_error(
              "stm::cancel() after a write in serial-irrevocable mode");
        }
        discard_direct_attempt(tx);
        release_serial_gate();
        stats().add(Counter::TxAbortExplicit);
        obs::emit(obs::EventType::TxAbort, obs::AbortCause::Explicit,
                  b->obs_index, 0, tx.attempt_);
        return;
      } catch (...) {
        // Direct-mode effects are retained (GCC `synchronized` semantics);
        // the transaction is considered committed at the throw point, so
        // its deferred operations still run (they must, to release the
        // TxLocks acquired by atomic_defer).
        tx.commit();
        runtime().serial_commits.fetch_add(1, std::memory_order_acq_rel);
        release_serial_gate();
        stats().add(Counter::TxCommit);
        if (traced) {
          obs::emit(obs::EventType::TxCommit, obs::AbortCause::None,
                    b->obs_index, now_ns() - t_attempt, 0);
        }
        run_epilogues(tx);
        throw;
      }
      const std::uint64_t t_commit = traced ? now_ns() : 0;
      tx.commit();
      runtime().serial_commits.fetch_add(1, std::memory_order_acq_rel);
      release_serial_gate();
      stats().add(Counter::TxCommit);
      if (traced) {
        const std::uint64_t t_end = now_ns();
        obs::emit(obs::EventType::TxCommit, obs::AbortCause::None,
                  b->obs_index, t_end - t_attempt,
                  static_cast<std::uint32_t>(t_end - t_commit));
      }
      liveness::contention().on_commit();
      adaptive::note_commit();
      run_epilogues(tx);
      adaptive::maybe_switch();
      return;
    }
  }

  static void run_cgl(Tx& tx, FunctionRef<void(Tx&)> body, const Backend* b) {
    RuntimeState& rt = runtime();
    std::unique_lock<std::mutex> lk(rt.cgl_mutex);
    for (;;) {
      tx.begin(b, Tx::Mode::CGL, tx.attempt_ + 1);
      const bool traced = obs::enabled();
      const std::uint64_t t_attempt = traced ? now_ns() : 0;
      if (traced) {
        obs::emit(obs::EventType::TxBegin, obs::AbortCause::None,
                  b->obs_index, 0, tx.attempt_);
      }
      try {
        body(tx);
      } catch (RetryRequest& rr) {
        if (tx.wrote_direct_) {
          discard_direct_attempt(tx);
          throw std::logic_error(
              "stm::retry() after a write under CGL "
              "(direct-mode writes cannot be rolled back)");
        }
        discard_direct_attempt(tx);
        stats().add(Counter::TxRetry);
        const std::uint64_t gen = rt.cgl_commit_gen;
        liveness::set_state(liveness::ThreadState::RetryWait, now_ns());
        // Wake on a commit OR on a thread exit (the runtime's exit hook
        // notifies cgl_cv): a CGL waiter parked on state owned by a dead
        // thread re-runs its body's owner-liveness checks promptly
        // instead of only at a caller deadline. The short tick bounds the
        // window of a missed notification and drives the parked-waiter
        // deadlock poll, mirroring the speculative park loop.
        const auto woken = [&] {
          return rt.cgl_commit_gen != gen ||
                 thread_exit_count() != tx.retry_exit_snap_;
        };
        for (;;) {
          if (rr.deadline_ns != 0 && now_ns() >= rr.deadline_ns) {
            stats().add(Counter::RetryTimeouts);
            obs::emit(obs::EventType::TxAbort, obs::AbortCause::Timeout,
                      b->obs_index, 0, tx.attempt_);
            throw RetryTimeout("stm::retry deadline expired (CGL)");
          }
          if (rt.cgl_cv.wait_for(lk, std::chrono::milliseconds(10), woken)) {
            break;
          }
          if (liveness::wait_edge_checkable()) liveness::deadlock_check();
        }
        continue;
      } catch (UserAbort&) {
        if (tx.wrote_direct_) {
          discard_direct_attempt(tx);
          throw std::logic_error("stm::cancel() after a write under CGL");
        }
        discard_direct_attempt(tx);
        stats().add(Counter::TxAbortExplicit);
        obs::emit(obs::EventType::TxAbort, obs::AbortCause::Explicit,
                  b->obs_index, 0, tx.attempt_);
        return;
      } catch (...) {
        tx.commit();
        ++rt.cgl_commit_gen;
        lk.unlock();
        rt.cgl_cv.notify_all();
        stats().add(Counter::TxCommit);
        if (traced) {
          obs::emit(obs::EventType::TxCommit, obs::AbortCause::None,
                    b->obs_index, now_ns() - t_attempt, 0);
        }
        run_epilogues(tx);
        throw;
      }
      const std::uint64_t t_commit = traced ? now_ns() : 0;
      tx.commit();
      ++rt.cgl_commit_gen;
      lk.unlock();
      rt.cgl_cv.notify_all();
      stats().add(Counter::TxCommit);
      if (traced) {
        const std::uint64_t t_end = now_ns();
        obs::emit(obs::EventType::TxCommit, obs::AbortCause::None,
                  b->obs_index, t_end - t_attempt,
                  static_cast<std::uint32_t>(t_end - t_commit));
      }
      run_epilogues(tx);
      return;
    }
  }

  // Two-rung starvation ladder (liveness/contention.hpp). Rung 1: a
  // thread whose cross-transaction abort streak reaches the threshold
  // takes the process-wide priority token and keeps running speculatively
  // — conflict arbitration (tx.cpp) then favors it. Rung 2 — serial
  // escalation — remains the fallback for when the token is already taken,
  // or when privilege alone has not broken the streak (the 2x-threshold
  // backstop: validation failures are conflicts arbitration cannot veto).
  // Serial escalation still requires locker_depth()==0: the serial gate
  // drains *other* threads' cross-transaction holds, so two pinned holders
  // escalating against each other could wedge the gate. The token rung has
  // no such constraint — which is exactly why it comes first and closes
  // the old pinned-holder starvation gap.
  static bool starvation_wants_serial(const Config& cfg) {
    const std::uint32_t threshold = cfg.starvation_threshold;
    if (threshold == 0) return false;
    auto& cm = liveness::contention();
    if (cm.has_priority()) {
      if (locker_depth() == 0 &&
          cm.consecutive_aborts(thread_id()) >= 2 * threshold) {
        cm.release_priority();  // privilege failed; hand rung 1 on
        return true;
      }
      return false;  // keep running privileged
    }
    if (cm.try_acquire_priority(threshold)) return false;
    return locker_depth() == 0 && cm.should_escalate(threshold);
  }

  static void run_speculative(Tx& tx, FunctionRef<void(Tx&)> body,
                              const Config& cfg, const Backend* b) {
    std::uint32_t attempt = 0;
    Backoff bo;
    // A thread that lost its conflicts across many *previous* transactions
    // climbs the ladder up front instead of losing a few more attempts
    // first.
    if (starvation_wants_serial(cfg)) {
      liveness::contention().on_escalation();
      stats().add(Counter::CmEscalations);
      run_serial(tx, body, b);
      return;
    }
    for (;;) {
      // HTM-like backends exhaust a small hardware-retry budget before
      // falling back to the serial gate; software backends serialize as
      // contention management of last resort. Re-derived per attempt —
      // an adaptive switch may have changed the backend mid-loop.
      const std::uint32_t budget =
          b->has(kBackendHtmLike) ? cfg.htm_retries : cfg.serialize_after;
      if (attempt >= budget) {
        // Contention management of last resort: serialize (paper §2).
        // Privilege is moot inside the serial gate — free the token so
        // another starved thread can use it.
        liveness::contention().release_priority();
        stats().add(b->has(kBackendHtmLike) ? Counter::TxHtmFallback
                                            : Counter::TxIrrevocable);
        run_serial(tx, body, b);
        return;
      }
      ++attempt;
      const bool traced = obs::enabled();
      const std::uint64_t t_attempt = traced ? now_ns() : 0;
      tx.begin(b, Tx::Mode::Speculative, attempt);
      // begin() re-resolves the active backend after passing the serial
      // gate; track what this attempt actually runs.
      b = backend(tx);
      if (traced) {
        obs::emit(obs::EventType::TxBegin, obs::AbortCause::None,
                  b->obs_index, 0, attempt);
      }
      try {
        body(tx);
        const std::uint64_t t_commit = traced ? now_ns() : 0;
        tx.commit();
        if (traced) {
          const std::uint64_t t_end = now_ns();
          obs::emit(obs::EventType::TxCommit, obs::AbortCause::None,
                    b->obs_index, t_end - t_attempt,
                    static_cast<std::uint32_t>(t_end - t_commit));
        }
      } catch (ConflictAbort& ca) {
        tx.rollback();
        stats().add(Counter::TxAbortConflict);
        obs::emit(obs::EventType::TxAbort, ca.cause, b->obs_index, 0,
                  attempt);
        liveness::contention().on_conflict_abort();
        adaptive::note_abort(ca.cause);
        if (starvation_wants_serial(cfg)) {
          liveness::contention().on_escalation();
          stats().add(Counter::CmEscalations);
          run_serial(tx, body, b);
          return;
        }
        bo.pause();
        continue;
      } catch (CapacityAbort&) {
        tx.rollback();
        stats().add(Counter::TxAbortCapacity);
        obs::emit(obs::EventType::TxAbort, obs::AbortCause::Capacity,
                  b->obs_index, 0, attempt);
        adaptive::note_abort(obs::AbortCause::Capacity);
        continue;
      } catch (RetryRequest& rr) {
        tx.capture_watch();
        tx.rollback();
        stats().add(Counter::TxRetry);
        if (cfg.retry_wait) {
          wait_for_change(tx, rr.deadline_ns);
        } else {
          // The paper's own retry implementation: abort and immediately
          // re-execute (with backoff so we do not starve the thread that
          // must make the condition true).
          if (rr.deadline_ns != 0 && now_ns() >= rr.deadline_ns) {
            stats().add(Counter::RetryTimeouts);
            obs::emit(obs::EventType::TxAbort, obs::AbortCause::Timeout,
                      b->obs_index, 0, attempt);
            throw RetryTimeout("stm::retry deadline expired");
          }
          bo.pause();
        }
        --attempt;  // waiting for a condition is not contention
        continue;
      } catch (SerialRestart&) {
        tx.rollback();
        stats().add(Counter::TxIrrevocable);
        obs::emit(obs::EventType::TxAbort, obs::AbortCause::SerialRestart,
                  b->obs_index, 0, attempt);
        run_serial(tx, body, b);
        return;
      } catch (UserAbort&) {
        tx.rollback();
        stats().add(Counter::TxAbortExplicit);
        obs::emit(obs::EventType::TxAbort, obs::AbortCause::Explicit,
                  b->obs_index, 0, attempt);
        return;
      } catch (liveness::DeadlockError&) {
        tx.rollback();
        obs::emit(obs::EventType::TxAbort, obs::AbortCause::Deadlock,
                  b->obs_index, 0, attempt);
        throw;
      } catch (...) {
        tx.rollback();
        obs::emit(obs::EventType::TxAbort, obs::AbortCause::Exception,
                  b->obs_index, 0, attempt);
        throw;
      }
      stats().add(Counter::TxCommit);
      liveness::contention().on_commit();
      adaptive::note_commit();
      run_epilogues(tx);
      // Adaptive mode evaluates its window here: fully outside the
      // transaction, epilogues done, no cross-transaction locks pinned by
      // this thread unless a deferred op is still in flight (checked).
      adaptive::maybe_switch();
      return;
    }
  }
};

Tx& tls_tx() noexcept { return Driver::tls(); }

void run_atomic_nested(FunctionRef<void(Tx&)> body) {
  Tx& tx = Driver::tls();
  if (!Driver::active(tx)) {
    run_atomic(body);
    return;
  }
  if (tx.irrevocable()) {
    // Direct modes cannot partially roll back: flatten (documented).
    body(tx);
    return;
  }
  const auto cp = Driver::nested_checkpoint(tx);
  try {
    body(tx);
  } catch (ConflictAbort&) {
    throw;  // whole-transaction control flow: the driver handles these
  } catch (CapacityAbort&) {
    throw;
  } catch (RetryRequest&) {
    throw;  // condition waits restart the whole transaction
  } catch (SerialRestart&) {
    throw;
  } catch (UserAbort&) {
    // cancel() inside a closed-nested scope aborts just the scope.
    Driver::nested_abort(tx, cp);
    stats().add(Counter::TxAbortExplicit);
  } catch (...) {
    Driver::nested_abort(tx, cp);
    throw;  // the enclosing code may catch and take an alternative path
  }
}

namespace {
// Outermost-transaction scope guard: however atomic() exits (commit,
// cancel, RetryTimeout, DeadlockError, a user exception), the thread is
// marked Idle again and any wait-graph edge published at a block site is
// retracted, so the watchdog and deadlock detector never see stale state.
struct ActivityScope {
  ~ActivityScope() {
    if (liveness::has_wait_edge()) liveness::clear_wait();
    liveness::set_state(liveness::ThreadState::Idle, now_ns());
  }
};
}  // namespace

void run_atomic(FunctionRef<void(Tx&)> body) {
  Tx& tx = Driver::tls();
  if (Driver::active(tx)) {
    // Flat nesting: join the enclosing transaction.
    body(tx);
    return;
  }
  ActivityScope scope;
  const Config cfg = runtime().config;
  const Backend* b = active_backend_or_default();
  if (b->has(kBackendDirectMode)) {
    Driver::run_cgl(tx, body, b);
  } else {
    Driver::run_speculative(tx, body, cfg, b);
  }
}

}  // namespace detail

void init(const Config& cfg) {
  ADTM_INVARIANT(!in_transaction(), "stm::init inside a transaction");
  Config c = cfg;
  if (c.htm_capacity < 4) c.htm_capacity = 4;
  if (c.serialize_after == 0) c.serialize_after = 1;
  if (c.htm_retries == 0) c.htm_retries = 1;
  detail::runtime().config = c;
  // Resolve and publish the backend selection (Config::backend name,
  // ADTM_ALGO, or the deprecated enum; "auto" arms adaptive switching).
  // Throws std::invalid_argument for an unknown name.
  detail::install_backend(c);
  // ADTM_TRACE=1 turns tracing on at the first init. Never turns it off:
  // an explicit obs::enable() (or configure()) outranks the environment.
  if (runtime_config().trace && !obs::enabled()) obs::enable();
  // Same contract for the sanitizer knobs: the environment arms, an
  // explicit tmsan::disable() (or configure()) outranks it afterwards.
  if (runtime_config().tmsan) {
    tmsan::enable(tmsan::kCheckRace | tmsan::kCheckDeferral);
  }
  if (runtime_config().tmsan_opacity) tmsan::enable(tmsan::kCheckOpacity);
}

const Config& config() noexcept { return detail::runtime().config; }

bool in_transaction() noexcept {
  return detail::Driver::active(detail::Driver::tls());
}

void retry(Tx&, Deadline deadline) {
  // Deadline's raw encoding is the runtime's internal convention: 0 means
  // "no deadline"; Deadline::at() already clamps explicit zeros.
  throw detail::RetryRequest{deadline.raw_ns()};
}

void cancel(Tx&) { throw detail::UserAbort{}; }

void become_irrevocable(Tx& tx) {
  if (tx.irrevocable()) return;
  throw detail::SerialRestart{};
}

}  // namespace adtm::stm
