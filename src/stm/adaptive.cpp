#include "stm/adaptive.hpp"

#include <atomic>
#include <cstdint>

#include "common/runtime_config.hpp"
#include "common/timing.hpp"
#include "stm/backend.hpp"
#include "stm/registry.hpp"

namespace adtm::stm::adaptive {

namespace {

// Minimum transactions (commits + aborts) in a window before its abort
// taxonomy counts as signal rather than noise.
constexpr std::uint64_t kMinSample = 64;

std::atomic<bool> g_enabled{false};

// Current-window taxonomy. Exchanged to zero when a window closes.
std::atomic<std::uint64_t> g_commits{0};
std::atomic<std::uint64_t> g_aborts_validation{0};
std::atomic<std::uint64_t> g_aborts_lockbusy{0};
std::atomic<std::uint64_t> g_aborts_other{0};

// 0 = window not started; otherwise the ns deadline after which the next
// maybe_switch() call evaluates.
std::atomic<std::uint64_t> g_window_end_ns{0};
std::atomic<std::uint64_t> g_last_switch_ns{0};
// Single-evaluator latch so one thread closes each window.
std::atomic<bool> g_evaluating{false};

void reset_window() noexcept {
  g_commits.store(0, std::memory_order_relaxed);
  g_aborts_validation.store(0, std::memory_order_relaxed);
  g_aborts_lockbusy.store(0, std::memory_order_relaxed);
  g_aborts_other.store(0, std::memory_order_relaxed);
  g_window_end_ns.store(0, std::memory_order_relaxed);
}

// Pick the backend id this window's profile calls for; null = keep.
const char* decide(std::uint64_t commits, std::uint64_t validation,
                   std::uint64_t lockbusy, std::uint64_t other) noexcept {
  const std::uint64_t aborts = validation + lockbusy + other;
  const std::uint64_t total = commits + aborts;
  if (total < kMinSample) return nullptr;
  if (aborts * 20 < total) return "norec";     // < 5% abort rate
  if (validation >= lockbusy) return "2pl";    // validation-dominated
  return "tl2";                                // lock-busy-dominated
}

}  // namespace

void set_enabled(bool on) noexcept {
  reset_window();
  g_enabled.store(on, std::memory_order_release);
}

bool enabled() noexcept {
  return g_enabled.load(std::memory_order_acquire);
}

void note_commit() noexcept {
  if (!enabled()) return;
  g_commits.fetch_add(1, std::memory_order_relaxed);
}

void note_abort(obs::AbortCause cause) noexcept {
  if (!enabled()) return;
  switch (cause) {
    case obs::AbortCause::ConflictValidation:
    case obs::AbortCause::ConflictNorecValue:
      g_aborts_validation.fetch_add(1, std::memory_order_relaxed);
      break;
    case obs::AbortCause::ConflictLockBusy:
      g_aborts_lockbusy.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      g_aborts_other.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void maybe_switch() noexcept {
  if (!enabled()) return;
  const std::uint64_t now = now_ns();
  const std::uint64_t window_ns = runtime_config().adapt_window_ms * 1'000'000;
  std::uint64_t end = g_window_end_ns.load(std::memory_order_relaxed);
  if (end == 0) {
    // First transaction of a fresh window opens it; losing the race just
    // means someone else opened it.
    g_window_end_ns.compare_exchange_strong(end, now + window_ns,
                                            std::memory_order_relaxed);
    return;
  }
  if (now < end) return;
  if (g_evaluating.exchange(true, std::memory_order_acquire)) return;
  end = g_window_end_ns.load(std::memory_order_relaxed);
  if (end != 0 && now >= end) {
    const std::uint64_t commits =
        g_commits.exchange(0, std::memory_order_relaxed);
    const std::uint64_t validation =
        g_aborts_validation.exchange(0, std::memory_order_relaxed);
    const std::uint64_t lockbusy =
        g_aborts_lockbusy.exchange(0, std::memory_order_relaxed);
    const std::uint64_t other =
        g_aborts_other.exchange(0, std::memory_order_relaxed);
    g_window_end_ns.store(now + window_ns, std::memory_order_relaxed);

    const char* id = decide(commits, validation, lockbusy, other);
    const std::uint64_t dwell_ns =
        runtime_config().adapt_min_dwell_ms * 1'000'000;
    const std::uint64_t last = g_last_switch_ns.load(std::memory_order_relaxed);
    if (id != nullptr && (last == 0 || now - last >= dwell_ns) &&
        detail::locker_depth() == 0) {
      const Backend* target = find_backend(id);
      if (target != nullptr && target->has(kBackendAdaptive) &&
          target != current_backend()) {
        try {
          switch_backend(target);
          g_last_switch_ns.store(now, std::memory_order_relaxed);
        } catch (...) {
          // A rival init() or switch raced us into an invalid transition
          // (e.g. to direct mode); the next window re-evaluates.
        }
      }
    }
  }
  g_evaluating.store(false, std::memory_order_release);
}

}  // namespace adtm::stm::adaptive
