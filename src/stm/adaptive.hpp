// Adaptive backend switching ("auto" mode).
//
// The controller watches the per-window abort taxonomy that the driver
// feeds it and swaps the active backend at a quiescent point when the
// workload's conflict profile says another algorithm family would do
// better:
//   * validation-heavy windows (ConflictValidation / ConflictNorecValue
//     dominating) -> 2PL: pessimistic reads make validation aborts
//     structurally impossible;
//   * lock-busy-heavy windows -> TL2: commit-time locking shortens the
//     lock hold window that encounter-time/pessimistic schemes suffer
//     under;
//   * low-conflict windows (abort rate under ~5%) -> NOrec: the global
//     seqlock is the cheapest commit when nobody conflicts.
// Hysteresis: decisions only happen when a window of at least
// ADTM_ADAPT_WINDOW_MS has elapsed AND the sample is large enough, and a
// fresh switch is pinned for ADTM_ADAPT_MIN_DWELL_MS so the controller
// cannot thrash between families on noise.
#pragma once

#include "obs/trace.hpp"

namespace adtm::stm::adaptive {

// Arm/disarm the controller. Armed by init() when the resolved backend
// selection is "auto"; resets the current window either way.
void set_enabled(bool on) noexcept;
bool enabled() noexcept;

// Driver hooks (near-free when disarmed): taxonomy accounting for the
// current window.
void note_commit() noexcept;
void note_abort(obs::AbortCause cause) noexcept;

// Evaluate the window and possibly switch backends. Called by the driver
// after a transaction fully finishes (outside any transaction, no
// cross-transaction locks held). Never throws.
void maybe_switch() noexcept;

}  // namespace adtm::stm::adaptive
