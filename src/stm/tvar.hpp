// tvar<T>: a transactionally-shared variable.
//
// All transactional data lives in tvar instances; their storage is made of
// atomic 64-bit words, so every speculative access in the runtime is a
// well-defined atomic operation (no undefined-behaviour racing loads).
//
// Access inside a transaction goes through get(tx)/set(tx, v); direct
// (non-transactional) access is provided for initialization and for data
// that has been privatized — the privatization safety of direct access
// after a transactional unlink is exactly what the runtime's quiescence
// guarantees (paper §2).
#pragma once

#include <array>
#include <cstring>
#include <type_traits>

#include "stm/tx.hpp"
#include "tmsan/tmsan.hpp"

namespace adtm::stm {

template <typename T>
class tvar {
  static_assert(std::is_trivially_copyable_v<T>,
                "tvar<T> requires a trivially copyable T");
  static_assert(std::is_default_constructible_v<T>,
                "tvar<T> requires a default-constructible T");

  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

 public:
  tvar() : tvar(T{}) {}
  explicit tvar(const T& v) { store_direct(v); }

  tvar(const tvar&) = delete;
  tvar& operator=(const tvar&) = delete;

  // Transactional read.
  T get(Tx& tx) const {
    std::uint64_t buf[kWords];
    for (std::size_t i = 0; i < kWords; ++i) {
      buf[i] = tx.read_word(&words_[i]);
    }
    return from_words(buf);
  }

  // Transactional write.
  void set(Tx& tx, const T& v) {
    std::uint64_t buf[kWords] = {};
    std::memcpy(buf, &v, sizeof(T));
    for (std::size_t i = 0; i < kWords; ++i) {
      tx.write_word(&words_[i], buf[i]);
    }
  }

  // Non-transactional read. Only safe when no concurrent transaction can
  // be writing this variable (initialization, single-threaded phases, or
  // after privatization + quiescence).
  T load_direct() const {
    std::uint64_t buf[kWords];
    for (std::size_t i = 0; i < kWords; ++i) {
      tmsan::on_raw_read(&words_[i]);
      buf[i] = words_[i].load(std::memory_order_acquire);
    }
    return from_words(buf);
  }

  // Non-transactional write; same safety requirements as load_direct.
  void store_direct(const T& v) {
    std::uint64_t buf[kWords] = {};
    std::memcpy(buf, &v, sizeof(T));
    for (std::size_t i = 0; i < kWords; ++i) {
      tmsan::on_raw_write(&words_[i]);
      words_[i].store(buf[i], std::memory_order_release);
    }
  }

 private:
  static T from_words(const std::uint64_t* buf) {
    T out{};
    std::memcpy(&out, buf, sizeof(T));
    return out;
  }

  mutable std::array<detail::Word, kWords> words_{};
};

}  // namespace adtm::stm
