// Internal runtime globals and the transaction driver. Not a public header.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "stm/config.hpp"
#include "stm/function_ref.hpp"
#include "stm/tx.hpp"

namespace adtm::stm::detail {

struct RuntimeState {
  Config config{};

  // The backend new transactions run (stm/backend.hpp). Published by
  // init() and switch_backend(); Tx::begin re-resolves it after passing
  // the serial gate, so a switch completed while a transaction was parked
  // at the gate takes effect before its first barrier. Null until the
  // first init() (run_atomic lazily resolves the default then).
  std::atomic<const Backend*> active_backend{nullptr};

  // CGL algorithm: the single global lock, plus a broadcast channel that
  // wakes retry() waiters on every CGL commit.
  std::mutex cgl_mutex;
  std::condition_variable cgl_cv;
  std::uint64_t cgl_commit_gen = 0;  // guarded by cgl_mutex

  // Serial-irrevocable commits do not bump orec versions (they run in
  // isolation), so retry() waiters additionally watch this counter.
  std::atomic<std::uint64_t> serial_commits{0};

  // NOrec's global sequence lock: odd while a writer is publishing its
  // redo log. Starts at 2 so registry timestamps derived from it are
  // always nonzero.
  alignas(64) std::atomic<std::uint64_t> norec_seq{2};
};

RuntimeState& runtime() noexcept;

// The calling thread's reusable transaction descriptor.
Tx& tls_tx() noexcept;

// Executes `body` as one transaction with the configured algorithm,
// handling flat nesting, contention management, serialization, retry
// waiting, and post-commit epilogues.
void run_atomic(FunctionRef<void(Tx&)> body);

// Executes `body` as a closed-nested scope of the enclosing transaction:
// cancel() or an exception inside the body rolls back only the scope's
// effects (partial rollback); the enclosing transaction continues.
// Outside a transaction this is just run_atomic; in direct (CGL/serial)
// modes the scope flattens, as direct writes cannot be rolled back.
void run_atomic_nested(FunctionRef<void(Tx&)> body);

}  // namespace adtm::stm::detail
