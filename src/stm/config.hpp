// Runtime configuration for the adtm software TM.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/runtime_config.hpp"

namespace adtm::stm {

// Which TM algorithm executes transactions.
//
// DEPRECATED for selection: algorithms are chosen by backend registry id
// (Config::backend / ADTM_ALGO — see stm/backend.hpp); the enum survives
// as the internal core-dispatch discriminator (Backend::core) and a thin
// compatibility forwarder. New code must not dispatch on it directly
// (enforced by the adtmlint `algo-enum` check).
//
// TL2    — lazy versioning: writes are buffered in a redo log and published
//          at commit under per-orec locks (Dice/Shalev/Shavit TL2 with
//          TinySTM-style timestamp extension on reads).
// Eager  — encounter-time locking with an undo log (TinySTM write-through).
// CGL    — a single global lock; no instrumentation, no aborts. This is
//          both a correctness oracle and the paper's coarse-grained-lock
//          baseline.
// HTMSim — simulated best-effort hardware TM: eager conflict detection with
//          immediate abort, a capacity budget on the transaction footprint,
//          a small retry budget, and a global-lock fallback that all
//          hardware transactions subscribe to (Intel TSX + lock elision
//          structure). See DESIGN.md for the substitution rationale.
// NOrec  — no ownership records (Dalessandro/Spear/Scott PPoPP 2010): one
//          global sequence lock, value-based read validation, redo log.
//          Minimal metadata, strong privatization behaviour, commits
//          serialized on the sequence lock.
enum class Algo : std::uint8_t { TL2, Eager, CGL, HTMSim, NOrec };

[[deprecated("use Backend::name via stm::find_backend / backend_registry")]]
const char* algo_name(Algo a) noexcept;

struct Config {
  // STM backend by registry id ("tl2", "eager", "cgl", "htmsim", "norec",
  // "2pl", ...) or "auto" for adaptive runtime switching. Resolution
  // order: this field, then an explicitly non-default `algo` enum below,
  // then ADTM_ALGO (adtm::RuntimeConfig::algo) — the env knob fills in
  // when the program did not choose, it does not override an explicit
  // selection. Unknown names make init() throw.
  std::string backend;

  // Deprecated enum spelling of the above; consulted only when `backend`
  // is empty. (Comment-deprecated rather than
  // [[deprecated]]: the attribute on a member with a default initializer
  // fires inside Config's own implicit constructors under
  // -Werror=deprecated-declarations. The adtmlint `algo-enum` check
  // rejects new uses instead.)
  Algo algo = Algo::TL2;

  // Attempts before a transaction escalates to serial-irrevocable mode
  // (GCC libitm defaults: 100 for software, 2 for hardware).
  std::uint32_t serialize_after = 100;

  // HTMSim: attempts before falling back to the serial gate.
  std::uint32_t htm_retries = 2;

  // HTMSim: maximum footprint (distinct ownership records touched, which
  // at line granularity approximates cache lines) before a CAPACITY abort.
  // 512 lines = a 32 KiB L1 write-set budget, TSX-class.
  std::size_t htm_capacity = 512;

  // Whether writer commits quiesce (wait for all concurrently active
  // transactions) for privatization safety. STM algorithms only; HTMSim
  // models strong isolation and CGL is trivially safe.
  bool quiescence = true;

  // Bounded spin iterations when a read/write encounters a locked orec
  // before conflict-aborting (ignored by HTMSim, which aborts immediately).
  std::uint32_t lock_spin_limit = 128;

  // retry() strategy. true (default): wait until a read-set location may
  // have changed before re-executing. false: abort and immediately
  // re-execute with randomized backoff — the paper's own workaround
  // implementation (§4.2), whose cost it measures in Figure 2 ("aborting
  // and immediately retrying, instead of de-scheduling the transaction").
  bool retry_wait = true;

  // Starvation arbitration (liveness layer): a thread whose conflict-abort
  // streak *across transactions* reaches this count first takes the
  // priority token — conflict arbitration then favors it while it keeps
  // running speculatively — and falls back to serial-irrevocable mode when
  // the token is taken (or when privilege alone cannot break the streak).
  // 0 disables both rungs. Overridable via ADTM_STARVATION_THRESHOLD.
  std::uint32_t starvation_threshold = default_starvation_threshold();

  // Patience bound of priority arbitration, in nanoseconds. A privileged
  // thread outwaits a busy orec for at most this long before aborting
  // after all (the safety valve against a wedged owner), and a
  // non-privileged NOrec commit holds back at most this long for a
  // privileged attempt in flight. Bounded so arbitration can delay but
  // never deadlock anyone.
  std::uint64_t priority_wait_ns = 100'000'000;

  static std::uint32_t default_starvation_threshold() noexcept {
    return runtime_config().starvation_threshold;
  }
};

}  // namespace adtm::stm
