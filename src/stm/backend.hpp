// Pluggable STM backend registry.
//
// A Backend is the unit of algorithm selection: a descriptor bundling a
// stable string id, capability flags, and (for backends implemented
// outside the core translation units) the per-transaction barrier entry
// points. The five built-in algorithms (TL2, Eager, CGL, HTMSim, NOrec)
// are registered as descriptors with `ops == nullptr` — the Tx hot paths
// keep their inline dispatch for them — while extension backends (2PL)
// plug in through BackendOps without touching any core algorithm file.
//
// Selection:
//   stm::Config::backend names a registry id ("tl2", "2pl", ..., or
//   "auto" for adaptive switching); ADTM_ALGO does the same from the
//   environment. The legacy stm::Algo enum still works but is deprecated.
//
// Runtime switching:
//   switch_backend() swaps the active backend at a quiescent point: it
//   acquires the serial gate (draining every speculative transaction and
//   cross-transaction locker), publishes the new descriptor, emits an
//   obs backend-switch event, and releases the gate. Transactions that
//   were parked at the gate re-resolve the backend when they enter, so
//   no transaction ever runs with a torn algorithm choice. Direct-mode
//   backends (CGL) are excluded from runtime switching — CGL transactions
//   serialize on their own mutex, not the gate, so the gate cannot drain
//   them; CGL remains an init-time-only choice.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "stm/config.hpp"

namespace adtm::stm {

class Tx;

namespace detail {
using Word = std::atomic<std::uint64_t>;
}

// --- capability flags -------------------------------------------------------

// Speculative: arbitrary bodies can roll back (cancel(), conflict aborts,
// closed nesting). Clear for direct-mode backends.
inline constexpr std::uint32_t kBackendRollback = 1u << 0;
// Supports escalation to serial-irrevocable mode mid-run.
inline constexpr std::uint32_t kBackendIrrevocable = 1u << 1;
// Uses the serial gate as its contention-management fallback.
inline constexpr std::uint32_t kBackendSerialGate = 1u << 2;
// HTM-like: small retry budget, capacity aborts, no busy-orec spinning.
inline constexpr std::uint32_t kBackendHtmLike = 1u << 3;
// Writes go in place at encounter time (undo-log rollback).
inline constexpr std::uint32_t kBackendInPlaceWrites = 1u << 4;
// Reads take pessimistic ownership (reader indicators) instead of
// optimistic validation.
inline constexpr std::uint32_t kBackendPessimisticReads = 1u << 5;
// Direct mode: uninstrumented accesses, cannot abort, excluded from
// runtime switching (CGL).
inline constexpr std::uint32_t kBackendDirectMode = 1u << 6;
// Candidate for adaptive ("auto") switching.
inline constexpr std::uint32_t kBackendAdaptive = 1u << 7;

// --- descriptor -------------------------------------------------------------

// Barrier/commit/abort entry points for backends implemented outside the
// core Tx translation unit. All five must be set when `Backend::ops` is
// non-null. They run only in speculative mode; serial/CGL escalation is
// handled by the driver before these are consulted.
struct BackendOps {
  // After the common begin bookkeeping (registry entry, snapshot,
  // liveness state). Reset per-attempt extension state here.
  void (*begin)(Tx& tx);
  std::uint64_t (*read_word)(Tx& tx, const detail::Word* addr);
  void (*write_word)(Tx& tx, detail::Word* addr, std::uint64_t value);
  // Full commit: publish, file the tmsan record, release locks, leave the
  // registry, quiesce, and mark the transaction finished (BackendSpi).
  // May throw ConflictAbort; the driver then calls rollback.
  void (*commit)(Tx& tx);
  // Extension-state cleanup (e.g. reader indicators), called at the start
  // of the generic rollback. Must not throw.
  void (*rollback)(Tx& tx);
};

struct Backend {
  const char* id;    // stable lowercase registry id: "tl2", "2pl", ...
  const char* name;  // display name (obs label, test params): "TL2", "2PL"
  std::uint32_t caps = 0;
  // Core algorithm the Tx inline paths run when `ops == nullptr`; for
  // extension backends, the closest built-in (picks the serial-mode and
  // snapshot behavior the common begin/commit paths use).
  Algo core = Algo::TL2;
  const BackendOps* ops = nullptr;  // null for the five built-ins
  // Dense index assigned at registration; doubles as the obs algo label
  // index (obs::register_algo_label) and the trace-event algo byte.
  std::uint8_t obs_index = 0;

  bool has(std::uint32_t cap) const noexcept { return (caps & cap) != 0; }
};

// --- registry ---------------------------------------------------------------

inline constexpr std::size_t kMaxBackends = 16;

class BackendRegistry {
 public:
  // Register a backend; the id must be unique and the table not full
  // (throws std::logic_error otherwise). Returns the stored descriptor,
  // whose obs_index has been assigned. Registration is for startup
  // (static-init manifests, test setup), not concurrent with tracing.
  const Backend* register_backend(const Backend& backend);

  // Lookup by registry id or display name (exact match); null if absent.
  const Backend* find(std::string_view id_or_name) const noexcept;

  // Enumeration in registration order (the five built-ins first).
  std::size_t size() const noexcept;
  const Backend* at(std::size_t i) const noexcept;

 private:
  friend BackendRegistry& backend_registry() noexcept;
  BackendRegistry();

  Backend backends_[kMaxBackends];
  std::size_t count_ = 0;
};

// The process-wide registry. First use registers the built-in algorithms
// (in stm::Algo order, so obs_index matches the deprecated enum) and then
// every extension backend named in the src/stm/backends manifest.
BackendRegistry& backend_registry() noexcept;

// Convenience lookup; null if no such backend.
const Backend* find_backend(std::string_view id_or_name) noexcept;

// Descriptor of a built-in algorithm (deprecated-enum interop).
const Backend* backend_for(Algo algo) noexcept;

// The currently active backend (what new transactions will run).
const Backend* current_backend() noexcept;

// Swap the active backend at a quiescent point (see file comment).
// Throws std::logic_error for direct-mode source or target, or a null
// target. No-op when the target is already active. Callers must not hold
// cross-transaction locks (TxLockGuard / in-flight deferred op) — the
// serial gate drains those.
void switch_backend(const Backend* target);
void switch_backend(std::string_view id_or_name);

namespace detail {

// Resolve `cfg`'s backend selection (Config::backend, then ADTM_ALGO,
// then the deprecated enum; "auto" arms the adaptive controller) and
// publish it as the active backend. Throws std::invalid_argument for an
// unknown name. Called by init().
const Backend* install_backend(const Config& cfg);

// The active backend, lazily resolving the default selection if no
// init() has run yet (may throw for a bad ADTM_ALGO value).
const Backend* active_backend_or_default();

}  // namespace detail

}  // namespace adtm::stm
