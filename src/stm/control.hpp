// Control-flow signals used inside the transaction execution loop.
//
// These are internal exception types thrown by the runtime (never across
// the public API boundary): the atomic() driver catches them, rolls the
// transaction back, and reacts. Using exceptions gives correct unwinding
// of user RAII objects constructed inside the transaction body.
#pragma once

#include <cstdint>

#include "obs/trace.hpp"

namespace adtm::stm::detail {

// Conflict detected (validation failure, lock-acquire timeout): roll back
// and re-execute after contention-manager backoff. Carries the structured
// cause so the driver's TxAbort trace event and the run summary's abort
// taxonomy record *why*, not just that it happened.
struct ConflictAbort {
  obs::AbortCause cause = obs::AbortCause::ConflictValidation;
};

// HTM-sim footprint exceeded the capacity budget: roll back; counts
// against the hardware retry budget.
struct CapacityAbort {};

// Harris-style retry(): roll back, wait until a location in the read set
// changes, then re-execute. A nonzero deadline (now_ns() units) bounds the
// wait: once it passes, the driver raises stm::RetryTimeout out of the
// atomic() call instead of waiting forever.
struct RetryRequest {
  std::uint64_t deadline_ns = 0;
};

// become_irrevocable(): roll back and re-execute in serial mode.
struct SerialRestart {};

// Explicit user abort: roll back and give up (no re-execution).
struct UserAbort {};

}  // namespace adtm::stm::detail
