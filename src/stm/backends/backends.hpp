// Extension-backend manifest.
//
// Backends implemented outside the core Tx translation units register
// here. backend_registry() calls register_extension_backends() once,
// right after registering the five built-ins — an explicit manifest
// rather than per-TU static initializers, because adtm_stm is a static
// library and the linker would drop an otherwise-unreferenced backend
// translation unit together with its registration.
#pragma once

namespace adtm::stm {
class BackendRegistry;
}

namespace adtm::stm::backends {

// Called once during backend_registry() construction (which is why the
// registry is passed explicitly — calling backend_registry() here would
// recurse into the singleton's initialization). Implemented in all.cpp;
// calls each backend's registrar below in a deterministic order
// (registration order is enumeration order, which test parameterizations
// and bench matrices rely on).
void register_extension_backends(BackendRegistry& reg);

// Distributed two-phase locking (2PLUndoDist lineage): undo-log in-place
// writes, pessimistic reads through per-thread reader indicators.
void register_twopl_backend(BackendRegistry& reg);

}  // namespace adtm::stm::backends
