#include "stm/backends/backends.hpp"

namespace adtm::stm::backends {

void register_extension_backends(BackendRegistry& reg) {
  register_twopl_backend(reg);
}

}  // namespace adtm::stm::backends
