// Distributed two-phase locking backend ("2pl").
//
// After the 2PLUndo/2PLUndoDist lineage: writes take per-orec write locks
// at encounter time and go in place under an undo log (exactly the Eager
// machinery, reused through BackendSpi); reads are *pessimistic* — a
// reader publishes a per-thread reader indicator for the line's slot
// before sampling the word, and a writer must drain every rival reader
// indicator for a slot before it may overwrite the line. Both sides hold
// their ownership until commit (two-phase), so a transaction never
// observes a mix of old and new state and needs no read validation at
// all: read-only transactions commit with zero compare work, which is
// the abort-light property that makes 2PL strong exactly where the
// optimistic algorithms thrash (validation storms under write-heavy
// contention).
//
// Reader indicators are distributed thread-major —
// indicator[tid][slot] — so the reader fast path touches only its own
// row (no cross-thread cache-line traffic; the scalable-reader-indicator
// idea). Writers scan one column, bounded by a registered-thread
// high-water mark, so the drain costs live-thread loads rather than
// kMaxThreads. Slots fold the orec index down (collisions are benign:
// false conflicts only, never missed ones).
//
// The store/load protocol is the classic Dekker handshake, all seq_cst:
//   reader: publish indicator; load orec            — sees any prior lock
//   writer: CAS orec locked;   scan indicators      — sees any prior reader
// Of any racing pair, at least one side observes the other, so a reader
// can never sample a word a writer is concurrently mutating.
//
// Deadlock freedom: every wait here is bounded (spin budgets, priority
// patience) and resolves to a ConflictAbort, whose rollback revokes all
// ownership — there is no unbounded hold-and-wait. Waits are made
// visible to the liveness watchdog via wait-graph edges published while
// a writer drains a stubborn reader.
#include <cstdint>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/panic.hpp"
#include "common/stats.hpp"
#include "common/thread_id.hpp"
#include "common/timing.hpp"
#include "liveness/contention.hpp"
#include "liveness/wait_graph.hpp"
#include "stm/backend_spi.hpp"
#include "stm/backends/backends.hpp"
#include "stm/orec.hpp"
#include "stm/registry.hpp"
#include "stm/runtime.hpp"
#include "tmsan/tmsan.hpp"

namespace adtm::stm::backends {

namespace {

// 2^12 indicator slots per thread: 4 KiB rows, 512 KiB total. Coarser
// than the orec table (2^20) — the fold below maps many orecs onto one
// slot, which only ever manufactures false reader/writer conflicts.
constexpr std::size_t kSlotCountLog2 = 12;
constexpr std::size_t kSlotCount = std::size_t{1} << kSlotCountLog2;

struct alignas(64) IndicatorRow {
  std::atomic<std::uint8_t> slots[kSlotCount];
};

IndicatorRow g_indicators[kMaxThreads];

// Threads that have ever run a 2PL transaction; writers drain rows
// [0, highwater) only. Bumped (seq_cst) before a thread's first
// indicator store, so a writer that read a stale high-water mark
// necessarily ordered its lock CAS before that reader's orec load — the
// Dekker argument covers the missed row.
std::atomic<std::uint32_t> g_tid_highwater{0};

// Per-transaction extension state: the slots whose indicator this thread
// holds. Only the owning thread writes its indicator row, so "already
// held" is a relaxed load of our own byte.
struct TxState {
  std::vector<std::uint16_t> held;
};

TxState& tls_state() noexcept {
  thread_local TxState st;
  return st;
}

std::uint16_t slot_of(const Orec& o) noexcept {
  const std::size_t idx =
      static_cast<std::size_t>(&o - detail::g_orecs);
  return static_cast<std::uint16_t>((idx ^ (idx >> kSlotCountLog2)) &
                                    (kSlotCount - 1));
}

void clear_indicators(std::uint32_t tid) noexcept {
  TxState& st = tls_state();
  for (const std::uint16_t slot : st.held) {
    g_indicators[tid].slots[slot].store(0, std::memory_order_release);
  }
  st.held.clear();
}

// Wait-graph owner resolution for a writer parked on a reader indicator:
// the entity pointer is the indicator byte; its row index is the reader.
std::uint32_t indicator_owner(const void* entity) noexcept {
  const auto addr = reinterpret_cast<std::uintptr_t>(entity);
  const auto base = reinterpret_cast<std::uintptr_t>(&g_indicators[0]);
  return static_cast<std::uint32_t>((addr - base) / sizeof(IndicatorRow));
}

// Drain rival reader indicators for `slot` after taking a write lock.
// Bounded: a stubborn reader (it is spinning on one of our locked orecs,
// or running a long transaction) costs us a spin budget and then a
// conflict abort — rollback revokes the lock, so reader/writer cycles
// always break. Privileged (starved) writers outwait up to the priority
// patience bound instead, mirroring arbitrate_busy_orec.
void drain_readers(Tx& tx, std::uint16_t slot) {
  const std::uint32_t tid = BackendSpi::tid(tx);
  const std::uint32_t hw = g_tid_highwater.load(std::memory_order_seq_cst);
  const Config& cfg = detail::runtime().config;
  const std::uint32_t budget = cfg.lock_spin_limit * 16;
  for (std::uint32_t t = 0; t < hw; ++t) {
    if (t == tid) continue;
    auto& ind = g_indicators[t].slots[slot];
    if (ind.load(std::memory_order_seq_cst) == 0) continue;
    std::uint32_t spins = 0;
    std::uint64_t patience_deadline = 0;
    bool published = false;
    const bool priv = BackendSpi::priority(tx);
    if (priv) patience_deadline = now_ns() + cfg.priority_wait_ns;
    while (ind.load(std::memory_order_seq_cst) != 0) {
      ++spins;
      if (!priv && spins > budget) {
        if (published) liveness::clear_wait();
        stats().add(Counter::CmPriorityYields);
        BackendSpi::conflict_abort(tx,
                                   obs::AbortCause::ConflictLockBusy);
      }
      if ((spins & 255u) == 0) {
        // Let the reader run, surface the wait to the watchdog, and
        // honor the privileged patience bound without a clock read per
        // spin.
        if (!published) {
          liveness::publish_wait(&ind, indicator_owner, "2pl-drain-readers");
          published = true;
        }
        std::this_thread::yield();
        if (priv && now_ns() >= patience_deadline) {
          liveness::clear_wait();
          BackendSpi::conflict_abort(tx,
                                     obs::AbortCause::ConflictLockBusy);
        }
      }
      cpu_relax();
    }
    if (published) liveness::clear_wait();
  }
}

void lock_orec(Tx& tx, Orec& o) {
  const std::uint32_t tid = BackendSpi::tid(tx);
  std::uint32_t spins = 0;
  std::uint64_t patience_deadline = 0;
  bool outwaited = false;
  for (;;) {
    OrecWord s = o.load(std::memory_order_acquire);
    if (orec_locked(s)) {
      if (orec_locked_by(s, tid)) return;  // already ours, already drained
      BackendSpi::arbitrate_busy_orec(tx, s, spins, patience_deadline,
                                      outwaited);
      continue;
    }
    // Pessimistic locking has no snapshot to keep valid: the version in
    // the pre-lock word is preserved for restore_all, never compared.
    if (o.compare_exchange_weak(s, make_orec_locked(tid),
                                std::memory_order_seq_cst)) {
      ADTM_TSAN_ACQUIRE(&o);
      BackendSpi::locks(tx).push(&o, s);
      if (outwaited) stats().add(Counter::CmPriorityWins);
      drain_readers(tx, slot_of(o));
      return;
    }
  }
}

void twopl_begin(Tx& tx) {
  TxState& st = tls_state();
  ADTM_INVARIANT(st.held.empty(),
                 "2pl: reader indicators leaked into a new transaction");
  const std::uint32_t tid = BackendSpi::tid(tx);
  std::uint32_t hw = g_tid_highwater.load(std::memory_order_relaxed);
  while (tid >= hw) {
    if (g_tid_highwater.compare_exchange_weak(hw, tid + 1,
                                              std::memory_order_seq_cst)) {
      break;
    }
  }
}

std::uint64_t twopl_read(Tx& tx, const detail::Word* addr) {
  Orec& o = orec_for(addr);
  const std::uint32_t tid = BackendSpi::tid(tx);
  {
    const OrecWord s = o.load(std::memory_order_acquire);
    if (orec_locked_by(s, tid)) {
      // We hold the line's write lock: the in-place value is ours (and
      // already filed by the write barrier — mirror the Eager path).
      return addr->load(std::memory_order_relaxed);
    }
  }
  const std::uint16_t slot = slot_of(o);
  auto& mine = g_indicators[tid].slots[slot];
  if (mine.load(std::memory_order_relaxed) == 0) {
    mine.store(1, std::memory_order_seq_cst);
    tls_state().held.push_back(slot);
  }
  std::uint32_t spins = 0;
  std::uint64_t patience_deadline = 0;
  bool outwaited = false;
  for (;;) {
    const OrecWord s = o.load(std::memory_order_seq_cst);
    if (orec_locked(s)) {
      // A writer won the handshake; it is (or will be) draining our
      // indicator, so spinning here is bounded by its progress — the
      // shared arbitration aborts us once the budget is spent, and
      // rollback clears our indicators out of its way.
      BackendSpi::arbitrate_busy_orec(tx, s, spins, patience_deadline,
                                      outwaited);
      continue;
    }
    // Unlocked with our indicator published: any writer that locks the
    // orec after this sample must drain us before mutating the line, so
    // the value is stable until we commit — no recheck, no validation.
    const std::uint64_t v = addr->load(std::memory_order_seq_cst);
    BackendSpi::reads(tx).push(&o, s);  // retry() watch entries only
    if (outwaited) stats().add(Counter::CmPriorityWins);
    tmsan::on_tx_read(addr, v);
    return v;
  }
}

void twopl_write(Tx& tx, detail::Word* addr, std::uint64_t value) {
  Orec& o = orec_for(addr);
  lock_orec(tx, o);
  BackendSpi::undo(tx).push(addr, addr->load(std::memory_order_relaxed));
  addr->store(value, std::memory_order_relaxed);
  tmsan::on_tx_write(addr, value);
}

void twopl_commit(Tx& tx) {
  const Config& cfg = detail::runtime().config;
  const std::uint32_t tid = BackendSpi::tid(tx);
  auto& locks = BackendSpi::locks(tx);
  if (locks.empty()) {
    // Read-only: every read is still protected by our indicators right
    // now, so the snapshot is trivially current — commit without
    // comparing anything (the pessimistic payoff).
    BackendSpi::reads(tx).clear();
    clear_indicators(tid);
    detail::registry_leave();
    tmsan::on_tx_commit(0);  // read-only: nothing enters the history
    BackendSpi::finish_commit(tx);
    return;
  }
  const std::uint64_t wt = clock_advance();
  // File the write set before releasing the write locks (the ABA-filing
  // rule shared with the orec algorithms: rivals spin on the locked
  // orecs, so no published value can be observed before its history
  // record exists) and before registry_leave (direct-mode ties must find
  // the record filed).
  tmsan::on_tx_commit(wt);
  locks.release_all(make_orec_version(wt));
  locks.clear();
  BackendSpi::undo(tx).clear();
  BackendSpi::reads(tx).clear();
  clear_indicators(tid);
  detail::registry_leave();
  if (cfg.quiescence) {
    detail::quiesce_until(wt);
  }
  BackendSpi::finish_commit(tx);
}

void twopl_rollback(Tx& tx) {
  // Release read ownership first; the generic rollback then replays the
  // undo log and restores the orec locks (our writes stay lock-protected
  // until restored).
  clear_indicators(BackendSpi::tid(tx));
}

const BackendOps kTwoplOps = {
    &twopl_begin, &twopl_read, &twopl_write, &twopl_commit, &twopl_rollback,
};

}  // namespace

void register_twopl_backend(BackendRegistry& reg) {
  Backend b;
  b.id = "2pl";
  b.name = "2PL";
  b.caps = kBackendRollback | kBackendIrrevocable | kBackendSerialGate |
           kBackendInPlaceWrites | kBackendPessimisticReads |
           kBackendAdaptive;
  b.core = Algo::Eager;  // serial-mode + snapshot behavior; in-place writes
  b.ops = &kTwoplOps;
  reg.register_backend(b);
}

}  // namespace adtm::stm::backends
