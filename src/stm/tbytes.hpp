// tbytes: a fixed-size transactionally-readable byte buffer.
//
// Compiler-based TMs instrument *every* memory access inside a transaction
// — even accesses the programmer knows are thread-private — because the
// compiler cannot prove privacy. That instrumentation is precisely the
// cost the paper measures when dedup's Compress runs inside a transaction:
// per-access overhead and read-set growth in STM, footprint (capacity) in
// HTM. tbytes reproduces that cost model at the library level: read(tx)
// pulls the buffer through the transactional word API, populating the read
// set at cache-line granularity, while read_direct() is the uninstrumented
// path used by lock-based code and deferred operations.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "stm/tx.hpp"

namespace adtm::stm {

class tbytes {
 public:
  tbytes() = default;

  explicit tbytes(std::span<const std::byte> init) { assign(init); }

  // Non-transactional initialization (before sharing).
  void assign(std::span<const std::byte> data) {
    size_ = data.size();
    // std::atomic is not copyable: build a fresh value-initialized vector
    // instead of assign().
    words_ = std::vector<detail::Word>((size_ + 7) / 8);
    const auto* src = reinterpret_cast<const unsigned char*>(data.data());
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t v = 0;
      const std::size_t take = std::min<std::size_t>(8, size_ - w * 8);
      std::memcpy(&v, src + w * 8, take);
      words_[w].store(v, std::memory_order_release);
    }
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  // Transactional read of the whole buffer into `out` (must hold size()
  // bytes). Every word goes through the speculative read path.
  void read(Tx& tx, std::byte* out) const {
    auto* dst = reinterpret_cast<unsigned char*>(out);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t v = tx.read_word(&words_[w]);
      const std::size_t take = std::min<std::size_t>(8, size_ - w * 8);
      std::memcpy(dst + w * 8, &v, take);
    }
  }

  std::vector<std::byte> read(Tx& tx) const {
    std::vector<std::byte> out(size_);
    if (size_ > 0) read(tx, out.data());
    return out;
  }

  // Uninstrumented read: for lock-based code and deferred operations that
  // hold the owning object's TxLock.
  void read_direct(std::byte* out) const {
    auto* dst = reinterpret_cast<unsigned char*>(out);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t v = words_[w].load(std::memory_order_acquire);
      const std::size_t take = std::min<std::size_t>(8, size_ - w * 8);
      std::memcpy(dst + w * 8, &v, take);
    }
  }

  std::vector<std::byte> read_direct() const {
    std::vector<std::byte> out(size_);
    if (size_ > 0) read_direct(out.data());
    return out;
  }

 private:
  std::size_t size_ = 0;
  std::vector<detail::Word> words_;
};

}  // namespace adtm::stm
