#include "stm/registry.hpp"

#include "common/backoff.hpp"
#include "common/panic.hpp"
#include "common/stats.hpp"
#include "common/timing.hpp"
#include "liveness/activity.hpp"

namespace adtm::stm::detail {

CacheAligned<RegistrySlot> g_registry[kMaxThreads];
SerialGate g_serial_gate;
std::atomic<std::uint32_t> g_lockers{0};

namespace {
// A thread that exits while still holding TxLocks across transactions (a
// killed deferred-op thread — the stall stress case) would leave g_lockers
// elevated forever, wedging every future serial writer in its locker drain
// loop. Reconcile at thread exit: give the orphaned holds back to the
// global count and record the leak. The locks themselves stay "held" until
// a waiter observes the dead owner incarnation and calls break_orphaned().
struct LockerSlot {
  std::uint32_t depth = 0;
  ~LockerSlot() {
    if (depth != 0) {
      g_lockers.fetch_sub(depth, std::memory_order_seq_cst);
      stats().add(Counter::LockLeaks, depth);
      depth = 0;
    }
  }
};
}  // namespace

std::uint32_t& locker_depth() noexcept {
  thread_local LockerSlot slot;
  return slot.depth;
}

void registry_enter(std::uint64_t start_ts) noexcept {
  RegistrySlot& slot = my_slot();
  if (locker_depth() > 0) {
    // This thread holds a TxLock across transactions; its (small) lock
    // management transactions must be able to run while a serial writer
    // waits, or the writer could never drain the lockers. The writer does
    // not start executing until g_lockers hits zero, so this cannot run
    // concurrently with serial execution.
    slot.active_since.store(start_ts, std::memory_order_seq_cst);
    return;
  }
  Backoff bo;
  for (;;) {
    while (g_serial_gate.busy()) bo.pause();
    slot.active_since.store(start_ts, std::memory_order_seq_cst);
    // Re-check: a serial writer that set `writer` before our publish may
    // already have scanned our (then-idle) slot. If the gate is busy now,
    // withdraw and wait; otherwise any later writer will see our slot.
    if (!g_serial_gate.busy()) return;
    slot.active_since.store(0, std::memory_order_seq_cst);
  }
}

void quiesce_until(std::uint64_t commit_ts) noexcept {
  const std::uint32_t me = thread_id();
  ADTM_INVARIANT(g_registry[me]->active_since.load() == 0,
                 "quiesce with own slot still active");
  bool waited = false;
  for (std::uint32_t i = 0; i < kMaxThreads; ++i) {
    if (i == me) continue;
    Backoff bo;
    for (;;) {
      const std::uint64_t a =
          g_registry[i]->active_since.load(std::memory_order_acquire);
      if (a == 0 || a >= commit_ts) break;
      waited = true;
      bo.pause();
    }
  }
  if (waited) stats().add(Counter::QuiesceWaits);
}

void acquire_serial_gate() noexcept {
  const std::uint32_t me = thread_id();
  // The gate queue and both drain loops can block for a long time behind a
  // stalled peer; make that visible to the watchdog.
  liveness::set_state(liveness::ThreadState::SerialWait, now_ns());
  Backoff bo;
  std::uint32_t expected = kNoThread;
  while (!g_serial_gate.writer.compare_exchange_weak(
      expected, me, std::memory_order_acq_rel)) {
    expected = kNoThread;
    bo.pause();
  }
  // Drain every other speculative transaction. They complete on their own
  // (commit, conflict-abort, or retry-wait, all of which clear the slot);
  // new ones are blocked by registry_enter.
  for (std::uint32_t i = 0; i < kMaxThreads; ++i) {
    if (i == me) continue;
    Backoff drain;
    while (g_registry[i]->active_since.load(std::memory_order_acquire) != 0) {
      drain.pause();
    }
  }
  // Drain cross-transaction lock holders (other threads' deferred
  // operations and TxLockGuard sections), so the serial body can never
  // block on a TxLock it does not own. Our own holds are fine: TxLocks
  // are reentrant.
  Backoff drain;
  while (g_lockers.load(std::memory_order_seq_cst) != locker_depth()) {
    drain.pause();
  }
}

void release_serial_gate() noexcept {
  ADTM_INVARIANT(g_serial_gate.writer.load() == thread_id(),
                 "releasing a serial gate this thread does not hold");
  g_serial_gate.writer.store(kNoThread, std::memory_order_release);
}

}  // namespace adtm::stm::detail
