// Public software-transactional-memory API.
//
//   stm::init({.algo = stm::Algo::TL2});
//   stm::tvar<int> x{0};
//   stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
//
// Semantics:
//  * atomic() bodies may re-execute; they must be idempotent up to their
//    transactional effects (the standard TM contract).
//  * Nesting is flat: an atomic() inside an atomic() joins the enclosing
//    transaction (paper §4.2: "it is correct in C++ to nest transactions").
//  * An exception escaping the body of a *speculative* transaction rolls
//    the transaction back and propagates. Under CGL or serial-irrevocable
//    execution effects cannot be undone: the exception propagates with
//    effects retained (GCC `synchronized` behaves the same way).
//  * retry(tx) aborts and re-executes once a location in the read set may
//    have changed (Harris-style condition synchronization, paper §4.2).
//    Under CGL/serial modes it is only legal before the transaction's
//    first write, because direct-mode writes cannot be rolled back.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "common/deadline.hpp"
#include "stm/config.hpp"
#include "stm/runtime.hpp"
#include "stm/tx.hpp"

namespace adtm::stm {

// Raised out of atomic() when a deadline-aware retry (a retry with a
// bounded Deadline, or the timed TxLock/TxCondVar waits built on it)
// expired before the awaited condition changed. The transaction has been
// rolled back; catching this and re-invoking atomic() is always safe.
struct RetryTimeout : std::runtime_error {
  explicit RetryTimeout(const char* what) : std::runtime_error(what) {}
};

// Install a runtime configuration. Must be called while no transactions
// are in flight. May be called repeatedly (e.g. between bench phases) to
// switch algorithms. Thread registries, orecs, and the global clock
// persist across calls, so transactional data stays valid.
void init(const Config& config);

// Current configuration.
const Config& config() noexcept;

// True if the calling thread is inside a transaction.
bool in_transaction() noexcept;

// Run `body` (callable taking Tx&) as a transaction; returns its result.
template <typename F>
auto atomic(F&& body) -> std::invoke_result_t<F&, Tx&> {
  using R = std::invoke_result_t<F&, Tx&>;
  if constexpr (std::is_void_v<R>) {
    detail::run_atomic(detail::FunctionRef<void(Tx&)>(body));
  } else {
    // Default-constructibility is not required: stash the result.
    alignas(R) unsigned char storage[sizeof(R)];
    R* slot = nullptr;
    auto wrapper = [&](Tx& tx) {
      // A re-executed body overwrites the previous attempt's result.
      if (slot != nullptr) {
        slot->~R();
        slot = nullptr;
      }
      slot = ::new (static_cast<void*>(storage)) R(body(tx));
    };
    detail::run_atomic(detail::FunctionRef<void(Tx&)>(wrapper));
    if (slot == nullptr) {
      // cancel() aborted the transaction before the body produced a value.
      throw std::logic_error(
          "stm::atomic: cancelled transaction has no result "
          "(use a void body with cancel())");
    }
    R result = std::move(*slot);
    slot->~R();
    return result;
  }
}

// Run `body` as a closed-nested scope (paper §8's future-work question,
// answered): inside an enclosing transaction, a cancel() or exception in
// the body rolls back ONLY the scope's effects — tvar writes, TxLock
// acquisitions, deferred operations registered via atomic_defer,
// allocations — and the enclosing transaction continues (partial
// rollback). Outside a transaction it behaves exactly like atomic().
// In direct modes (CGL / serial-irrevocable) the scope flattens.
// Conflict aborts and retry() always restart the whole transaction.
template <typename F>
auto atomic_nested(F&& body) -> std::invoke_result_t<F&, Tx&> {
  using R = std::invoke_result_t<F&, Tx&>;
  if constexpr (std::is_void_v<R>) {
    detail::run_atomic_nested(detail::FunctionRef<void(Tx&)>(body));
  } else {
    alignas(R) unsigned char storage[sizeof(R)];
    R* slot = nullptr;
    auto wrapper = [&](Tx& tx) {
      if (slot != nullptr) {
        slot->~R();
        slot = nullptr;
      }
      slot = ::new (static_cast<void*>(storage)) R(body(tx));
    };
    detail::run_atomic_nested(detail::FunctionRef<void(Tx&)>(wrapper));
    if (slot == nullptr) {
      throw std::logic_error(
          "stm::atomic_nested: cancelled scope has no result "
          "(use a void body with cancel())");
    }
    R result = std::move(*slot);
    slot->~R();
    return result;
  }
}

// Condition synchronization: abort the transaction and re-execute once a
// read-set location may have changed (Harris-style; must be called inside
// a transaction). With a bounded Deadline, the driver raises RetryTimeout
// out of the atomic() call once it passes instead of waiting forever.
// Waiters also wake early when any thread exits (so orphaned-owner checks
// re-run) and on lock poison (a transactional write like any other). An
// absolute Deadline survives re-execution: construct it once *outside*
// the transaction so a spurious wake-up does not extend the budget;
// passing a duration here re-arms the window on every attempt (see
// common/deadline.hpp).
[[noreturn]] void retry(Tx& tx, Deadline deadline = {});

// Deprecated spellings from the pre-Deadline API; thin forwarders.
[[noreturn]] [[deprecated("use retry(tx, Deadline::at(deadline_ns))")]]
inline void retry_until(Tx& tx, std::uint64_t deadline_ns) {
  retry(tx, Deadline::at(deadline_ns == 0 ? 1 : deadline_ns));
}

[[noreturn]] [[deprecated("use retry(tx, timeout)")]]
inline void retry_for(Tx& tx, std::chrono::nanoseconds timeout) {
  retry(tx, Deadline(timeout));
}

// Abort the transaction, discarding all effects; atomic() returns normally
// without re-executing. Illegal in CGL/serial modes (cannot roll back).
[[noreturn]] void cancel(Tx& tx);

// Restart this transaction in serial-irrevocable mode (models the TMTS
// `synchronized` escalation GCC performs on unsafe operations). After this
// returns, tx.irrevocable() is true and the body cannot abort.
void become_irrevocable(Tx& tx);

// Transactional allocation helpers (free is deferred past quiescence and
// commit epilogues, per Listing 1).
inline void* tx_alloc(Tx& tx, std::size_t bytes) { return tx.alloc(bytes); }
inline void tx_free(Tx& tx, void* ptr) { tx.free(ptr); }

}  // namespace adtm::stm
