#include "stm/tx.hpp"

#include <cstdlib>
#include <new>
#include <thread>

#include "common/backoff.hpp"
#include "common/panic.hpp"
#include "common/stats.hpp"
#include "common/timing.hpp"
#include "common/tsan.hpp"
#include "liveness/activity.hpp"
#include "stm/backend.hpp"
#include "liveness/contention.hpp"
#include "liveness/wait_graph.hpp"
#include "stm/control.hpp"
#include "stm/orec.hpp"
#include "stm/registry.hpp"
#include "stm/runtime.hpp"
#include "tmsan/tmsan.hpp"

namespace adtm::stm {

using detail::ConflictAbort;
using detail::CapacityAbort;

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

namespace {

// NOrec: wait until the global sequence lock is even (no writer
// publishing) and return it.
std::uint64_t norec_snapshot() noexcept {
  auto& seq = detail::runtime().norec_seq;
  for (;;) {
    const std::uint64_t s = seq.load(std::memory_order_acquire);
    if ((s & 1) == 0) {
      ADTM_TSAN_ACQUIRE(&seq);
      return s;
    }
    cpu_relax();
  }
}

}  // namespace

void Tx::begin(const Backend* backend, Mode mode, std::uint32_t attempt) {
  ADTM_INVARIANT(!in_tx_, "begin() on an active transaction");
  ADTM_INVARIANT(backend != nullptr, "begin() without a backend");
  mode_ = mode;
  backend_ = backend;
  algo_ = backend->core;
  attempt_ = attempt;
  tid_ = thread_id();
  wrote_direct_ = false;
  reads_.clear();
  writes_.clear();
  undo_.clear();
  locks_.clear();
  norec_reads_.clear();
  if (mode_ == Mode::Speculative) {
    // Priority-aware karma: a starved thread that took the contention
    // manager's token runs its attempts privileged — the access paths
    // below arbitrate conflicts in its favor. The attempt shield (NOrec)
    // goes up before the first read so no rival commit can slip between
    // the snapshot and the shield.
    priority_ = liveness::contention().has_priority();
    if (priority_) liveness::contention().set_priority_attempt(true);
    start_ = (algo_ == Algo::NOrec) ? norec_snapshot() : clock_now();
    detail::registry_enter(start_);
    // registry_enter may have waited for a serial writer — which may have
    // been switch_backend() swapping the active backend at the gate.
    // Re-resolve so this attempt runs the post-switch algorithm, then
    // refresh the snapshot so we do not start in the past relative to the
    // writer's effects.
    const Backend* cur =
        detail::runtime().active_backend.load(std::memory_order_acquire);
    if (cur != nullptr && cur != backend_) {
      backend_ = cur;
      algo_ = cur->core;
    }
    start_ = (algo_ == Algo::NOrec) ? norec_snapshot() : clock_now();
    detail::my_slot().active_since.store(start_, std::memory_order_seq_cst);
  } else {
    priority_ = false;
  }
  // Snapshot for retry's serial-commit watch: taken before any read so a
  // serial commit overlapping this attempt always wakes the waiter.
  retry_serial_snap_ =
      detail::runtime().serial_commits.load(std::memory_order_acquire);
  // Same argument for the thread-exit watch: an owner that exits between a
  // failed ownership check and the park must still wake the waiter.
  retry_exit_snap_ = thread_exit_count();
  // A wait edge published by the previous attempt (which parked on a lock
  // and was woken) is stale once a new attempt starts.
  if (liveness::has_wait_edge()) liveness::clear_wait();
  liveness::set_state(liveness::ThreadState::InTx,
                      attempt == 1 ? now_ns() : 0);
  in_tx_ = true;
  stats().add(Counter::TxStart);
  tmsan::on_tx_begin(mode_ != Mode::Speculative);
  // Extension backends reset their per-attempt state last, with all the
  // common bookkeeping (registry slot, snapshot, liveness) in place.
  if (mode_ == Mode::Speculative && backend_->ops != nullptr) {
    backend_->ops->begin(*this);
  }
}

void Tx::commit() {
  if (mode_ != Mode::Speculative) {
    // Direct modes have already applied their effects. The opacity
    // primary key is a post-effect clock/seq sample: every speculative
    // transaction serialized after this one observes at least this value.
    if (tmsan::active()) {
      tmsan::on_tx_commit(
          algo_ == Algo::NOrec
              ? detail::runtime().norec_seq.load(std::memory_order_acquire)
              : clock_now());
    }
    in_tx_ = false;
    return;
  }
  if (backend_->ops != nullptr) {
    // Extension backends own their whole commit protocol (publication,
    // tmsan filing, lock release, registry exit, quiescence).
    backend_->ops->commit(*this);
    return;
  }
  if (algo_ == Algo::NOrec) {
    commit_norec();
    return;
  }
  const Config& cfg = detail::runtime().config;
  const bool read_only = (algo_ == Algo::TL2) ? writes_.empty() : locks_.empty();
  if (read_only) {
    // Commit-time validation: the transaction linearizes at commit, not at
    // its start timestamp. Incremental (start-time) validity is not enough
    // for the paper's subscribe pattern — a deferred operation may write
    // lock-protected data *directly* (no orec updates), and the only
    // conflict trace it leaves is the lock owner's orec changing when the
    // lock was acquired. Re-validating the read set here catches that:
    // a subscriber whose lock word changed after it subscribed aborts
    // instead of returning a view mixing old transactional state with new
    // directly-written state. Skipped when nothing committed since our
    // snapshot (direct writes only happen after a lock-acquiring commit).
    if (clock_now() != start_) {
      validate_reads();  // throws ConflictAbort; rollback() cleans up
    }
    reads_.clear();
    detail::registry_leave();
    tmsan::on_tx_commit(0);  // read-only: nothing enters the history
    in_tx_ = false;
    return;
  }

  if (algo_ == Algo::TL2) {
    // Lazy versioning: acquire all write locks now, then publish.
    for (const auto& e : writes_.entries()) {
      lock_orec_for_write(orec_for(e.addr));
    }
  }

  const std::uint64_t wt = clock_advance();
  if (wt != start_ + 1) {
    validate_reads();  // throws ConflictAbort; rollback() cleans up
  }

  if (algo_ == Algo::TL2) {
    for (const auto& e : writes_.entries()) {
      e.addr->store(e.value, std::memory_order_relaxed);
    }
  }
  // Record the write set in the opacity history before releasing the
  // write locks: rival readers spin on the locked orecs, so no value this
  // commit publishes can be observed — let alone validated against the
  // history — before its record is filed. Filing after release leaves a
  // window where a reader validates a value whose version is missing
  // (usually just "unverifiable", but under address-recycling ABA the
  // value maps onto a stale interval: a false inconsistency). Also before
  // leaving the registry: the serial gate drains registry slots, so a
  // direct-mode transaction that ties this one's primary key (the clock
  // does not advance for direct commits) must find this record already
  // filed — arrival order then matches real commit order.
  tmsan::on_tx_commit(wt);
  locks_.release_all(make_orec_version(wt));
  locks_.clear();
  undo_.clear();
  writes_.clear();
  reads_.clear();
  detail::registry_leave();
  // Privatization safety (paper §2): a writer must wait for every
  // transaction that was concurrently active before its caller may touch
  // privatized memory non-transactionally. The paper's Listing 1 marks
  // Quiesce() as STM-only because hardware commits are instantaneous;
  // our HTM *simulation* has a commit/abort cleanup window, so it must
  // quiesce too to preserve the strong isolation real HTM provides.
  if (cfg.quiescence) {
    detail::quiesce_until(wt);
  }
  in_tx_ = false;
}

void Tx::commit_norec() {
  const Config& cfg = detail::runtime().config;
  auto& seq = detail::runtime().norec_seq;
  if (writes_.empty()) {
    // Read-only: linearize at commit (see the orec-path comment); here
    // the validation is by value, so even a direct (lock-protected) write
    // by a deferred operation is caught.
    if (seq.load(std::memory_order_acquire) != start_) {
      (void)norec_validate();  // throws ConflictAbort on mismatch
    }
    norec_reads_.clear();
    detail::registry_leave();
    tmsan::on_tx_commit(0);  // read-only: nothing enters the history
    in_tx_ = false;
    return;
  }

  // Priority arbitration on the sequence-lock race: while a starved
  // (privileged) attempt is in flight, rival writers hold their commit
  // back so the privileged thread's value validation cannot be invalidated
  // under it. Bounded by priority_wait_ns — politeness, not a lockout.
  if (!priority_) {
    auto& cm = liveness::contention();
    if (cm.priority_attempt_active()) {
      stats().add(Counter::CmPriorityYields);
      const std::uint64_t deadline = now_ns() + cfg.priority_wait_ns;
      while (cm.priority_attempt_active() && now_ns() < deadline) {
        std::this_thread::yield();
      }
    }
  }

  // Acquire the sequence lock at a snapshot we are valid at.
  std::uint64_t s = start_;
  while (!seq.compare_exchange_weak(s, s + 1, std::memory_order_acq_rel)) {
    s = norec_validate();  // adopt a newer consistent snapshot (or abort)
  }
  if (priority_) stats().add(Counter::CmPriorityWins);
  for (const auto& e : writes_.entries()) {
    e.addr->store(e.value, std::memory_order_relaxed);
  }
  // File the write set while the sequence lock is still odd: readers wait
  // for an even sequence, so publication (the store below) cannot beat the
  // history record — same ABA-filing argument as the orec path. Also
  // before registry_leave: a direct-mode commit tying this primary key
  // (norec_seq is not bumped by direct commits) is gated behind our
  // registry slot.
  tmsan::on_tx_commit(s + 2);
  ADTM_TSAN_RELEASE(&seq);
  seq.store(s + 2, std::memory_order_release);

  norec_reads_.clear();
  writes_.clear();
  detail::registry_leave();
  if (cfg.quiescence) {
    detail::quiesce_until(s + 2);
  }
  in_tx_ = false;
}

std::uint64_t Tx::norec_validate() {
  auto& seq = detail::runtime().norec_seq;
  for (;;) {
    const std::uint64_t s = seq.load(std::memory_order_acquire);
    if ((s & 1) != 0) {
      cpu_relax();
      continue;
    }
    for (const auto& e : norec_reads_.entries()) {
      if (e.addr->load(std::memory_order_relaxed) != e.value) {
        throw detail::ConflictAbort{obs::AbortCause::ConflictNorecValue};
      }
    }
    if (seq.load(std::memory_order_acquire) == s) {
      ADTM_TSAN_ACQUIRE(&seq);
      start_ = s;
      return s;
    }
  }
}

std::uint64_t Tx::read_word_norec(const detail::Word* addr) {
  std::uint64_t buffered;
  if (writes_.lookup(addr, &buffered)) return buffered;
  auto& seq = detail::runtime().norec_seq;
  std::uint64_t v = addr->load(std::memory_order_acquire);
  while (seq.load(std::memory_order_acquire) != start_) {
    (void)norec_validate();  // re-snapshot; aborts if a prior read changed
    v = addr->load(std::memory_order_acquire);
  }
  norec_reads_.push(addr, v);
  tmsan::on_tx_read(addr, v);
  return v;
}

void Tx::rollback() noexcept {
  // The attempt is over: drop the NOrec shield so rivals held back for
  // this privileged attempt do not stall while we park or back off.
  if (priority_) liveness::contention().set_priority_attempt(false);
  // Extension-state cleanup (e.g. 2PL reader indicators) before the
  // generic undo/lock unwinding below.
  if (backend_ != nullptr && backend_->ops != nullptr) {
    backend_->ops->rollback(*this);
  }
  undo_.rollback();
  undo_.clear();
  locks_.restore_all();
  locks_.clear();
  reads_.clear();
  norec_reads_.clear();
  writes_.clear();
  for (void* p : allocs_) std::free(p);
  allocs_.clear();
  frees_.clear();
  epilogues_.clear();
  if (mode_ == Mode::Speculative) detail::registry_leave();
  tmsan::on_tx_abort();
  in_tx_ = false;
  // Undo non-transactional bookkeeping registered by this attempt.
  for (auto it = abort_hooks_.rbegin(); it != abort_hooks_.rend(); ++it) {
    (*it)();
  }
  abort_hooks_.clear();
}

void Tx::capture_watch() {
  retry_watch_ = reads_.entries();
  retry_value_watch_ = norec_reads_.entries();
  // The wake-up snapshots must predate every read the retry decision was
  // based on, or a commit landing between the failed predicate check and
  // this capture is lost. start_ is the seq all NOrec reads are valid at;
  // the serial counter was snapshotted at begin().
  retry_norec_snap_ = start_;
}

// ---------------------------------------------------------------------------
// Access paths
// ---------------------------------------------------------------------------

std::uint64_t Tx::read_word(const detail::Word* addr) {
  ADTM_INVARIANT(in_tx_, "read_word outside a transaction");
  if (mode_ != Mode::Speculative) {
    const std::uint64_t v = addr->load(std::memory_order_relaxed);
    tmsan::on_tx_read(addr, v);
    return v;
  }
  if (backend_->ops != nullptr) return backend_->ops->read_word(*this, addr);
  if (algo_ == Algo::NOrec) return read_word_norec(addr);
  return read_word_speculative(addr);
}

// Shared busy-orec arbitration for the speculative access paths. Returns
// normally to keep spinning, throws ConflictAbort to give up. State lives
// in the caller's loop: `spins` counts busy samples, `patience_deadline`
// is armed on the first privileged spin, and `outwaited` flags a win for
// the stats once the caller succeeds past the normal spin budget.
void Tx::arbitrate_busy_orec(OrecWord s, std::uint32_t& spins,
                             std::uint64_t& patience_deadline,
                             bool& outwaited) {
  const Config& cfg = detail::runtime().config;
  if (algo_ == Algo::HTMSim) {
    conflict_abort(obs::AbortCause::ConflictLockBusy);  // hw cannot spin
  }
  if (priority_) {
    // Privileged (starved past ADTM_STARVATION_THRESHOLD): outwait the
    // owner instead of self-aborting — this is the arbitration win that
    // replaces after-the-fact serial escalation. Bounded by
    // priority_wait_ns: the owner may itself be wedged, and a privileged
    // thread spinning forever would convert starvation into deadlock.
    if (spins == 0) patience_deadline = now_ns() + cfg.priority_wait_ns;
    ++spins;
    if (spins > cfg.lock_spin_limit) outwaited = true;
    if ((spins & 1023u) == 0) {
      // Let the owner run (essential on few-core machines) and honor the
      // patience bound without paying a clock read per spin.
      std::this_thread::yield();
      if (now_ns() >= patience_deadline) {
        conflict_abort(obs::AbortCause::ConflictLockBusy);
      }
    }
    cpu_relax();
    return;
  }
  if (orec_owner(s) == liveness::contention().priority_thread()) {
    // The owner is the starved priority thread: step aside immediately
    // instead of spinning against it (low karma loses the conflict).
    stats().add(Counter::CmPriorityYields);
    conflict_abort(obs::AbortCause::ConflictPriorityYield);
  }
  if (++spins > cfg.lock_spin_limit) {
    conflict_abort(obs::AbortCause::ConflictLockBusy);
  }
  cpu_relax();
}

std::uint64_t Tx::read_word_speculative(const detail::Word* addr) {
  std::uint64_t buffered;
  if (algo_ == Algo::TL2 && writes_.lookup(addr, &buffered)) {
    return buffered;
  }
  Orec& o = orec_for(addr);
  std::uint32_t spins = 0;
  std::uint64_t patience_deadline = 0;
  bool outwaited = false;
  for (;;) {
    const OrecWord s1 = o.load(std::memory_order_acquire);
    if (orec_locked(s1)) {
      if (orec_locked_by(s1, tid_)) {
        // Eager/HTMSim own the line: the in-place value is ours (the
        // write-lock path extended the snapshot past the line's version).
        return addr->load(std::memory_order_relaxed);
      }
      arbitrate_busy_orec(s1, spins, patience_deadline, outwaited);
      continue;
    }
    if (orec_version(s1) > start_) {
      if (!extend()) conflict_abort(obs::AbortCause::ConflictValidation);
      continue;  // resample under the extended snapshot
    }
    const std::uint64_t v = addr->load(std::memory_order_acquire);
    if (o.load(std::memory_order_acquire) != s1) continue;
    reads_.push(&o, s1);
    if (algo_ == Algo::HTMSim) check_htm_budget();
    if (outwaited) stats().add(Counter::CmPriorityWins);
    tmsan::on_tx_read(addr, v);
    return v;
  }
}

void Tx::write_word(detail::Word* addr, std::uint64_t value) {
  ADTM_INVARIANT(in_tx_, "write_word outside a transaction");
  if (mode_ != Mode::Speculative) {
    wrote_direct_ = true;
    addr->store(value, std::memory_order_relaxed);
    tmsan::on_tx_write(addr, value);
    return;
  }
  if (backend_->ops != nullptr) {
    backend_->ops->write_word(*this, addr, value);
    return;
  }
  if (algo_ == Algo::TL2 || algo_ == Algo::NOrec) {
    writes_.insert(addr, value);
    tmsan::on_tx_write(addr, value);
    return;
  }
  // Eager / HTMSim: encounter-time lock, log old value, write in place.
  Orec& o = orec_for(addr);
  lock_orec_for_write(o);
  undo_.push(addr, addr->load(std::memory_order_relaxed));
  addr->store(value, std::memory_order_relaxed);
  tmsan::on_tx_write(addr, value);
}

void Tx::lock_orec_for_write(Orec& o) {
  std::uint32_t spins = 0;
  std::uint64_t patience_deadline = 0;
  bool outwaited = false;
  for (;;) {
    OrecWord s = o.load(std::memory_order_acquire);
    if (orec_locked(s)) {
      if (orec_locked_by(s, tid_)) return;  // already ours
      arbitrate_busy_orec(s, spins, patience_deadline, outwaited);
      continue;
    }
    if (orec_version(s) > start_) {
      // Owning a line makes all of its words readable in place, so the
      // snapshot must cover the line's current version (TinySTM rule).
      if (!extend()) conflict_abort(obs::AbortCause::ConflictValidation);
      continue;
    }
    if (o.compare_exchange_weak(s, make_orec_locked(tid_),
                                std::memory_order_acq_rel)) {
      ADTM_TSAN_ACQUIRE(&o);
      locks_.push(&o, s);
      if (algo_ == Algo::HTMSim) check_htm_budget();
      if (outwaited) stats().add(Counter::CmPriorityWins);
      return;
    }
  }
}

bool Tx::extend() {
  const std::uint64_t now = clock_now();
  for (const auto& e : reads_.entries()) {
    const OrecWord cur = e.orec->load(std::memory_order_acquire);
    if (cur == e.seen) continue;
    OrecWord prev;
    if (orec_locked_by(cur, tid_) && locks_.prev_of(e.orec, &prev) &&
        prev == e.seen) {
      continue;
    }
    return false;
  }
  start_ = now;
  return true;
}

void Tx::validate_reads() {
  for (const auto& e : reads_.entries()) {
    const OrecWord cur = e.orec->load(std::memory_order_acquire);
    if (cur == e.seen) continue;
    OrecWord prev;
    if (orec_locked_by(cur, tid_) && locks_.prev_of(e.orec, &prev) &&
        prev == e.seen) {
      continue;
    }
    throw ConflictAbort{obs::AbortCause::ConflictValidation};
  }
}

void Tx::check_htm_budget() {
  const Config& cfg = detail::runtime().config;
  if (reads_.size() + locks_.size() > cfg.htm_capacity) {
    throw CapacityAbort{};
  }
}

void Tx::conflict_abort(obs::AbortCause cause) { throw ConflictAbort{cause}; }

// ---------------------------------------------------------------------------
// Services
// ---------------------------------------------------------------------------

Tx::NestedCheckpoint Tx::nested_checkpoint() const {
  return NestedCheckpoint{
      reads_.size(),         norec_reads_.size(),
      writes_.size(),        writes_.overwrite_count(),
      undo_.size(),          locks_.size(),
      allocs_.size(),        frees_.size(),
      epilogues_.size(),     abort_hooks_.size(),
  };
}

void Tx::nested_abort(const NestedCheckpoint& cp) noexcept {
  tmsan::on_nested_abort();
  // Order matters, mirroring full rollback: undo in-place values first,
  // then release the orecs acquired by the nested scope.
  undo_.rollback_from(cp.undo);
  locks_.restore_from(cp.locks);
  // Deliberately NOT truncated: reads_/norec_reads_. Values observed in
  // the aborted scope can leak into the parent's control flow (a caught
  // exception, a captured local), so they must stay validated until the
  // whole transaction commits. The only cost is possible false conflicts.
  writes_.revert_to(cp.write_entries, cp.write_overwrites);
  for (std::size_t i = allocs_.size(); i > cp.allocs; --i) {
    std::free(allocs_[i - 1]);
  }
  allocs_.resize(cp.allocs);
  frees_.resize(cp.frees);
  epilogues_.resize(cp.epilogues);
  // Compensate non-transactional bookkeeping done by the nested scope
  // (e.g. TxLock locker accounting), newest first.
  for (std::size_t i = abort_hooks_.size(); i > cp.abort_hooks; --i) {
    abort_hooks_[i - 1]();
  }
  abort_hooks_.resize(cp.abort_hooks);
}

void Tx::on_commit(std::function<void()> fn) {
  ADTM_INVARIANT(in_tx_, "on_commit outside a transaction");
  epilogues_.push_back(std::move(fn));
}

void Tx::on_abort(std::function<void()> fn) {
  ADTM_INVARIANT(in_tx_, "on_abort outside a transaction");
  abort_hooks_.push_back(std::move(fn));
}

void* Tx::alloc(std::size_t bytes) {
  ADTM_INVARIANT(in_tx_, "tx alloc outside a transaction");
  void* p = std::malloc(bytes);
  if (p == nullptr) throw std::bad_alloc{};
  allocs_.push_back(p);
  // The allocator may recycle an address whose words carry tmsan state
  // from a freed object; that state must not constrain this one.
  tmsan::on_tx_alloc(p, bytes);
  return p;
}

void Tx::free(void* ptr) {
  ADTM_INVARIANT(in_tx_, "tx free outside a transaction");
  if (ptr != nullptr) frees_.push_back(ptr);
}

}  // namespace adtm::stm
