// Ownership records (orecs) and the global version clock.
//
// Every transactional word maps (by address hash) to one orec in a global
// table. An orec packs either a version timestamp or a lock word:
//
//   unlocked: [ version : 63 | 0 ]   version taken from the global clock
//   locked:   [ owner   : 63 | 1 ]   owner = small thread id of the locker
//
// Readers sample the orec around the data load; writers lock it (lazily at
// commit for TL2, at first write for Eager/HTMSim).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"
#include "common/thread_id.hpp"
#include "common/tsan.hpp"

namespace adtm::stm {

using OrecWord = std::uint64_t;

inline constexpr OrecWord kOrecLockBit = 1;

constexpr bool orec_locked(OrecWord s) noexcept { return (s & kOrecLockBit) != 0; }
constexpr std::uint64_t orec_version(OrecWord s) noexcept { return s >> 1; }
constexpr std::uint32_t orec_owner(OrecWord s) noexcept {
  return static_cast<std::uint32_t>(s >> 1);
}
constexpr OrecWord make_orec_version(std::uint64_t v) noexcept { return v << 1; }
constexpr OrecWord make_orec_locked(std::uint32_t owner) noexcept {
  return (static_cast<OrecWord>(owner) << 1) | kOrecLockBit;
}
constexpr bool orec_locked_by(OrecWord s, std::uint32_t tid) noexcept {
  return orec_locked(s) && orec_owner(s) == tid;
}

using Orec = std::atomic<OrecWord>;

// 2^20 orecs (8 MiB). Collisions are benign (false conflicts only).
inline constexpr std::size_t kOrecCountLog2 = 20;
inline constexpr std::size_t kOrecCount = std::size_t{1} << kOrecCountLog2;

namespace detail {
extern Orec g_orecs[kOrecCount];
extern CacheAligned<std::atomic<std::uint64_t>> g_clock;
}  // namespace detail

// Address-to-orec mapping at 64-byte (cache line) granularity. Line
// granularity matches hardware conflict detection for the HTM simulation
// and keeps sequential scans cheap for the software algorithms; the cost
// is word-level false sharing inside one line, which real HTM has too.
inline Orec& orec_for(const void* addr) noexcept {
  auto a = reinterpret_cast<std::uintptr_t>(addr) >> 6;
  a ^= a >> kOrecCountLog2;  // fold high bits so heap strides spread out
  return detail::g_orecs[a & (kOrecCount - 1)];
}

// The clock annotations give TSan the happens-before edge the algorithms
// really rely on: a reader that samples timestamp T synchronizes with
// every writer that advanced the clock to <= T. Without them TSan sees
// only per-orec edges and reports the (correct) timestamp-ordered data
// accesses as races.
inline std::uint64_t clock_now() noexcept {
  const std::uint64_t t = detail::g_clock->load(std::memory_order_acquire);
  ADTM_TSAN_ACQUIRE(&detail::g_clock);
  return t;
}

inline std::uint64_t clock_advance() noexcept {
  ADTM_TSAN_RELEASE(&detail::g_clock);
  return detail::g_clock->fetch_add(1, std::memory_order_acq_rel) + 1;
}

}  // namespace adtm::stm
