// Per-transaction logs: read set, redo-log write set, undo log, lock log.
//
// All containers are reused across transaction attempts (clear() keeps
// capacity), so steady-state transactions allocate nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "stm/orec.hpp"

namespace adtm::stm::detail {

// The unit of transactional data. All tvar storage is made of these, which
// keeps every speculative access a well-defined atomic operation.
using Word = std::atomic<std::uint64_t>;

struct ReadEntry {
  Orec* orec;
  OrecWord seen;  // orec sample the read was validated against
};

class ReadSet {
 public:
  void push(Orec* o, OrecWord seen) {
    // Cheap filter: consecutive reads of the same line (sequential scans)
    // produce one entry. Keeps validation and HTM-sim capacity accounting
    // proportional to the footprint, not the access count.
    if (!entries_.empty() && entries_.back().orec == o) return;
    entries_.push_back({o, seen});
  }
  void clear() noexcept { entries_.clear(); }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<ReadEntry>& entries() const noexcept { return entries_; }

  // Closed nesting: forget reads performed after a checkpoint.
  void truncate(std::size_t n) noexcept { entries_.resize(n); }

 private:
  std::vector<ReadEntry> entries_;
};

// Redo-log write set with open-addressing lookup by word address (TL2).
class WriteSet {
 public:
  WriteSet() { rehash(64); }

  void insert(Word* addr, std::uint64_t value) {
    if (std::size_t* slot = find_slot(addr); *slot != kEmpty) {
      // Record the overwritten value so closed-nested scopes can revert
      // buffered writes belonging to their parent.
      overwrites_.push_back({*slot, entries_[*slot].value});
      entries_[*slot].value = value;
      return;
    }
    entries_.push_back({addr, value});
    if ((entries_.size() + 1) * 2 > index_.size()) {
      rehash(index_.size() * 2);
    } else {
      *find_slot(addr) = entries_.size() - 1;
    }
  }

  // Returns true and fills *out when addr has a buffered value.
  bool lookup(const Word* addr, std::uint64_t* out) const noexcept {
    if (entries_.empty()) return false;
    const std::size_t mask = index_.size() - 1;
    for (std::size_t i = hash(addr) & mask;; i = (i + 1) & mask) {
      const std::size_t e = index_[i];
      if (e == kEmpty) return false;
      if (entries_[e].addr == addr) {
        *out = entries_[e].value;
        return true;
      }
    }
  }

  void clear() noexcept {
    if (!entries_.empty()) {
      entries_.clear();
      std::memset(index_.data(), 0xff, index_.size() * sizeof(index_[0]));
    }
    overwrites_.clear();
  }

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t overwrite_count() const noexcept { return overwrites_.size(); }

  // Closed nesting: revert to a checkpoint taken as (size(),
  // overwrite_count()). Overwrites of surviving entries are undone in
  // reverse; entries added after the checkpoint are dropped.
  void revert_to(std::size_t n_entries, std::size_t n_overwrites) {
    for (std::size_t i = overwrites_.size(); i > n_overwrites; --i) {
      const Overwrite& o = overwrites_[i - 1];
      if (o.entry_index < n_entries) {
        entries_[o.entry_index].value = o.old_value;
      }
    }
    overwrites_.resize(n_overwrites);
    if (entries_.size() != n_entries) {
      entries_.resize(n_entries);
      rehash(index_.size());  // rebuild the index over surviving entries
    }
  }

  struct Entry {
    Word* addr;
    std::uint64_t value;
  };
  const std::vector<Entry>& entries() const noexcept { return entries_; }

 private:
  static constexpr std::size_t kEmpty = ~std::size_t{0};

  static std::size_t hash(const Word* addr) noexcept {
    auto a = reinterpret_cast<std::uintptr_t>(addr) >> 3;
    a *= 0x9e3779b97f4a7c15ULL;
    return a ^ (a >> 29);
  }

  std::size_t* find_slot(const Word* addr) noexcept {
    const std::size_t mask = index_.size() - 1;
    std::size_t i = hash(addr) & mask;
    while (index_[i] != kEmpty && entries_[index_[i]].addr != addr) {
      i = (i + 1) & mask;
    }
    return &index_[i];
  }

  void rehash(std::size_t n) {
    index_.assign(n, kEmpty);
    for (std::size_t e = 0; e < entries_.size(); ++e) {
      *find_slot(entries_[e].addr) = e;
    }
  }

  struct Overwrite {
    std::size_t entry_index;
    std::uint64_t old_value;
  };

  std::vector<Entry> entries_;
  std::vector<std::size_t> index_;
  std::vector<Overwrite> overwrites_;
};

// Value-based read set (NOrec): the address and the value observed. Reads
// are consistent as long as every recorded address still holds its
// recorded value at a moment when the global sequence lock is even.
struct ValueReadEntry {
  const Word* addr;
  std::uint64_t value;
};

class ValueReadSet {
 public:
  void push(const Word* addr, std::uint64_t value) {
    entries_.push_back({addr, value});
  }
  void clear() noexcept { entries_.clear(); }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<ValueReadEntry>& entries() const noexcept {
    return entries_;
  }

  // Closed nesting: forget reads performed after a checkpoint.
  void truncate(std::size_t n) noexcept { entries_.resize(n); }

 private:
  std::vector<ValueReadEntry> entries_;
};

// Old values for in-place (Eager/HTMSim) writes, replayed backwards on
// abort. Duplicate addresses are fine: reverse replay restores the oldest.
class UndoLog {
 public:
  void push(Word* addr, std::uint64_t old_value) {
    entries_.push_back({addr, old_value});
  }
  void rollback() noexcept { rollback_from(0); }

  // Closed nesting: undo (in reverse) only the writes performed after a
  // checkpoint, then forget them.
  void rollback_from(std::size_t n) noexcept {
    for (std::size_t i = entries_.size(); i > n; --i) {
      entries_[i - 1].addr->store(entries_[i - 1].value,
                                  std::memory_order_relaxed);
    }
    entries_.resize(n);
  }

  void clear() noexcept { entries_.clear(); }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    Word* addr;
    std::uint64_t value;
  };
  std::vector<Entry> entries_;
};

// Orecs this transaction holds locked, with their pre-lock version words.
class LockLog {
 public:
  void push(Orec* o, OrecWord prev) { entries_.push_back({o, prev}); }

  // Pre-lock version of an orec we hold; used by read-set validation.
  bool prev_of(const Orec* o, OrecWord* out) const noexcept {
    for (const auto& e : entries_) {
      if (e.orec == o) {
        *out = e.prev;
        return true;
      }
    }
    return false;
  }

  void release_all(OrecWord new_word) noexcept {
    for (const auto& e : entries_) {
      ADTM_TSAN_RELEASE(e.orec);
      e.orec->store(new_word, std::memory_order_release);
    }
  }

  void restore_all() noexcept { restore_from(0); }

  // Closed nesting: release (restoring pre-lock words) only the orecs
  // acquired after a checkpoint, then forget them.
  void restore_from(std::size_t n) noexcept {
    for (std::size_t i = entries_.size(); i > n; --i) {
      ADTM_TSAN_RELEASE(entries_[i - 1].orec);
      entries_[i - 1].orec->store(entries_[i - 1].prev,
                                  std::memory_order_release);
    }
    entries_.resize(n);
  }

  void clear() noexcept { entries_.clear(); }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    Orec* orec;
    OrecWord prev;
  };
  std::vector<Entry> entries_;
};

}  // namespace adtm::stm::detail
