// Service-provider interface for extension backends (stm/backends/*).
//
// BackendOps entry points are free functions; rather than befriending
// every backend translation unit, Tx befriends this single accessor
// struct. It exposes exactly the per-transaction state an out-of-core
// algorithm needs: the shared logs (so retry watching, undo rollback and
// lock release reuse the core machinery), identity/priority, and the
// abort/arbitration helpers. Everything here is internal — extension
// backends live in this repository; the header is not part of the public
// API surface.
#pragma once

#include "stm/backend.hpp"
#include "stm/logs.hpp"
#include "stm/tx.hpp"

namespace adtm::stm {

struct BackendSpi {
  // --- identity / per-attempt state ---
  static std::uint32_t tid(const Tx& tx) noexcept { return tx.tid_; }
  static std::uint64_t start(const Tx& tx) noexcept { return tx.start_; }
  static bool priority(const Tx& tx) noexcept { return tx.priority_; }
  static std::uint32_t attempt(const Tx& tx) noexcept { return tx.attempt_; }
  static const Backend* backend(const Tx& tx) noexcept { return tx.backend_; }

  // --- shared per-transaction logs ---
  static detail::ReadSet& reads(Tx& tx) noexcept { return tx.reads_; }
  static detail::WriteSet& writes(Tx& tx) noexcept { return tx.writes_; }
  static detail::UndoLog& undo(Tx& tx) noexcept { return tx.undo_; }
  static detail::LockLog& locks(Tx& tx) noexcept { return tx.locks_; }

  // --- control flow ---
  [[noreturn]] static void conflict_abort(Tx& tx, obs::AbortCause cause) {
    tx.conflict_abort(cause);
  }

  // Shared busy-orec arbitration (spin budget, priority outwait, karma
  // yield); throws ConflictAbort to give up. See Tx::arbitrate_busy_orec.
  static void arbitrate_busy_orec(Tx& tx, OrecWord s, std::uint32_t& spins,
                                  std::uint64_t& patience_deadline,
                                  bool& outwaited) {
    tx.arbitrate_busy_orec(s, spins, patience_deadline, outwaited);
  }

  // Mark the transaction committed. BackendOps::commit must call this
  // last, after releasing locks / leaving the registry / quiescing.
  static void finish_commit(Tx& tx) noexcept { tx.in_tx_ = false; }
};

}  // namespace adtm::stm
