// Active-transaction registry (quiescence) and the serial gate
// (irrevocability / HTM-sim fallback).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"
#include "common/panic.hpp"
#include "common/thread_id.hpp"

namespace adtm::stm::detail {

// One slot per thread. active_since holds the start timestamp of the
// thread's in-flight transaction, or 0 when the thread has no speculative
// state. Writers quiesce by waiting for every slot that was active with a
// start time earlier than their commit timestamp (privatization safety,
// paper §2 / Listing 1).
struct RegistrySlot {
  std::atomic<std::uint64_t> active_since{0};
};

extern CacheAligned<RegistrySlot> g_registry[kMaxThreads];

inline RegistrySlot& my_slot() noexcept { return *g_registry[thread_id()]; }

// Serial gate: at most one thread runs in serial-irrevocable mode; while
// it does (or is waiting to), no speculative transaction may start.
// The holder waits for all speculative transactions to drain before
// executing, so it runs in complete isolation — this is both GCC-style
// serial-mode irrevocability and the HTM lock-elision fallback path.
struct SerialGate {
  std::atomic<std::uint32_t> writer{kNoThread};

  bool busy() const noexcept {
    return writer.load(std::memory_order_acquire) != kNoThread;
  }
};

extern SerialGate g_serial_gate;

// --- locker accounting -----------------------------------------------------
//
// A TxLock can be held *across* transactions (by an in-flight deferred
// operation, or a TxLockGuard critical section). Releasing it requires a
// small transaction; if the serial gate blocked that transaction while a
// serial writer waited for the lock, the system would deadlock. So:
//  * every cross-transaction lock hold counts as a "locker" (global count
//    + per-thread depth),
//  * threads with locker depth > 0 are exempt from gate blocking in
//    registry_enter (they only run while the writer is still *waiting*),
//  * the writer drains all other lockers before executing, so a serial
//    transaction never observes a held TxLock it does not own.
extern std::atomic<std::uint32_t> g_lockers;

// This thread's count of cross-transaction lock holds.
std::uint32_t& locker_depth() noexcept;

inline void locker_enter() noexcept {
  ++locker_depth();
  g_lockers.fetch_add(1, std::memory_order_seq_cst);
}

inline void locker_exit() noexcept {
  ADTM_INVARIANT(locker_depth() > 0,
                 "locker_exit without a matching locker_enter "
                 "(cross-transaction lock accounting underflow)");
  --locker_depth();
  g_lockers.fetch_sub(1, std::memory_order_seq_cst);
}

// Blocks until the gate is free, then publishes this thread's transaction
// start. Handles the publish/check race with a pending serial writer.
void registry_enter(std::uint64_t start_ts) noexcept;

inline void registry_leave() noexcept {
  my_slot().active_since.store(0, std::memory_order_release);
}

// Waits until no transaction that started before `commit_ts` is still
// active. Callers must have already cleared their own slot.
void quiesce_until(std::uint64_t commit_ts) noexcept;

// Acquire/release of the serial gate. acquire_serial_gate returns once all
// other speculative transactions have drained.
void acquire_serial_gate() noexcept;
void release_serial_gate() noexcept;

}  // namespace adtm::stm::detail
