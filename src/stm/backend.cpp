#include "stm/backend.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/stats.hpp"
#include "obs/trace.hpp"
#include "stm/adaptive.hpp"
#include "stm/api.hpp"
#include "stm/backends/backends.hpp"
#include "stm/orec.hpp"
#include "stm/registry.hpp"
#include "stm/runtime.hpp"

namespace adtm::stm {

BackendRegistry::BackendRegistry() {
  // Built-ins first, in stm::Algo order, so obs_index matches the
  // deprecated enum value (pinned by a static_assert in api.cpp) and
  // pre-registry trace events keep their labels.
  const std::uint32_t spec =
      kBackendRollback | kBackendIrrevocable | kBackendSerialGate;
  const auto add = [this](const char* id, const char* name,
                          std::uint32_t caps, Algo core) {
    Backend b;
    b.id = id;
    b.name = name;
    b.caps = caps;
    b.core = core;
    b.ops = nullptr;
    register_backend(b);
  };
  add("tl2", "TL2", spec | kBackendAdaptive, Algo::TL2);
  add("eager", "Eager", spec | kBackendInPlaceWrites, Algo::Eager);
  add("cgl", "CGL", kBackendDirectMode, Algo::CGL);
  add("htmsim", "HTMSim",
      spec | kBackendHtmLike | kBackendInPlaceWrites, Algo::HTMSim);
  add("norec", "NOrec", spec | kBackendAdaptive, Algo::NOrec);
  backends::register_extension_backends(*this);
}

const Backend* BackendRegistry::register_backend(const Backend& backend) {
  if (backend.id == nullptr || backend.name == nullptr) {
    throw std::logic_error("backend registration requires id and name");
  }
  if (backend.ops != nullptr &&
      (backend.ops->begin == nullptr || backend.ops->read_word == nullptr ||
       backend.ops->write_word == nullptr || backend.ops->commit == nullptr ||
       backend.ops->rollback == nullptr)) {
    throw std::logic_error("backend ops table is incomplete");
  }
  if (count_ >= kMaxBackends) {
    throw std::logic_error("backend registry is full");
  }
  if (find(backend.id) != nullptr || find(backend.name) != nullptr) {
    throw std::logic_error(std::string("duplicate backend id: ") +
                           backend.id);
  }
  Backend& stored = backends_[count_];
  stored = backend;
  stored.obs_index = static_cast<std::uint8_t>(count_);
  ++count_;
  obs::register_algo_label(stored.obs_index, stored.name);
  return &stored;
}

const Backend* BackendRegistry::find(
    std::string_view id_or_name) const noexcept {
  for (std::size_t i = 0; i < count_; ++i) {
    if (id_or_name == backends_[i].id || id_or_name == backends_[i].name) {
      return &backends_[i];
    }
  }
  return nullptr;
}

std::size_t BackendRegistry::size() const noexcept { return count_; }

const Backend* BackendRegistry::at(std::size_t i) const noexcept {
  return i < count_ ? &backends_[i] : nullptr;
}

BackendRegistry& backend_registry() noexcept {
  static BackendRegistry registry;
  return registry;
}

const Backend* find_backend(std::string_view id_or_name) noexcept {
  return backend_registry().find(id_or_name);
}

const Backend* backend_for(Algo algo) noexcept {
  return backend_registry().at(static_cast<std::size_t>(algo));
}

namespace detail {

void unify_serialization_clocks(RuntimeState& rt) noexcept {
  // The version clock (TL2/Eager/HTMSim/2PL commit timestamps) and the
  // NOrec sequence advance independently, yet both feed one downstream
  // serialization order — tmsan's opacity history keys every commit by
  // whichever clock its backend uses. Callers hold a quiescent point
  // (the serial gate, or init's no-transactions contract), so jumping
  // both clocks to a common maximum keeps commit keys monotonic across
  // a backend change: every post-switch key exceeds every pre-switch
  // key, whichever family filed it.
  const std::uint64_t clock = g_clock->load(std::memory_order_acquire);
  const std::uint64_t seq = rt.norec_seq.load(std::memory_order_acquire);
  std::uint64_t unified = std::max(clock, seq);
  unified += unified & 1;  // the sequence must stay even while unlocked
  g_clock->store(unified, std::memory_order_release);
  rt.norec_seq.store(unified, std::memory_order_release);
}

const Backend* install_backend(const Config& cfg) {
  // Resolution order: Config::backend, then an explicitly non-default
  // deprecated enum value, then ADTM_ALGO from the environment, then the
  // TL2 default. The env knob fills in when the program did not choose —
  // it does not override an explicit selection (a CGL-specific test must
  // stay CGL under `ADTM_ALGO=2pl ctest`). "auto" arms the adaptive
  // controller and starts on its default candidate.
  std::string_view name = cfg.backend;
  if (name.empty() && cfg.algo == Algo::TL2) name = runtime_config().algo;
  const Backend* b = nullptr;
  bool adaptive_mode = false;
  if (name.empty()) {
    b = backend_for(cfg.algo);
  } else if (name == "auto") {
    adaptive_mode = true;
    b = find_backend("tl2");
  } else {
    b = find_backend(name);
    if (b == nullptr) {
      throw std::invalid_argument("stm: unknown backend \"" +
                                  std::string(name) +
                                  "\" (see stm::backend_registry())");
    }
  }
  RuntimeState& rt = runtime();
  unify_serialization_clocks(rt);
  rt.active_backend.store(b, std::memory_order_seq_cst);
  adaptive::set_enabled(adaptive_mode);
  return b;
}

const Backend* active_backend_or_default() {
  RuntimeState& rt = runtime();
  const Backend* b = rt.active_backend.load(std::memory_order_acquire);
  if (b != nullptr) return b;
  // First transaction before any init(): resolve the default selection
  // (racing resolvers compute the same answer; the store is idempotent).
  return install_backend(rt.config);
}

}  // namespace detail

const Backend* current_backend() noexcept {
  return detail::runtime().active_backend.load(std::memory_order_acquire);
}

void switch_backend(const Backend* target) {
  if (target == nullptr) {
    throw std::logic_error("switch_backend: null target");
  }
  if (in_transaction()) {
    throw std::logic_error("switch_backend inside a transaction");
  }
  if (detail::locker_depth() != 0) {
    // The serial gate drains cross-transaction lockers; a switcher that
    // is itself a locker would wedge the gate against its own hold.
    throw std::logic_error(
        "switch_backend while holding a cross-transaction lock");
  }
  detail::RuntimeState& rt = detail::runtime();
  const Backend* cur = rt.active_backend.load(std::memory_order_acquire);
  if (cur == target) return;
  if (target->has(kBackendDirectMode) ||
      (cur != nullptr && cur->has(kBackendDirectMode))) {
    // CGL transactions serialize on their own mutex, not the serial
    // gate, so the gate cannot drain them: direct-mode backends are an
    // init-time-only choice.
    throw std::logic_error(
        "switch_backend: direct-mode backends (CGL) cannot be switched "
        "at runtime; use stm::init with no transactions in flight");
  }
  detail::acquire_serial_gate();
  // The gate has drained every speculative transaction and rival
  // cross-transaction locker: nothing is running the old backend, and
  // transactions parked at the gate re-resolve after it opens.
  cur = rt.active_backend.load(std::memory_order_acquire);
  if (cur != target) {
    detail::unify_serialization_clocks(rt);
    rt.active_backend.store(target, std::memory_order_seq_cst);
    stats().add(Counter::BackendSwitches);
    obs::emit(obs::EventType::BackendSwitch, obs::AbortCause::None,
              target->obs_index,
              cur != nullptr ? cur->obs_index : obs::kNoAlgo);
  }
  detail::release_serial_gate();
}

void switch_backend(std::string_view id_or_name) {
  const Backend* target = find_backend(id_or_name);
  if (target == nullptr) {
    throw std::invalid_argument("switch_backend: unknown backend \"" +
                                std::string(id_or_name) + "\"");
  }
  switch_backend(target);
}

}  // namespace adtm::stm
