// Minimal non-owning callable reference (std::function_ref is C++26).
//
// The transaction driver takes the body by reference: the closure lives in
// the caller's frame for the whole call, so no ownership or allocation is
// needed — important because atomic() is the hottest path in the library.
#pragma once

#include <type_traits>
#include <utility>

namespace adtm::stm::detail {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
             std::is_invocable_r_v<R, F&, Args...>)
  FunctionRef(F&& f) noexcept  // NOLINT: implicit by design
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace adtm::stm::detail
