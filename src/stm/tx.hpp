// Transaction descriptor and word-level speculative access API.
//
// Users do not construct Tx objects: stm::atomic(body) passes one to the
// body. The descriptor is thread-local and reused across attempts.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/trace.hpp"
#include "stm/config.hpp"
#include "stm/logs.hpp"

namespace adtm::stm {

struct Backend;
struct BackendSpi;

namespace detail {
struct Driver;
}

class Tx {
 public:
  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  // --- speculative word access (used by tvar<T>; may be used directly) ---

  // Transactionally read one 64-bit word.
  std::uint64_t read_word(const detail::Word* addr);

  // Transactionally write one 64-bit word.
  void write_word(detail::Word* addr, std::uint64_t value);

  // --- transaction-lifetime services ---

  // Register fn to run after this transaction commits: after quiescence,
  // outside any transaction, in registration order. Discarded on abort.
  // This is the hook the atomic-deferral layer builds on (the paper's
  // deferred_ops list in Listing 1); transactional frees are processed
  // after all epilogues, matching the listing's TxEnd.
  void on_commit(std::function<void()> fn);

  // Transactional allocation: freed automatically if the transaction
  // aborts.
  void* alloc(std::size_t bytes);

  // Transactional free: the memory is released only after the transaction
  // commits, quiesces, and runs its commit epilogues.
  void free(void* ptr);

  // Register fn to run if this execution of the transaction aborts (after
  // speculative state is rolled back). Used to undo non-transactional
  // side-effect bookkeeping (e.g. TxLock locker accounting). Hooks must
  // not throw. Discarded on commit; re-registered naturally when the body
  // re-executes.
  void on_abort(std::function<void()> fn);

  // True while executing in a direct mode (serial-irrevocable or CGL)
  // where accesses are uninstrumented and the transaction cannot abort.
  bool irrevocable() const noexcept { return mode_ != Mode::Speculative; }

  // Attempt number of the current execution (1 on the first try).
  std::uint32_t attempt() const noexcept { return attempt_; }

 private:
  friend struct detail::Driver;
  // Extension backends (stm/backends/*) reach Tx internals through the
  // BackendSpi accessor struct instead of each being a friend.
  friend struct BackendSpi;
  Tx() = default;

  enum class Mode : std::uint8_t { Speculative, Serial, CGL };

  // Per-attempt state.
  Mode mode_ = Mode::Speculative;
  Algo algo_ = Algo::TL2;           // backend_->core (inline-dispatch key)
  const Backend* backend_ = nullptr;  // resolved descriptor for this attempt
  std::uint64_t start_ = 0;  // snapshot timestamp
  std::uint32_t attempt_ = 0;
  std::uint32_t tid_ = 0;  // cached small thread id
  bool in_tx_ = false;
  bool wrote_direct_ = false;  // direct-mode write happened (retry illegal)
  // This attempt runs with the contention manager's priority token
  // (starved thread): busy orecs are outwaited instead of aborted on, and
  // rival NOrec commits hold back while the attempt is in flight.
  bool priority_ = false;

  detail::ReadSet reads_;
  detail::WriteSet writes_;
  detail::UndoLog undo_;
  detail::LockLog locks_;
  detail::ValueReadSet norec_reads_;  // NOrec only

  // Survive commit; discarded on abort.
  std::vector<std::function<void()>> epilogues_;
  std::vector<void*> allocs_;
  std::vector<void*> frees_;

  // Run on abort of the current attempt; discarded on commit.
  std::vector<std::function<void()>> abort_hooks_;

  // Read-set snapshot + serial-commit counter used by retry() waiting.
  std::vector<detail::ReadEntry> retry_watch_;
  std::vector<detail::ValueReadEntry> retry_value_watch_;  // NOrec
  std::uint64_t retry_norec_snap_ = 0;                     // NOrec
  std::uint64_t retry_serial_snap_ = 0;
  // Thread-exit watch: a waiter parked on state owned by another thread
  // wakes when any thread exits, so orphaned-owner checks re-run promptly.
  std::uint64_t retry_exit_snap_ = 0;

  // --- algorithm steps (tx.cpp) ---
  void begin(const Backend* backend, Mode mode, std::uint32_t attempt);
  void commit();                  // may throw ConflictAbort
  void rollback() noexcept;       // undo speculation, release locks, leave
  void capture_watch();           // snapshot read set for retry waiting

  bool extend();                  // timestamp extension; false = invalid
  [[noreturn]] void conflict_abort(obs::AbortCause cause);
  void arbitrate_busy_orec(OrecWord s, std::uint32_t& spins,
                           std::uint64_t& patience_deadline, bool& outwaited);
  void lock_orec_for_write(Orec& o);
  void check_htm_budget();
  std::uint64_t read_word_speculative(const detail::Word* addr);
  void validate_reads();  // throws ConflictAbort on failure

  // NOrec paths.
  std::uint64_t read_word_norec(const detail::Word* addr);
  std::uint64_t norec_validate();  // throws ConflictAbort; returns snapshot
  void commit_norec();

  // --- closed nesting (paper §8 future work) --------------------------
  // A checkpoint of every per-transaction log; nested_abort rolls the
  // transaction back to it (partial rollback) without disturbing the
  // enclosing work.
  struct NestedCheckpoint {
    std::size_t reads;
    std::size_t norec_reads;
    std::size_t write_entries;
    std::size_t write_overwrites;
    std::size_t undo;
    std::size_t locks;
    std::size_t allocs;
    std::size_t frees;
    std::size_t epilogues;
    std::size_t abort_hooks;
  };
  NestedCheckpoint nested_checkpoint() const;
  void nested_abort(const NestedCheckpoint& cp) noexcept;
};

}  // namespace adtm::stm
