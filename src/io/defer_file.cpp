#include "io/defer_file.hpp"

namespace adtm::io {

void DeferFile::append_with_length(const std::string& content) {
  // Read phase: open, measure, close (Listing 6 lines 1-4).
  std::uint64_t len = 0;
  {
    PosixFile in = PosixFile::open_rw(path_);
    len = in.seek_end();
  }
  // Write phase: format and append (lines 5-8).
  const std::string record = content + ":" + std::to_string(len) + "\n";
  PosixFile out = PosixFile::open_append(path_);
  out.write_fully(record.data(), record.size());
}

void DeferFile::append_keep_open(const std::string& content) {
  if (!persistent_.has_value()) {
    persistent_.emplace(PosixFile::open_rw(path_));
    persistent_->seek_end();
  }
  const std::string record =
      content + ":" + std::to_string(persistent_->size()) + "\n";
  persistent_->write_fully(record.data(), record.size());
}

void DeferFile::close_persistent() { persistent_.reset(); }

}  // namespace adtm::io
