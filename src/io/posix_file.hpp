// RAII wrapper over POSIX file descriptors with reliability helpers.
//
// The microbenchmarks (Fig 2) and dedup's pipeline_out (Listing 7) perform
// real system calls through this class; nothing here is transactional —
// that is the point: these are the operations that cannot run inside a
// speculative transaction and must be deferred or made irrevocable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace adtm::io {

class PosixFile {
 public:
  PosixFile() = default;
  ~PosixFile();

  PosixFile(PosixFile&& other) noexcept;
  PosixFile& operator=(PosixFile&& other) noexcept;
  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  // Open an existing file for reading. Throws std::system_error.
  static PosixFile open_read(const std::string& path);

  // Open (creating if needed) for appending.
  static PosixFile open_append(const std::string& path);

  // Create/truncate for writing.
  static PosixFile create(const std::string& path);

  // Open (creating if needed) for reading and writing without truncation.
  static PosixFile open_rw(const std::string& path);

  bool is_open() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  // Write the entire span, retrying on partial writes and EINTR — the
  // reliability loop of the paper's pipeline_out (Listing 7).
  void write_fully(std::span<const std::byte> data);
  void write_fully(const void* data, std::size_t len);

  // One write attempt: returns the bytes accepted (possibly short),
  // retrying only EINTR/EAGAIN internally. Callers that must survive
  // mid-buffer failures (WAL group commit) loop over this so a retry
  // resumes where the last attempt stopped instead of re-writing — and
  // duplicating — the prefix.
  std::size_t write_some(const void* data, std::size_t len);

  // Positional full write (used by the async I/O engine: appends reserve
  // their offset under the pool lock, then write at it).
  void pwrite_fully(const void* data, std::size_t len, std::uint64_t offset);

  // Read up to len bytes; returns bytes read (0 at EOF).
  std::size_t read_some(void* out, std::size_t len);

  // Read exactly len bytes or throw (premature EOF is an error).
  void read_fully(void* out, std::size_t len);

  std::size_t pread_some(void* out, std::size_t len, std::uint64_t offset);

  // Current size via fstat.
  std::uint64_t size() const;

  // Seek to end, returning the offset (the microbench's "read the file
  // length" step).
  std::uint64_t seek_end();

  void seek_set(std::uint64_t offset);

  // Flush to stable storage (fsync).
  void sync();

  void close();

 private:
  explicit PosixFile(int fd) noexcept : fd_(fd) {}
  int fd_ = -1;
};

// fsync the directory containing `path` (durability of the *entry*: a
// file creation, rename, or truncation is not crash-safe until the
// directory — and for truncation also the file itself — has been synced).
// Throws std::system_error on failure.
void fsync_parent_dir(const std::string& path);

// Open `path` read-only and fsync it (truncation/size-metadata barrier
// for files the caller does not hold open for writing).
void fsync_path(const std::string& path);

// Read a whole file into a string (test/bench convenience).
std::string read_file(const std::string& path);

// Write a whole buffer to a path, truncating.
void write_file(const std::string& path, std::span<const std::byte> data);
void write_file(const std::string& path, const std::string& data);

}  // namespace adtm::io
