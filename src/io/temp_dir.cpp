#include "io/temp_dir.hpp"

#include <cstdlib>
#include <filesystem>
#include <system_error>

namespace adtm::io {

TempDir::TempDir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") + "/" +
                     prefix + ".XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    throw std::system_error(errno, std::generic_category(), "mkdtemp");
  }
  path_ = tmpl;
}

TempDir::~TempDir() {
  std::error_code ec;  // best-effort cleanup; never throw from a dtor
  std::filesystem::remove_all(path_, ec);
}

std::string TempDir::file(const std::string& name) const {
  return path_ + "/" + name;
}

}  // namespace adtm::io
