#include "io/posix_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <system_error>
#include <thread>
#include <utility>

#include "faultsim/faultsim.hpp"

namespace adtm::io {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

int open_or_throw(const std::string& path, int flags, mode_t mode = 0644) {
  const int fd = ::open(path.c_str(), flags, mode);
  if (fd < 0) throw_errno("open");
  return fd;
}

// Fault-injection gate: every data-path syscall below consults the global
// engine first. One relaxed load when nothing is armed.
faultsim::Fault consult(faultsim::Op op, int fd) {
  if (!faultsim::active()) return faultsim::Fault::none();
  return faultsim::engine().on_syscall(op, fd);
}

}  // namespace

PosixFile::~PosixFile() {
  if (fd_ >= 0) ::close(fd_);
}

PosixFile::PosixFile(PosixFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

PosixFile& PosixFile::operator=(PosixFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

PosixFile PosixFile::open_read(const std::string& path) {
  return PosixFile(open_or_throw(path, O_RDONLY));
}

PosixFile PosixFile::open_append(const std::string& path) {
  return PosixFile(open_or_throw(path, O_WRONLY | O_CREAT | O_APPEND));
}

PosixFile PosixFile::create(const std::string& path) {
  return PosixFile(open_or_throw(path, O_WRONLY | O_CREAT | O_TRUNC));
}

PosixFile PosixFile::open_rw(const std::string& path) {
  return PosixFile(open_or_throw(path, O_RDWR | O_CREAT));
}

void PosixFile::write_fully(std::span<const std::byte> data) {
  write_fully(data.data(), data.size());
}

std::size_t PosixFile::write_some(const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  for (;;) {
    std::size_t ask = len;
    ssize_t rv;
    const faultsim::Fault f = consult(faultsim::Op::Write, fd_);
    switch (f.kind) {
      case faultsim::FaultKind::Errno:
        errno = f.err;
        rv = -1;
        break;
      case faultsim::FaultKind::Crash: {
        // Crash point: persist a prefix so the file gets a torn tail,
        // then abandon — the caller's in-memory state is lost exactly as
        // a real crash between write and fsync would lose it.
        const std::size_t persist = std::min(len, f.max_bytes);
        if (persist > 0) (void)!::write(fd_, p, persist);
        throw faultsim::SimulatedCrash("write");
      }
      case faultsim::FaultKind::ShortWrite:
        ask = std::max<std::size_t>(std::min(ask, f.max_bytes), 1);
        [[fallthrough]];
      case faultsim::FaultKind::None:
        rv = ::write(fd_, p, ask);
        break;
      default:
        rv = ::write(fd_, p, ask);
        break;
    }
    if (rv < 0) {
      if (errno == EINTR) continue;  // transient
      if (errno == EAGAIN) {
        // Non-blocking descriptor with a full buffer: let the consumer
        // run (essential on machines with fewer cores than threads).
        std::this_thread::yield();
        continue;
      }
      throw_errno("write");  // fatal
    }
    return static_cast<std::size_t>(rv);
  }
}

void PosixFile::write_fully(const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    sent += write_some(p + sent, len - sent);
  }
}

void PosixFile::pwrite_fully(const void* data, std::size_t len,
                             std::uint64_t offset) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    std::size_t ask = len - sent;
    ssize_t rv;
    const faultsim::Fault f = consult(faultsim::Op::Pwrite, fd_);
    switch (f.kind) {
      case faultsim::FaultKind::Errno:
        errno = f.err;
        rv = -1;
        break;
      case faultsim::FaultKind::Crash: {
        const std::size_t persist = std::min(len - sent, f.max_bytes);
        if (persist > 0) {
          (void)!::pwrite(fd_, p + sent, persist,
                          static_cast<off_t>(offset + sent));
        }
        throw faultsim::SimulatedCrash("pwrite");
      }
      case faultsim::FaultKind::ShortWrite:
        ask = std::max<std::size_t>(std::min(ask, f.max_bytes), 1);
        [[fallthrough]];
      default:
        rv = ::pwrite(fd_, p + sent, ask, static_cast<off_t>(offset + sent));
        break;
    }
    if (rv < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN) {
        std::this_thread::yield();
        continue;
      }
      throw_errno("pwrite");
    }
    sent += static_cast<std::size_t>(rv);
  }
}

std::size_t PosixFile::read_some(void* out, std::size_t len) {
  for (;;) {
    std::size_t ask = len;
    ssize_t rv;
    const faultsim::Fault f = consult(faultsim::Op::Read, fd_);
    switch (f.kind) {
      case faultsim::FaultKind::Errno:
        errno = f.err;
        rv = -1;
        break;
      case faultsim::FaultKind::Crash:
        throw faultsim::SimulatedCrash("read");
      case faultsim::FaultKind::ShortWrite:
        ask = std::max<std::size_t>(std::min(ask, f.max_bytes), 1);
        [[fallthrough]];
      default:
        rv = ::read(fd_, out, ask);
        break;
    }
    if (rv < 0) {
      if (errno == EINTR) continue;  // transient, same as the write paths
      throw_errno("read");
    }
    return static_cast<std::size_t>(rv);
  }
}

void PosixFile::read_fully(void* out, std::size_t len) {
  char* p = static_cast<char*>(out);
  std::size_t got = 0;
  while (got < len) {
    const std::size_t rv = read_some(p + got, len - got);
    if (rv == 0) {
      throw std::system_error(EIO, std::generic_category(),
                              "read_fully: premature EOF");
    }
    got += rv;
  }
}

std::size_t PosixFile::pread_some(void* out, std::size_t len,
                                  std::uint64_t offset) {
  for (;;) {
    std::size_t ask = len;
    ssize_t rv;
    const faultsim::Fault f = consult(faultsim::Op::Pread, fd_);
    switch (f.kind) {
      case faultsim::FaultKind::Errno:
        errno = f.err;
        rv = -1;
        break;
      case faultsim::FaultKind::Crash:
        throw faultsim::SimulatedCrash("pread");
      case faultsim::FaultKind::ShortWrite:
        ask = std::max<std::size_t>(std::min(ask, f.max_bytes), 1);
        [[fallthrough]];
      default:
        rv = ::pread(fd_, out, ask, static_cast<off_t>(offset));
        break;
    }
    if (rv < 0) {
      if (errno == EINTR) continue;  // transient, same as the write paths
      throw_errno("pread");
    }
    return static_cast<std::size_t>(rv);
  }
}

std::uint64_t PosixFile::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throw_errno("fstat");
  return static_cast<std::uint64_t>(st.st_size);
}

std::uint64_t PosixFile::seek_end() {
  const off_t off = ::lseek(fd_, 0, SEEK_END);
  if (off < 0) throw_errno("lseek");
  return static_cast<std::uint64_t>(off);
}

void PosixFile::seek_set(std::uint64_t offset) {
  if (::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
    throw_errno("lseek");
  }
}

void PosixFile::sync() {
  for (;;) {
    const faultsim::Fault f = consult(faultsim::Op::Fsync, fd_);
    if (f.kind == faultsim::FaultKind::Errno) {
      if (f.err == EINTR) continue;  // interrupted fsync: retry
      throw std::system_error(f.err, std::generic_category(), "fsync");
    }
    if (f.kind == faultsim::FaultKind::Crash) {
      throw faultsim::SimulatedCrash("fsync");
    }
    if (::fsync(fd_) != 0) throw_errno("fsync");
    return;
  }
}

void PosixFile::close() {
  if (fd_ >= 0) {
    const int fd = std::exchange(fd_, -1);
    if (::close(fd) != 0) throw_errno("close");
  }
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno("open dir");
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    // Some filesystems refuse fsync on directories (EINVAL): the barrier
    // is unavailable rather than failed, and there is nothing to retry.
    if (errno == EINVAL) break;
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(), "fsync dir");
  }
  ::close(fd);
}

void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("open");
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(), "fsync");
  }
  ::close(fd);
}

std::string read_file(const std::string& path) {
  PosixFile f = PosixFile::open_read(path);
  std::string out;
  char buf[64 * 1024];
  for (;;) {
    const std::size_t n = f.read_some(buf, sizeof(buf));
    if (n == 0) break;
    out.append(buf, n);
  }
  return out;
}

void write_file(const std::string& path, std::span<const std::byte> data) {
  PosixFile f = PosixFile::create(path);
  f.write_fully(data);
}

void write_file(const std::string& path, const std::string& data) {
  PosixFile f = PosixFile::create(path);
  f.write_fully(data.data(), data.size());
}

}  // namespace adtm::io
