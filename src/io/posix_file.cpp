#include "io/posix_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <thread>
#include <utility>

namespace adtm::io {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

int open_or_throw(const std::string& path, int flags, mode_t mode = 0644) {
  const int fd = ::open(path.c_str(), flags, mode);
  if (fd < 0) throw_errno("open");
  return fd;
}

}  // namespace

PosixFile::~PosixFile() {
  if (fd_ >= 0) ::close(fd_);
}

PosixFile::PosixFile(PosixFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

PosixFile& PosixFile::operator=(PosixFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

PosixFile PosixFile::open_read(const std::string& path) {
  return PosixFile(open_or_throw(path, O_RDONLY));
}

PosixFile PosixFile::open_append(const std::string& path) {
  return PosixFile(open_or_throw(path, O_WRONLY | O_CREAT | O_APPEND));
}

PosixFile PosixFile::create(const std::string& path) {
  return PosixFile(open_or_throw(path, O_WRONLY | O_CREAT | O_TRUNC));
}

PosixFile PosixFile::open_rw(const std::string& path) {
  return PosixFile(open_or_throw(path, O_RDWR | O_CREAT));
}

void PosixFile::write_fully(std::span<const std::byte> data) {
  write_fully(data.data(), data.size());
}

void PosixFile::write_fully(const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t rv = ::write(fd_, p + sent, len - sent);
    if (rv < 0) {
      if (errno == EINTR) continue;  // transient
      if (errno == EAGAIN) {
        // Non-blocking descriptor with a full buffer: let the consumer
        // run (essential on machines with fewer cores than threads).
        std::this_thread::yield();
        continue;
      }
      throw_errno("write");  // fatal
    }
    sent += static_cast<std::size_t>(rv);
  }
}

void PosixFile::pwrite_fully(const void* data, std::size_t len,
                             std::uint64_t offset) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t rv = ::pwrite(fd_, p + sent, len - sent,
                                static_cast<off_t>(offset + sent));
    if (rv < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN) {
        std::this_thread::yield();
        continue;
      }
      throw_errno("pwrite");
    }
    sent += static_cast<std::size_t>(rv);
  }
}

std::size_t PosixFile::read_some(void* out, std::size_t len) {
  for (;;) {
    const ssize_t rv = ::read(fd_, out, len);
    if (rv < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    return static_cast<std::size_t>(rv);
  }
}

void PosixFile::read_fully(void* out, std::size_t len) {
  char* p = static_cast<char*>(out);
  std::size_t got = 0;
  while (got < len) {
    const std::size_t rv = read_some(p + got, len - got);
    if (rv == 0) {
      throw std::system_error(EIO, std::generic_category(),
                              "read_fully: premature EOF");
    }
    got += rv;
  }
}

std::size_t PosixFile::pread_some(void* out, std::size_t len,
                                  std::uint64_t offset) {
  for (;;) {
    const ssize_t rv = ::pread(fd_, out, len, static_cast<off_t>(offset));
    if (rv < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread");
    }
    return static_cast<std::size_t>(rv);
  }
}

std::uint64_t PosixFile::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throw_errno("fstat");
  return static_cast<std::uint64_t>(st.st_size);
}

std::uint64_t PosixFile::seek_end() {
  const off_t off = ::lseek(fd_, 0, SEEK_END);
  if (off < 0) throw_errno("lseek");
  return static_cast<std::uint64_t>(off);
}

void PosixFile::seek_set(std::uint64_t offset) {
  if (::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
    throw_errno("lseek");
  }
}

void PosixFile::sync() {
  if (::fsync(fd_) != 0) throw_errno("fsync");
}

void PosixFile::close() {
  if (fd_ >= 0) {
    const int fd = std::exchange(fd_, -1);
    if (::close(fd) != 0) throw_errno("close");
  }
}

std::string read_file(const std::string& path) {
  PosixFile f = PosixFile::open_read(path);
  std::string out;
  char buf[64 * 1024];
  for (;;) {
    const std::size_t n = f.read_some(buf, sizeof(buf));
    if (n == 0) break;
    out.append(buf, n);
  }
  return out;
}

void write_file(const std::string& path, std::span<const std::byte> data) {
  PosixFile f = PosixFile::create(path);
  f.write_fully(data);
}

void write_file(const std::string& path, const std::string& data) {
  PosixFile f = PosixFile::create(path);
  f.write_fully(data.data(), data.size());
}

}  // namespace adtm::io
