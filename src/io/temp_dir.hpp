// RAII temporary directory for tests, benches, and examples.
#pragma once

#include <string>

namespace adtm::io {

class TempDir {
 public:
  // Creates a fresh directory under $TMPDIR (default /tmp).
  explicit TempDir(const std::string& prefix = "adtm");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const noexcept { return path_; }

  // path()/name
  std::string file(const std::string& name) const;

 private:
  std::string path_;
};

}  // namespace adtm::io
