// DeferFile: the deferrable file-stream wrapper of the paper's Listing 6.
//
// Encapsulates a file path whose read+append operation ("open the file,
// read its length, append formatted data, close") is either deferred via
// atomic_defer or executed inside an irrevocable transaction — the two
// configurations compared in Figure 2.
#pragma once

#include <optional>
#include <string>

#include "defer/deferrable.hpp"
#include "io/posix_file.hpp"

namespace adtm::io {

class DeferFile : public Deferrable {
 public:
  explicit DeferFile(std::string path) : path_(std::move(path)) {}

  const std::string& path() const noexcept { return path_; }

  // The microbenchmark operation (Listing 6's λ): open the file, read its
  // length, then append "content:<len>\n" and close. Real system calls —
  // call this only from a deferred operation, an irrevocable transaction,
  // or under an external lock (the CGL/FGL baselines).
  void append_with_length(const std::string& content);

  // Figure 2(d) variant: the file is opened once and kept open; each
  // operation reads the size via fstat and appends, with no open/close
  // system calls in the critical section.
  void append_keep_open(const std::string& content);

  // Close the persistent descriptor (if any).
  void close_persistent();

 private:
  std::string path_;
  std::optional<PosixFile> persistent_;
};

}  // namespace adtm::io
