// Transactional logging (paper §5.1, Listing 3).
//
// Critical sections occasionally need diagnostic output. Under plain TM
// that forces irrevocability (serializing every transaction in the
// program) or the log line is dropped. With atomic deferral the message is
// formatted *inside* the transaction — so it can safely read mutable
// shared data — and the write to the descriptor is deferred:
//
//   logger.log(tx, "balance=" + std::to_string(acct.get(tx)));
//
// Two modes, as in the paper:
//  * ordered (default): the logger object is passed to atomic_defer, so
//    writes to this descriptor are totally ordered and atomic with their
//    transactions; concurrent transactions that log to the same descriptor
//    serialize only against each other.
//  * unordered (log_unordered): the paper's "pass nil" variant — the write
//    is still deferred past commit but takes no lock; callers must not
//    assume any ordering among log records.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "defer/atomic_defer.hpp"
#include "io/posix_file.hpp"

namespace adtm::txlog {

class TxLogger : public Deferrable {
 public:
  // Appends to `path`, creating it if needed.
  explicit TxLogger(const std::string& path);

  // Log to an already-open descriptor (e.g. stderr). Does not close it.
  explicit TxLogger(int raw_fd);

  ~TxLogger();
  TxLogger(const TxLogger&) = delete;
  TxLogger& operator=(const TxLogger&) = delete;

  // Defer an ordered write of `message` (a trailing newline is appended if
  // missing). Must be called inside a transaction.
  void log(stm::Tx& tx, std::string message);

  // The "pass nil" variant: deferred, unordered, lock-free.
  void log_unordered(stm::Tx& tx, std::string message);

  // Number of records written so far (for tests; read outside tx).
  std::uint64_t records_written() const noexcept;

 private:
  void write_record(std::string& message);

  io::PosixFile owned_;
  int fd_ = -1;
  std::atomic<std::uint64_t> records_{0};
};

}  // namespace adtm::txlog
