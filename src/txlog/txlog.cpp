#include "txlog/txlog.hpp"

#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

#include "faultsim/crashpoint.hpp"

namespace adtm::txlog {
namespace {

// Crash-torture site: the deferred (post-commit) log write. Torn arms
// persist a prefix of the record — the half-line a crash mid-write leaves.
const faultsim::CrashPointId kCpWrite =
    faultsim::register_crash_point("txlog.write", "txlog", true);

}  // namespace

TxLogger::TxLogger(const std::string& path)
    : owned_(io::PosixFile::open_append(path)), fd_(owned_.fd()) {}

TxLogger::TxLogger(int raw_fd) : fd_(raw_fd) {}

TxLogger::~TxLogger() = default;

void TxLogger::write_record(std::string& message) {
  if (message.empty() || message.back() != '\n') message.push_back('\n');
  const char* p = message.data();
  std::size_t remaining = message.size();
  faultsim::crash_point_write(kCpWrite, fd_, p, remaining);
  while (remaining > 0) {
    const ssize_t rv = ::write(fd_, p, remaining);
    if (rv < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      throw std::system_error(errno, std::generic_category(), "txlog write");
    }
    p += rv;
    remaining -= static_cast<std::size_t>(rv);
  }
  records_.fetch_add(1, std::memory_order_relaxed);
}

void TxLogger::log(stm::Tx& tx, std::string message) {
  // The message was fully formatted inside the transaction (the paper's
  // sprintf step); only the output syscall is deferred, protected by this
  // logger's implicit lock so records on one descriptor are ordered.
  atomic_defer(
      tx, [this, msg = std::move(message)]() mutable { write_record(msg); },
      *this);
}

void TxLogger::log_unordered(stm::Tx& tx, std::string message) {
  atomic_defer(tx, [this, msg = std::move(message)]() mutable {
    write_record(msg);
  });
}

std::uint64_t TxLogger::records_written() const noexcept {
  return records_.load(std::memory_order_relaxed);
}

}  // namespace adtm::txlog
