// Observability layer: gate semantics, event collection, Chrome trace
// schema, ring-drop accounting, and the run summary.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/runtime_config.hpp"
#include "common/stats.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"
#include "support/json.hpp"

namespace adtm {
namespace {

// Every test leaves tracing off and the buffers empty, whatever happens.
class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stm::Config cfg;
    cfg.backend = "tl2";
    stm::init(cfg);
    obs::disable();
    obs::clear();
  }
  void TearDown() override {
    obs::disable();
    obs::clear();
    configure(runtime_config_from_env());
  }
};

TEST_F(ObsTraceTest, DisabledGateCollectsNothing) {
  ASSERT_FALSE(obs::enabled());
  obs::emit(obs::EventType::TxBegin);
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) { x.set(tx, 1); });
  obs::drain();
  EXPECT_EQ(obs::collected_count(), 0u);
  EXPECT_EQ(obs::dropped_count(), 0u);
  EXPECT_EQ(obs::summary().events, 0u);
}

TEST_F(ObsTraceTest, EnableIsIdempotentAndCollects) {
  obs::enable();
  obs::enable();
  ASSERT_TRUE(obs::enabled());
  stm::tvar<int> x{0};
  for (int i = 0; i < 10; ++i) {
    stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
  }
  obs::drain();
  // At least begin + commit per transaction.
  EXPECT_GE(obs::collected_count(), 20u);
}

TEST_F(ObsTraceTest, ChromeTraceJsonIsSchemaValid) {
  obs::enable();
  stm::tvar<int> x{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
      }
    });
  }
  for (auto& w : workers) w.join();
  // One explicit abort so the trace carries a structured cause.
  stm::atomic([&](stm::Tx& tx) {
    x.get(tx);
    stm::cancel(tx);
  });
  obs::disable();

  const test::Json doc = test::json_parse(obs::chrome_trace_json());
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  const auto& events = doc.at("traceEvents").array;
  ASSERT_GE(events.size(), 800u);  // 2x200 tx, >= 2 events each, + metadata

  bool saw_metadata = false, saw_instant = false, saw_duration = false,
       saw_explicit_abort = false;
  for (const test::Json& e : events) {
    ASSERT_TRUE(e.is_object());
    ASSERT_TRUE(e.at("name").is_string());
    ASSERT_TRUE(e.at("ph").is_string());
    ASSERT_TRUE(e.at("pid").is_number());
    ASSERT_TRUE(e.at("tid").is_number());
    const std::string& ph = e.at("ph").str;
    if (ph == "M") {
      saw_metadata = true;
      continue;
    }
    ASSERT_TRUE(e.at("ts").is_number());
    if (ph == "i") saw_instant = true;
    if (ph == "X") {
      saw_duration = true;
      ASSERT_TRUE(e.at("dur").is_number());
      EXPECT_GE(e.at("dur").number, 0.0);
    }
    if (e.at("name").str == "tx-abort") {
      const test::Json& args = e.at("args");
      ASSERT_TRUE(args.at("cause").is_string());
      if (args.at("cause").str == "explicit") saw_explicit_abort = true;
    }
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_duration);   // commits render as complete events
  EXPECT_TRUE(saw_explicit_abort);
}

TEST_F(ObsTraceTest, WriteChromeTraceProducesLoadableFile) {
  obs::enable();
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) { x.set(tx, 1); });
  obs::disable();
  const std::string path = ::testing::TempDir() + "adtm_trace_test.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NO_THROW(test::json_parse(buf.str()));
  std::remove(path.c_str());
}

TEST_F(ObsTraceTest, RingOverflowIsCountedButSummaryStaysExact) {
  // A deliberately tiny ring must overflow under a burst; drops are
  // counted, and the abort taxonomy — aggregated at emit, not at drain —
  // still accounts for every event.
  RuntimeConfig rc = runtime_config();
  rc.trace_ring_capacity = 64;
  configure(rc);
  obs::enable();
  constexpr std::uint64_t kBurst = 200000;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    obs::emit(obs::EventType::TxAbort, obs::AbortCause::Capacity, 3);
  }
  obs::disable();
  EXPECT_GT(obs::dropped_count(), 0u);
  const obs::RunSummary s = obs::summary();
  ASSERT_EQ(s.algos.size(), 1u);
  EXPECT_EQ(s.algos[0].algo, "HTMSim");
  EXPECT_EQ(
      s.algos[0].aborts[static_cast<std::size_t>(obs::AbortCause::Capacity)],
      kBurst);
  EXPECT_EQ(s.algos[0].total_aborts, kBurst);
}

TEST_F(ObsTraceTest, SummaryJsonIsSchemaValid) {
  obs::enable();
  stm::tvar<int> x{0};
  for (int i = 0; i < 50; ++i) {
    stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
  }
  obs::disable();
  const test::Json doc = test::json_parse(obs::summary_json());
  EXPECT_EQ(doc.at("schema").str, "adtm-obs-summary/v2");
  ASSERT_TRUE(doc.at("algos").is_object());
  const test::Json& tl2 = doc.at("algos").at("TL2");
  EXPECT_GE(tl2.at("commits").number, 50.0);
  ASSERT_TRUE(tl2.at("aborts").is_object());
  EXPECT_TRUE(tl2.at("aborts").has("conflict-validation"));
  EXPECT_TRUE(tl2.at("tx_ns").at("p50").is_number());
  EXPECT_TRUE(tl2.at("commit_ns").at("p99").is_number());
  // The counters object carries one entry per stats() counter, named by
  // counter_name(), valued as the delta over the traced window.
  ASSERT_TRUE(doc.at("counters").is_object());
  EXPECT_EQ(doc.at("counters").object.size(),
            static_cast<std::size_t>(Counter::kCount));
  EXPECT_GE(doc.at("counters").at("tx_commit").number, 50.0);
  EXPECT_TRUE(doc.at("counters").has("deferred_ops"));
  EXPECT_TRUE(doc.at("counters").has("faults_injected"));
}

TEST_F(ObsTraceTest, SummaryCountersAreWindowDeltas) {
  stm::tvar<int> x{0};
  // Commits before enable() must not leak into the window.
  for (int i = 0; i < 10; ++i) {
    stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
  }
  obs::enable();
  for (int i = 0; i < 7; ++i) {
    stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
  }
  auto delta_of = [](const obs::RunSummary& s, const char* name) {
    for (const auto& [n, d] : s.counters) {
      if (n == name) return d;
    }
    ADD_FAILURE() << "no counter " << name;
    return std::uint64_t{0};
  };
  const std::uint64_t commits = delta_of(obs::summary(), "tx_commit");
  EXPECT_GE(commits, 7u);
  EXPECT_LT(commits, 17u);  // the 10 pre-enable commits are excluded
  // clear() re-baselines: the same counter reads zero afterwards.
  obs::clear();
  EXPECT_EQ(delta_of(obs::summary(), "tx_commit"), 0u);
  obs::disable();
}

TEST_F(ObsTraceTest, RecentTailRendersNewestLast) {
  obs::enable();
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) { x.set(tx, 1); });
  stm::atomic([&](stm::Tx& tx) {
    x.get(tx);
    stm::cancel(tx);
  });
  obs::disable();
  const std::string tail = obs::recent_tail(8);
  ASSERT_FALSE(tail.empty());
  // The cancel is the most recent transaction event: its abort line must
  // appear after the earlier commit line.
  const auto commit_pos = tail.find("tx-commit");
  const auto abort_pos = tail.rfind("tx-abort");
  ASSERT_NE(abort_pos, std::string::npos) << tail;
  ASSERT_NE(commit_pos, std::string::npos) << tail;
  EXPECT_LT(commit_pos, abort_pos) << tail;
  EXPECT_NE(tail.find("explicit"), std::string::npos) << tail;
}

TEST_F(ObsTraceTest, ClearResetsEverything) {
  obs::enable();
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) { x.set(tx, 1); });
  obs::disable();
  obs::drain();
  EXPECT_GT(obs::collected_count(), 0u);
  obs::clear();
  EXPECT_EQ(obs::collected_count(), 0u);
  EXPECT_EQ(obs::dropped_count(), 0u);
  EXPECT_EQ(obs::summary().events, 0u);
  EXPECT_TRUE(obs::summary().algos.empty());
}

}  // namespace
}  // namespace adtm
