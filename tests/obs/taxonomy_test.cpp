// Abort-cause taxonomy exactness: seeded scenarios whose abort cause is
// known by construction must be classified exactly — right cause, right
// count, right algorithm bucket.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/deadline.hpp"
#include "common/timing.hpp"
#include "obs/trace.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm {
namespace {

std::uint64_t aborts(const obs::RunSummary& s, const std::string& algo,
                     obs::AbortCause cause) {
  for (const obs::AlgoSummary& a : s.algos) {
    if (a.algo == algo) {
      return a.aborts[static_cast<std::size_t>(cause)];
    }
  }
  return 0;
}

std::uint64_t commits(const obs::RunSummary& s, const std::string& algo) {
  for (const obs::AlgoSummary& a : s.algos) {
    if (a.algo == algo) return a.commits;
  }
  return 0;
}

class AbortTaxonomyTest : public ::testing::Test {
 protected:
  void init(const char* backend, bool quiescence = true) {
    stm::Config cfg;
    cfg.backend = backend;
    // The seeded-conflict tests commit from a rival thread while the main
    // transaction is still open; with quiescence the rival would wait for
    // it (and the main thread is joining the rival). Irrelevant to abort
    // classification, so those tests turn it off.
    cfg.quiescence = quiescence;
    stm::init(cfg);
    obs::clear();
    obs::enable();
  }
  void TearDown() override {
    obs::disable();
    obs::clear();
    stm::init(stm::Config{});
  }
};

TEST_F(AbortTaxonomyTest, CancelIsExactlyOneExplicitAbort) {
  init("tl2");
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    x.get(tx);
    stm::cancel(tx);
  });
  obs::disable();
  const obs::RunSummary s = obs::summary();
  EXPECT_EQ(aborts(s, "TL2", obs::AbortCause::Explicit), 1u);
  EXPECT_EQ(commits(s, "TL2"), 0u);
  ASSERT_EQ(s.algos.size(), 1u);
  EXPECT_EQ(s.algos[0].total_aborts, 1u);
}

TEST_F(AbortTaxonomyTest, CommitTimeInvalidationIsConflictValidation) {
  // Attempt 1: read x, let a rival commit a new x, write y — TL2's
  // commit-time read validation must fail with ConflictValidation (not
  // lock-busy: the rival is long gone by then). Attempt 2 commits.
  init("tl2", /*quiescence=*/false);
  stm::tvar<long> x{0};
  stm::tvar<long> y{0};
  int attempts = 0;
  stm::atomic([&](stm::Tx& tx) {
    const long seen = x.get(tx);
    if (++attempts == 1) {
      std::thread rival([&] {
        stm::atomic([&](stm::Tx& rtx) { x.set(rtx, seen + 1); });
      });
      rival.join();
    }
    y.set(tx, seen + 1);
  });
  obs::disable();
  EXPECT_EQ(attempts, 2);
  const obs::RunSummary s = obs::summary();
  EXPECT_EQ(aborts(s, "TL2", obs::AbortCause::ConflictValidation), 1u);
  EXPECT_EQ(commits(s, "TL2"), 2u);  // the rival and the final attempt
  ASSERT_EQ(s.algos.size(), 1u);
  EXPECT_EQ(s.algos[0].total_aborts, 1u);
}

TEST_F(AbortTaxonomyTest, NorecValueValidationHasItsOwnCause) {
  // The same seeded conflict under NOrec fails value-based validation:
  // the taxonomy distinguishes it from TL2's timestamp validation.
  init("norec", /*quiescence=*/false);
  stm::tvar<long> x{0};
  stm::tvar<long> y{0};
  int attempts = 0;
  stm::atomic([&](stm::Tx& tx) {
    const long seen = x.get(tx);
    if (++attempts == 1) {
      std::thread rival([&] {
        stm::atomic([&](stm::Tx& rtx) { x.set(rtx, seen + 1); });
      });
      rival.join();
    }
    y.set(tx, seen + 1);
  });
  obs::disable();
  EXPECT_EQ(attempts, 2);
  const obs::RunSummary s = obs::summary();
  EXPECT_EQ(aborts(s, "NOrec", obs::AbortCause::ConflictNorecValue), 1u);
  EXPECT_EQ(aborts(s, "NOrec", obs::AbortCause::ConflictValidation), 0u);
  EXPECT_EQ(commits(s, "NOrec"), 2u);
}

TEST_F(AbortTaxonomyTest, HtmFootprintOverflowIsCapacity) {
  stm::Config cfg;
  cfg.backend = "htmsim";
  cfg.htm_capacity = 4;  // tiny budget: the write set below must overflow
  stm::init(cfg);
  obs::clear();
  obs::enable();

  constexpr int kVars = 32;
  std::vector<std::unique_ptr<stm::tvar<long>>> vars;
  for (int i = 0; i < kVars; ++i) {
    vars.push_back(std::make_unique<stm::tvar<long>>(0));
  }
  stm::atomic([&](stm::Tx& tx) {
    for (auto& v : vars) v->set(tx, 1);
  });
  obs::disable();

  const obs::RunSummary s = obs::summary();
  // Every hardware attempt dies on capacity; the serial fallback commits.
  EXPECT_GE(aborts(s, "HTMSim", obs::AbortCause::Capacity), 1u);
  EXPECT_GE(commits(s, "HTMSim"), 1u);
  EXPECT_EQ(vars[kVars - 1]->load_direct(), 1);
}

TEST_F(AbortTaxonomyTest, RetryDeadlineExpiryIsTimeout) {
  init("tl2");
  stm::tvar<bool> flag{false};
  const Deadline deadline = Deadline::at(now_ns() + 20'000'000ull);  // 20 ms
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 if (!flag.get(tx)) stm::retry(tx, deadline);
               }),
               stm::RetryTimeout);
  obs::disable();
  const obs::RunSummary s = obs::summary();
  EXPECT_EQ(aborts(s, "TL2", obs::AbortCause::Timeout), 1u);
  EXPECT_EQ(commits(s, "TL2"), 0u);
}

TEST_F(AbortTaxonomyTest, UserExceptionIsClassifiedAsException) {
  init("tl2");
  stm::tvar<int> x{0};
  struct Boom {};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 x.set(tx, 1);
                 throw Boom{};
               }),
               Boom);
  obs::disable();
  const obs::RunSummary s = obs::summary();
  EXPECT_EQ(aborts(s, "TL2", obs::AbortCause::Exception), 1u);
  EXPECT_EQ(x.load_direct(), 0);  // the throw rolled the write back
}

}  // namespace
}  // namespace adtm
