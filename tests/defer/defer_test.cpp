// atomic_defer semantics: ordering, atomicity of transaction + deferred
// operation, lock lifetimes, delayed frees (paper §4, Listing 1).
#include "defer/atomic_defer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

// A deferrable object with a transactional field accessed through a
// subscribe-guarded getter/setter, per the paper's convention.
class Cell : public Deferrable {
 public:
  int get(stm::Tx& tx) const {
    subscribe(tx);
    return value_.get(tx);
  }
  void set(stm::Tx& tx, int v) {
    subscribe(tx);
    value_.set(tx, v);
  }
  // Raw access for use inside deferred operations (the lock is held).
  int raw() const { return value_.load_direct(); }
  void raw_set(int v) { value_.store_direct(v); }

 private:
  stm::tvar<int> value_{0};
};

class DeferTest : public AlgoTest {};

TEST_P(DeferTest, DeferredOpRunsAfterCommit) {
  Cell cell;
  bool ran_inside = false;
  bool ran = false;
  stm::atomic([&](stm::Tx& tx) {
    cell.set(tx, 1);
    atomic_defer(tx, [&] {
      ran = true;
      EXPECT_FALSE(stm::in_transaction());
      // The transaction's effects are visible to the deferred op.
      EXPECT_EQ(cell.raw(), 1);
    }, cell);
    ran_inside = ran;  // must still be false here
  });
  EXPECT_FALSE(ran_inside);
  EXPECT_TRUE(ran);
}

TEST_P(DeferTest, RunsExactlyOnceDespiteBodyReexecution) {
  Cell cell;
  std::atomic<int> runs{0};
  // Force re-execution pressure with a contended variable.
  stm::tvar<long> hot{0};
  std::atomic<bool> stop{false};
  std::thread antagonist([&] {
    while (!stop.load()) {
      stm::atomic([&](stm::Tx& tx) { hot.set(tx, hot.get(tx) + 1); });
    }
  });
  for (int i = 0; i < 100; ++i) {
    stm::atomic([&](stm::Tx& tx) {
      hot.set(tx, hot.get(tx) + 1);
      atomic_defer(tx, [&] { runs.fetch_add(1); }, cell);
    });
  }
  stop.store(true);
  antagonist.join();
  EXPECT_EQ(runs.load(), 100);
}

TEST_P(DeferTest, LocksAreHeldDuringDeferredOpAndReleasedAfter) {
  Cell cell;
  std::atomic<bool> in_deferred{false};
  std::atomic<bool> deferred_done{false};
  std::atomic<bool> observer_done{false};

  std::thread deferrer([&] {
    stm::atomic([&](stm::Tx& tx) {
      atomic_defer(tx, [&] {
        in_deferred.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
        cell.raw_set(7);
        deferred_done.store(true);
      }, cell);
    });
  });

  while (!in_deferred.load()) std::this_thread::yield();
  // A transaction touching the cell must wait for the deferred op.
  std::thread observer([&] {
    const int v = stm::atomic([&](stm::Tx& tx) { return cell.get(tx); });
    // By the time we could read it, the deferred op had finished.
    EXPECT_TRUE(deferred_done.load());
    EXPECT_EQ(v, 7);
    observer_done.store(true);
  });

  deferrer.join();
  observer.join();
  EXPECT_TRUE(observer_done.load());
  EXPECT_FALSE(cell.txlock().held_by_me());
}

TEST_P(DeferTest, NoIntermediateStateIsObservable) {
  // The transaction writes A transactionally and B in its deferred op
  // (directly, under the implicit lock — no orec updates); concurrent
  // readers that follow the subscribe protocol must see the two updates
  // atomically: never A's new value with B's old value or vice versa.
  // This is the pattern that requires commit-time read-set validation in
  // the runtime (see Tx::commit).
  struct Pair : Deferrable {
    stm::tvar<long> a{0};
    stm::tvar<long> b{0};  // written directly, only under the implicit lock
  };
  Pair p;
  std::atomic<long> violations{0};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (long i = 1; i <= 150; ++i) {
      stm::atomic([&](stm::Tx& tx) {
        p.subscribe(tx);
        p.a.set(tx, i);
        atomic_defer(tx, [&p, i] { p.b.store_direct(i); }, p);
      });
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const auto [a, b] = stm::atomic([&](stm::Tx& tx) {
          p.subscribe(tx);
          return std::pair{p.a.get(tx), p.b.get(tx)};
        });
        if (a != b) violations.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(DeferTest, MultipleDefersRunInOrderAndSeeEarlierEffects) {
  Cell cell;
  std::string order;
  int seen_by_second = -1;
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(tx, [&] {
      order += "1";
      cell.raw_set(10);
    }, cell);
    atomic_defer(tx, [&] {
      order += "2";
      seen_by_second = cell.raw();  // effects of op 1 visible to op 2
    }, cell);
  });
  EXPECT_EQ(order, "12");
  EXPECT_EQ(seen_by_second, 10);
  // Reentrancy: the shared cell stayed locked until the last op finished,
  // and is free now.
  EXPECT_FALSE(cell.txlock().held_by_me());
  stm::atomic([&](stm::Tx& tx) { EXPECT_EQ(cell.get(tx), 10); });
}

TEST_P(DeferTest, DeferredOpSeesWritesAfterTheDeferCall) {
  // Paper §4: "A deferred operation will see any effects of the
  // transaction that occur after the call to atomic_defer."
  Cell cell;
  int seen = -1;
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(tx, [&] { seen = cell.raw(); }, cell);
    cell.set(tx, 42);  // after the defer call, before commit
  });
  EXPECT_EQ(seen, 42);
}

TEST_P(DeferTest, DeferWithNoObjectsIsPlainDeferral) {
  // The paper's "pass nil" variant: ordering after commit, no locking.
  bool ran = false;
  stm::atomic([&](stm::Tx& tx) { atomic_defer(tx, [&] { ran = true; }); });
  EXPECT_TRUE(ran);
}

TEST_P(DeferTest, DeferredOpMayUseTransactions) {
  // Listing 1 moves deferred_ops/tm_free_list to locals precisely so that
  // deferred operations can run transactions internally.
  Cell cell;
  stm::tvar<int> other{0};
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(tx, [&] {
      stm::atomic([&](stm::Tx& inner) { other.set(inner, 5); });
    }, cell);
  });
  EXPECT_EQ(other.load_direct(), 5);
}

TEST_P(DeferTest, FreedMemoryStaysValidForDeferredOps) {
  // Listing 1: tm_free_list is processed after deferred ops complete.
  Cell cell;
  char* buf = static_cast<char*>(std::malloc(32));
  std::strcpy(buf, "still-alive");
  std::string observed;
  stm::atomic([&](stm::Tx& tx) {
    stm::tx_free(tx, buf);
    atomic_defer(tx, [&observed, buf] { observed = buf; }, cell);
  });
  EXPECT_EQ(observed, "still-alive");
}

TEST_P(DeferTest, ThrowingDeferredOpStillReleasesLocks) {
  Cell cell;
  EXPECT_THROW(
      stm::atomic([&](stm::Tx& tx) {
        atomic_defer(tx, [] { throw std::runtime_error("io failed"); }, cell);
      }),
      std::runtime_error);
  // The lock must have been released on the error path.
  stm::atomic([&](stm::Tx& tx) { EXPECT_EQ(cell.get(tx), 0); });
}

TEST_P(DeferTest, ConcurrentDeferrersOnDistinctObjectsProceed) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 150;
  std::vector<std::unique_ptr<Cell>> cells;
  for (int i = 0; i < kThreads; ++i) cells.push_back(std::make_unique<Cell>());
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        stm::atomic([&](stm::Tx& tx) {
          atomic_defer(tx, [&, t] {
            cells[t]->raw_set(cells[t]->raw() + 1);
          }, *cells[t]);
        });
      }
      done.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(done.load(), kThreads);
  for (auto& c : cells) EXPECT_EQ(c->raw(), kPerThread);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, DeferTest, test::AllAlgos(),
                         test::algo_param_name);

class DeferSpecTest : public AlgoTest {};

TEST_P(DeferSpecTest, AbortDiscardsDeferredOps) {
  Cell cell;
  bool ran = false;
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 atomic_defer(tx, [&] { ran = true; }, cell);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_FALSE(ran);
  // The speculative lock acquisition rolled back with the transaction.
  EXPECT_FALSE(cell.txlock().held_by_me());
  stm::atomic([&](stm::Tx& tx) { EXPECT_EQ(cell.get(tx), 0); });
}

INSTANTIATE_TEST_SUITE_P(Speculative, DeferSpecTest, test::SpeculativeAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm
