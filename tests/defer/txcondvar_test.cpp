// Transaction-friendly condition variables (Wang et al.-style) built on
// retry.
#include "defer/txcondvar.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class TxCondVarTest : public AlgoTest {};

TEST_P(TxCondVarTest, WaitWakesOnNotify) {
  TxCondVar cv;
  // The predicate lives OUTSIDE transactional memory (a plain atomic), so
  // only notify can wake the waiter — the case cv exists for.
  std::atomic<bool> ready{false};
  std::atomic<bool> woke{false};

  std::thread waiter([&] {
    stm::atomic([&](stm::Tx& tx) {
      if (!ready.load()) cv.wait(tx);
    });
    woke.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());

  ready.store(true);
  stm::atomic([&](stm::Tx& tx) { cv.notify_all(tx); });
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST_P(TxCondVarTest, NotifyIsDiscardedOnAbort) {
  if (GetParam() == "CGL") GTEST_SKIP() << "CGL cannot roll back";
  TxCondVar cv;
  std::uint64_t before = 0;
  stm::atomic([&](stm::Tx& tx) { before = cv.generation(tx); });
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 cv.notify_all(tx);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  stm::atomic([&](stm::Tx& tx) { EXPECT_EQ(cv.generation(tx), before); });
}

TEST_P(TxCondVarTest, BoundedBufferProducerConsumer) {
  // Classic bounded buffer with two condition variables, written as
  // straight-line transactional code.
  constexpr std::size_t kCap = 4;
  constexpr long kItems = 200;
  stm::tvar<long> buffer[kCap];
  stm::tvar<std::size_t> count{0};
  stm::tvar<std::size_t> head{0}, tail{0};
  TxCondVar not_full, not_empty;

  std::thread producer([&] {
    for (long i = 1; i <= kItems; ++i) {
      stm::atomic([&](stm::Tx& tx) {
        if (count.get(tx) == kCap) not_full.wait(tx);
        const std::size_t t = tail.get(tx);
        buffer[t].set(tx, i);
        tail.set(tx, (t + 1) % kCap);
        count.set(tx, count.get(tx) + 1);
        not_empty.notify_all(tx);
      });
    }
  });

  long sum = 0;
  std::thread consumer([&] {
    for (long i = 0; i < kItems; ++i) {
      sum += stm::atomic([&](stm::Tx& tx) {
        if (count.get(tx) == 0) not_empty.wait(tx);
        const std::size_t h = head.get(tx);
        const long v = buffer[h].get(tx);
        head.set(tx, (h + 1) % kCap);
        count.set(tx, count.get(tx) - 1);
        not_full.notify_all(tx);
        return v;
      });
    }
  });

  producer.join();
  consumer.join();
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
  EXPECT_EQ(count.load_direct(), 0u);
}

TEST_P(TxCondVarTest, ManyWaitersAllWake) {
  TxCondVar cv;
  std::atomic<bool> open{false};
  std::atomic<int> woke{0};
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      stm::atomic([&](stm::Tx& tx) {
        if (!open.load()) cv.wait(tx);
      });
      woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  open.store(true);
  cv.notify_all();  // non-transactional convenience form
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, TxCondVarTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm
