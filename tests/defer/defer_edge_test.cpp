// Edge cases at the intersection of deferral, irrevocability, and nesting.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "defer/atomic_defer.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class Cell : public Deferrable {
 public:
  stm::tvar<int> v{0};
};

class DeferEdgeTest : public AlgoTest {};

TEST_P(DeferEdgeTest, DeferFromIrrevocableTransaction) {
  // A serial transaction can defer too: the deferred op runs after the
  // gate is released, locks held the whole time.
  Cell cell;
  bool ran = false;
  stm::atomic([&](stm::Tx& tx) {
    stm::become_irrevocable(tx);
    atomic_defer(tx, [&] { ran = true; }, cell);
  });
  EXPECT_TRUE(ran);
  EXPECT_FALSE(cell.txlock().held_by_me());
}

TEST_P(DeferEdgeTest, DeferredOpCanDeferAgain) {
  // A deferred operation may run transactions, and those transactions may
  // defer further operations — Listing 1 moves deferred_ops to a local
  // precisely to make the list reusable.
  Cell a, b;
  std::string order;
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(tx, [&] {
      order += "first";
      stm::atomic([&](stm::Tx& inner) {
        atomic_defer(inner, [&] { order += ",second"; }, b);
      });
      order += ",tail";
    }, a);
  });
  // The inner deferral completes during the inner atomic() call, before
  // the outer deferred op's remaining code.
  EXPECT_EQ(order, "first,second,tail");
  EXPECT_FALSE(a.txlock().held_by_me());
  EXPECT_FALSE(b.txlock().held_by_me());
}

TEST_P(DeferEdgeTest, SameObjectInMultipleDefersOfOneTx) {
  // Reentrancy across deferred ops: the object stays locked from commit
  // until the LAST op touching it completes.
  Cell cell;
  std::atomic<bool> first_ran{false};
  std::atomic<bool> observer_saw_between{false};
  std::atomic<bool> second_started{false};

  std::thread observer;
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(tx, [&] {
      first_ran.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }, cell);
    atomic_defer(tx, [&] {
      second_started.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      cell.v.store_direct(2);
    }, cell);
  });
  // Both ops done by now (they run synchronously at commit). Verify final
  // state and lock release.
  EXPECT_TRUE(first_ran.load());
  EXPECT_TRUE(second_started.load());
  EXPECT_EQ(cell.v.load_direct(), 2);
  stm::atomic([&](stm::Tx& tx) {
    cell.subscribe(tx);
    EXPECT_EQ(cell.v.get(tx), 2);
  });
  (void)observer_saw_between;
}

TEST_P(DeferEdgeTest, LockStaysHeldAcrossBothOpsObservedConcurrently) {
  Cell cell;
  std::atomic<int> phase{0};  // 1 = first op, 2 = second op, 3 = done
  std::atomic<int> observed_at_read{-1};

  std::thread deferrer([&] {
    stm::atomic([&](stm::Tx& tx) {
      atomic_defer(tx, [&] {
        phase.store(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }, cell);
      atomic_defer(tx, [&] {
        phase.store(2);
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        phase.store(3);
      }, cell);
    });
  });

  while (phase.load() == 0) std::this_thread::yield();
  // Subscribe-guarded access: can only complete once BOTH ops are done
  // (the lock is reentrant, released by the last op).
  stm::atomic([&](stm::Tx& tx) {
    cell.subscribe(tx);
    observed_at_read.store(phase.load());
  });
  EXPECT_EQ(observed_at_read.load(), 3);
  deferrer.join();
}

TEST_P(DeferEdgeTest, ManySmallDefersInOneTransaction) {
  Cell cell;
  int count = 0;
  stm::atomic([&](stm::Tx& tx) {
    for (int i = 0; i < 64; ++i) {
      atomic_defer(tx, [&count] { ++count; }, cell);
    }
  });
  EXPECT_EQ(count, 64);
  EXPECT_FALSE(cell.txlock().held_by_me());
}

TEST_P(DeferEdgeTest, VectorFormWithDynamicObjectSet) {
  Cell a, b, c;
  std::vector<const Deferrable*> objs = {&a, &c};  // computed at runtime
  bool ran = false;
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(tx, [&] { ran = true; }, objs);
  });
  EXPECT_TRUE(ran);
  EXPECT_FALSE(a.txlock().held_by_me());
  EXPECT_FALSE(c.txlock().held_by_me());
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, DeferEdgeTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm
