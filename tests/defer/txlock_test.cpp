// TxLock: the transaction-friendly reentrant mutex of paper §4.2/Listing 2.
#include "defer/txlock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "stm/api.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class TxLockTest : public AlgoTest {};

TEST_P(TxLockTest, AcquireAndReleaseOutsideTransaction) {
  TxLock lock;
  EXPECT_FALSE(lock.held_by_me());
  lock.acquire();
  EXPECT_TRUE(lock.held_by_me());
  lock.release();
  EXPECT_FALSE(lock.held_by_me());
}

TEST_P(TxLockTest, ReentrantAcquire) {
  TxLock lock;
  lock.acquire();
  lock.acquire();
  lock.acquire();
  stm::atomic([&](stm::Tx& tx) { EXPECT_EQ(lock.depth(tx), 3u); });
  lock.release();
  lock.release();
  EXPECT_TRUE(lock.held_by_me());
  lock.release();
  EXPECT_FALSE(lock.held_by_me());
}

TEST_P(TxLockTest, ReleaseWithoutOwnershipThrows) {
  TxLock lock;
  EXPECT_THROW(lock.release(), std::logic_error);
}

TEST_P(TxLockTest, ReleaseOfLockHeldByOtherThreadThrows) {
  TxLock lock;
  lock.acquire();
  std::thread t([&] { EXPECT_THROW(lock.release(), std::logic_error); });
  t.join();
  lock.release();
}

TEST_P(TxLockTest, MutualExclusionStress) {
  TxLock lock;
  long shared = 0;  // plain variable protected only by the TxLock
  constexpr int kThreads = 4;
  constexpr int kPerThread = 800;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        TxLockGuard guard(lock);
        ++shared;  // racy unless the lock really excludes
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared, long{kThreads} * kPerThread);
}

TEST_P(TxLockTest, SubscribeBlocksWhileHeld) {
  TxLock lock;
  stm::tvar<int> data{0};
  lock.acquire();

  std::atomic<bool> subscriber_done{false};
  std::thread subscriber([&] {
    stm::atomic([&](stm::Tx& tx) {
      lock.subscribe(tx);
      data.set(tx, 1);
    });
    subscriber_done.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(subscriber_done.load());
  EXPECT_EQ(data.load_direct(), 0);

  lock.release();
  subscriber.join();
  EXPECT_TRUE(subscriber_done.load());
  EXPECT_EQ(data.load_direct(), 1);
}

TEST_P(TxLockTest, SubscribePassesWhenHeldByMe) {
  TxLock lock;
  lock.acquire();
  stm::atomic([&](stm::Tx& tx) {
    lock.subscribe(tx);  // owner: must not retry
    SUCCEED();
  });
  lock.release();
}

TEST_P(TxLockTest, ConcurrentSubscribersDoNotConflict) {
  // Subscription only reads the owner field, so many subscribers can run
  // concurrently without aborting each other.
  TxLock lock;
  std::atomic<int> done{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        stm::atomic([&](stm::Tx& tx) { lock.subscribe(tx); });
      }
      done.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(done.load(), kThreads);
}

TEST_P(TxLockTest, TryAcquireSucceedsWhenFree) {
  TxLock lock;
  EXPECT_TRUE(lock.try_acquire());
  EXPECT_TRUE(lock.held_by_me());
  EXPECT_TRUE(lock.try_acquire());  // reentrant
  lock.release();
  lock.release();
  EXPECT_FALSE(lock.held_by_me());
}

TEST_P(TxLockTest, TryAcquireFailsWhenHeldElsewhere) {
  TxLock lock;
  lock.acquire();
  std::thread other([&] {
    EXPECT_FALSE(lock.try_acquire());
    // And inside a larger transaction too, without aborting it.
    stm::tvar<int> side{0};
    stm::atomic([&](stm::Tx& tx) {
      side.set(tx, 1);
      EXPECT_FALSE(lock.try_acquire(tx));
    });
    EXPECT_EQ(side.load_direct(), 1);  // the transaction still committed
  });
  other.join();
  lock.release();
}

TEST_P(TxLockTest, AcquireInsideTransactionCommitsWithIt) {
  TxLock lock;
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    lock.acquire(tx);
    x.set(tx, 1);
  });
  // The lock acquisition committed with the transaction.
  EXPECT_TRUE(lock.held_by_me());
  EXPECT_EQ(x.load_direct(), 1);
  lock.release();
}

TEST_P(TxLockTest, LockStatsRecordNothingWhileDisabled) {
  ASSERT_FALSE(lock_stats().enabled());  // ADTM_LOCK_STATS unset in tests
  TxLock lock;
  lock.acquire();
  lock.release();
  EXPECT_EQ(lock_stats().wait_count(&lock), 0u);
  EXPECT_EQ(lock_stats().hold_count(&lock), 0u);
}

TEST_P(TxLockTest, LockStatsRecordContendedWaitAndHold) {
  lock_stats().set_enabled(true);
  // On a loaded single-core host the contender can be descheduled past
  // the owner's entire hold, shrinking (or skipping) its park — so a
  // single run cannot assert an absolute wait duration. Retry the
  // scenario until one park spans most of the 5 ms hold.
  bool sampled = false;
  for (int attempt = 0; attempt < 20 && !sampled; ++attempt) {
    lock_stats().reset();
    TxLock lock;
    std::atomic<bool> held{false};
    std::atomic<bool> contender_ready{false};
    std::thread owner([&] {
      lock.acquire();
      held.store(true);
      // Start the timed hold only once the contender is at the acquire.
      while (!contender_ready.load()) std::this_thread::yield();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      lock.release();
    });
    while (!held.load()) std::this_thread::yield();
    contender_ready.store(true);
    lock.acquire();  // parks behind the owner: one wait sample
    lock.release();  // depth hits zero: one hold sample
    owner.join();
    // Two committed holds (owner's and ours), every attempt.
    ASSERT_EQ(lock_stats().hold_count(&lock), 2u);
    sampled = lock_stats().wait_count(&lock) >= 1u &&
              lock_stats().wait_percentile(&lock, 99) >= 1'000'000u;
    if (sampled) {
      const std::string report = lock_stats().report();
      EXPECT_NE(report.find("waits"), std::string::npos) << report;
    }
  }
  lock_stats().set_enabled(false);
  lock_stats().reset();
  EXPECT_TRUE(sampled) << "no contended wait spanned >=1ms in 20 tries";
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, TxLockTest, test::AllAlgos(),
                         test::algo_param_name);

// Rollback-dependent behaviours (speculative algorithms only).
class TxLockSpecTest : public AlgoTest {};

TEST_P(TxLockSpecTest, AbortedAcquireLeavesLockFree) {
  TxLock lock;
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 lock.acquire(tx);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_FALSE(lock.held_by_me());
  // And it is acquirable afterwards.
  lock.acquire();
  lock.release();
}

TEST_P(TxLockSpecTest, MultiLockAcquisitionIsDeadlockFree) {
  // Two threads acquire {A,B} in opposite orders inside transactions.
  // With ordinary mutexes this deadlocks; with TxLocks the enclosing
  // transaction retries, releasing its speculative acquisition.
  TxLock a, b;
  constexpr int kRounds = 200;
  auto worker = [&](TxLock& first, TxLock& second) {
    for (int i = 0; i < kRounds; ++i) {
      stm::atomic([&](stm::Tx& tx) {
        first.acquire(tx);
        second.acquire(tx);
      });
      // Both held: release outside the transaction.
      second.release();
      first.release();
    }
  };
  std::thread t1([&] { worker(a, b); });
  std::thread t2([&] { worker(b, a); });
  t1.join();
  t2.join();
  EXPECT_FALSE(a.held_by_me());
  EXPECT_FALSE(b.held_by_me());
}

INSTANTIATE_TEST_SUITE_P(Speculative, TxLockSpecTest, test::SpeculativeAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm
