// OrderedWriter: ticket-ordered deferred output across threads.
#include "defer/ordered_writer.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "io/temp_dir.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

std::vector<std::string> lines_of(const std::string& path) {
  std::istringstream in(io::read_file(path));
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

class OrderedWriterTest : public AlgoTest {
 protected:
  io::TempDir dir_{"adtm-owriter"};
};

TEST_P(OrderedWriterTest, SingleThreadWritesInProgramOrder) {
  OrderedWriter writer(dir_.file("log"));
  for (int i = 0; i < 20; ++i) {
    stm::atomic([&](stm::Tx& tx) {
      writer.write(tx, "rec" + std::to_string(i));
    });
  }
  writer.drain();
  const auto lines = lines_of(dir_.file("log"));
  ASSERT_EQ(lines.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(lines[i], "rec" + std::to_string(i));
}

TEST_P(OrderedWriterTest, TicketOrderMatchesCommitOrderAcrossThreads) {
  OrderedWriter writer(dir_.file("log"));
  // Each record embeds a global commit-order stamp taken in the same
  // transaction as the ticket; the file must be sorted by it.
  stm::tvar<long> commit_order{0};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 60;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        stm::atomic([&](stm::Tx& tx) {
          const long stamp = commit_order.get(tx);
          commit_order.set(tx, stamp + 1);
          writer.write(tx, std::to_string(stamp));
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  writer.drain();

  const auto lines = lines_of(dir_.file("log"));
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i], std::to_string(i)) << "position " << i;
  }
}

TEST_P(OrderedWriterTest, AbortedTransactionConsumesNoTicket) {
  if (GetParam() == "CGL") GTEST_SKIP() << "CGL cannot roll back";
  OrderedWriter writer(dir_.file("log"));
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 writer.write(tx, "never");
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  stm::atomic([&](stm::Tx& tx) { writer.write(tx, "only"); });
  writer.drain();
  EXPECT_EQ(writer.tickets_direct(), 1u);
  const auto lines = lines_of(dir_.file("log"));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "only");
}

TEST_P(OrderedWriterTest, MultipleWritesInOneTransactionStayAdjacent) {
  OrderedWriter writer(dir_.file("log"));
  stm::atomic([&](stm::Tx& tx) {
    writer.write(tx, "a1");
    writer.write(tx, "a2");
    writer.write(tx, "a3");
  });
  writer.drain();
  const auto lines = lines_of(dir_.file("log"));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a1");
  EXPECT_EQ(lines[1], "a2");
  EXPECT_EQ(lines[2], "a3");
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, OrderedWriterTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm
