// Failure semantics of deferred operations: a throwing deferred op must
// never leak its TxLocks or starve later deferred ops (subscribers would
// deadlock), and run_with_policy implements bounded transient retry with
// escalate-or-propagate (see failure_policy.hpp).
#include "defer/atomic_defer.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "defer/failure_policy.hpp"
#include "faultsim/faultsim.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class Box : public Deferrable {
 public:
  int get(stm::Tx& tx) const {
    subscribe(tx);
    return value_.get(tx);
  }
  int raw() const { return value_.load_direct(); }
  void raw_set(int v) { value_.store_direct(v); }

 private:
  stm::tvar<int> value_{0};
};

class DeferFailureTest : public AlgoTest {};

TEST_P(DeferFailureTest, ThrowingOpStillReleasesItsLocks) {
  Box a, b;
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 atomic_defer(tx, [] { throw std::runtime_error("boom"); },
                              a, b);
               }),
               std::runtime_error);
  // Both implicit locks must be free — a subscriber would otherwise hang.
  EXPECT_TRUE(a.txlock().try_acquire());
  EXPECT_TRUE(b.txlock().try_acquire());
  a.txlock().release();
  b.txlock().release();
}

TEST_P(DeferFailureTest, LaterDeferredOpsRunDespiteEarlierThrow) {
  Box a, b;
  bool second_ran = false;
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 atomic_defer(tx, [] { throw std::runtime_error("first"); },
                              a);
                 atomic_defer(tx, [&] { second_ran = true; }, b);
               }),
               std::runtime_error);
  // run_epilogues must not abandon the queue on the first throw: the
  // second op ran and released b's lock.
  EXPECT_TRUE(second_ran);
  EXPECT_TRUE(a.txlock().try_acquire());
  EXPECT_TRUE(b.txlock().try_acquire());
  a.txlock().release();
  b.txlock().release();
}

TEST_P(DeferFailureTest, SubscriberDoesNotDeadlockAfterThrowingOp) {
  Box box;
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 atomic_defer(tx, [] { throw std::runtime_error("boom"); },
                              box);
               }),
               std::runtime_error);
  // A subscribing transaction on another thread completes promptly.
  int seen = -1;
  std::thread reader(
      [&] { stm::atomic([&](stm::Tx& tx) { seen = box.get(tx); }); });
  reader.join();
  EXPECT_EQ(seen, 0);
}

TEST_P(DeferFailureTest, PolicyRetriesTransientThenSucceeds) {
  Box box;
  int attempts = 0;
  FailurePolicy policy{.max_retries = 8,
                       .backoff_min_spins = 4,
                       .backoff_max_spins = 64,
                       .retryable = nullptr,
                       .escalate = nullptr};
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(
        tx,
        [&] {
          if (++attempts <= 2) {
            throw std::system_error(EINTR, std::generic_category());
          }
          box.raw_set(7);
        },
        {&box}, policy);
  });
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(box.raw(), 7);
  EXPECT_EQ(stats().total(Counter::FailureRetries), 2u);
  EXPECT_EQ(stats().total(Counter::FailureEscalations), 0u);
  EXPECT_TRUE(box.txlock().try_acquire());
  box.txlock().release();
}

TEST_P(DeferFailureTest, DefaultPolicyNeverRetriesWholeOps) {
  // The shipped default has max_retries = 0: a deferred op may not be
  // idempotent, so even a transient errno fails on the first attempt.
  Box box;
  int attempts = 0;
  EXPECT_THROW(
      stm::atomic([&](stm::Tx& tx) {
        atomic_defer(
            tx,
            [&] {
              ++attempts;
              throw std::system_error(EINTR, std::generic_category());
            },
            box);
      }),
      std::system_error);
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(box.txlock().try_acquire());
  box.txlock().release();
}

TEST_P(DeferFailureTest, NonTransientFailsOnFirstAttempt) {
  Box box;
  int attempts = 0;
  FailurePolicy policy{.max_retries = 8,
                       .backoff_min_spins = 4,
                       .backoff_max_spins = 64,
                       .retryable = nullptr,
                       .escalate = nullptr};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 atomic_defer(
                     tx,
                     [&] {
                       ++attempts;
                       throw std::logic_error("not transient");
                     },
                     {&box}, policy);
               }),
               std::logic_error);
  EXPECT_EQ(attempts, 1);  // no blind retry of a permanent failure
  EXPECT_EQ(stats().total(Counter::FailureRetries), 0u);
  EXPECT_GE(stats().total(Counter::FailureEscalations), 1u);
}

TEST_P(DeferFailureTest, EscalateHandlerAbsorbsTheFailure) {
  Box box;
  std::string captured;
  FailurePolicy policy{
      .max_retries = 0,
      .backoff_min_spins = 4,
      .backoff_max_spins = 64,
      .retryable = nullptr,
      .escalate = [&](std::exception_ptr ep) {
        try {
          std::rethrow_exception(ep);
        } catch (const std::exception& e) {
          captured = e.what();
        }
      }};
  // The handler swallows the failure: atomic() returns normally and the
  // lock is released.
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(tx, [] { throw std::runtime_error("handled"); }, {&box},
                 policy);
  });
  EXPECT_EQ(captured, "handled");
  EXPECT_TRUE(box.txlock().try_acquire());
  box.txlock().release();
}

TEST_P(DeferFailureTest, SimulatedCrashIsNeverTransient) {
  Box box;
  int attempts = 0;
  FailurePolicy policy{.max_retries = 8,
                       .backoff_min_spins = 4,
                       .backoff_max_spins = 64,
                       .retryable = nullptr,
                       .escalate = nullptr};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 atomic_defer(
                     tx,
                     [&] {
                       ++attempts;
                       throw faultsim::SimulatedCrash("crash point");
                     },
                     {&box}, policy);
               }),
               faultsim::SimulatedCrash);
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(box.txlock().try_acquire());
  box.txlock().release();
}

INSTANTIATE_TEST_SUITE_P(Algos, DeferFailureTest, test::SpeculativeAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm
