// OLTP harness smoke matrix (label: oltp): a seconds-scale run of both
// workloads over every registered backend, checking the things a bench binary
// can only print — the container-size oracle, and that driver-counted
// commits reconcile with the obs layer's taxonomy.
#include "bench/oltp_driver.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "support/algo_param.hpp"

namespace adtm::oltp {
namespace {

ScenarioConfig quick_config(const std::string& backend, Dist dist,
                            unsigned threads) {
  ScenarioConfig cfg;
  cfg.backend = backend;
  cfg.dist = dist;
  cfg.threads = threads;
  cfg.duration_ms = 40;
  cfg.key_space = 4096;
  cfg.seed = 7;
  return cfg;
}

std::uint64_t taxonomy_total(const ScenarioResult& res) {
  std::uint64_t total = 0;
  for (const auto& [cause, count] : res.abort_causes) total += count;
  return total;
}

class OltpSmokeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { setup_observability(); }
};

TEST_F(OltpSmokeTest, YcsbBTreeCommitsReconcileWithObs) {
  YcsbRunner<containers::TxBTree<std::uint64_t, std::uint64_t>> runner(
      4096, 7);
  for (const std::string& name : test::all_backend_names()) {
    for (const Dist dist : {Dist::Uniform, Dist::Zipf}) {
      const auto res = runner.run(quick_config(name, dist, 2));
      EXPECT_GT(res.commits, 0u) << name;
      EXPECT_TRUE(res.oracle_ok) << name << ": size oracle mismatch";
      // YCSB ops are exactly one transaction each and nothing else runs
      // in the window, so the obs commit count must match the driver's.
      EXPECT_EQ(res.obs_commits, res.commits) << name;
      // The abort taxonomy must account for every abort it reports.
      EXPECT_EQ(taxonomy_total(res), res.obs_aborts) << name;
      if (name == "CGL") {
        EXPECT_EQ(res.obs_aborts, 0u) << "CGL cannot abort";
      }
    }
  }
}

TEST_F(OltpSmokeTest, YcsbSkipListCommitsReconcileWithObs) {
  YcsbRunner<containers::TxSkipList<std::uint64_t, std::uint64_t>> runner(
      4096, 7);
  for (const std::string& name : test::all_backend_names()) {
    const auto res = runner.run(quick_config(name, Dist::Zipf, 2));
    EXPECT_GT(res.commits, 0u) << name;
    EXPECT_TRUE(res.oracle_ok) << name << ": size oracle mismatch";
    EXPECT_EQ(res.obs_commits, res.commits) << name;
    EXPECT_EQ(taxonomy_total(res), res.obs_aborts) << name;
  }
}

TEST_F(OltpSmokeTest, WarehouseOrderedLogReconciles) {
  WarehouseRunner runner(4096, 7);
  for (const std::string& name : test::all_backend_names()) {
    const auto res = runner.run(quick_config(name, Dist::Zipf, 2));
    EXPECT_GT(res.commits, 0u) << name;
    // oracle_ok covers both tables: one skip-list order row AND one
    // ordered txlog record per committed transaction (atomic deferral's
    // both-or-neither at workload scale).
    EXPECT_TRUE(res.oracle_ok) << name << ": order/log oracle mismatch";
    // Deferred epilogues release TxLocks in their own small transactions,
    // so obs counts at least the driver's commits, never fewer.
    EXPECT_GE(res.obs_commits, res.commits) << name;
    EXPECT_EQ(taxonomy_total(res), res.obs_aborts) << name;
  }
}

TEST_F(OltpSmokeTest, OpenLoopPacingBoundsThroughput) {
  // At a 20k ops/s target the closed-loop rate (hundreds of k) must be
  // throttled down to roughly the requested rate.
  YcsbRunner<containers::TxBTree<std::uint64_t, std::uint64_t>> runner(
      4096, 7);
  ScenarioConfig cfg = quick_config("tl2", Dist::Uniform, 2);
  cfg.duration_ms = 100;
  cfg.rate = 20000;
  const auto res = runner.run(cfg);
  EXPECT_TRUE(res.oracle_ok);
  const double tput = static_cast<double>(res.commits) / res.wall_s;
  EXPECT_GT(tput, 10000.0);
  EXPECT_LT(tput, 30000.0);
}

TEST(OltpMatrixTest, MatrixFromEnvParsesAndClamps) {
  ::setenv("ADTM_OLTP_THREADS", "2,8", 1);
  ::setenv("ADTM_OLTP_DURATION_MS", "123", 1);
  ::setenv("ADTM_OLTP_KEYS", "777", 1);
  ::setenv("ADTM_OLTP_THETA", "0.5", 1);
  ::setenv("ADTM_OLTP_READ_PCT", "90", 1);
  ::setenv("ADTM_OLTP_SCAN_PCT", "50", 1);  // clamped to 100 - read_pct
  ::setenv("ADTM_OLTP_SPIN_NS", "42", 1);
  ::setenv("ADTM_OLTP_CONTAINER", "skiplist", 1);
  const MatrixConfig m = matrix_from_env();
  ASSERT_EQ(m.threads.size(), 2u);
  EXPECT_EQ(m.threads[0], 2u);
  EXPECT_EQ(m.threads[1], 8u);
  EXPECT_EQ(m.duration_ms, 123u);
  EXPECT_EQ(m.keys, 777u);
  EXPECT_DOUBLE_EQ(m.theta, 0.5);
  EXPECT_EQ(m.read_pct, 90u);
  EXPECT_EQ(m.scan_pct, 10u);
  EXPECT_EQ(m.spin_ns, 42u);
  EXPECT_EQ(m.container, "skiplist");
  for (const char* var :
       {"ADTM_OLTP_THREADS", "ADTM_OLTP_DURATION_MS", "ADTM_OLTP_KEYS",
        "ADTM_OLTP_THETA", "ADTM_OLTP_READ_PCT", "ADTM_OLTP_SCAN_PCT",
        "ADTM_OLTP_SPIN_NS", "ADTM_OLTP_CONTAINER"}) {
    ::unsetenv(var);
  }
  // Defaults after cleanup: the committed-matrix shape.
  const MatrixConfig d = matrix_from_env();
  ASSERT_EQ(d.threads.size(), 3u);
  EXPECT_EQ(d.keys, std::uint64_t{1} << 20);
  EXPECT_DOUBLE_EQ(d.theta, 0.99);
}

TEST(OltpNamingTest, DistTags) {
  EXPECT_EQ(dist_tag(Dist::Uniform, 0.99), "u");
  EXPECT_EQ(dist_tag(Dist::Zipf, 0.99), "z99");
  EXPECT_EQ(dist_tag(Dist::Zipf, 0.8), "z80");
}

}  // namespace
}  // namespace adtm::oltp
