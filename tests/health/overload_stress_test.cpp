// End-to-end overload storm (the ISSUE's acceptance scenario): arrival
// far above drain capacity plus a persistent injected write error. The
// queue must stay bounded (memory), excess load must shed, the breaker
// must open within its error window, admitted-op latency must stay
// inside budget, and once the fault clears the half-open probe must
// close the breaker and return the process to Healthy.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "faultsim/faultsim.hpp"
#include "fdpool/async_io.hpp"
#include "health/breaker.hpp"
#include "health/health.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"

namespace adtm::fdpool {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

class OverloadStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faultsim::engine().disarm();
    stats().reset();
    health::monitor().reset();
  }
  void TearDown() override {
    faultsim::engine().disarm();
    health::monitor().reset();
  }

  io::TempDir dir_{"adtm-health-storm"};
};

TEST_F(OverloadStressTest, StormShedsBoundsBreaksAndRecovers) {
  constexpr std::size_t kCap = 64;
  constexpr int kOps = 4000;
  constexpr std::uint32_t kBreakerWindow = 8;

  io::PosixFile f = io::PosixFile::open_rw(dir_.file("storm"));
  QueueOptions q;
  q.cap = kCap;
  q.policy = QueuePolicy::Shed;  // open-loop producer: shed, don't block
  q.deadline_ms = 10;
  health::BreakerOptions b;
  b.failure_threshold = kBreakerWindow;
  b.cooldown_ms = 50;
  b.max_cooldown_ms = 200;
  b.name = "storm.io";
  b.report_to_monitor = true;
  AsyncIOEngine engine(2, q, b);

  // A persistently dying descriptor: every real pwrite fails with EIO.
  faultsim::engine().arm({.op = faultsim::Op::Pwrite,
                          .fault = faultsim::Fault::error(EIO),
                          .count = 0,
                          .fd = f.fd()});

  std::mutex lat_mu;
  std::vector<Clock::duration> admitted_lat;
  admitted_lat.reserve(kOps);
  bool saw_unhealthy = false;
  const std::string payload(512, 'x');
  for (int i = 0; i < kOps; ++i) {
    const Clock::time_point t0 = Clock::now();
    engine.submit_write(f.fd(), static_cast<std::uint64_t>(i) * 512, payload,
                        [&, t0](std::error_code ec) {
                          if (ec.value() == EAGAIN) return;  // shed, not run
                          {
                            std::lock_guard<std::mutex> lk(lat_mu);
                            admitted_lat.push_back(Clock::now() - t0);
                          }
                          // Slow consumer: drain capacity far below the
                          // tight-loop arrival rate.
                          std::this_thread::sleep_for(20us);
                        });
    if (health::monitor().state() != health::HealthState::Healthy) {
      saw_unhealthy = true;
    }
  }
  engine.drain();

  // Memory stays bounded at the configured capacity.
  EXPECT_LE(engine.high_water(), kCap);
  // The storm exceeded drain capacity: load was shed...
  EXPECT_GT(engine.shed(), 0u);
  EXPECT_GE(stats().total(Counter::QueueSheds), engine.shed());
  // ...and the dying descriptor tripped the breaker within its window.
  EXPECT_GE(engine.breaker().trips(), 1u);
  EXPECT_GT(engine.breaker().fast_fails(), 0u);
  EXPECT_GT(engine.failed(), 0u);
  // The degradation was visible process-wide while the storm raged.
  EXPECT_TRUE(saw_unhealthy);

  // Admitted-op p99 stays inside budget even under overload: the queue
  // bound caps the wait to ~cap x per-op service time (generous ceiling
  // here to keep slow CI machines green).
  {
    std::lock_guard<std::mutex> lk(lat_mu);
    ASSERT_FALSE(admitted_lat.empty());
    std::sort(admitted_lat.begin(), admitted_lat.end());
    const std::size_t idx =
        std::min(admitted_lat.size() * 99 / 100, admitted_lat.size() - 1);
    EXPECT_LT(admitted_lat[idx], 500ms);
  }

  // Fault clears: the next probe past the cooldown closes the breaker
  // and the monitor folds back to Healthy.
  faultsim::engine().disarm();
  const Clock::time_point deadline = Clock::now() + 5s;
  while (engine.breaker().state() != health::BreakerState::Closed &&
         Clock::now() < deadline) {
    engine.submit_write(f.fd(), 0, "probe");
    engine.drain();
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(engine.breaker().state(), health::BreakerState::Closed);
  EXPECT_EQ(health::monitor().state(), health::HealthState::Healthy);
  const health::HealthSnapshot snap = health::monitor().healthz();
  EXPECT_EQ(snap.open_breakers, 0u);
  EXPECT_EQ(snap.saturated_queues, 0u);
  EXPECT_GE(snap.breaker_trips, 1u);
}

}  // namespace
}  // namespace adtm::fdpool
