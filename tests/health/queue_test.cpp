// Bounded submission queue: block / shed / deadline policies, saturation
// signalling to the health monitor with hysteresis, and worker survival
// when a completion callback throws.
#include "fdpool/async_io.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "common/stats.hpp"
#include "health/health.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"

namespace adtm::fdpool {
namespace {

using namespace std::chrono_literals;

// A completion callback that parks its worker until release(): with one
// worker and the plug in flight, every further submission stays queued,
// so the test controls the queue depth exactly.
struct Plug {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  std::atomic<bool> plugged{false};

  AsyncIOEngine::Completion callback() {
    return [this](std::error_code) {
      plugged.store(true);
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [this] { return released; });
    };
  }
  void await_plugged() {
    while (!plugged.load()) std::this_thread::yield();
  }
  void release() {
    {
      std::lock_guard<std::mutex> lk(mu);
      released = true;
    }
    cv.notify_all();
  }
};

class QueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stats().reset();
    health::monitor().reset();
  }
  void TearDown() override { health::monitor().reset(); }

  QueueOptions bounded(QueuePolicy policy, std::uint64_t deadline_ms = 50) {
    QueueOptions q;
    q.cap = 4;
    q.policy = policy;
    q.deadline_ms = deadline_ms;
    return q;
  }
  health::BreakerOptions quiet_breaker() {
    health::BreakerOptions b;
    b.failure_threshold = 0;
    b.name = "queue-test.io";
    b.report_to_monitor = false;
    return b;
  }

  io::TempDir dir_{"adtm-health-q"};
};

TEST_F(QueueTest, BlockPolicyBackpressuresTheSubmitter) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("a"));
  Plug plug;
  std::atomic<bool> submitted{false};
  {
    AsyncIOEngine engine(1, bounded(QueuePolicy::Block), quiet_breaker());
    ASSERT_TRUE(engine.submit_write(f.fd(), 0, "p", plug.callback()));
    plug.await_plugged();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(engine.submit_write(f.fd(), 0, "fill"));
    }
    EXPECT_EQ(engine.depth(), 4u);

    std::thread blocked([&] {
      EXPECT_TRUE(engine.submit_write(f.fd(), 0, "blocked"));
      submitted.store(true);
    });
    std::this_thread::sleep_for(30ms);
    EXPECT_FALSE(submitted.load());  // full queue: submitter is parked
    plug.release();
    blocked.join();
    EXPECT_TRUE(submitted.load());
    engine.drain();
    EXPECT_EQ(engine.completed(), 6u);
    EXPECT_EQ(engine.shed(), 0u);
  }
  EXPECT_GE(stats().total(Counter::QueueBlockWaits), 1u);
}

TEST_F(QueueTest, ShedPolicyFailsFastWithEagain) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("b"));
  Plug plug;
  AsyncIOEngine engine(1, bounded(QueuePolicy::Shed), quiet_breaker());
  ASSERT_TRUE(engine.submit_write(f.fd(), 0, "p", plug.callback()));
  plug.await_plugged();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.submit_write(f.fd(), 0, "fill"));
  }
  std::error_code shed_ec;
  const bool accepted = engine.submit_write(
      f.fd(), 0, "shed", [&](std::error_code ec) { shed_ec = ec; });
  EXPECT_FALSE(accepted);  // callback already ran, synchronously
  EXPECT_EQ(shed_ec.value(), EAGAIN);
  EXPECT_EQ(engine.shed(), 1u);
  EXPECT_GE(stats().total(Counter::QueueSheds), 1u);
  plug.release();
  engine.drain();
  EXPECT_EQ(engine.completed(), 5u);  // the shed request never ran
}

TEST_F(QueueTest, DeadlinePolicyBlocksThenSheds) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("c"));
  Plug plug;
  AsyncIOEngine engine(1, bounded(QueuePolicy::Deadline, 50), quiet_breaker());
  ASSERT_TRUE(engine.submit_write(f.fd(), 0, "p", plug.callback()));
  plug.await_plugged();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.submit_write(f.fd(), 0, "fill"));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const bool accepted = engine.submit_write(f.fd(), 0, "late");
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(accepted);
  EXPECT_GE(waited, 40ms);  // held on for (about) the deadline first
  EXPECT_EQ(engine.shed(), 1u);
  plug.release();
  engine.drain();
}

TEST_F(QueueTest, UnboundedCapZeroNeverSheds) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("d"));
  Plug plug;
  QueueOptions q = bounded(QueuePolicy::Shed);
  q.cap = 0;
  AsyncIOEngine engine(1, q, quiet_breaker());
  ASSERT_TRUE(engine.submit_write(f.fd(), 0, "p", plug.callback()));
  plug.await_plugged();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(engine.submit_write(f.fd(), 0, "fill"));
  }
  EXPECT_EQ(engine.shed(), 0u);
  EXPECT_GE(engine.high_water(), 64u);
  plug.release();
  engine.drain();
}

TEST_F(QueueTest, SaturationSignalsTheMonitorAndClears) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("e"));
  Plug plug;
  AsyncIOEngine engine(1, bounded(QueuePolicy::Shed), quiet_breaker());
  ASSERT_TRUE(engine.submit_write(f.fd(), 0, "p", plug.callback()));
  plug.await_plugged();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.submit_write(f.fd(), 0, "fill"));
  }
  EXPECT_FALSE(engine.submit_write(f.fd(), 0, "over"));  // reports pressure
  {
    const health::HealthSnapshot snap = health::monitor().healthz();
    EXPECT_EQ(snap.saturated_queues, 1u);
    EXPECT_EQ(snap.state, health::HealthState::Degraded);
  }
  plug.release();
  engine.drain();  // workers popped past cap/2: hysteresis clears pressure
  {
    const health::HealthSnapshot snap = health::monitor().healthz();
    EXPECT_EQ(snap.saturated_queues, 0u);
    EXPECT_EQ(snap.state, health::HealthState::Healthy);
  }
}

TEST_F(QueueTest, ThrowingCompletionCallbackDoesNotKillWorker) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("g"));
  AsyncIOEngine engine(1, bounded(QueuePolicy::Block), quiet_breaker());
  engine.submit_write(f.fd(), 0, "boom", [](std::error_code) {
    throw std::runtime_error("completion callback misbehaves");
  });
  engine.drain();
  EXPECT_EQ(engine.callback_errors(), 1u);
  EXPECT_GE(stats().total(Counter::IoCallbackErrors), 1u);
  EXPECT_GE(health::monitor().healthz().io_callback_errors, 1u);
  // The worker survived: it still services new submissions.
  std::atomic<bool> ran{false};
  engine.submit_write(f.fd(), 4, "next",
                      [&](std::error_code ec) { ran.store(!ec); });
  engine.drain();
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(engine.completed(), 2u);
}

TEST_F(QueueTest, PolicyParsing) {
  EXPECT_EQ(parse_queue_policy("block"), QueuePolicy::Block);
  EXPECT_EQ(parse_queue_policy("shed"), QueuePolicy::Shed);
  EXPECT_EQ(parse_queue_policy("deadline"), QueuePolicy::Deadline);
  EXPECT_EQ(parse_queue_policy("nonsense"), QueuePolicy::Block);
  EXPECT_STREQ(queue_policy_name(QueuePolicy::Deadline), "deadline");
}

}  // namespace
}  // namespace adtm::fdpool
