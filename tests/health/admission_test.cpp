// Admission control: the monitor's signal fold (breakers + queues +
// watchdog -> Healthy/Degraded/Critical) drives the gate's decision at
// the kvcache front doors — serialize when degraded, shed when critical,
// and recover cleanly when the signals clear.
#include "health/gate.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/stats.hpp"
#include "health/breaker.hpp"
#include "health/health.hpp"
#include "io/temp_dir.hpp"
#include "kvcache/recoverable.hpp"
#include "kvcache/tx_cache.hpp"
#include "stm/api.hpp"

namespace adtm::health {
namespace {

using namespace std::chrono_literals;

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stm::init({.backend = "tl2"});
    stats().reset();
    monitor().reset();
    gate().set_enabled(true);
  }
  void TearDown() override {
    gate().set_enabled(true);
    monitor().reset();
  }

  BreakerOptions reporting(const char* name) {
    BreakerOptions opts;
    opts.failure_threshold = 1;
    opts.cooldown_ms = 60'000;  // stays open for the whole test
    opts.max_cooldown_ms = 60'000;
    opts.name = name;
    opts.report_to_monitor = true;
    return opts;
  }
};

TEST_F(AdmissionTest, OneSignalDegradesAndSerializes) {
  CircuitBreaker breaker(reporting("admission.one"));
  const std::uint64_t serialized0 = gate().serialized();
  breaker.record_failure();  // threshold 1: open, reported to the monitor
  EXPECT_EQ(monitor().state(), HealthState::Degraded);
  EXPECT_EQ(gate().decide(), Admission::Serialize);

  // Front-door ops still succeed — one at a time, under the gate's lock.
  kvcache::TxCache cache(16);
  cache.set("k", "v");
  EXPECT_EQ(cache.get("k"), std::optional<std::string>("v"));
  EXPECT_GE(gate().serialized(), serialized0 + 2);
  EXPECT_GE(stats().total(Counter::AdmissionSerialized), 2u);
}

TEST_F(AdmissionTest, TwoSignalsGoCriticalAndShed) {
  CircuitBreaker breaker(reporting("admission.two"));
  breaker.record_failure();
  int dummy_queue = 0;
  monitor().set_queue_pressure(&dummy_queue, true);
  EXPECT_EQ(monitor().state(), HealthState::Critical);
  EXPECT_EQ(gate().decide(), Admission::Shed);

  kvcache::TxCache cache(16);
  const std::uint64_t shed0 = gate().shed();
  EXPECT_THROW(cache.set("k", "v"), Overloaded);
  EXPECT_THROW(cache.get("k"), Overloaded);
  EXPECT_THROW(cache.del("k"), Overloaded);
  EXPECT_THROW(cache.incr("k", 1), Overloaded);
  EXPECT_EQ(gate().shed(), shed0 + 4);
  EXPECT_GE(stats().total(Counter::AdmissionShed), 4u);

  // Transaction-taking overloads stay ungated: composition into a larger
  // transaction must not consult admission twice (or at all — the outer
  // front door already did).
  stm::atomic([&](stm::Tx& tx) { cache.set(tx, "inner", "ok"); });
  EXPECT_EQ(cache.size(), 1u);

  const HealthSnapshot snap = monitor().healthz();
  EXPECT_EQ(snap.state, HealthState::Critical);
  EXPECT_EQ(snap.open_breakers, 1u);
  EXPECT_EQ(snap.saturated_queues, 1u);
  EXPECT_GE(snap.shed, 4u);
  EXPECT_NE(monitor().healthz_json().find("\"critical\""), std::string::npos);
}

TEST_F(AdmissionTest, RecoveryReturnsToHealthyAndCountsDegradedTime) {
  CircuitBreaker breaker(reporting("admission.recover"));
  breaker.record_failure();
  ASSERT_EQ(monitor().state(), HealthState::Degraded);
  std::this_thread::sleep_for(15ms);  // accrue measurable degraded time
  breaker.reset();  // repaired: the monitor sees the Open -> Closed flip
  EXPECT_EQ(monitor().state(), HealthState::Healthy);
  EXPECT_EQ(gate().decide(), Admission::Admit);

  const HealthSnapshot snap = monitor().healthz();
  EXPECT_GE(snap.degraded_ms, 5u);
  EXPECT_GE(snap.transitions, 2u);  // down and back up

  kvcache::TxCache cache(16);
  cache.set("k", "v");  // healthy fast path again
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(AdmissionTest, DisabledGateAdmitsEvenWhenCritical) {
  CircuitBreaker breaker(reporting("admission.disabled"));
  breaker.record_failure();
  int dummy_queue = 0;
  monitor().set_queue_pressure(&dummy_queue, true);
  ASSERT_EQ(monitor().state(), HealthState::Critical);
  gate().set_enabled(false);
  EXPECT_EQ(gate().decide(), Admission::Admit);
  kvcache::TxCache cache(16);
  EXPECT_NO_THROW(cache.set("k", "v"));
}

TEST_F(AdmissionTest, RecoverableCacheFrontDoorShedsButRecoveryBypasses) {
  io::TempDir dir("adtm-health-adm");
  const std::string wal_path = dir.file("wal.log");
  {
    kvcache::RecoverableCache rc(16, wal_path);
    rc.set("k", "v", "op-1");
    rc.flush();
  }
  CircuitBreaker breaker(reporting("admission.rc"));
  breaker.record_failure();
  int dummy_queue = 0;
  monitor().set_queue_pressure(&dummy_queue, true);
  ASSERT_EQ(monitor().state(), HealthState::Critical);

  // Constructor-time WAL replay is internal work, not front-door work:
  // it must not be shed even while the process is critical.
  kvcache::RecoverableCache rc(16, wal_path);
  EXPECT_EQ(rc.cache().size(), 1u);
  // New front-door mutations are shed.
  EXPECT_THROW(rc.set("k2", "v2", "op-2"), Overloaded);
  EXPECT_THROW(rc.del("k", "op-3"), Overloaded);
}

TEST_F(AdmissionTest, HealthzJsonNamesRegisteredBreakers) {
  CircuitBreaker breaker(reporting("admission.json"));
  const std::string json = monitor().healthz_json();
  EXPECT_NE(json.find("\"state\":\"healthy\""), std::string::npos) << json;
  EXPECT_NE(json.find("admission.json"), std::string::npos) << json;
  EXPECT_NE(healthz().find("\"state\""), std::string::npos);
}

TEST_F(AdmissionTest, AdmissionNames) {
  EXPECT_STREQ(admission_name(Admission::Admit), "admit");
  EXPECT_STREQ(admission_name(Admission::Serialize), "serialize");
  EXPECT_STREQ(admission_name(Admission::Shed), "shed");
}

}  // namespace
}  // namespace adtm::health
