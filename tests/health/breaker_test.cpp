// Circuit breaker state machine: Closed -> Open -> HalfOpen -> Closed,
// probe exclusivity, cooldown doubling, and the disabled (threshold 0)
// process default.
#include "health/breaker.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace adtm::health {
namespace {

using namespace std::chrono_literals;

BreakerOptions isolated(std::uint32_t threshold,
                        std::uint64_t cooldown_ms = 30,
                        std::uint64_t max_cooldown_ms = 500) {
  BreakerOptions opts;
  opts.failure_threshold = threshold;
  opts.cooldown_ms = cooldown_ms;
  opts.max_cooldown_ms = max_cooldown_ms;
  opts.name = "test.breaker";
  opts.report_to_monitor = false;
  return opts;
}

// Spin until the breaker hands out the half-open probe (the cooldown is
// jittered, so sleep-then-check once would race the jitter window).
bool wait_for_probe(CircuitBreaker& b, std::chrono::milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (b.allow()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return false;
}

TEST(Breaker, DisabledByDefaultThresholdZero) {
  CircuitBreaker b(isolated(0));
  EXPECT_FALSE(b.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(b.allow());
    b.record_failure();
  }
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_EQ(b.trips(), 0u);
  EXPECT_EQ(b.fast_fails(), 0u);
}

TEST(Breaker, TripsAtConsecutiveFailureThreshold) {
  stats().reset();
  CircuitBreaker b(isolated(3));
  EXPECT_TRUE(b.enabled());
  b.record_failure();
  b.record_failure();
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_EQ(b.consecutive_failures(), 2u);
  EXPECT_TRUE(b.allow());
  b.record_failure();  // third consecutive: trip
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.trips(), 1u);
  EXPECT_GE(stats().total(Counter::BreakerTrips), 1u);
  EXPECT_FALSE(b.allow());  // freshly open: cooldown not yet elapsed
  EXPECT_GE(b.fast_fails(), 1u);
}

TEST(Breaker, SuccessResetsTheStreak) {
  CircuitBreaker b(isolated(3));
  b.record_failure();
  b.record_failure();
  b.record_success();
  EXPECT_EQ(b.consecutive_failures(), 0u);
  b.record_failure();
  b.record_failure();
  EXPECT_EQ(b.state(), BreakerState::Closed);  // streak restarted at 0
}

TEST(Breaker, HalfOpenProbeSuccessCloses) {
  CircuitBreaker b(isolated(1, 20, 100));
  b.record_failure();
  ASSERT_EQ(b.state(), BreakerState::Open);
  ASSERT_TRUE(wait_for_probe(b, 2s));  // first caller past cooldown probes
  EXPECT_EQ(b.state(), BreakerState::HalfOpen);
  // Only one probe slot: everyone else keeps fast-failing.
  const std::uint64_t ff = b.fast_fails();
  EXPECT_FALSE(b.allow());
  EXPECT_EQ(b.fast_fails(), ff + 1);
  b.record_success();
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_EQ(b.consecutive_failures(), 0u);
  EXPECT_TRUE(b.allow());
}

TEST(Breaker, FailedProbeReopensAndEventuallyReprobes) {
  CircuitBreaker b(isolated(1, 20, 100));
  b.record_failure();
  ASSERT_TRUE(wait_for_probe(b, 2s));
  b.record_failure();  // probe verdict: still broken
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.trips(), 2u);
  // The doubled cooldown still expires; a later probe can close it.
  ASSERT_TRUE(wait_for_probe(b, 2s));
  b.record_success();
  EXPECT_EQ(b.state(), BreakerState::Closed);
}

TEST(Breaker, ObserverSeesEveryTransitionInOrder) {
  std::mutex mu;
  std::vector<std::pair<BreakerState, BreakerState>> seen;
  BreakerOptions opts = isolated(1, 20, 100);
  opts.on_state_change = [&](BreakerState from, BreakerState to) {
    std::lock_guard<std::mutex> lk(mu);
    seen.emplace_back(from, to);
  };
  CircuitBreaker b(std::move(opts));
  b.record_failure();
  ASSERT_TRUE(wait_for_probe(b, 2s));
  b.record_success();
  std::lock_guard<std::mutex> lk(mu);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], std::make_pair(BreakerState::Closed, BreakerState::Open));
  EXPECT_EQ(seen[1],
            std::make_pair(BreakerState::Open, BreakerState::HalfOpen));
  EXPECT_EQ(seen[2],
            std::make_pair(BreakerState::HalfOpen, BreakerState::Closed));
}

TEST(Breaker, TripAndResetTestHelpers) {
  CircuitBreaker b(isolated(5));
  b.trip();
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.trips(), 1u);
  EXPECT_FALSE(b.allow());
  b.reset();
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_EQ(b.consecutive_failures(), 0u);
  EXPECT_TRUE(b.allow());
}

TEST(Breaker, StateNamesRoundTrip) {
  EXPECT_STREQ(breaker_state_name(BreakerState::Closed), "closed");
  EXPECT_STREQ(breaker_state_name(BreakerState::Open), "open");
  EXPECT_STREQ(breaker_state_name(BreakerState::HalfOpen), "half-open");
}

}  // namespace
}  // namespace adtm::health
