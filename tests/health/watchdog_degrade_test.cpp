// Watchdog "degrade" action: a stalled thread raises the health
// monitor's watchdog-stall signal (degrading the admission gate) instead
// of poisoning or reaping, and the first clean scan clears it.
#include "liveness/watchdog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "defer/txlock.hpp"
#include "health/gate.hpp"
#include "health/health.hpp"
#include "stm/api.hpp"

namespace adtm {
namespace {

using namespace std::chrono_literals;

liveness::WatchdogOptions degrade_options() {
  liveness::WatchdogOptions opts;
  opts.stall_budget_ns = 1'000'000;  // flag after 1 ms
  opts.interval_ns = 5'000'000;
  opts.action = liveness::WatchdogAction::Degrade;
  opts.sink = nullptr;
  return opts;
}

TEST(WatchdogDegrade, ParseAndName) {
  EXPECT_EQ(liveness::parse_watchdog_action("degrade"),
            liveness::WatchdogAction::Degrade);
  EXPECT_STREQ(liveness::watchdog_action_name(
                   liveness::WatchdogAction::Degrade),
               "degrade");
}

TEST(WatchdogDegrade, StallRaisesMonitorSignalAndClearsOnRecovery) {
  stm::init(stm::Config{});
  stats().reset();
  health::monitor().reset();

  TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> go_release{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true);
    while (!go_release.load()) std::this_thread::yield();
    lock.release();
  });
  while (!held.load()) std::this_thread::yield();
  std::thread waiter([&] {
    lock.acquire();
    lock.release();
  });
  std::this_thread::sleep_for(100ms);  // waiter parks well past the budget

  std::mutex mu;
  std::vector<liveness::WatchdogEvent> events;
  liveness::WatchdogOptions opts = degrade_options();
  opts.on_action = [&](const liveness::WatchdogEvent& ev) {
    std::lock_guard<std::mutex> lk(mu);
    events.push_back(ev);
  };
  liveness::Watchdog wd;
  wd.configure(opts);

  const std::string report = wd.scan_once();
  ASSERT_NE(report, "");
  EXPECT_NE(report.find("health degraded"), std::string::npos) << report;
  EXPECT_TRUE(health::monitor().healthz().watchdog_stall);
  EXPECT_EQ(health::monitor().state(), health::HealthState::Degraded);
  EXPECT_EQ(health::gate().decide(), health::Admission::Serialize);
  {
    std::lock_guard<std::mutex> lk(mu);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind,
              liveness::WatchdogEvent::Kind::HealthDegraded);
    EXPECT_GT(events[0].stalled_ns, 0u);
  }

  // Still stalled: the signal is already raised, so no second
  // HealthDegraded fires for the same episode.
  (void)wd.scan_once();
  {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(events.size(), 1u);
  }
  EXPECT_TRUE(health::monitor().healthz().watchdog_stall);

  // Degrade never poisons or reaps: the waiter proceeds normally once
  // the holder releases.
  go_release.store(true);
  holder.join();
  waiter.join();

  // First clean scan clears the signal and the process re-admits.
  EXPECT_EQ(wd.scan_once(), "");
  EXPECT_FALSE(health::monitor().healthz().watchdog_stall);
  EXPECT_EQ(health::monitor().state(), health::HealthState::Healthy);
  EXPECT_EQ(health::gate().decide(), health::Admission::Admit);
  health::monitor().reset();
}

}  // namespace
}  // namespace adtm
