// FailurePolicy x circuit breaker composition on the WAL's group commit:
// with a breaker armed, a persistent fault stops the retry burst at the
// breaker threshold and poisons immediately; without one, the full retry
// budget burns first (the planted-error negative control). Plus the
// adaptive group-commit gather window.
#include "wal/wal.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "common/runtime_config.hpp"
#include "common/stats.hpp"
#include "faultsim/faultsim.hpp"
#include "health/breaker.hpp"
#include "health/health.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"

namespace adtm::wal {
namespace {

class PolicyBreakerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stm::init({.backend = "tl2"});
    faultsim::engine().disarm();
    stats().reset();
    health::monitor().reset();
    saved_ = runtime_config();
  }
  void TearDown() override {
    faultsim::engine().disarm();
    configure(saved_);
    health::monitor().reset();
  }

  void arm_breakers(std::uint32_t threshold) {
    RuntimeConfig cfg = saved_;
    cfg.breaker_threshold = threshold;
    cfg.breaker_cooldown_ms = 60'000;  // no probe during the test
    cfg.breaker_max_cooldown_ms = 60'000;
    configure(cfg);
  }

  io::TempDir dir_{"adtm-health-pb"};
  std::string log_path() const { return dir_.file("wal.log"); }
  RuntimeConfig saved_;
};

TEST_F(PolicyBreakerTest, OpenBreakerStopsTheRetryBurstAndPoisons) {
  arm_breakers(3);
  WriteAheadLog log(log_path());
  ASSERT_NE(log.breaker(), nullptr);
  EXPECT_TRUE(log.breaker()->enabled());

  // Persistent transient-class fault: without a breaker the policy would
  // burn its whole backoff budget against the dying disk.
  faultsim::engine().arm({.op = faultsim::Op::Fsync,
                          .fault = faultsim::Fault::error(ENOSPC),
                          .count = 0});
  const std::uint64_t retries0 = stats().total(Counter::FailureRetries);
  const std::uint64_t esc0 = stats().total(Counter::FailureEscalations);
  EXPECT_THROW(log.append("doomed"), std::system_error);

  // Threshold 3: two retries (failures 1 and 2), then the third failure
  // opens the breaker and the next retry check escalates instead.
  EXPECT_EQ(stats().total(Counter::FailureRetries) - retries0, 2u);
  EXPECT_GE(stats().total(Counter::FailureEscalations) - esc0, 1u);
  EXPECT_EQ(log.breaker()->state(), health::BreakerState::Open);
  EXPECT_GE(log.breaker()->trips(), 1u);
  EXPECT_TRUE(log.failed());
  // The open per-log breaker is a monitor signal: process degrades.
  EXPECT_EQ(health::monitor().state(), health::HealthState::Degraded);

  // Poisoned and open: the next entry fails fast, with no fresh retries.
  const std::uint64_t retries1 = stats().total(Counter::FailureRetries);
  EXPECT_THROW(log.flush(), std::runtime_error);
  EXPECT_EQ(stats().total(Counter::FailureRetries), retries1);
}

TEST_F(PolicyBreakerTest, NoBreakerBurnsTheFullRetryBudget) {
  // Negative control: default config (ADTM_BREAKER_THRESHOLD=0) means no
  // breaker — the same planted fault consumes all 8 default retries.
  WriteAheadLog log(log_path());
  EXPECT_EQ(log.breaker(), nullptr);
  faultsim::engine().arm({.op = faultsim::Op::Fsync,
                          .fault = faultsim::Fault::error(ENOSPC),
                          .count = 0});
  const std::uint64_t retries0 = stats().total(Counter::FailureRetries);
  EXPECT_THROW(log.append("doomed"), std::system_error);
  EXPECT_EQ(stats().total(Counter::FailureRetries) - retries0, 8u);
  EXPECT_TRUE(log.failed());
  EXPECT_EQ(health::monitor().state(), health::HealthState::Healthy);
}

TEST_F(PolicyBreakerTest, ReopenAfterFaultsClearRecovers) {
  arm_breakers(2);
  {
    WriteAheadLog log(log_path());
    log.append("survives");
    faultsim::engine().arm({.op = faultsim::Op::Fsync,
                            .fault = faultsim::Fault::error(ENOSPC),
                            .count = 0});
    EXPECT_THROW(log.append("doomed"), std::system_error);
    EXPECT_TRUE(log.failed());
  }  // the poisoned log's breaker unregisters from the monitor here
  faultsim::engine().disarm();
  EXPECT_EQ(health::monitor().state(), health::HealthState::Healthy);

  // The documented recovery path: reopen on the same file. The new log
  // gets a fresh, closed breaker and full service.
  WriteAheadLog reopened(log_path());
  ASSERT_NE(reopened.breaker(), nullptr);
  EXPECT_EQ(reopened.breaker()->state(), health::BreakerState::Closed);
  reopened.append("fresh");
  reopened.flush();
  EXPECT_FALSE(reopened.failed());
  const auto r = WriteAheadLog::recover(log_path());
  ASSERT_GE(r.records.size(), 2u);
  EXPECT_EQ(r.records.back(), "fresh");
}

TEST_F(PolicyBreakerTest, GatherWindowCombinesConcurrentAppends) {
  // The adaptive window is timing-dependent; retry with fresh logs until
  // a drain observes reserved-but-unstaged backlog (bounded attempts).
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  bool gathered = false;
  for (int attempt = 0; attempt < 5 && !gathered; ++attempt) {
    WriteAheadLog log(dir_.file("win" + std::to_string(attempt) + ".log"));
    log.set_group_window_us(2000);
    EXPECT_EQ(log.group_window_us(), 2000u);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&log, t] {
        for (int i = 0; i < kPerThread; ++i) {
          log.append("t" + std::to_string(t) + "-" + std::to_string(i));
        }
      });
    }
    for (auto& th : threads) th.join();
    log.flush();
    EXPECT_FALSE(log.failed());
    EXPECT_EQ(log.durable_lsn_direct(),
              static_cast<Lsn>(kThreads) * kPerThread);
    // Group commit must combine: far fewer fsyncs than appends.
    EXPECT_LT(log.fsync_count(), static_cast<std::uint64_t>(kThreads) *
                                     kPerThread);
    gathered = log.window_gathers() > 0;
  }
  EXPECT_TRUE(gathered);
}

TEST_F(PolicyBreakerTest, WindowOffByDefault) {
  WriteAheadLog log(log_path());
  EXPECT_EQ(log.group_window_us(), 0u);
  log.append("one");
  log.flush();
  EXPECT_EQ(log.window_gathers(), 0u);
}

}  // namespace
}  // namespace adtm::wal
