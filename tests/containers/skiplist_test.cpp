// Transactional skip list: ordering and tower invariants, oracle
// equivalence, abort-path re-execution, and tmsan-armed concurrent stress
// across algorithms.
#include "containers/skiplist.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"
#include "tmsan/tmsan.hpp"

namespace adtm::containers {
namespace {

using test::AlgoTest;

class SkipListTest : public AlgoTest {
 protected:
  void SetUp() override {
    AlgoTest::SetUp();
    tmsan::reset();
    tmsan::enable(tmsan::kCheckAll);
  }
  void TearDown() override {
    EXPECT_EQ(tmsan::violation_count(), 0u) << tmsan::report();
    tmsan::disable(tmsan::kCheckAll);
    tmsan::reset();
  }
};

TEST_P(SkipListTest, PutGetRemove) {
  TxSkipList<long, long> list;
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(list.put(tx, 5, 50));
    EXPECT_TRUE(list.put(tx, 3, 30));
    EXPECT_TRUE(list.put(tx, 8, 80));
    EXPECT_FALSE(list.put(tx, 5, 55));  // update
  });
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_EQ(list.get(tx, 5), 55);
    EXPECT_EQ(list.get(tx, 3), 30);
    EXPECT_EQ(list.get(tx, 8), 80);
    EXPECT_FALSE(list.get(tx, 4).has_value());
    EXPECT_EQ(list.size(tx), 3u);
  });
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(list.remove(tx, 3));
    EXPECT_FALSE(list.remove(tx, 3));
  });
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_FALSE(list.contains(tx, 3));
    EXPECT_EQ(list.size(tx), 2u);
  });
  EXPECT_TRUE(list.sorted_direct());
  EXPECT_TRUE(list.levels_consistent_direct());
}

TEST_P(SkipListTest, TowerDistributionIsGeometric) {
  // With a p = 1/2 coin, about half the nodes should have towers of
  // height >= 2. Way outside [0.35, 0.65] over 4000 nodes means the
  // height draw is broken (e.g. every re-executed insert drawing 1).
  TxSkipList<long, long> list;
  for (long base = 0; base < 4000; base += 200) {
    stm::atomic([&](stm::Tx& tx) {
      for (long k = base; k < base + 200; ++k) list.put(tx, k, k);
    });
  }
  const double tall = list.tall_fraction_direct();
  EXPECT_GT(tall, 0.35);
  EXPECT_LT(tall, 0.65);
  EXPECT_TRUE(list.sorted_direct());
  EXPECT_TRUE(list.levels_consistent_direct());
}

TEST_P(SkipListTest, SequentialOracleEquivalence) {
  TxSkipList<long, long> list;
  std::map<long, long> oracle;
  Xoshiro256 rng{2026};
  for (int step = 0; step < 3000; ++step) {
    const long key = static_cast<long>(rng.next_below(300));
    const int op = static_cast<int>(rng.next_below(3));
    stm::atomic([&](stm::Tx& tx) {
      switch (op) {
        case 0: {
          const long value = static_cast<long>(rng.next());
          const bool added = list.put(tx, key, value);
          EXPECT_EQ(added, oracle.find(key) == oracle.end());
          oracle[key] = value;
          break;
        }
        case 1: {
          const bool removed = list.remove(tx, key);
          EXPECT_EQ(removed, oracle.erase(key) == 1);
          break;
        }
        default: {
          const auto found = list.get(tx, key);
          const auto it = oracle.find(key);
          EXPECT_EQ(found.has_value(), it != oracle.end());
          if (found && it != oracle.end()) EXPECT_EQ(*found, it->second);
          break;
        }
      }
      EXPECT_EQ(list.size(tx), oracle.size());
    });
    if (step % 500 == 0) {
      ASSERT_TRUE(list.sorted_direct()) << "step " << step;
      ASSERT_TRUE(list.levels_consistent_direct()) << "step " << step;
    }
  }

  std::vector<std::pair<long, long>> contents;
  stm::atomic([&](stm::Tx& tx) {
    contents.clear();
    list.range_scan(tx, -1, 1000000, 0, [&](const long& k, const long& v) {
      contents.emplace_back(k, v);
      return true;
    });
  });
  ASSERT_EQ(contents.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : contents) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST_P(SkipListTest, RangeScanWindowLimitAndEarlyStop) {
  TxSkipList<long, long> list;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 500; k += 5) list.put(tx, k, k * 2);
  });
  std::vector<long> keys;
  stm::atomic([&](stm::Tx& tx) {
    keys.clear();
    const std::size_t n =
        list.range_scan(tx, 100, 200, 0, [&](const long& k, const long& v) {
          EXPECT_EQ(v, k * 2);
          keys.push_back(k);
          return true;
        });
    EXPECT_EQ(n, 21u);
  });
  ASSERT_EQ(keys.size(), 21u);
  EXPECT_EQ(keys.front(), 100);
  EXPECT_EQ(keys.back(), 200);
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_EQ(list.range_scan(tx, 100, 200, 5,
                              [](const long&, const long&) { return true; }),
              5u);
  });
  stm::atomic([&](stm::Tx& tx) {
    std::size_t seen = 0;
    list.range_scan(tx, 0, 1000, 0, [&](const long&, const long&) {
      return ++seen < 3;
    });
    EXPECT_EQ(seen, 3u);
  });
}

TEST_P(SkipListTest, AbortRollsBackStructure) {
  if (GetParam() == "CGL") GTEST_SKIP() << "CGL cannot roll back";
  TxSkipList<long, long> list;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 20; ++k) list.put(tx, k, k);
  });
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 for (long k = 20; k < 40; ++k) list.put(tx, k, k);
                 list.remove(tx, 5);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(list.size_direct(), 20u);
  EXPECT_TRUE(list.sorted_direct());
  EXPECT_TRUE(list.levels_consistent_direct());
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(list.contains(tx, 5));
    EXPECT_FALSE(list.contains(tx, 25));
  });
}

TEST_P(SkipListTest, AbortPathReExecutionLeavesOneInsert) {
  // Forced re-execution via stm::retry: each attempt draws a fresh tower
  // height and allocates a fresh node; only the final attempt's node may
  // be visible afterwards.
  if (GetParam() == "CGL") {
    GTEST_SKIP() << "retry after a direct-mode write is illegal under CGL";
  }
  TxSkipList<long, long> list;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 100; k += 2) list.put(tx, k, k);
  });
  stm::tvar<bool> flag{false};
  std::atomic<int> attempts{0};
  std::atomic<bool> observed_unset{false};
  std::thread writer([&] {
    stm::atomic([&](stm::Tx& tx) {
      attempts.fetch_add(1, std::memory_order_relaxed);
      list.put(tx, 51, 51);
      if (!flag.get(tx)) {
        observed_unset.store(true, std::memory_order_relaxed);
        stm::retry(tx);
      }
    });
  });
  // Wait for an attempt that SAW the flag unset (and so will retry), not
  // merely for one that started: the flag commit below could otherwise
  // land before the writer's first read and no re-execution would happen.
  while (!observed_unset.load(std::memory_order_relaxed)) {
    std::this_thread::yield();
  }
  stm::atomic([&](stm::Tx& tx) { flag.set(tx, true); });
  writer.join();
  EXPECT_GE(attempts.load(), 2) << "retry did not force a re-execution";
  EXPECT_EQ(list.size_direct(), 51u);
  EXPECT_TRUE(list.sorted_direct());
  EXPECT_TRUE(list.levels_consistent_direct());
  stm::atomic([&](stm::Tx& tx) { EXPECT_EQ(list.get(tx, 51), 51); });
}

TEST_P(SkipListTest, ConcurrentDisjointStripesMatchPerThreadOracles) {
  TxSkipList<long, long> list;
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  constexpr long kStripe = 1000;
  std::vector<std::map<long, long>> oracles(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) * 6271 + 29};
      auto& oracle = oracles[t];
      for (int i = 0; i < kOps; ++i) {
        const long key =
            t * kStripe + static_cast<long>(rng.next_below(kStripe / 2));
        if (rng.next_below(3) != 0) {
          const long value = static_cast<long>(rng.next());
          stm::atomic([&](stm::Tx& tx) { list.put(tx, key, value); });
          oracle[key] = value;
        } else {
          stm::atomic([&](stm::Tx& tx) { list.remove(tx, key); });
          oracle.erase(key);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::size_t expected = 0;
  for (const auto& o : oracles) expected += o.size();
  EXPECT_EQ(list.size_direct(), expected);
  EXPECT_TRUE(list.sorted_direct());
  EXPECT_TRUE(list.levels_consistent_direct());
  stm::atomic([&](stm::Tx& tx) {
    for (int t = 0; t < kThreads; ++t) {
      for (const auto& [k, v] : oracles[t]) {
        EXPECT_EQ(list.get(tx, k), v) << "key " << k;
      }
    }
  });
}

TEST_P(SkipListTest, ConcurrentSharedKeysKeepInvariants) {
  TxSkipList<long, long> list;
  constexpr int kThreads = 4;
  constexpr int kOps = 400;
  constexpr long kKeySpace = 96;
  std::vector<long> net(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) + 211};
      for (int i = 0; i < kOps; ++i) {
        const long key = static_cast<long>(rng.next_below(kKeySpace));
        if (rng.next_below(2) == 0) {
          const bool added = stm::atomic(
              [&](stm::Tx& tx) { return list.put(tx, key, key); });
          if (added) ++net[t];
        } else {
          const bool removed =
              stm::atomic([&](stm::Tx& tx) { return list.remove(tx, key); });
          if (removed) --net[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  long total = 0;
  for (const long n : net) total += n;
  ASSERT_GE(total, 0);
  EXPECT_EQ(list.size_direct(), static_cast<std::size_t>(total));
  EXPECT_TRUE(list.sorted_direct());
  EXPECT_TRUE(list.levels_consistent_direct());
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, SkipListTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm::containers
