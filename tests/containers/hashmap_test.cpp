// Transactional hash map: oracle equivalence and concurrent workloads.
#include "containers/hashmap.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "support/algo_param.hpp"

namespace adtm::containers {
namespace {

using test::AlgoTest;

class HashMapTest : public AlgoTest {};

TEST_P(HashMapTest, PutGetErase) {
  TxHashMap<long, long> map;
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(map.put(tx, 1, 10));
    EXPECT_TRUE(map.put(tx, 2, 20));
    EXPECT_FALSE(map.put(tx, 1, 11));  // update
    EXPECT_EQ(map.get(tx, 1), 11);
    EXPECT_EQ(map.get(tx, 2), 20);
    EXPECT_FALSE(map.get(tx, 3).has_value());
    EXPECT_TRUE(map.erase(tx, 1));
    EXPECT_FALSE(map.erase(tx, 1));
    EXPECT_EQ(map.size(tx), 1u);
  });
}

TEST_P(HashMapTest, ChainsWorkWithOneBucket) {
  TxHashMap<long, long> map(1);  // everything collides
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 64; ++k) EXPECT_TRUE(map.put(tx, k, k * 2));
  });
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 64; ++k) EXPECT_EQ(map.get(tx, k), k * 2);
    EXPECT_EQ(map.size(tx), 64u);
  });
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 64; k += 2) EXPECT_TRUE(map.erase(tx, k));
  });
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 64; ++k) {
      EXPECT_EQ(map.contains(tx, k), k % 2 == 1);
    }
  });
}

TEST_P(HashMapTest, SequentialOracleEquivalence) {
  TxHashMap<long, long> map(64);
  std::unordered_map<long, long> oracle;
  Xoshiro256 rng{7};
  for (int step = 0; step < 4000; ++step) {
    const long key = static_cast<long>(rng.next_below(300));
    const int op = static_cast<int>(rng.next_below(3));
    stm::atomic([&](stm::Tx& tx) {
      if (op == 0) {
        const long value = static_cast<long>(rng.next());
        EXPECT_EQ(map.put(tx, key, value), !oracle.count(key));
        oracle[key] = value;
      } else if (op == 1) {
        EXPECT_EQ(map.erase(tx, key), oracle.erase(key) == 1);
      } else {
        const auto got = map.get(tx, key);
        const auto it = oracle.find(key);
        EXPECT_EQ(got.has_value(), it != oracle.end());
        if (got && it != oracle.end()) EXPECT_EQ(*got, it->second);
      }
      EXPECT_EQ(map.size(tx), oracle.size());
    });
  }
}

TEST_P(HashMapTest, ConcurrentDisjointKeyRanges) {
  TxHashMap<long, long> map(256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const long key = static_cast<long>(t) * kPerThread + i;
        stm::atomic([&](stm::Tx& tx) { map.put(tx, key, key); });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(map.size_direct(), static_cast<std::size_t>(kThreads) * kPerThread);
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < kThreads * kPerThread; ++k) {
      EXPECT_EQ(map.get(tx, k), k);
    }
  });
}

TEST_P(HashMapTest, ConcurrentMixedOnSharedKeys) {
  TxHashMap<long, long> map(32);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) + 3};
      for (int i = 0; i < 400; ++i) {
        const long key = static_cast<long>(rng.next_below(48));
        stm::atomic([&](stm::Tx& tx) {
          if (rng.next_below(2) == 0) {
            map.put(tx, key, key);
          } else {
            map.erase(tx, key);
          }
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  // Internal consistency: size matches a full scan.
  std::size_t counted = 0;
  stm::atomic([&](stm::Tx& tx) {
    counted = 0;
    for (long k = 0; k < 48; ++k) counted += map.contains(tx, k);
  });
  EXPECT_EQ(counted, map.size_direct());
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, HashMapTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm::containers
