// Transactional red-black tree: structural invariants, oracle equivalence,
// and concurrent mixed workloads across algorithms.
#include "containers/rbtree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "support/algo_param.hpp"

namespace adtm::containers {
namespace {

using test::AlgoTest;

class RbTreeTest : public AlgoTest {};

TEST_P(RbTreeTest, InsertFindErase) {
  TxRbTree<long, long> tree;
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(tree.insert(tx, 5, 50));
    EXPECT_TRUE(tree.insert(tx, 3, 30));
    EXPECT_TRUE(tree.insert(tx, 8, 80));
    EXPECT_FALSE(tree.insert(tx, 5, 55));  // update
  });
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_EQ(tree.find(tx, 5), 55);
    EXPECT_EQ(tree.find(tx, 3), 30);
    EXPECT_EQ(tree.find(tx, 8), 80);
    EXPECT_FALSE(tree.find(tx, 4).has_value());
    EXPECT_EQ(tree.size(tx), 3u);
  });
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(tree.erase(tx, 3));
    EXPECT_FALSE(tree.erase(tx, 3));
  });
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_FALSE(tree.contains(tx, 3));
    EXPECT_EQ(tree.size(tx), 2u);
  });
  EXPECT_GT(tree.validate_direct(), 0);
  EXPECT_TRUE(tree.sorted_direct());
}

TEST_P(RbTreeTest, SequentialOracleEquivalence) {
  // Random ops mirrored against std::map; structure validated throughout.
  TxRbTree<long, long> tree;
  std::map<long, long> oracle;
  Xoshiro256 rng{2024};
  for (int step = 0; step < 3000; ++step) {
    const long key = static_cast<long>(rng.next_below(200));
    const int op = static_cast<int>(rng.next_below(3));
    stm::atomic([&](stm::Tx& tx) {
      switch (op) {
        case 0: {
          const long value = static_cast<long>(rng.next());
          const bool inserted = tree.insert(tx, key, value);
          EXPECT_EQ(inserted, oracle.find(key) == oracle.end());
          oracle[key] = value;
          break;
        }
        case 1: {
          const bool erased = tree.erase(tx, key);
          EXPECT_EQ(erased, oracle.erase(key) == 1);
          break;
        }
        default: {
          const auto found = tree.find(tx, key);
          const auto it = oracle.find(key);
          EXPECT_EQ(found.has_value(), it != oracle.end());
          if (found && it != oracle.end()) EXPECT_EQ(*found, it->second);
          break;
        }
      }
      EXPECT_EQ(tree.size(tx), oracle.size());
    });
    if (step % 256 == 0) {
      EXPECT_GT(tree.validate_direct(), 0) << "step " << step;
      EXPECT_TRUE(tree.sorted_direct());
    }
  }
  EXPECT_GT(tree.validate_direct(), 0);

  // Full-content comparison via in-order traversal.
  std::vector<std::pair<long, long>> contents;
  stm::atomic([&](stm::Tx& tx) {
    contents.clear();
    tree.for_each(tx, [&](const long& k, const long& v) {
      contents.emplace_back(k, v);
    });
  });
  ASSERT_EQ(contents.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : contents) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST_P(RbTreeTest, AbortRollsBackStructure) {
  if (GetParam() == "CGL") GTEST_SKIP() << "CGL cannot roll back";
  TxRbTree<long, long> tree;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 20; ++k) tree.insert(tx, k, k);
  });
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 for (long k = 20; k < 40; ++k) tree.insert(tx, k, k);
                 tree.erase(tx, 5);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(tree.size_direct(), 20u);
  EXPECT_GT(tree.validate_direct(), 0);
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(tree.contains(tx, 5));
    EXPECT_FALSE(tree.contains(tx, 25));
  });
}

TEST_P(RbTreeTest, ConcurrentDisjointInserts) {
  TxRbTree<long, long> tree;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const long key = static_cast<long>(t) * kPerThread + i;
        stm::atomic([&](stm::Tx& tx) { tree.insert(tx, key, key * 10); });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tree.size_direct(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_GT(tree.validate_direct(), 0);
  EXPECT_TRUE(tree.sorted_direct());
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < kThreads * kPerThread; ++k) {
      EXPECT_EQ(tree.find(tx, k), k * 10);
    }
  });
}

TEST_P(RbTreeTest, ConcurrentMixedWorkloadKeepsInvariants) {
  TxRbTree<long, long> tree;
  constexpr int kThreads = 4;
  constexpr int kOps = 400;
  constexpr long kKeySpace = 64;  // small: force overlap and rebalancing
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) + 31};
      for (int i = 0; i < kOps; ++i) {
        const long key = static_cast<long>(rng.next_below(kKeySpace));
        const int op = static_cast<int>(rng.next_below(3));
        stm::atomic([&](stm::Tx& tx) {
          if (op == 0) {
            tree.insert(tx, key, key);
          } else if (op == 1) {
            tree.erase(tx, key);
          } else {
            (void)tree.find(tx, key);
          }
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(tree.validate_direct(), 0);
  EXPECT_TRUE(tree.sorted_direct());

  // size_ matches actual node count.
  std::size_t counted = 0;
  stm::atomic([&](stm::Tx& tx) {
    counted = 0;
    tree.for_each(tx, [&](const long&, const long&) { ++counted; });
  });
  EXPECT_EQ(counted, tree.size_direct());
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, RbTreeTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm::containers
