// Transactional B+ tree: structural invariants, oracle equivalence,
// abort-path re-execution, and tmsan-armed concurrent stress across
// algorithms.
#include "containers/btree.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"
#include "tmsan/tmsan.hpp"

namespace adtm::containers {
namespace {

using test::AlgoTest;

// Every test in this file runs with the full sanitizer armed: the
// containers are new TM surface, and a mixed-mode or opacity bug in them
// should fail here, not in the OLTP harness.
class BTreeTest : public AlgoTest {
 protected:
  void SetUp() override {
    AlgoTest::SetUp();
    tmsan::reset();
    tmsan::enable(tmsan::kCheckAll);
  }
  void TearDown() override {
    EXPECT_EQ(tmsan::violation_count(), 0u) << tmsan::report();
    tmsan::disable(tmsan::kCheckAll);
    tmsan::reset();
  }
};

TEST_P(BTreeTest, PutGetRemove) {
  TxBTree<long, long> tree;
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(tree.put(tx, 5, 50));
    EXPECT_TRUE(tree.put(tx, 3, 30));
    EXPECT_TRUE(tree.put(tx, 8, 80));
    EXPECT_FALSE(tree.put(tx, 5, 55));  // update
  });
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_EQ(tree.get(tx, 5), 55);
    EXPECT_EQ(tree.get(tx, 3), 30);
    EXPECT_EQ(tree.get(tx, 8), 80);
    EXPECT_FALSE(tree.get(tx, 4).has_value());
    EXPECT_EQ(tree.size(tx), 3u);
  });
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(tree.remove(tx, 3));
    EXPECT_FALSE(tree.remove(tx, 3));
  });
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_FALSE(tree.contains(tx, 3));
    EXPECT_EQ(tree.size(tx), 2u);
  });
  EXPECT_GT(tree.validate_direct(), 0);
  EXPECT_TRUE(tree.chain_consistent_direct());
}

TEST_P(BTreeTest, SplitsKeepInvariantsAndGrowHeight) {
  // Enough keys to force several levels of preemptive splits, inserted in
  // an order that exercises both ascending and scattered paths.
  TxBTree<long, long, 8> tree;  // small fanout: more splits per key
  Xoshiro256 rng{7};
  long inserted = 0;
  for (int batch = 0; batch < 40; ++batch) {
    stm::atomic([&](stm::Tx& tx) {
      for (int i = 0; i < 50; ++i) {
        const long key = batch % 2 == 0
                             ? inserted + i  // ascending
                             : static_cast<long>(rng.next_below(100000)) +
                                   200000;  // scattered
        tree.put(tx, key, key);
      }
    });
    inserted += 50;
    ASSERT_GT(tree.validate_direct(), 0) << "batch " << batch;
    ASSERT_TRUE(tree.chain_consistent_direct()) << "batch " << batch;
  }
  EXPECT_GT(tree.validate_direct(), 2);  // actually grew internal levels
}

TEST_P(BTreeTest, SequentialOracleEquivalence) {
  TxBTree<long, long, 8> tree;
  std::map<long, long> oracle;
  Xoshiro256 rng{2025};
  for (int step = 0; step < 3000; ++step) {
    const long key = static_cast<long>(rng.next_below(300));
    const int op = static_cast<int>(rng.next_below(3));
    stm::atomic([&](stm::Tx& tx) {
      switch (op) {
        case 0: {
          const long value = static_cast<long>(rng.next());
          const bool added = tree.put(tx, key, value);
          EXPECT_EQ(added, oracle.find(key) == oracle.end());
          oracle[key] = value;
          break;
        }
        case 1: {
          const bool removed = tree.remove(tx, key);
          EXPECT_EQ(removed, oracle.erase(key) == 1);
          break;
        }
        default: {
          const auto found = tree.get(tx, key);
          const auto it = oracle.find(key);
          EXPECT_EQ(found.has_value(), it != oracle.end());
          if (found && it != oracle.end()) EXPECT_EQ(*found, it->second);
          break;
        }
      }
      EXPECT_EQ(tree.size(tx), oracle.size());
    });
    if (step % 500 == 0) {
      ASSERT_GT(tree.validate_direct(), 0) << "step " << step;
      ASSERT_TRUE(tree.chain_consistent_direct()) << "step " << step;
    }
  }

  // Full-content comparison via a range scan over everything.
  std::vector<std::pair<long, long>> contents;
  stm::atomic([&](stm::Tx& tx) {
    contents.clear();
    tree.range_scan(tx, -1, 1000000, 0, [&](const long& k, const long& v) {
      contents.emplace_back(k, v);
      return true;
    });
  });
  ASSERT_EQ(contents.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : contents) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST_P(BTreeTest, RangeScanWindowLimitAndEarlyStop) {
  TxBTree<long, long> tree;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 500; k += 5) tree.put(tx, k, k * 2);
  });
  // Window [100, 200]: keys 100,105,...,200 = 21 entries.
  std::vector<long> keys;
  stm::atomic([&](stm::Tx& tx) {
    keys.clear();
    const std::size_t n =
        tree.range_scan(tx, 100, 200, 0, [&](const long& k, const long& v) {
          EXPECT_EQ(v, k * 2);
          keys.push_back(k);
          return true;
        });
    EXPECT_EQ(n, 21u);
  });
  ASSERT_EQ(keys.size(), 21u);
  EXPECT_EQ(keys.front(), 100);
  EXPECT_EQ(keys.back(), 200);
  // Limit cuts the scan short.
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_EQ(tree.range_scan(tx, 100, 200, 5,
                              [](const long&, const long&) { return true; }),
              5u);
  });
  // Visitor early-stop.
  stm::atomic([&](stm::Tx& tx) {
    std::size_t seen = 0;
    tree.range_scan(tx, 0, 1000, 0, [&](const long&, const long&) {
      return ++seen < 3;
    });
    EXPECT_EQ(seen, 3u);
  });
}

TEST_P(BTreeTest, AbortRollsBackStructure) {
  if (GetParam() == "CGL") GTEST_SKIP() << "CGL cannot roll back";
  TxBTree<long, long, 8> tree;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 30; ++k) tree.put(tx, k, k);
  });
  // The aborted transaction forces splits (30 more keys into fanout-8
  // nodes) that must all roll back, including the root swap.
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 for (long k = 30; k < 60; ++k) tree.put(tx, k, k);
                 tree.remove(tx, 5);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(tree.size_direct(), 30u);
  EXPECT_GT(tree.validate_direct(), 0);
  EXPECT_TRUE(tree.chain_consistent_direct());
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(tree.contains(tx, 5));
    EXPECT_FALSE(tree.contains(tx, 45));
  });
}

TEST_P(BTreeTest, AbortPathReExecutionLeavesOneInsert) {
  // A writer transaction that is forced to re-execute (stm::retry until a
  // peer flips a flag) must leave exactly one logical insert behind —
  // node allocations from the abandoned attempts must not surface.
  if (GetParam() == "CGL") {
    GTEST_SKIP() << "retry after a direct-mode write is illegal under CGL";
  }
  TxBTree<long, long, 8> tree;
  stm::atomic([&](stm::Tx& tx) {
    for (long k = 0; k < 100; k += 2) tree.put(tx, k, k);
  });
  stm::tvar<bool> flag{false};
  std::atomic<int> attempts{0};
  std::atomic<bool> observed_unset{false};
  std::thread writer([&] {
    stm::atomic([&](stm::Tx& tx) {
      attempts.fetch_add(1, std::memory_order_relaxed);
      tree.put(tx, 51, 51);  // splits may allocate on each attempt
      if (!flag.get(tx)) {
        observed_unset.store(true, std::memory_order_relaxed);
        stm::retry(tx);
      }
    });
  });
  // Wait for an attempt that SAW the flag unset (and so will retry), not
  // merely for one that started: the flag commit below could otherwise
  // land before the writer's first read and no re-execution would happen.
  while (!observed_unset.load(std::memory_order_relaxed)) {
    std::this_thread::yield();
  }
  stm::atomic([&](stm::Tx& tx) { flag.set(tx, true); });
  writer.join();
  EXPECT_GE(attempts.load(), 2) << "retry did not force a re-execution";
  EXPECT_EQ(tree.size_direct(), 51u);
  EXPECT_GT(tree.validate_direct(), 0);
  EXPECT_TRUE(tree.chain_consistent_direct());
  stm::atomic(
      [&](stm::Tx& tx) { EXPECT_EQ(tree.get(tx, 51), 51); });
}

TEST_P(BTreeTest, ConcurrentDisjointStripesMatchPerThreadOracles) {
  // Seeded stress: each thread owns a key stripe and mirrors its ops in a
  // private std::map; stripes are disjoint so the union is an exact
  // oracle for the final tree.
  TxBTree<long, long, 8> tree;
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  constexpr long kStripe = 1000;
  std::vector<std::map<long, long>> oracles(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) * 7919 + 17};
      auto& oracle = oracles[t];
      for (int i = 0; i < kOps; ++i) {
        const long key =
            t * kStripe + static_cast<long>(rng.next_below(kStripe / 2));
        if (rng.next_below(3) != 0) {
          const long value = static_cast<long>(rng.next());
          stm::atomic([&](stm::Tx& tx) { tree.put(tx, key, value); });
          oracle[key] = value;
        } else {
          stm::atomic([&](stm::Tx& tx) { tree.remove(tx, key); });
          oracle.erase(key);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::size_t expected = 0;
  for (const auto& o : oracles) expected += o.size();
  EXPECT_EQ(tree.size_direct(), expected);
  EXPECT_GT(tree.validate_direct(), 0);
  EXPECT_TRUE(tree.chain_consistent_direct());
  stm::atomic([&](stm::Tx& tx) {
    for (int t = 0; t < kThreads; ++t) {
      for (const auto& [k, v] : oracles[t]) {
        EXPECT_EQ(tree.get(tx, k), v) << "key " << k;
      }
    }
  });
}

TEST_P(BTreeTest, ConcurrentSharedKeysKeepInvariants) {
  // Overlapping key space: real conflicts, aborts, and re-executed
  // splits. The exact content is timing-dependent; the invariants and the
  // net-size accounting are not.
  TxBTree<long, long, 8> tree;
  constexpr int kThreads = 4;
  constexpr int kOps = 400;
  constexpr long kKeySpace = 96;  // small: force overlap and splits
  std::vector<long> net(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) + 101};
      for (int i = 0; i < kOps; ++i) {
        const long key = static_cast<long>(rng.next_below(kKeySpace));
        if (rng.next_below(2) == 0) {
          const bool added = stm::atomic(
              [&](stm::Tx& tx) { return tree.put(tx, key, key); });
          if (added) ++net[t];
        } else {
          const bool removed =
              stm::atomic([&](stm::Tx& tx) { return tree.remove(tx, key); });
          if (removed) --net[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  long total = 0;
  for (const long n : net) total += n;
  ASSERT_GE(total, 0);
  EXPECT_EQ(tree.size_direct(), static_cast<std::size_t>(total));
  EXPECT_GT(tree.validate_direct(), 0);
  EXPECT_TRUE(tree.chain_consistent_direct());
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, BTreeTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm::containers
