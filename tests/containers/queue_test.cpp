// Transactional FIFO queue: ordering, blocking pop, composition.
#include "containers/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/algo_param.hpp"

namespace adtm::containers {
namespace {

using test::AlgoTest;

class QueueTest : public AlgoTest {};

TEST_P(QueueTest, FifoOrder) {
  TxQueue<long> q;
  stm::atomic([&](stm::Tx& tx) {
    for (long i = 1; i <= 10; ++i) q.push(tx, i);
  });
  for (long i = 1; i <= 10; ++i) {
    const auto v = stm::atomic([&](stm::Tx& tx) { return q.pop(tx); });
    EXPECT_EQ(v, i);
  }
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(q.empty(tx));
    EXPECT_FALSE(q.pop(tx).has_value());
  });
}

TEST_P(QueueTest, SizeTracksOperations) {
  TxQueue<long> q;
  stm::atomic([&](stm::Tx& tx) {
    q.push(tx, 1);
    q.push(tx, 2);
    EXPECT_EQ(q.size(tx), 2u);
    (void)q.pop(tx);
    EXPECT_EQ(q.size(tx), 1u);
  });
  EXPECT_EQ(q.size_direct(), 1u);
}

TEST_P(QueueTest, PopWaitBlocksUntilPush) {
  TxQueue<long> q;
  std::atomic<long> got{0};
  std::thread consumer([&] {
    const long v = stm::atomic([&](stm::Tx& tx) { return q.pop_wait(tx); });
    got.store(v);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), 0);
  stm::atomic([&](stm::Tx& tx) { q.push(tx, 77); });
  consumer.join();
  EXPECT_EQ(got.load(), 77);
}

TEST_P(QueueTest, MpmcNoLossNoDuplication) {
  TxQueue<long> q;
  constexpr int kProducers = 2, kConsumers = 2;
  constexpr long kPerProducer = 500;
  std::atomic<long> sum{0};
  std::atomic<long> consumed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (long i = 0; i < kPerProducer; ++i) {
        const long v = p * kPerProducer + i + 1;
        stm::atomic([&](stm::Tx& tx) { q.push(tx, v); });
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        if (consumed.load() >= kProducers * kPerProducer) return;
        const auto v = stm::atomic([&](stm::Tx& tx) { return q.pop(tx); });
        if (v.has_value()) {
          sum.fetch_add(*v);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  EXPECT_EQ(q.size_direct(), 0u);
}

TEST_P(QueueTest, ComposesWithOtherTransactionalState) {
  // Atomic move between two queues: never observable in both or neither.
  TxQueue<long> a, b;
  stm::atomic([&](stm::Tx& tx) { a.push(tx, 42); });
  stm::atomic([&](stm::Tx& tx) {
    const auto v = a.pop(tx);
    ASSERT_TRUE(v.has_value());
    b.push(tx, *v);
  });
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(a.empty(tx));
    EXPECT_EQ(b.pop(tx), 42);
  });
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, QueueTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm::containers
