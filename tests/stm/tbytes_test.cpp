#include "stm/tbytes.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "support/algo_param.hpp"

namespace adtm::stm {
namespace {

using test::AlgoTest;

std::vector<std::byte> bytes_of(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

class TbytesTest : public AlgoTest {};

TEST_P(TbytesTest, RoundTripVariousSizes) {
  for (const std::size_t size : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1000u}) {
    std::string data(size, '\0');
    Xoshiro256 rng{size + 1};
    for (auto& c : data) c = static_cast<char>(rng.next());
    tbytes buf{std::span<const std::byte>(bytes_of(data))};
    EXPECT_EQ(buf.size(), size);
    // Direct read.
    const auto direct = buf.read_direct();
    EXPECT_EQ(direct, bytes_of(data));
    // Transactional read.
    const auto speculative =
        stm::atomic([&](Tx& tx) { return buf.read(tx); });
    EXPECT_EQ(speculative, bytes_of(data));
  }
}

TEST_P(TbytesTest, InstrumentedReadPopulatesReadSet) {
  // Transactional reads must be visible to the conflict machinery: a
  // writer committing between two reads of the same buffer must abort or
  // wait the reader (depending on algorithm), never produce a torn view.
  // Here we simply check assign/read interleaving single-threaded.
  tbytes buf{std::span<const std::byte>(bytes_of(std::string(256, 'a')))};
  stm::atomic([&](Tx& tx) {
    const auto v = buf.read(tx);
    EXPECT_EQ(v.size(), 256u);
    for (const std::byte b : v) EXPECT_EQ(b, std::byte{'a'});
  });
}

TEST_P(TbytesTest, ReassignReplacesContents) {
  tbytes buf{std::span<const std::byte>(bytes_of("old"))};
  buf.assign(std::span<const std::byte>(bytes_of("newer-content")));
  EXPECT_EQ(buf.size(), 13u);
  EXPECT_EQ(buf.read_direct(), bytes_of("newer-content"));
}

TEST_P(TbytesTest, EmptyBuffer) {
  tbytes buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_TRUE(buf.read_direct().empty());
  stm::atomic([&](Tx& tx) { EXPECT_TRUE(buf.read(tx).empty()); });
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, TbytesTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm::stm
