// HTM-sim specifics: capacity aborts, the hardware retry budget, and the
// global-lock fallback — the machinery behind the paper's Figure 3 HTM
// storyline (Compress overflows capacity -> perpetual serialization).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm {
namespace {

void init_htm(std::size_t capacity, std::uint32_t retries = 2) {
  stm::Config cfg;
  cfg.backend = "htmsim";
  cfg.htm_capacity = capacity;
  cfg.htm_retries = retries;
  stm::init(cfg);
  stats().reset();
}

TEST(HtmSim, SmallTransactionFitsInCapacity) {
  init_htm(64);
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) { x.set(tx, 1); });
  EXPECT_EQ(x.load_direct(), 1);
  EXPECT_EQ(stats().total(Counter::TxAbortCapacity), 0u);
  EXPECT_EQ(stats().total(Counter::TxHtmFallback), 0u);
}

TEST(HtmSim, LargeFootprintTriggersCapacityAbortAndFallback) {
  init_htm(8);
  // Write far more distinct cache lines than the capacity budget.
  constexpr int kVars = 64;
  std::vector<std::unique_ptr<stm::tvar<long>>> vars;
  for (int i = 0; i < kVars; ++i) {
    vars.push_back(std::make_unique<stm::tvar<long>>(0));
  }
  stm::atomic([&](stm::Tx& tx) {
    for (auto& v : vars) v->set(tx, 7);
  });
  for (auto& v : vars) EXPECT_EQ(v->load_direct(), 7);
  // The transaction completed via the serial fallback.
  EXPECT_GE(stats().total(Counter::TxAbortCapacity), 1u);
  EXPECT_GE(stats().total(Counter::TxHtmFallback), 1u);
}

TEST(HtmSim, LargeReadFootprintAlsoOverflows) {
  init_htm(8);
  constexpr int kVars = 64;
  std::vector<std::unique_ptr<stm::tvar<long>>> vars;
  for (int i = 0; i < kVars; ++i) {
    vars.push_back(std::make_unique<stm::tvar<long>>(i));
  }
  const long sum = stm::atomic([&](stm::Tx& tx) {
    long s = 0;
    for (auto& v : vars) s += v->get(tx);
    return s;
  });
  EXPECT_EQ(sum, kVars * (kVars - 1) / 2);
  EXPECT_GE(stats().total(Counter::TxAbortCapacity), 1u);
}

TEST(HtmSim, FallbackCountRespectsRetryBudget) {
  init_htm(8, /*retries=*/5);
  stm::tvar<long> sink{0};
  constexpr int kVars = 64;
  std::vector<std::unique_ptr<stm::tvar<long>>> vars;
  for (int i = 0; i < kVars; ++i) {
    vars.push_back(std::make_unique<stm::tvar<long>>(0));
  }
  stm::atomic([&](stm::Tx& tx) {
    for (auto& v : vars) v->set(tx, 1);
  });
  // A deterministic capacity overflow aborts on every one of the budgeted
  // attempts before falling back.
  EXPECT_EQ(stats().total(Counter::TxAbortCapacity), 5u);
  EXPECT_EQ(stats().total(Counter::TxHtmFallback), 1u);
  (void)sink;
}

TEST(HtmSim, IrrevocableGoesStraightToFallback) {
  init_htm(512);
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    stm::become_irrevocable(tx);
    x.set(tx, 5);
  });
  EXPECT_EQ(x.load_direct(), 5);
  EXPECT_GE(stats().total(Counter::TxIrrevocable), 1u);
}

TEST(HtmSim, ConcurrentCountersStayCorrectDespiteFallbacks) {
  init_htm(16);
  stm::tvar<long> counter{0};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        stm::atomic([&](stm::Tx& tx) { counter.set(tx, counter.get(tx) + 1); });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load_direct(), long{kThreads} * kPerThread);
}

TEST(HtmSim, MixedFitAndOverflowTransactions) {
  init_htm(8);
  stm::tvar<long> small{0};
  constexpr int kVars = 64;
  std::vector<std::unique_ptr<stm::tvar<long>>> big;
  for (int i = 0; i < kVars; ++i) {
    big.push_back(std::make_unique<stm::tvar<long>>(0));
  }
  std::atomic<bool> stop{false};
  std::thread small_worker([&] {
    while (!stop.load()) {
      stm::atomic([&](stm::Tx& tx) { small.set(tx, small.get(tx) + 1); });
    }
  });
  for (int round = 0; round < 50; ++round) {
    stm::atomic([&](stm::Tx& tx) {
      for (auto& v : big) v->set(tx, v->get(tx) + 1);
    });
  }
  stop.store(true);
  small_worker.join();
  for (auto& v : big) EXPECT_EQ(v->load_direct(), 50);
}

}  // namespace
}  // namespace adtm
