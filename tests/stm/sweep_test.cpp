// Property sweeps: core invariants across algorithm x thread count, the
// full cross product via TEST_P.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

class SweepTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
 protected:
  void SetUp() override {
    stm::Config cfg;
    cfg.backend = std::get<0>(GetParam());
    stm::init(cfg);
    stats().reset();
  }
  int threads() const { return std::get<1>(GetParam()); }
};

TEST_P(SweepTest, CounterExactUnderContention) {
  stm::tvar<long> counter{0};
  const int n = threads();
  constexpr int kPerThread = 1000;
  std::vector<std::thread> pool;
  for (int t = 0; t < n; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        stm::atomic([&](stm::Tx& tx) { counter.set(tx, counter.get(tx) + 1); });
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(counter.load_direct(), static_cast<long>(n) * kPerThread);
}

TEST_P(SweepTest, SnapshotsNeverTear) {
  // Writers keep k variables equal; readers must never see a mixed set.
  constexpr int kVars = 4;
  std::array<stm::tvar<long>, kVars> vars;
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};
  const int n = threads();

  std::vector<std::thread> pool;
  for (int t = 0; t < n; ++t) {
    const bool writer = (t % 2 == 0);
    pool.emplace_back([&, writer, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) + 5};
      for (int i = 0; i < 600; ++i) {
        if (writer) {
          const long v = static_cast<long>(rng.next_below(1 << 20));
          stm::atomic([&](stm::Tx& tx) {
            for (auto& var : vars) var.set(tx, v);
          });
        } else {
          const auto snapshot = stm::atomic([&](stm::Tx& tx) {
            std::array<long, kVars> out{};
            for (int k = 0; k < kVars; ++k) out[k] = vars[k].get(tx);
            return out;
          });
          for (int k = 1; k < kVars; ++k) {
            if (snapshot[k] != snapshot[0]) violations.fetch_add(1);
          }
        }
      }
      stop.store(true);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(SweepTest, RingTransferConservation) {
  // Each thread moves value around a ring of cells; the total is invariant.
  constexpr int kCells = 8;
  std::array<stm::tvar<long>, kCells> ring;
  for (auto& c : ring) c.store_direct(10);
  const int n = threads();

  std::vector<std::thread> pool;
  for (int t = 0; t < n; ++t) {
    pool.emplace_back([&, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) * 13 + 1};
      for (int i = 0; i < 800; ++i) {
        const int from = static_cast<int>(rng.next_below(kCells));
        const int to = (from + 1) % kCells;
        stm::atomic([&](stm::Tx& tx) {
          ring[from].set(tx, ring[from].get(tx) - 1);
          ring[to].set(tx, ring[to].get(tx) + 1);
        });
      }
    });
  }
  for (auto& t : pool) t.join();
  long total = 0;
  for (auto& c : ring) total += c.load_direct();
  EXPECT_EQ(total, kCells * 10);
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
  return std::get<0>(info.param) + "_" +
         std::to_string(std::get<1>(info.param)) + "threads";
}

INSTANTIATE_TEST_SUITE_P(
    AlgoThreadMatrix, SweepTest,
    ::testing::Combine(::testing::ValuesIn(test::all_backend_names()),
                       ::testing::Values(1, 2, 4, 8)),
    sweep_name);

}  // namespace
}  // namespace adtm
