// Harris-style retry(): condition synchronization via abort-and-wait
// (paper §4.2's workaround for the missing TMTS retry).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class RetryTest : public AlgoTest {};

TEST_P(RetryTest, WakesWhenConditionBecomesTrue) {
  stm::tvar<int> flag{0};
  std::atomic<bool> consumed{false};

  std::thread consumer([&] {
    stm::atomic([&](stm::Tx& tx) {
      if (flag.get(tx) == 0) stm::retry(tx);
      flag.set(tx, 2);
    });
    consumed.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(consumed.load());

  stm::atomic([&](stm::Tx& tx) { flag.set(tx, 1); });
  consumer.join();
  EXPECT_TRUE(consumed.load());
  EXPECT_EQ(flag.load_direct(), 2);
}

TEST_P(RetryTest, ProducerConsumerHandoff) {
  // A one-slot channel: consumer retries while empty, producer while full.
  stm::tvar<int> slot{0};  // 0 = empty, else the item
  constexpr int kItems = 300;
  long sum = 0;

  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) {
      stm::atomic([&](stm::Tx& tx) {
        if (slot.get(tx) != 0) stm::retry(tx);
        slot.set(tx, i);
      });
    }
  });
  std::thread consumer([&] {
    for (int i = 1; i <= kItems; ++i) {
      const int v = stm::atomic([&](stm::Tx& tx) {
        const int got = slot.get(tx);
        if (got == 0) stm::retry(tx);
        slot.set(tx, 0);
        return got;
      });
      sum += v;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum, static_cast<long>(kItems) * (kItems + 1) / 2);
}

TEST_P(RetryTest, EffectsBeforeRetryAreDiscarded) {
  stm::tvar<int> flag{0};
  stm::tvar<int> scratch{0};

  std::thread waiter([&] {
    stm::atomic([&](stm::Tx& tx) {
      // The write to scratch must be undone on each retry (speculative
      // modes) or never visible (the retry path is hit before commit).
      if (flag.get(tx) == 0) {
        if (!tx.irrevocable()) scratch.set(tx, 99);
        stm::retry(tx);
      }
    });
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stm::atomic([&](stm::Tx& tx) { flag.set(tx, 1); });
  waiter.join();
  EXPECT_EQ(scratch.load_direct(), 0);
}

TEST_P(RetryTest, MultipleWaitersAllWake) {
  stm::tvar<int> gate{0};
  std::atomic<int> woke{0};
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      stm::atomic([&](stm::Tx& tx) {
        if (gate.get(tx) == 0) stm::retry(tx);
      });
      woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stm::atomic([&](stm::Tx& tx) { gate.set(tx, 1); });
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST_P(RetryTest, RetryCounterIsRecorded) {
  stm::tvar<int> flag{0};
  std::thread waiter([&] {
    stm::atomic([&](stm::Tx& tx) {
      if (flag.get(tx) == 0) stm::retry(tx);
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stm::atomic([&](stm::Tx& tx) { flag.set(tx, 1); });
  waiter.join();
  EXPECT_GE(stats().total(Counter::TxRetry), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, RetryTest, test::AllAlgos(),
                         test::algo_param_name);

TEST(RetryStrategy, ImmediateModeStillSynchronizesCorrectly) {
  // The paper's abort-and-immediately-retry workaround (§4.2): costlier,
  // but semantically identical — verify the handoff works under it.
  for (const std::string& backend : test::speculative_backend_names()) {
    stm::Config cfg;
    cfg.backend = backend;
    cfg.retry_wait = false;
    stm::init(cfg);

    stm::tvar<int> slot{0};
    long sum = 0;
    std::thread producer([&] {
      for (int i = 1; i <= 100; ++i) {
        stm::atomic([&](stm::Tx& tx) {
          if (slot.get(tx) != 0) stm::retry(tx);
          slot.set(tx, i);
        });
      }
    });
    std::thread consumer([&] {
      for (int i = 1; i <= 100; ++i) {
        sum += stm::atomic([&](stm::Tx& tx) {
          const int got = slot.get(tx);
          if (got == 0) stm::retry(tx);
          slot.set(tx, 0);
          return got;
        });
      }
    });
    producer.join();
    consumer.join();
    EXPECT_EQ(sum, 100 * 101 / 2) << backend;
  }
}

TEST(RetryErrors, EmptyReadSetThrows) {
  stm::init({.backend = "tl2"});
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) { stm::retry(tx); }),
               std::logic_error);
}

TEST(RetryErrors, RetryAfterWriteUnderCglThrows) {
  stm::init({.backend = "cgl"});
  stm::tvar<int> x{0};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 x.set(tx, 1);
                 stm::retry(tx);
               }),
               std::logic_error);
}

}  // namespace
}  // namespace adtm
