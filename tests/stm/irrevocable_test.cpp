// Serial-irrevocable execution: become_irrevocable(), escalation after
// repeated conflicts (serialize-after-N contention management, paper §2),
// and isolation of the serial gate.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class IrrevocableTest : public AlgoTest {};

TEST_P(IrrevocableTest, BecomeIrrevocableRestartsInSerialMode) {
  stm::tvar<int> x{0};
  int executions = 0;
  stm::atomic([&](stm::Tx& tx) {
    ++executions;
    x.set(tx, x.get(tx) + 1);
    stm::become_irrevocable(tx);
    EXPECT_TRUE(tx.irrevocable());
    x.set(tx, x.get(tx) + 10);
  });
  // The body re-executed (speculative attempt + serial attempt), but the
  // speculative write was rolled back: effects must appear exactly once.
  EXPECT_EQ(x.load_direct(), 11);
  EXPECT_GE(executions, 2);
  EXPECT_GE(stats().total(Counter::TxIrrevocable), 1u);
}

TEST_P(IrrevocableTest, IrrevocableIsIdempotent) {
  stm::atomic([&](stm::Tx& tx) {
    stm::become_irrevocable(tx);
    stm::become_irrevocable(tx);  // no-op the second time
    EXPECT_TRUE(tx.irrevocable());
  });
}

TEST_P(IrrevocableTest, SerialTransactionExcludesAllOthers) {
  // While an irrevocable transaction runs, no other transaction commits.
  stm::tvar<long> counter{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> serial_running{false};
  std::atomic<long> commits_during_serial{0};

  std::vector<std::thread> workers;
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&] {
      while (!stop.load()) {
        stm::atomic([&](stm::Tx& tx) { counter.set(tx, counter.get(tx) + 1); });
        if (serial_running.load()) commits_during_serial.fetch_add(1);
      }
    });
  }

  for (int round = 0; round < 20; ++round) {
    stm::atomic([&](stm::Tx& tx) {
      stm::become_irrevocable(tx);
      serial_running.store(true);
      const long before = counter.get(tx);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      // Nothing can have committed while we hold the serial gate.
      EXPECT_EQ(counter.get(tx), before);
      serial_running.store(false);
    });
  }
  stop.store(true);
  for (auto& t : workers) t.join();
}

TEST_P(IrrevocableTest, EpiloguesRunAfterSerialCommit) {
  bool ran = false;
  stm::atomic([&](stm::Tx& tx) {
    stm::become_irrevocable(tx);
    tx.on_commit([&] { ran = true; });
  });
  EXPECT_TRUE(ran);
}

INSTANTIATE_TEST_SUITE_P(Speculative, IrrevocableTest,
                         test::SpeculativeAlgos(), test::algo_param_name);

TEST(IrrevocableCgl, BecomeIrrevocableIsNoOpUnderCgl) {
  stm::init({.backend = "cgl"});
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_TRUE(tx.irrevocable());  // CGL is always direct
    stm::become_irrevocable(tx);    // must not throw or restart
  });
}

TEST(Serialization, RepeatedConflictsEscalateToSerial) {
  // With serialize_after=3 a transaction that conflicts forever must
  // escalate and then complete.
  stm::Config cfg;
  cfg.backend = "tl2";
  cfg.serialize_after = 3;
  cfg.lock_spin_limit = 4;
  stm::init(cfg);
  stats().reset();

  stm::tvar<long> hot{0};
  std::atomic<bool> stop{false};
  // A tight writer loop to generate conflicts.
  std::thread antagonist([&] {
    while (!stop.load()) {
      stm::atomic([&](stm::Tx& tx) { hot.set(tx, hot.get(tx) + 1); });
    }
  });

  for (int i = 0; i < 200; ++i) {
    stm::atomic([&](stm::Tx& tx) { hot.set(tx, hot.get(tx) + 1); });
  }
  stop.store(true);
  antagonist.join();
  // We cannot force a conflict deterministically, but the workload is
  // contended enough that at least the machinery exercised; the invariant
  // that matters is forward progress (reaching this line) with a tiny
  // serialize_after.
  SUCCEED();
}

TEST(Serialization, GateSerializesUnrelatedTransactions) {
  // The paper's complaint about irrevocability: it delays transactions
  // from completely unrelated parts of the program. Verify observable
  // semantics: an unrelated transaction cannot commit during a serial one.
  stm::init({.backend = "tl2"});
  stm::tvar<int> unrelated{0};
  std::atomic<bool> in_serial{false};

  std::thread serial([&] {
    stm::atomic([&](stm::Tx& tx) {
      stm::become_irrevocable(tx);
      in_serial.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      in_serial.store(false);
    });
  });

  while (!in_serial.load()) std::this_thread::yield();
  stm::atomic([&](stm::Tx& tx) { unrelated.set(tx, 1); });
  // We started while the serial section was running; if the gate works,
  // our commit can only have happened after it finished.
  EXPECT_FALSE(in_serial.load());
  serial.join();
}

}  // namespace
}  // namespace adtm
