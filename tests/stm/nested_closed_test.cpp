// Closed nesting: partial rollback of nested scopes (the paper's §8
// future-work question about deferral and nested transactions).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>

#include "defer/atomic_defer.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class Cell : public Deferrable {
 public:
  stm::tvar<int> v{0};
};

class ClosedNestingTest : public AlgoTest {};

TEST_P(ClosedNestingTest, OutsideTransactionActsLikeAtomic) {
  stm::tvar<int> x{0};
  stm::atomic_nested([&](stm::Tx& tx) { x.set(tx, 5); });
  EXPECT_EQ(x.load_direct(), 5);
  const int v = stm::atomic_nested([&](stm::Tx& tx) { return x.get(tx); });
  EXPECT_EQ(v, 5);
}

TEST_P(ClosedNestingTest, CommittedScopeMergesIntoParent) {
  stm::tvar<int> x{0}, y{0};
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 1);
    stm::atomic_nested([&](stm::Tx& inner) {
      EXPECT_EQ(x.get(inner), 1);  // sees parent's speculative state
      y.set(inner, 2);
    });
    EXPECT_EQ(y.get(tx), 2);  // parent sees the merged scope
  });
  EXPECT_EQ(x.load_direct(), 1);
  EXPECT_EQ(y.load_direct(), 2);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, ClosedNestingTest, test::AllAlgos(),
                         test::algo_param_name);

// Partial rollback needs speculative execution.
class ClosedNestingSpecTest : public AlgoTest {};

TEST_P(ClosedNestingSpecTest, ExceptionRollsBackOnlyTheScope) {
  stm::tvar<int> parent_var{0}, scope_var{0};
  stm::atomic([&](stm::Tx& tx) {
    parent_var.set(tx, 10);
    EXPECT_THROW(stm::atomic_nested([&](stm::Tx& inner) {
                   scope_var.set(inner, 99);
                   throw std::runtime_error("scope fails");
                 }),
                 std::runtime_error);
    // Scope effects gone, parent effects intact — and the parent goes on.
    EXPECT_EQ(scope_var.get(tx), 0);
    EXPECT_EQ(parent_var.get(tx), 10);
    parent_var.set(tx, 11);
  });
  EXPECT_EQ(parent_var.load_direct(), 11);
  EXPECT_EQ(scope_var.load_direct(), 0);
}

TEST_P(ClosedNestingSpecTest, CancelAbortsOnlyTheScope) {
  stm::tvar<int> a{0}, b{0};
  stm::atomic([&](stm::Tx& tx) {
    a.set(tx, 1);
    stm::atomic_nested([&](stm::Tx& inner) {
      b.set(inner, 2);
      stm::cancel(inner);  // scoped cancel
    });
    EXPECT_EQ(b.get(tx), 0);
  });
  EXPECT_EQ(a.load_direct(), 1);
  EXPECT_EQ(b.load_direct(), 0);
}

TEST_P(ClosedNestingSpecTest, ScopeRevertsOverwritesOfParentWrites) {
  // The nested scope overwrites a value the parent had already written
  // speculatively; the revert must restore the parent's buffered value,
  // not the pre-transaction one.
  stm::tvar<int> x{1};
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 2);  // parent's write
    stm::atomic_nested([&](stm::Tx& inner) {
      x.set(inner, 3);  // overwrites the parent's buffered value
      stm::cancel(inner);
    });
    EXPECT_EQ(x.get(tx), 2);  // parent's value restored
  });
  EXPECT_EQ(x.load_direct(), 2);
}

TEST_P(ClosedNestingSpecTest, AlternativePathAfterScopeFailure) {
  // The composition the feature exists for: try plan A; on failure, plan B
  // — all inside one atomic transaction.
  stm::tvar<int> account_a{100}, account_b{5}, dest{0};
  stm::atomic([&](stm::Tx& tx) {
    bool plan_a_ok = true;
    try {
      stm::atomic_nested([&](stm::Tx& inner) {
        const int available = account_b.get(inner);
        account_b.set(inner, available - 50);
        dest.set(inner, dest.get(inner) + 50);
        if (available < 50) throw std::runtime_error("insufficient");
      });
    } catch (const std::runtime_error&) {
      plan_a_ok = false;
    }
    if (!plan_a_ok) {
      account_a.set(tx, account_a.get(tx) - 50);
      dest.set(tx, dest.get(tx) + 50);
    }
  });
  EXPECT_EQ(account_a.load_direct(), 50);
  EXPECT_EQ(account_b.load_direct(), 5);  // plan A fully reverted
  EXPECT_EQ(dest.load_direct(), 50);      // exactly one transfer landed
}

TEST_P(ClosedNestingSpecTest, DeferredOpsOfAbortedScopeAreRevoked) {
  // §8's deferral/nesting interaction: atomic_defer inside an aborted
  // scope must be fully revoked — the op must not run and the TxLock
  // acquisition must be undone.
  Cell cell;
  bool scope_op_ran = false;
  bool parent_op_ran = false;
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(tx, [&] { parent_op_ran = true; }, cell);
    stm::atomic_nested([&](stm::Tx& inner) {
      atomic_defer(inner, [&] { scope_op_ran = true; }, cell);
      stm::cancel(inner);
    });
  });
  EXPECT_TRUE(parent_op_ran);
  EXPECT_FALSE(scope_op_ran);
  // The cell's lock depth balanced out: it is free again.
  EXPECT_FALSE(cell.txlock().held_by_me());
  stm::atomic([&](stm::Tx& tx) { EXPECT_EQ(cell.v.get(tx), 0); });
}

TEST_P(ClosedNestingSpecTest, TxLockAcquiredInScopeIsReleasedOnScopeAbort) {
  TxLock lock;
  stm::atomic([&](stm::Tx& tx) {
    stm::atomic_nested([&](stm::Tx& inner) {
      lock.acquire(inner);
      stm::cancel(inner);
    });
    // Back in the parent: the speculative acquisition was undone.
    EXPECT_FALSE(lock.held_by_me(tx));
  });
  EXPECT_FALSE(lock.held_by_me());
  lock.acquire();  // still usable
  lock.release();
}

TEST_P(ClosedNestingSpecTest, NestedScopesStack) {
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 1);
    stm::atomic_nested([&](stm::Tx& t1) {
      x.set(t1, 2);
      stm::atomic_nested([&](stm::Tx& t2) {
        x.set(t2, 3);
        stm::cancel(t2);  // innermost only
      });
      EXPECT_EQ(x.get(t1), 2);
    });
    EXPECT_EQ(x.get(tx), 2);  // middle scope committed into parent
  });
  EXPECT_EQ(x.load_direct(), 2);
}

TEST_P(ClosedNestingSpecTest, AllocationsOfAbortedScopeAreFreed) {
  stm::atomic([&](stm::Tx& tx) {
    void* parent_alloc = stm::tx_alloc(tx, 32);
    EXPECT_NE(parent_alloc, nullptr);
    stm::atomic_nested([&](stm::Tx& inner) {
      void* scope_alloc = stm::tx_alloc(inner, 64);
      EXPECT_NE(scope_alloc, nullptr);
      stm::cancel(inner);  // scope_alloc reclaimed here
    });
    std::free(parent_alloc);  // committed allocations are ours
    tx.on_commit([] {});      // keep the commit path exercised
  });
  SUCCEED();
}

TEST_P(ClosedNestingSpecTest, WholeTransactionAbortStillWorksAroundScopes) {
  stm::tvar<int> x{0};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 x.set(tx, 1);
                 stm::atomic_nested([&](stm::Tx& inner) {
                   x.set(inner, 2);
                 });  // commits into parent
                 throw std::runtime_error("whole tx dies");
               }),
               std::runtime_error);
  EXPECT_EQ(x.load_direct(), 0);  // everything rolled back
}

INSTANTIATE_TEST_SUITE_P(Speculative, ClosedNestingSpecTest,
                         test::SpeculativeAlgos(), test::algo_param_name);

TEST(ClosedNestingControlFlow, RetryInScopeRestartsWholeTransaction) {
  // Condition synchronization cannot be scoped: retry() inside a nested
  // scope must abort and re-execute the WHOLE transaction (the condition
  // may depend on anything the transaction read).
  stm::init({.backend = "tl2"});
  stm::tvar<int> flag{0};
  stm::tvar<int> probe{0};
  std::atomic<int> outer_runs{0};

  std::thread waiter([&] {
    stm::atomic([&](stm::Tx& tx) {
      outer_runs.fetch_add(1);
      probe.set(tx, probe.get(tx) + 1);  // parent work before the scope
      stm::atomic_nested([&](stm::Tx& inner) {
        if (flag.get(inner) == 0) stm::retry(inner);
      });
    });
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stm::atomic([&](stm::Tx& tx) { flag.set(tx, 1); });
  waiter.join();
  // The whole transaction re-executed (parent work included) and its
  // effects appear exactly once.
  EXPECT_GE(outer_runs.load(), 2);
  EXPECT_EQ(probe.load_direct(), 1);
}

TEST(ClosedNestingControlFlow, SubscribeInScopeComposes) {
  stm::init({.backend = "tl2"});
  struct C : Deferrable {
    stm::tvar<int> v{0};
  } cell;
  stm::atomic([&](stm::Tx& tx) {
    stm::atomic_nested([&](stm::Tx& inner) {
      cell.subscribe(inner);  // free: passes
      cell.v.set(inner, 3);
    });
    EXPECT_EQ(cell.v.get(tx), 3);
  });
  EXPECT_EQ(cell.v.load_direct(), 3);
}

TEST(ClosedNestingCgl, FlattensUnderDirectModes) {
  stm::init({.backend = "cgl"});
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    stm::atomic_nested([&](stm::Tx& inner) { x.set(inner, 7); });
    EXPECT_EQ(x.get(tx), 7);
  });
  EXPECT_EQ(x.load_direct(), 7);
}

}  // namespace
}  // namespace adtm
