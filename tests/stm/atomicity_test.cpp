// Multi-threaded atomicity and isolation invariants, parameterized over
// algorithm. These run on however many hardware threads exist; preemptive
// interleaving exercises the conflict paths even on one core.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class ConcurrencyTest : public AlgoTest {};

TEST_P(ConcurrencyTest, CounterIncrementsAreNotLost) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  stm::tvar<long> counter{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        stm::atomic([&](stm::Tx& tx) { counter.set(tx, counter.get(tx) + 1); });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load_direct(), long{kThreads} * kPerThread);
}

TEST_P(ConcurrencyTest, BankTransfersConserveTotal) {
  constexpr int kAccounts = 16;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1500;
  constexpr long kInitial = 1000;
  std::array<stm::tvar<long>, kAccounts> accounts;
  for (auto& a : accounts) a.store_direct(kInitial);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) + 1};
      for (int i = 0; i < kPerThread; ++i) {
        const int from = static_cast<int>(rng.next_below(kAccounts));
        int to = static_cast<int>(rng.next_below(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        const long amount = static_cast<long>(rng.next_below(10)) + 1;
        stm::atomic([&](stm::Tx& tx) {
          accounts[from].set(tx, accounts[from].get(tx) - amount);
          accounts[to].set(tx, accounts[to].get(tx) + amount);
        });
      }
    });
  }
  for (auto& t : threads) t.join();

  long total = 0;
  for (auto& a : accounts) total += a.load_direct();
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST_P(ConcurrencyTest, ConcurrentReadersSeeConsistentPairs) {
  // Writer keeps the invariant a + b == 0; readers must never observe a
  // torn snapshot where a + b != 0.
  stm::tvar<long> a{0}, b{0};
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};

  std::thread writer([&] {
    for (long i = 1; i <= 4000; ++i) {
      stm::atomic([&](stm::Tx& tx) {
        a.set(tx, i);
        b.set(tx, -i);
      });
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const auto [va, vb] = stm::atomic([&](stm::Tx& tx) {
          return std::pair{a.get(tx), b.get(tx)};
        });
        if (va + vb != 0) violations.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(ConcurrencyTest, WriteSkewIsPrevented) {
  // Classic write-skew: two transactions each read both variables and
  // write one; serializability forbids both committing from the same
  // snapshot such that the invariant x + y >= 1 breaks.
  stm::tvar<int> x{1}, y{1};
  std::atomic<long> violations{0};
  constexpr int kIters = 1000;
  auto worker = [&](stm::tvar<int>& mine) {
    for (int i = 0; i < kIters; ++i) {
      const bool decremented = stm::atomic([&](stm::Tx& tx) {
        if (x.get(tx) + y.get(tx) >= 2) {
          mine.set(tx, mine.get(tx) - 1);
          return true;
        }
        return false;
      });
      // Serializability: the guarded decrement can never take the sum
      // below 1 (write skew would let both threads decrement from the
      // same x==1,y==1 snapshot, reaching 0).
      const int sum = stm::atomic(
          [&](stm::Tx& tx) { return x.get(tx) + y.get(tx); });
      if (sum < 1) violations.fetch_add(1);
      if (decremented) {
        stm::atomic([&](stm::Tx& tx) { mine.set(tx, mine.get(tx) + 1); });
      }
    }
  };
  std::thread t1([&] { worker(x); });
  std::thread t2([&] { worker(y); });
  t1.join();
  t2.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(x.load_direct(), 1);
  EXPECT_EQ(y.load_direct(), 1);
}

TEST_P(ConcurrencyTest, DisjointTransactionsAllCommit) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;
  std::array<stm::tvar<long>, kThreads> slots;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        stm::atomic(
            [&](stm::Tx& tx) { slots[t].set(tx, slots[t].get(tx) + 1); });
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& s : slots) EXPECT_EQ(s.load_direct(), kPerThread);
}

TEST_P(ConcurrencyTest, LinkedListInsertsAreAtomic) {
  // A sorted singly-linked list built from tx_alloc'd nodes; concurrent
  // inserts must produce a list containing every key exactly once.
  struct Node {
    stm::tvar<long> key;
    stm::tvar<Node*> next;
  };
  stm::tvar<Node*> head{nullptr};

  constexpr int kThreads = 4;
  constexpr int kPerThread = 120;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const long key = t * kPerThread + i;
        Node* node = new Node;
        node->key.store_direct(key);
        stm::atomic([&](stm::Tx& tx) {
          Node* prev = nullptr;
          Node* cur = head.get(tx);
          while (cur != nullptr && cur->key.get(tx) < key) {
            prev = cur;
            cur = cur->next.get(tx);
          }
          node->next.set(tx, cur);
          if (prev == nullptr) {
            head.set(tx, node);
          } else {
            prev->next.set(tx, node);
          }
        });
      }
    });
  }
  for (auto& t : threads) t.join();

  long expected = 0;
  Node* cur = head.load_direct();
  while (cur != nullptr) {
    EXPECT_EQ(cur->key.load_direct(), expected);
    ++expected;
    Node* next = cur->next.load_direct();
    delete cur;
    cur = next;
  }
  EXPECT_EQ(expected, long{kThreads} * kPerThread);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, ConcurrencyTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm
