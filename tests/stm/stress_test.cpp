// Randomized stress and failure-injection tests for the STM runtime.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "defer/atomic_defer.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class StressTest : public AlgoTest {};

TEST_P(StressTest, RandomTransfersWithInjectedCancels) {
  // Threads randomly transfer between accounts; a fraction of transactions
  // cancel after doing half the work. Conservation must hold regardless
  // (direct modes never cancel after writing, so inject pre-write there).
  constexpr int kAccounts = 12;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1200;
  constexpr long kInitial = 100;
  std::array<stm::tvar<long>, kAccounts> accounts;
  for (auto& a : accounts) a.store_direct(kInitial);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) * 7 + 1};
      for (int i = 0; i < kPerThread; ++i) {
        const int from = static_cast<int>(rng.next_below(kAccounts));
        const int to = static_cast<int>((from + 1 + rng.next_below(
                                             kAccounts - 1)) % kAccounts);
        const bool inject = rng.next_below(5) == 0;
        stm::atomic([&](stm::Tx& tx) {
          if (inject && tx.irrevocable()) stm::cancel(tx);  // before writes
          accounts[from].set(tx, accounts[from].get(tx) - 1);
          if (inject && !tx.irrevocable()) stm::cancel(tx);  // mid-update!
          accounts[to].set(tx, accounts[to].get(tx) + 1);
        });
      }
    });
  }
  for (auto& t : threads) t.join();

  long total = 0;
  for (auto& a : accounts) total += a.load_direct();
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST_P(StressTest, OrecAliasingDoesNotBreakIsolation) {
  // Force heavy false sharing: many tvars packed into few cache lines so
  // distinct variables share orecs. Aliasing may cost aborts, never
  // correctness.
  struct Packed {
    std::array<stm::tvar<std::uint32_t>, 64> slots;  // 8B each -> 4 lines
  };
  auto packed = std::make_unique<Packed>();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1600;  // divisible by 16 slots per thread
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread owns a disjoint set of slots (but shares lines).
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t slot =
            static_cast<std::size_t>(t) * 16 + (i % 16);
        stm::atomic([&](stm::Tx& tx) {
          packed->slots[slot].set(tx, packed->slots[slot].get(tx) + 1);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int s = 0; s < 16; ++s) {
      EXPECT_EQ(packed->slots[static_cast<std::size_t>(t) * 16 + s]
                    .load_direct(),
                static_cast<std::uint32_t>(kPerThread / 16));
    }
  }
}

TEST_P(StressTest, MixedReadersWritersAndDeferrers) {
  // Everything at once: writers, long readers, deferred operations, and a
  // thread that periodically escalates to irrevocability.
  struct Shared : Deferrable {
    stm::tvar<long> a{0};
    stm::tvar<long> b{0};  // written directly, only under the implicit lock
  };
  Shared shared;
  std::array<stm::tvar<long>, 32> table{};
  std::atomic<bool> stop{false};
  std::atomic<long> torn{0};

  std::thread writer([&] {
    for (long i = 1; i <= 600; ++i) {
      stm::atomic([&](stm::Tx& tx) {
        shared.subscribe(tx);
        shared.a.set(tx, i);
        atomic_defer(tx, [&shared, i] { shared.b.store_direct(i); }, shared);
      });
    }
    stop.store(true);
  });

  std::thread reader([&] {
    while (!stop.load()) {
      const auto [a, b] = stm::atomic([&](stm::Tx& tx) {
        shared.subscribe(tx);
        return std::pair{shared.a.get(tx), shared.b.get(tx)};
      });
      if (a != b) torn.fetch_add(1);
    }
  });

  std::thread scanner([&] {
    while (!stop.load()) {
      (void)stm::atomic([&](stm::Tx& tx) {
        long sum = 0;
        for (auto& v : table) sum += v.get(tx);
        return sum;
      });
    }
  });

  std::thread escalator([&] {
    int rounds = 0;
    while (!stop.load() && rounds++ < 50) {
      stm::atomic([&](stm::Tx& tx) {
        stm::become_irrevocable(tx);
        table[0].set(tx, table[0].get(tx) + 1);
      });
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  writer.join();
  reader.join();
  scanner.join();
  escalator.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(shared.a.load_direct(), 600);
  EXPECT_EQ(shared.b.load_direct(), 600);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, StressTest, test::AllAlgos(),
                         test::algo_param_name);

TEST(SerialGateRegression, SerialTxAcquiresLockHeldByDeferredOp) {
  // Regression for the locker-accounting design (see registry.hpp): a
  // serial-irrevocable transaction wants a TxLock that an in-flight
  // deferred operation holds. Without locker draining this deadlocks:
  // the deferred op's release transaction would block on the serial gate
  // while the serial transaction spins on the lock.
  stm::init({.backend = "tl2"});

  struct Cell : Deferrable {
    stm::tvar<long> v{0};
  } cell;
  std::atomic<bool> in_deferred{false};

  std::thread deferrer([&] {
    stm::atomic([&](stm::Tx& tx) {
      atomic_defer(tx, [&] {
        in_deferred.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        cell.v.store_direct(1);
      }, cell);
    });
  });

  while (!in_deferred.load()) std::this_thread::yield();

  // Escalate to serial mode and touch the cell: must wait for the
  // deferred op (draining it), not deadlock.
  long seen = -1;
  stm::atomic([&](stm::Tx& tx) {
    stm::become_irrevocable(tx);
    cell.subscribe(tx);  // lock is free by the time the gate admits us
    seen = cell.v.get(tx);
  });
  deferrer.join();
  EXPECT_EQ(seen, 1);
}

TEST(SerialGateRegression, SerialTxWhileTxLockGuardHeldElsewhere) {
  stm::init({.backend = "tl2"});
  TxLock lock;
  std::atomic<bool> holding{false};
  std::atomic<bool> release{false};

  std::thread holder([&] {
    TxLockGuard guard(lock);
    holding.store(true);
    while (!release.load()) std::this_thread::yield();
  });

  while (!holding.load()) std::this_thread::yield();
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    release.store(true);
  });

  // The serial gate drains the guard holder before running, so the lock
  // is acquirable inside the serial transaction.
  stm::atomic([&](stm::Tx& tx) {
    stm::become_irrevocable(tx);
    lock.acquire(tx);
    lock.release(tx);
  });
  holder.join();
  releaser.join();
  SUCCEED();
}

}  // namespace
}  // namespace adtm
