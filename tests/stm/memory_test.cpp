// Transactional allocation: abort frees, commit-deferred frees, and the
// ordering of frees relative to commit epilogues (Listing 1's TxEnd).
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class MemoryTest : public AlgoTest {};

TEST_P(MemoryTest, CommittedAllocationSurvives) {
  void* p = nullptr;
  stm::atomic([&](stm::Tx& tx) {
    p = stm::tx_alloc(tx, 64);
    std::memset(p, 0xab, 64);
  });
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(static_cast<unsigned char*>(p)[63], 0xab);
  std::free(p);
}

TEST_P(MemoryTest, FreeIsDeferredUntilAfterEpilogues) {
  // Listing 1: deferred operations may refer to memory freed by the
  // transaction, so frees are processed only after all deferred ops run.
  char* buf = static_cast<char*>(std::malloc(16));
  std::strcpy(buf, "payload");
  std::string observed;
  stm::atomic([&](stm::Tx& tx) {
    stm::tx_free(tx, buf);
    tx.on_commit([&observed, buf] { observed = buf; });
  });
  EXPECT_EQ(observed, "payload");
}

TEST_P(MemoryTest, EpilogueOrderingAcrossMultipleFrees) {
  std::vector<char*> bufs;
  for (int i = 0; i < 4; ++i) {
    char* b = static_cast<char*>(std::malloc(8));
    b[0] = static_cast<char>('a' + i);
    bufs.push_back(b);
  }
  std::string order;
  stm::atomic([&](stm::Tx& tx) {
    for (char* b : bufs) stm::tx_free(tx, b);
    tx.on_commit([&] {
      for (char* b : bufs) order.push_back(b[0]);
    });
  });
  EXPECT_EQ(order, "abcd");
}

TEST_P(MemoryTest, FreeOfNullIsIgnored) {
  stm::atomic([&](stm::Tx& tx) { stm::tx_free(tx, nullptr); });
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, MemoryTest, test::AllAlgos(),
                         test::algo_param_name);

class MemoryRollbackTest : public AlgoTest {};

TEST_P(MemoryRollbackTest, AbortedAllocationIsReclaimed) {
  // Exercised under ASAN-like discipline: the runtime must free the
  // allocation itself on abort; we just check no double-ownership escapes.
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 void* p = stm::tx_alloc(tx, 128);
                 std::memset(p, 1, 128);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  SUCCEED();
}

TEST_P(MemoryRollbackTest, AbortedFreeDoesNotFree) {
  char* buf = static_cast<char*>(std::malloc(16));
  buf[0] = 'z';
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 stm::tx_free(tx, buf);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(buf[0], 'z');  // still live
  std::free(buf);
}

INSTANTIATE_TEST_SUITE_P(Speculative, MemoryRollbackTest,
                         test::SpeculativeAlgos(), test::algo_param_name);

class EpilogueTest : public AlgoTest {};

TEST_P(EpilogueTest, EpiloguesRunInRegistrationOrder) {
  std::string order;
  stm::atomic([&](stm::Tx& tx) {
    tx.on_commit([&] { order += "1"; });
    tx.on_commit([&] { order += "2"; });
    tx.on_commit([&] { order += "3"; });
  });
  EXPECT_EQ(order, "123");
}

TEST_P(EpilogueTest, EpilogueRunsOutsideTransaction) {
  bool inside = true;
  stm::atomic([&](stm::Tx& tx) {
    tx.on_commit([&] { inside = stm::in_transaction(); });
  });
  EXPECT_FALSE(inside);
}

TEST_P(EpilogueTest, EpilogueMayStartNewTransaction) {
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    tx.on_commit([&] {
      stm::atomic([&](stm::Tx& inner) { x.set(inner, 42); });
    });
  });
  EXPECT_EQ(x.load_direct(), 42);
}

TEST_P(EpilogueTest, EpilogueSeesCommittedState) {
  stm::tvar<int> x{0};
  int seen = -1;
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 7);
    tx.on_commit([&] {
      seen = stm::atomic([&](stm::Tx& inner) { return x.get(inner); });
    });
  });
  EXPECT_EQ(seen, 7);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, EpilogueTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm
