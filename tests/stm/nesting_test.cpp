// Flat nesting semantics (paper §4.2: transactions nest in C++).
#include <gtest/gtest.h>

#include <stdexcept>

#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class NestingTest : public AlgoTest {};

TEST_P(NestingTest, NestedAtomicJoinsEnclosing) {
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 1);
    stm::atomic([&](stm::Tx& inner) {
      // Flat nesting: the inner block sees the outer's speculative write.
      EXPECT_EQ(x.get(inner), 1);
      x.set(inner, 2);
    });
    EXPECT_EQ(x.get(tx), 2);
  });
  EXPECT_EQ(x.load_direct(), 2);
}

TEST_P(NestingTest, DeeplyNestedBlocks) {
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& t1) {
    stm::atomic([&](stm::Tx& t2) {
      stm::atomic([&](stm::Tx& t3) {
        stm::atomic([&](stm::Tx& t4) { x.set(t4, x.get(t4) + 1); });
        x.set(t3, x.get(t3) + 1);
      });
      x.set(t2, x.get(t2) + 1);
    });
    x.set(t1, x.get(t1) + 1);
  });
  EXPECT_EQ(x.load_direct(), 4);
}

TEST_P(NestingTest, NestedTxHandleIsTheSameDescriptor) {
  stm::atomic([&](stm::Tx& outer) {
    stm::atomic([&](stm::Tx& inner) { EXPECT_EQ(&outer, &inner); });
  });
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, NestingTest, test::AllAlgos(),
                         test::algo_param_name);

class NestingRollbackTest : public AlgoTest {};

TEST_P(NestingRollbackTest, ExceptionInInnerRollsBackWholeTransaction) {
  stm::tvar<int> x{0};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 x.set(tx, 1);
                 stm::atomic([&](stm::Tx& inner) {
                   x.set(inner, 2);
                   throw std::runtime_error("inner");
                 });
               }),
               std::runtime_error);
  // Flat nesting: aborting the inner block aborts everything.
  EXPECT_EQ(x.load_direct(), 0);
}

INSTANTIATE_TEST_SUITE_P(Speculative, NestingRollbackTest,
                         test::SpeculativeAlgos(), test::algo_param_name);

}  // namespace
}  // namespace adtm
