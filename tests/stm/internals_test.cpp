// Whitebox unit tests for the STM runtime's internal building blocks:
// orec encoding, the per-transaction logs, and the clock.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "stm/logs.hpp"
#include "stm/orec.hpp"

namespace adtm::stm {
namespace {

// ---------------------------------------------------------------------------
// Orec word encoding
// ---------------------------------------------------------------------------

TEST(OrecEncoding, VersionRoundTrip) {
  for (const std::uint64_t v : {0ull, 1ull, 42ull, (1ull << 62) - 1}) {
    const OrecWord w = make_orec_version(v);
    EXPECT_FALSE(orec_locked(w));
    EXPECT_EQ(orec_version(w), v);
  }
}

TEST(OrecEncoding, LockRoundTrip) {
  for (const std::uint32_t owner : {0u, 1u, 17u, kMaxThreads - 1}) {
    const OrecWord w = make_orec_locked(owner);
    EXPECT_TRUE(orec_locked(w));
    EXPECT_EQ(orec_owner(w), owner);
    EXPECT_TRUE(orec_locked_by(w, owner));
    EXPECT_FALSE(orec_locked_by(w, owner + 1));
  }
}

TEST(OrecEncoding, VersionIsNeverMistakenForLock) {
  EXPECT_FALSE(orec_locked(make_orec_version(123)));
  EXPECT_FALSE(orec_locked_by(make_orec_version(123), 123));
}

TEST(OrecMapping, SameLineSameOrec) {
  alignas(64) unsigned char line[64];
  for (int i = 1; i < 64; ++i) {
    EXPECT_EQ(&orec_for(&line[0]), &orec_for(&line[i])) << i;
  }
}

TEST(OrecMapping, MappingIsDeterministic) {
  int x = 0;
  EXPECT_EQ(&orec_for(&x), &orec_for(&x));
}

TEST(OrecMapping, SpreadAcrossTable) {
  // Sequential lines must hit many distinct orecs (no catastrophic
  // clustering from the hash).
  std::vector<unsigned char> block(64 * 1024);
  std::set<const Orec*> distinct;
  for (std::size_t off = 0; off < block.size(); off += 64) {
    distinct.insert(&orec_for(&block[off]));
  }
  EXPECT_GE(distinct.size(), 1000u);  // 1024 lines, near-zero collisions
}

TEST(Clock, AdvanceIsMonotonicAndDense) {
  const std::uint64_t a = clock_now();
  const std::uint64_t b = clock_advance();
  EXPECT_GT(b, a);
  EXPECT_GE(clock_now(), b);
}

TEST(Clock, ConcurrentAdvancesAreUnique) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<std::uint64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) seen[t].push_back(clock_advance());
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  for (const auto& v : seen) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// WriteSet
// ---------------------------------------------------------------------------

TEST(WriteSet, InsertLookupOverwrite) {
  detail::WriteSet ws;
  detail::Word a{1}, b{2};
  std::uint64_t out = 0;
  EXPECT_FALSE(ws.lookup(&a, &out));
  ws.insert(&a, 10);
  EXPECT_TRUE(ws.lookup(&a, &out));
  EXPECT_EQ(out, 10u);
  EXPECT_FALSE(ws.lookup(&b, &out));
  ws.insert(&a, 20);  // overwrite
  EXPECT_TRUE(ws.lookup(&a, &out));
  EXPECT_EQ(out, 20u);
  EXPECT_EQ(ws.size(), 1u);
}

TEST(WriteSet, GrowsPastInitialCapacity) {
  detail::WriteSet ws;
  std::vector<detail::Word> words(500);
  for (std::size_t i = 0; i < words.size(); ++i) {
    ws.insert(&words[i], i);
  }
  EXPECT_EQ(ws.size(), words.size());
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < words.size(); ++i) {
    ASSERT_TRUE(ws.lookup(&words[i], &out)) << i;
    EXPECT_EQ(out, i);
  }
}

TEST(WriteSet, ClearEmptiesAndReuses) {
  detail::WriteSet ws;
  detail::Word a{0};
  ws.insert(&a, 1);
  ws.clear();
  EXPECT_TRUE(ws.empty());
  std::uint64_t out = 0;
  EXPECT_FALSE(ws.lookup(&a, &out));
  ws.insert(&a, 2);
  EXPECT_TRUE(ws.lookup(&a, &out));
  EXPECT_EQ(out, 2u);
}

TEST(WriteSet, EntriesPreserveInsertionOrder) {
  detail::WriteSet ws;
  detail::Word w[3];
  ws.insert(&w[2], 2);
  ws.insert(&w[0], 0);
  ws.insert(&w[1], 1);
  ASSERT_EQ(ws.entries().size(), 3u);
  EXPECT_EQ(ws.entries()[0].addr, &w[2]);
  EXPECT_EQ(ws.entries()[1].addr, &w[0]);
  EXPECT_EQ(ws.entries()[2].addr, &w[1]);
}

// ---------------------------------------------------------------------------
// ReadSet / ValueReadSet
// ---------------------------------------------------------------------------

TEST(ReadSet, ConsecutiveDuplicateFilter) {
  detail::ReadSet rs;
  Orec a{0}, b{0};
  rs.push(&a, 1);
  rs.push(&a, 1);  // filtered
  rs.push(&b, 2);
  rs.push(&a, 1);  // not consecutive: kept
  EXPECT_EQ(rs.size(), 3u);
}

TEST(ValueReadSet, RecordsAddressValuePairs) {
  detail::ValueReadSet rs;
  detail::Word a{7};
  rs.push(&a, 7);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.entries()[0].addr, &a);
  EXPECT_EQ(rs.entries()[0].value, 7u);
}

// ---------------------------------------------------------------------------
// UndoLog
// ---------------------------------------------------------------------------

TEST(UndoLog, RollbackRestoresInReverse) {
  detail::UndoLog log;
  detail::Word w{100};
  log.push(&w, 100);
  w.store(200, std::memory_order_relaxed);
  log.push(&w, 200);
  w.store(300, std::memory_order_relaxed);
  log.rollback();
  EXPECT_EQ(w.load(std::memory_order_relaxed), 100u);
}

TEST(UndoLog, EmptyRollbackIsNoop) {
  detail::UndoLog log;
  log.rollback();
  SUCCEED();
}

// ---------------------------------------------------------------------------
// LockLog
// ---------------------------------------------------------------------------

TEST(LockLog, PrevLookupAndRelease) {
  detail::LockLog log;
  Orec a{make_orec_version(5)}, b{make_orec_version(9)};
  log.push(&a, make_orec_version(5));
  log.push(&b, make_orec_version(9));

  OrecWord prev = 0;
  EXPECT_TRUE(log.prev_of(&a, &prev));
  EXPECT_EQ(orec_version(prev), 5u);
  Orec c{0};
  EXPECT_FALSE(log.prev_of(&c, &prev));

  log.release_all(make_orec_version(42));
  EXPECT_EQ(orec_version(a.load()), 42u);
  EXPECT_EQ(orec_version(b.load()), 42u);
}

TEST(LockLog, RestoreAllRevertsToPrev) {
  detail::LockLog log;
  Orec a{make_orec_locked(3)};
  log.push(&a, make_orec_version(7));
  log.restore_all();
  EXPECT_EQ(orec_version(a.load()), 7u);
  EXPECT_FALSE(orec_locked(a.load()));
}

}  // namespace
}  // namespace adtm::stm
