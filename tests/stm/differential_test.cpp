// Differential testing: every algorithm must compute the SAME result for
// the same deterministic workload — CGL (a single global lock with direct
// access) is the semantic oracle.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

constexpr int kCells = 32;

// A deterministic single-threaded workload with data-dependent control
// flow, nested blocks, scoped cancels, and allocation churn; returns the
// final cell values plus a running checksum of everything observed.
std::pair<std::array<long, kCells>, std::uint64_t> run_workload(
    const std::string& backend, std::uint64_t seed) {
  stm::Config cfg;
  cfg.backend = backend;
  stm::init(cfg);

  std::array<stm::tvar<long>, kCells> cells;
  for (int i = 0; i < kCells; ++i) cells[i].store_direct(i);

  Xoshiro256 rng{seed};
  std::uint64_t checksum = 0;
  for (int step = 0; step < 3000; ++step) {
    const int a = static_cast<int>(rng.next_below(kCells));
    const int b = static_cast<int>(rng.next_below(kCells));
    const int op = static_cast<int>(rng.next_below(5));
    switch (op) {
      case 0:  // transfer
        stm::atomic([&](stm::Tx& tx) {
          const long v = cells[a].get(tx);
          cells[a].set(tx, v - 1);
          cells[b].set(tx, cells[b].get(tx) + 1);
        });
        break;
      case 1:  // data-dependent update
        stm::atomic([&](stm::Tx& tx) {
          if (cells[a].get(tx) % 2 == 0) {
            cells[b].set(tx, cells[b].get(tx) * 2 + 1);
          } else {
            cells[b].set(tx, cells[b].get(tx) - 3);
          }
        });
        break;
      case 2:  // read + checksum
        checksum ^= static_cast<std::uint64_t>(stm::atomic(
            [&](stm::Tx& tx) { return cells[a].get(tx) + cells[b].get(tx); }));
        checksum *= 0x9E3779B97F4A7C15ULL;
        break;
      case 3:  // nested scope, sometimes cancelled (speculative algos);
               // under CGL the cancel path is skipped pre-write, keeping
               // the workload identical via an explicit predicate
        stm::atomic([&](stm::Tx& tx) {
          const bool doomed = cells[a].get(tx) % 3 == 0;
          if (tx.irrevocable()) {
            // Direct mode: express the same semantics without rollback.
            if (!doomed) cells[b].set(tx, cells[b].get(tx) + 7);
          } else {
            stm::atomic_nested([&](stm::Tx& inner) {
              cells[b].set(inner, cells[b].get(inner) + 7);
              if (doomed) stm::cancel(inner);
            });
          }
        });
        break;
      default:  // allocation churn
        stm::atomic([&](stm::Tx& tx) {
          auto* tmp = static_cast<long*>(stm::tx_alloc(tx, sizeof(long)));
          *tmp = cells[a].get(tx);
          cells[b].set(tx, cells[b].get(tx) ^ *tmp);
          stm::tx_free(tx, tmp);
        });
        break;
    }
  }

  std::array<long, kCells> result;
  for (int i = 0; i < kCells; ++i) result[i] = cells[i].load_direct();
  return {result, checksum};
}

TEST(Differential, AllAlgorithmsAgreeWithCglOracle) {
  for (const std::uint64_t seed : {1ull, 42ull, 20260706ull}) {
    const auto oracle = run_workload("cgl", seed);
    for (const std::string& backend : test::speculative_backend_names()) {
      const auto got = run_workload(backend, seed);
      EXPECT_EQ(got.first, oracle.first) << backend << " seed " << seed;
      EXPECT_EQ(got.second, oracle.second) << backend << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace adtm
