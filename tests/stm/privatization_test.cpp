// Privatization safety (paper §2): after a transaction unlinks an object
// from a shared structure, the thread may access it non-transactionally;
// quiescence must prevent still-running transactions from racing with it.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class PrivatizationTest : public AlgoTest {};

TEST_P(PrivatizationTest, PrivatizedObjectIsQuiescent) {
  // A one-slot "mailbox": the producer publishes a buffer, mutator
  // transactions increment both fields keeping them equal, and the
  // privatizer unlinks the buffer and then reads it NON-transactionally.
  // Without quiescence a mutator still writing back could be observed
  // mid-update (fields unequal).
  struct Buf {
    stm::tvar<long> a{0};
    stm::tvar<long> b{0};
  };

  constexpr int kRounds = 300;
  std::atomic<long> violations{0};

  for (int round = 0; round < kRounds; ++round) {
    Buf buf;
    stm::tvar<Buf*> shared{&buf};
    std::atomic<bool> stop{false};

    std::vector<std::thread> mutators;
    for (int m = 0; m < 2; ++m) {
      mutators.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          stm::atomic([&](stm::Tx& tx) {
            Buf* p = shared.get(tx);
            if (p == nullptr) return;
            p->a.set(tx, p->a.get(tx) + 1);
            p->b.set(tx, p->b.get(tx) + 1);
          });
        }
      });
    }

    // Privatize: unlink, then read directly (no transaction).
    Buf* mine =
        stm::atomic([&](stm::Tx& tx) {
          Buf* p = shared.get(tx);
          shared.set(tx, nullptr);
          return p;
        });
    const long a = mine->a.load_direct();
    const long b = mine->b.load_direct();
    if (a != b) violations.fetch_add(1);

    stop.store(true);
    for (auto& t : mutators) t.join();
  }
  EXPECT_EQ(violations.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, PrivatizationTest, test::AllAlgos(),
                         test::algo_param_name);

TEST(Quiescence, WriterCommitWaitsForConcurrentReaders) {
  // Direct probe of quiesce_until: hard to observe without timing, so we
  // assert the documented counter moves under forced overlap.
  stm::init({.backend = "tl2"});
  stats().reset();

  stm::tvar<long> x{0};
  std::atomic<bool> reader_in_tx{false};
  std::atomic<bool> release_reader{false};

  std::thread reader([&] {
    stm::atomic([&](stm::Tx& tx) {
      (void)x.get(tx);
      reader_in_tx.store(true);
      // Hold the transaction open until released.
      while (!release_reader.load()) std::this_thread::yield();
    });
  });

  while (!reader_in_tx.load()) std::this_thread::yield();

  std::thread writer([&] {
    stm::atomic([&](stm::Tx& tx) { x.set(tx, 1); });
  });

  // Give the writer time to reach quiescence, then release the reader.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release_reader.store(true);
  writer.join();
  reader.join();

  EXPECT_GE(stats().total(Counter::QuiesceWaits), 1u);
}

}  // namespace
}  // namespace adtm
