// Adaptive backend switching (label: adaptive): the abort-taxonomy
// controller behind Config::backend = "auto", and the serial-gate
// switch_backend path exercised mid-load. The stress case runs with the
// full tmsan checker set armed — a switch that tore a transaction's
// algorithm choice would surface as a mixed-mode race or an opacity
// violation there.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/runtime_config.hpp"
#include "common/stats.hpp"
#include "common/timing.hpp"
#include "stm/api.hpp"
#include "stm/backend.hpp"
#include "stm/tvar.hpp"
#include "tmsan/tmsan.hpp"

namespace adtm {
namespace {

// Small decision windows and zero dwell so a storm is acted on within a
// couple of windows; each test stops its workload once the controller
// reaches the backend the workload demands, starving later windows below
// the minimum sample size so the choice sticks.
class AdaptiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = runtime_config();
    RuntimeConfig cfg = saved_;
    cfg.adapt_window_ms = 20;
    cfg.adapt_min_dwell_ms = 0;
    configure(cfg);
  }

  void TearDown() override { configure(saved_); }

 private:
  RuntimeConfig saved_;
};

TEST_F(AdaptiveTest, AutoStartsOnTl2) {
  stm::init({.backend = "auto"});
  EXPECT_STREQ(stm::current_backend()->id, "tl2");
}

TEST_F(AdaptiveTest, ValidationStormSwitchesTo2pl) {
  stm::init({.backend = "auto"});
  stats().reset();

  // Validation-heavy contention: every transaction reads the whole array,
  // yields so a rival lands a commit inside the vulnerable window (on a
  // single-core runner the threads otherwise never overlap), then writes
  // one slot — so commit-time validation (TL2) or value revalidation
  // (NOrec) aborts dominate the taxonomy. 2PL is the controller's fixed
  // point for that signal: reachable directly, or via a low-abort first
  // window that detours through NOrec before the storm registers.
  constexpr int kVars = 8;
  stm::tvar<long> vars[kVars];
  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        stm::atomic([&](stm::Tx& tx) {
          long sum = 0;
          for (const auto& v : vars) sum += v.get(tx);
          std::this_thread::yield();
          vars[(t + i) % kVars].set(tx, sum + 1);
        });
        ++i;
        if (std::strcmp(stm::current_backend()->id, "2pl") == 0) break;
      }
    });
  }

  // A couple of 20 ms windows is the contract; allow generous slack for
  // loaded CI machines before declaring the controller broke.
  const std::uint64_t deadline = now_ns() + 10'000'000'000ULL;
  while (std::strcmp(stm::current_backend()->id, "2pl") != 0 &&
         now_ns() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : pool) th.join();

  EXPECT_GE(stats().total(Counter::BackendSwitches), 1u);
  EXPECT_STREQ(stm::current_backend()->id, "2pl");
  stm::init({.backend = "tl2"});
}

TEST_F(AdaptiveTest, LowConflictLoadSwitchesToNorec) {
  stm::init({.backend = "auto"});
  stats().reset();

  // One thread, no contention: the abort rate is ~0, which the controller
  // reads as "validation overhead wasted" and moves to NOrec.
  stm::tvar<long> x{0};
  const std::uint64_t deadline = now_ns() + 5'000'000'000ULL;
  while (stats().total(Counter::BackendSwitches) == 0 &&
         now_ns() < deadline) {
    stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
  }

  EXPECT_GE(stats().total(Counter::BackendSwitches), 1u);
  EXPECT_STREQ(stm::current_backend()->id, "norec");
  stm::init({.backend = "tl2"});
}

TEST(BackendSwitchStress, SeededFlippingMidLoadPreservesInvariants) {
  stm::init({.backend = "tl2"});
  stats().reset();
  tmsan::reset();
  tmsan::enable(tmsan::kCheckAll);

  // Bank-transfer invariant across continuous switching: total balance is
  // conserved by every backend, and every transition happens at the
  // serial gate with all workers drained.
  constexpr int kAccounts = 16;
  constexpr long kInitial = 1000;
  stm::tvar<long> accounts[kAccounts];
  for (auto& a : accounts) {
    stm::atomic([&](stm::Tx& tx) { a.set(tx, kInitial); });
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      std::uint64_t seed = 0x9e3779b97f4a7c15ULL * (t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        const int from = static_cast<int>((seed >> 33) % kAccounts);
        const int to = static_cast<int>((seed >> 13) % kAccounts);
        if (from == to) continue;
        stm::atomic([&](stm::Tx& tx) {
          const long amount = static_cast<long>(seed % 5) + 1;
          accounts[from].set(tx, accounts[from].get(tx) - amount);
          accounts[to].set(tx, accounts[to].get(tx) + amount);
        });
      }
    });
  }

  // Cycle through every switchable backend while the transfers run.
  const char* cycle[] = {"eager", "norec", "2pl", "htmsim", "tl2"};
  for (int round = 0; round < 8; ++round) {
    for (const char* id : cycle) {
      stm::switch_backend(id);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : pool) th.join();

  long total = 0;
  for (auto& a : accounts) total += a.load_direct();
  EXPECT_EQ(total, static_cast<long>(kAccounts) * kInitial);
  EXPECT_GE(stats().total(Counter::BackendSwitches), 30u);
  EXPECT_STREQ(stm::current_backend()->id, "tl2");
  EXPECT_EQ(tmsan::violation_count(), 0u) << tmsan::report();
  tmsan::disable();
  tmsan::reset();
}

TEST(BackendSwitchStress, ParkedRetryersAdoptTheNewBackend) {
  // A transaction blocked in stm::retry() across a switch must re-resolve
  // the active backend when it wakes instead of running a torn choice.
  stm::init({.backend = "tl2"});
  stm::tvar<int> gate{0};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    stm::atomic([&](stm::Tx& tx) {
      if (gate.get(tx) == 0) stm::retry(tx);
    });
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stm::switch_backend("2pl");
  EXPECT_FALSE(woke.load());
  stm::atomic([&](stm::Tx& tx) { gate.set(tx, 1); });
  waiter.join();
  EXPECT_TRUE(woke.load());
  EXPECT_STREQ(stm::current_backend()->id, "2pl");
  stm::init({.backend = "tl2"});
}

}  // namespace
}  // namespace adtm
