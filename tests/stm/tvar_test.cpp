// Single-threaded semantics of tvar and atomic() across all algorithms.
#include "stm/tvar.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>

#include "support/algo_param.hpp"

namespace adtm {
namespace {

using test::AlgoTest;

class TvarTest : public AlgoTest {};

TEST_P(TvarTest, ReadInitialValue) {
  stm::tvar<int> x{41};
  const int v = stm::atomic([&](stm::Tx& tx) { return x.get(tx); });
  EXPECT_EQ(v, 41);
}

TEST_P(TvarTest, WriteThenReadBack) {
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) { x.set(tx, 17); });
  EXPECT_EQ(x.load_direct(), 17);
}

TEST_P(TvarTest, ReadOwnWriteInsideTransaction) {
  stm::tvar<int> x{1};
  const int seen = stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 2);
    return x.get(tx);
  });
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(x.load_direct(), 2);
}

TEST_P(TvarTest, RepeatedWritesLastOneWins) {
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    for (int i = 1; i <= 10; ++i) x.set(tx, i);
  });
  EXPECT_EQ(x.load_direct(), 10);
}

TEST_P(TvarTest, MultipleVariablesInOneTransaction) {
  stm::tvar<int> a{1}, b{2}, c{3};
  stm::atomic([&](stm::Tx& tx) {
    a.set(tx, b.get(tx) + c.get(tx));
    b.set(tx, 100);
  });
  EXPECT_EQ(a.load_direct(), 5);
  EXPECT_EQ(b.load_direct(), 100);
  EXPECT_EQ(c.load_direct(), 3);
}

TEST_P(TvarTest, ReturnsValueFromBody) {
  stm::tvar<int> x{6};
  const std::string s = stm::atomic(
      [&](stm::Tx& tx) { return std::to_string(x.get(tx) * 7); });
  EXPECT_EQ(s, "42");
}

struct Vec3 {
  double x, y, z;
  bool operator==(const Vec3&) const = default;
};

TEST_P(TvarTest, MultiWordTypeRoundTrips) {
  stm::tvar<Vec3> v{Vec3{1.5, -2.25, 1e9}};
  const Vec3 seen = stm::atomic([&](stm::Tx& tx) { return v.get(tx); });
  EXPECT_EQ(seen, (Vec3{1.5, -2.25, 1e9}));
  stm::atomic([&](stm::Tx& tx) { v.set(tx, Vec3{9, 8, 7}); });
  EXPECT_EQ(v.load_direct(), (Vec3{9, 8, 7}));
}

struct Odd {  // size not a multiple of 8
  char tag;
  std::uint16_t n;
  bool operator==(const Odd&) const = default;
};

TEST_P(TvarTest, OddSizedTypeRoundTrips) {
  stm::tvar<Odd> v{Odd{'a', 777}};
  const Odd seen = stm::atomic([&](stm::Tx& tx) { return v.get(tx); });
  EXPECT_EQ(seen, (Odd{'a', 777}));
}

TEST_P(TvarTest, SmallTypesDoNotClobberNeighbours) {
  // Two byte-sized tvars next to each other: writes must not interfere.
  struct {
    stm::tvar<std::uint8_t> a{10};
    stm::tvar<std::uint8_t> b{20};
  } pair;
  stm::atomic([&](stm::Tx& tx) { pair.a.set(tx, 11); });
  stm::atomic([&](stm::Tx& tx) { pair.b.set(tx, 21); });
  EXPECT_EQ(pair.a.load_direct(), 11);
  EXPECT_EQ(pair.b.load_direct(), 21);
}

TEST_P(TvarTest, PointerTvar) {
  int target = 5;
  stm::tvar<int*> p{nullptr};
  stm::atomic([&](stm::Tx& tx) { p.set(tx, &target); });
  EXPECT_EQ(p.load_direct(), &target);
}

TEST_P(TvarTest, InTransactionFlag) {
  EXPECT_FALSE(stm::in_transaction());
  stm::atomic([&](stm::Tx&) { EXPECT_TRUE(stm::in_transaction()); });
  EXPECT_FALSE(stm::in_transaction());
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, TvarTest, test::AllAlgos(),
                         test::algo_param_name);

// Rollback semantics only hold for speculative algorithms; CGL is a
// direct mode that cannot undo effects (documented in api.hpp).
class RollbackTest : public AlgoTest {};

TEST_P(RollbackTest, ExceptionRollsBackWrites) {
  stm::tvar<int> x{1};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 x.set(tx, 999);
                 throw std::runtime_error("boom");
               }),
               std::runtime_error);
  EXPECT_EQ(x.load_direct(), 1);
}

TEST_P(RollbackTest, CancelDiscardsEffects) {
  stm::tvar<int> x{1};
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 999);
    stm::cancel(tx);
  });
  EXPECT_EQ(x.load_direct(), 1);
}

TEST_P(RollbackTest, CancelSkipsEpilogues) {
  stm::tvar<int> x{0};
  bool ran = false;
  stm::atomic([&](stm::Tx& tx) {
    tx.on_commit([&] { ran = true; });
    x.set(tx, 1);
    stm::cancel(tx);
  });
  EXPECT_FALSE(ran);
  EXPECT_EQ(x.load_direct(), 0);
}

TEST_P(RollbackTest, ExceptionRollsBackMultipleVariables) {
  stm::tvar<int> a{1}, b{2};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 a.set(tx, 10);
                 b.set(tx, 20);
                 if (a.get(tx) == 10) throw std::logic_error("x");
               }),
               std::logic_error);
  EXPECT_EQ(a.load_direct(), 1);
  EXPECT_EQ(b.load_direct(), 2);
}

INSTANTIATE_TEST_SUITE_P(Speculative, RollbackTest, test::SpeculativeAlgos(),
                         test::algo_param_name);

TEST(TvarCgl, ExceptionKeepsEffectsUnderCgl) {
  stm::init({.backend = "cgl"});
  stm::tvar<int> x{1};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 x.set(tx, 999);
                 throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // Direct mode: effects retained (GCC `synchronized` semantics).
  EXPECT_EQ(x.load_direct(), 999);
}

TEST(TvarCgl, CancelAfterWriteIsIllegalUnderCgl) {
  stm::init({.backend = "cgl"});
  stm::tvar<int> x{1};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 x.set(tx, 2);
                 stm::cancel(tx);
               }),
               std::logic_error);
}

TEST(TvarCgl, CancelBeforeWriteIsAllowedUnderCgl) {
  stm::init({.backend = "cgl"});
  stm::tvar<int> x{1};
  stm::atomic([&](stm::Tx& tx) {
    if (x.get(tx) == 1) stm::cancel(tx);
    x.set(tx, 2);
  });
  EXPECT_EQ(x.load_direct(), 1);
}

}  // namespace
}  // namespace adtm
