// The pluggable backend registry: enumeration order, lookup, capability
// flags, registration validation, and the serial-gate switch_backend
// contract (error cases here; switching under load lives in
// adaptive_switch_test.cpp).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "stm/backend.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

TEST(BackendRegistry, BuiltinsEnumerateInAlgoOrderWithDenseIndices) {
  auto& reg = stm::backend_registry();
  ASSERT_GE(reg.size(), 6u);
  const char* ids[] = {"tl2", "eager", "cgl", "htmsim", "norec", "2pl"};
  for (std::size_t i = 0; i < 6; ++i) {
    const stm::Backend* b = reg.at(i);
    ASSERT_NE(b, nullptr);
    EXPECT_STREQ(b->id, ids[i]);
    EXPECT_EQ(b->obs_index, i);
  }
  EXPECT_EQ(reg.at(reg.size()), nullptr);
}

TEST(BackendRegistry, FindMatchesIdAndDisplayName) {
  EXPECT_EQ(stm::find_backend("tl2"), stm::find_backend("TL2"));
  EXPECT_EQ(stm::find_backend("2pl"), stm::find_backend("2PL"));
  EXPECT_NE(stm::find_backend("2pl"), nullptr);
  EXPECT_EQ(stm::find_backend("no-such-backend"), nullptr);
  EXPECT_EQ(stm::find_backend(""), nullptr);
  // "auto" is a Config::backend selector, not a registered backend.
  EXPECT_EQ(stm::find_backend("auto"), nullptr);
}

TEST(BackendRegistry, EnumInteropMatchesRegistry) {
  // The deprecated-enum bridge is this test's subject.
  EXPECT_EQ(stm::backend_for(stm::Algo::TL2),  // adtmlint:allow algo-enum
            stm::find_backend("tl2"));
  EXPECT_EQ(stm::backend_for(stm::Algo::NOrec),  // adtmlint:allow algo-enum
            stm::find_backend("norec"));
}

TEST(BackendRegistry, CapabilityFlags) {
  const stm::Backend* tl2 = stm::find_backend("tl2");
  EXPECT_TRUE(tl2->has(stm::kBackendRollback));
  EXPECT_TRUE(tl2->has(stm::kBackendAdaptive));
  EXPECT_FALSE(tl2->has(stm::kBackendInPlaceWrites));

  const stm::Backend* cgl = stm::find_backend("cgl");
  EXPECT_TRUE(cgl->has(stm::kBackendDirectMode));
  EXPECT_FALSE(cgl->has(stm::kBackendRollback));

  const stm::Backend* htm = stm::find_backend("htmsim");
  EXPECT_TRUE(htm->has(stm::kBackendHtmLike));

  const stm::Backend* twopl = stm::find_backend("2pl");
  EXPECT_TRUE(twopl->has(stm::kBackendRollback));
  EXPECT_TRUE(twopl->has(stm::kBackendInPlaceWrites));
  EXPECT_TRUE(twopl->has(stm::kBackendPessimisticReads));
  EXPECT_TRUE(twopl->has(stm::kBackendAdaptive));
  EXPECT_NE(twopl->ops, nullptr);
}

TEST(BackendRegistry, RejectsInvalidRegistrations) {
  auto& reg = stm::backend_registry();
  stm::Backend dup;
  dup.id = "tl2";
  dup.name = "Duplicate";
  EXPECT_THROW(reg.register_backend(dup), std::logic_error);

  stm::Backend dup_name;
  dup_name.id = "fresh-id";
  dup_name.name = "TL2";
  EXPECT_THROW(reg.register_backend(dup_name), std::logic_error);

  stm::Backend null_id;
  null_id.id = nullptr;
  null_id.name = "NullId";
  EXPECT_THROW(reg.register_backend(null_id), std::logic_error);

  // An extension backend (non-null ops) must fill the whole ops table.
  stm::BackendOps partial{};
  stm::Backend incomplete;
  incomplete.id = "incomplete";
  incomplete.name = "Incomplete";
  incomplete.ops = &partial;
  EXPECT_THROW(reg.register_backend(incomplete), std::logic_error);
}

TEST(BackendRegistry, ConfigSelectionByNameAndError) {
  stm::init({.backend = "eager"});
  EXPECT_STREQ(stm::current_backend()->id, "eager");
  stm::init({.backend = "2PL"});  // display names work too
  EXPECT_STREQ(stm::current_backend()->id, "2pl");
  EXPECT_THROW(stm::init({.backend = "bogus"}), std::invalid_argument);
  stm::init({.backend = "tl2"});
}

TEST(BackendRegistry, SwitchSwapsBackendAndCounts) {
  stm::init({.backend = "tl2"});
  stats().reset();
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) { x.set(tx, 1); });

  stm::switch_backend("2pl");
  EXPECT_STREQ(stm::current_backend()->id, "2pl");
  EXPECT_EQ(stats().total(Counter::BackendSwitches), 1u);
  stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
  EXPECT_EQ(x.load_direct(), 2);

  // Switching to the already-active backend is a no-op.
  stm::switch_backend("2pl");
  EXPECT_EQ(stats().total(Counter::BackendSwitches), 1u);

  stm::switch_backend("tl2");
  EXPECT_STREQ(stm::current_backend()->id, "tl2");
  EXPECT_EQ(stats().total(Counter::BackendSwitches), 2u);
}

TEST(BackendRegistry, SwitchErrorCases) {
  stm::init({.backend = "tl2"});
  EXPECT_THROW(stm::switch_backend(nullptr), std::logic_error);
  EXPECT_THROW(stm::switch_backend("no-such"), std::invalid_argument);
  // Direct-mode target: CGL transactions bypass the serial gate, so the
  // gate cannot make the swap quiescent.
  EXPECT_THROW(stm::switch_backend("cgl"), std::logic_error);

  // From inside a transaction the calling thread can never drain itself.
  stm::tvar<int> x{0};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 x.set(tx, 1);
                 stm::switch_backend("eager");
               }),
               std::logic_error);

  // Direct-mode source: same drain problem in the other direction.
  stm::init({.backend = "cgl"});
  EXPECT_THROW(stm::switch_backend("tl2"), std::logic_error);
  stm::init({.backend = "tl2"});
}

}  // namespace
}  // namespace adtm
