// Deferred transactional logging (paper §5.1, Listing 3).
#include "txlog/txlog.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "io/temp_dir.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm::txlog {
namespace {

using test::AlgoTest;

std::vector<std::string> read_lines(const std::string& path) {
  std::istringstream in(io::read_file(path));
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

class TxLogTest : public AlgoTest {
 protected:
  io::TempDir dir_{"adtm-txlog"};
};

TEST_P(TxLogTest, LogWritesAfterCommit) {
  TxLogger logger(dir_.file("log"));
  stm::atomic([&](stm::Tx& tx) {
    logger.log(tx, "hello");
    // Nothing on disk yet: the write is deferred past commit.
    EXPECT_EQ(logger.records_written(), 0u);
  });
  EXPECT_EQ(logger.records_written(), 1u);
  EXPECT_EQ(io::read_file(dir_.file("log")), "hello\n");
}

TEST_P(TxLogTest, MessageFormattedInsideTransactionSeesTxState) {
  // The paper's motivation: the logged values are mutable shared data;
  // formatting inside the transaction captures a consistent snapshot.
  TxLogger logger(dir_.file("log"));
  stm::tvar<int> x{5};
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 6);
    logger.log(tx, "x=" + std::to_string(x.get(tx)));
  });
  EXPECT_EQ(io::read_file(dir_.file("log")), "x=6\n");
}

TEST_P(TxLogTest, AbortedTransactionLogsNothing) {
  if (GetParam() == "CGL") GTEST_SKIP() << "CGL cannot roll back";
  TxLogger logger(dir_.file("log"));
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 logger.log(tx, "never");
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(logger.records_written(), 0u);
  EXPECT_EQ(io::read_file(dir_.file("log")), "");
}

TEST_P(TxLogTest, ConcurrentOrderedLoggingKeepsRecordsIntact) {
  TxLogger logger(dir_.file("log"));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        stm::atomic([&](stm::Tx& tx) {
          logger.log(tx, "t" + std::to_string(t) + ".i" + std::to_string(i));
        });
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto lines = read_lines(dir_.file("log"));
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Every record intact and unique (no interleaved/corrupted lines).
  std::set<std::string> unique(lines.begin(), lines.end());
  EXPECT_EQ(unique.size(), lines.size());
  // Per-thread order is preserved on a shared ordered descriptor.
  for (int t = 0; t < kThreads; ++t) {
    int last = -1;
    for (const auto& line : lines) {
      if (line.rfind("t" + std::to_string(t) + ".", 0) == 0) {
        const int i = std::stoi(line.substr(line.find(".i") + 2));
        EXPECT_GT(i, last);
        last = i;
      }
    }
  }
}

TEST_P(TxLogTest, UnorderedLoggingDeliversAllRecords) {
  TxLogger logger(dir_.file("log"));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        stm::atomic([&](stm::Tx& tx) {
          logger.log_unordered(
              tx, "u" + std::to_string(t) + "." + std::to_string(i));
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(logger.records_written(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST_P(TxLogTest, NewlineAppendedOnlyWhenMissing) {
  TxLogger logger(dir_.file("log"));
  stm::atomic([&](stm::Tx& tx) { logger.log(tx, "with\n"); });
  stm::atomic([&](stm::Tx& tx) { logger.log(tx, "without"); });
  EXPECT_EQ(io::read_file(dir_.file("log")), "with\nwithout\n");
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, TxLogTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm::txlog
