// TxCache: the memcached-style cache of paper §5.1.
#include "kvcache/tx_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"
#include "support/algo_param.hpp"
#include "txlog/txlog.hpp"

namespace adtm::kvcache {
namespace {

using test::AlgoTest;

class TxCacheTest : public AlgoTest {};

TEST_P(TxCacheTest, SetGetDelete) {
  TxCache cache(16);
  cache.set("alpha", "1");
  cache.set("beta", "2");
  EXPECT_EQ(cache.get("alpha"), "1");
  EXPECT_EQ(cache.get("beta"), "2");
  EXPECT_FALSE(cache.get("gamma").has_value());
  EXPECT_TRUE(cache.del("alpha"));
  EXPECT_FALSE(cache.del("alpha"));
  EXPECT_FALSE(cache.get("alpha").has_value());
  EXPECT_EQ(cache.size(), 1u);
}

TEST_P(TxCacheTest, UpdateReplacesValue) {
  TxCache cache(16);
  cache.set("k", "old");
  cache.set("k", "new");
  EXPECT_EQ(cache.get("k"), "new");
  EXPECT_EQ(cache.size(), 1u);
}

TEST_P(TxCacheTest, LruEvictionOrder) {
  TxCache cache(3);
  cache.set("a", "1");
  cache.set("b", "2");
  cache.set("c", "3");
  // Touch "a" so "b" becomes the LRU victim.
  EXPECT_TRUE(cache.get("a").has_value());
  cache.set("d", "4");
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());  // evicted
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_TRUE(cache.get("d").has_value());
  EXPECT_EQ(cache.stats_snapshot().evictions, 1u);
}

TEST_P(TxCacheTest, CapacityNeverExceeded) {
  TxCache cache(8);
  for (int i = 0; i < 50; ++i) {
    cache.set("key" + std::to_string(i), std::to_string(i));
    EXPECT_LE(cache.size(), 8u);
  }
  EXPECT_EQ(cache.size(), 8u);
  // The 8 most recent keys survive.
  for (int i = 42; i < 50; ++i) {
    EXPECT_TRUE(cache.get("key" + std::to_string(i)).has_value()) << i;
  }
}

TEST_P(TxCacheTest, IncrIsNumericAndExact) {
  TxCache cache(16);
  cache.set("counter", "10");
  EXPECT_EQ(cache.incr("counter", 5), 15);
  EXPECT_EQ(cache.incr("counter", -3), 12);
  EXPECT_EQ(cache.get("counter"), "12");
  EXPECT_FALSE(cache.incr("missing", 1).has_value());
  cache.set("text", "hello");
  EXPECT_FALSE(cache.incr("text", 1).has_value());
}

TEST_P(TxCacheTest, ConcurrentIncrementsAreExact) {
  TxCache cache(16);
  cache.set("n", "0");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(cache.incr("n", 1).has_value());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cache.get("n"), std::to_string(kThreads * kPerThread));
}

TEST_P(TxCacheTest, ConcurrentMixedWorkloadStaysConsistent) {
  TxCache cache(64);
  constexpr int kThreads = 4;
  constexpr int kKeys = 96;  // > capacity: eviction active throughout
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) + 11};
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string(rng.next_below(kKeys));
        switch (rng.next_below(3)) {
          case 0: cache.set(key, key + "-v"); break;
          case 1: {
            const auto v = cache.get(key);
            if (v.has_value()) EXPECT_EQ(*v, key + "-v");
            break;
          }
          default: cache.del(key); break;
        }
        EXPECT_LE(cache.size(), 64u);
      }
    });
  }
  for (auto& t : threads) t.join();
  const CacheStats s = cache.stats_snapshot();
  EXPECT_GT(s.sets, 0u);
  EXPECT_EQ(s.hits + s.misses, s.hits + s.misses);  // snapshot coherent
}

TEST_P(TxCacheTest, ComposesWithEnclosingTransaction) {
  // Move a value between two keys atomically.
  TxCache cache(16);
  cache.set("src", "payload");
  stm::atomic([&](stm::Tx& tx) {
    const auto v = cache.get(tx, "src");
    ASSERT_TRUE(v.has_value());
    cache.del(tx, "src");
    cache.set(tx, "dst", *v);
  });
  EXPECT_FALSE(cache.get("src").has_value());
  EXPECT_EQ(cache.get("dst"), "payload");
}

TEST_P(TxCacheTest, AbortRollsBackSet) {
  if (GetParam() == "CGL") GTEST_SKIP() << "CGL cannot roll back";
  TxCache cache(16);
  cache.set("stable", "1");
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 cache.set(tx, "ghost", "2");
                 cache.del(tx, "stable");
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_FALSE(cache.get("ghost").has_value());
  EXPECT_EQ(cache.get("stable"), "1");
  EXPECT_EQ(cache.size(), 1u);
}

TEST_P(TxCacheTest, EvictionLoggingIsDeferredAndComplete) {
  io::TempDir dir("adtm-kvcache");
  txlog::TxLogger logger(dir.file("evictions.log"));
  TxCache cache(4, 1024, &logger);
  for (int i = 0; i < 12; ++i) {
    cache.set("key" + std::to_string(i), "v");
  }
  EXPECT_EQ(cache.stats_snapshot().evictions, 8u);
  EXPECT_EQ(logger.records_written(), 8u);
  const std::string log = io::read_file(dir.file("evictions.log"));
  EXPECT_NE(log.find("evict key=key0"), std::string::npos);
}

TEST_P(TxCacheTest, StatsCountHitsAndMisses) {
  TxCache cache(8);
  cache.set("a", "1");
  (void)cache.get("a");
  (void)cache.get("a");
  (void)cache.get("nope");
  const CacheStats s = cache.stats_snapshot();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.sets, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, TxCacheTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm::kvcache
